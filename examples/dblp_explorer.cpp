// DBLP explorer: a fuller tour of the CAPE API on the publications dataset.
//
// Demonstrates:
//   * mining with each of the four algorithms and comparing their profiles,
//   * inspecting mined patterns and individual local models,
//   * asking both `low` and `high` questions,
//   * comparing CAPE's counterbalances against the pattern-free baseline.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "datagen/dblp.h"

using namespace cape;  // NOLINT — example brevity

namespace {

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  DblpOptions data;
  data.num_rows = 20000;
  data.seed = 42;
  auto table_result = GenerateDblp(data);
  if (!table_result.ok()) return Fail(table_result.status());
  TablePtr table = std::move(table_result).ValueOrDie();

  std::cout << "=== Sample of Pub(author, pubid, year, venue) ===\n"
            << table->ToString(8) << "\n";

  auto engine_result = Engine::FromTable(table);
  if (!engine_result.ok()) return Fail(engine_result.status());
  Engine engine = std::move(engine_result).ValueOrDie();

  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};

  // 1. Compare the four mining algorithms on the same task.
  std::cout << "=== Mining algorithm comparison ===\n";
  for (const char* miner : {"CUBE", "SHARE-GRP", "ARP-MINE"}) {
    Status st = engine.MinePatterns(miner);
    if (!st.ok()) return Fail(st);
    const MiningProfile& p = engine.mining_profile();
    std::printf("%-10s %8.1f ms  (regression %5.1f ms, queries %6.1f ms, "
                "%lld fits, %lld sorts) -> %zu patterns\n",
                miner, p.total_ns * 1e-6, p.regression_ns * 1e-6, p.query_ns * 1e-6,
                static_cast<long long>(p.num_local_fits),
                static_cast<long long>(p.num_sorts), engine.patterns().size());
  }
  std::cout << "\n=== Mined patterns ===\n" << engine.RenderPatterns(12) << "\n";

  // 2. Inspect one local model: the constant model for the planted author.
  Pattern author_year{AttrSet::Single(0), AttrSet::Single(2), AggFunc::kCount,
                      Pattern::kCountStar, ModelType::kConst};
  if (const GlobalPattern* gp = engine.patterns().Find(author_year)) {
    if (const LocalPattern* local =
            gp->FindLocal({Value::String(kDblpPlantedAuthor)})) {
      std::printf("local model for %s on fragment (%s): %s, GoF=%.3f, support=%lld\n\n",
                  author_year.ToString(engine.schema()).c_str(), kDblpPlantedAuthor,
                  local->model->ToString().c_str(), local->model->goodness_of_fit(),
                  static_cast<long long>(local->support));
    }
  }

  // 3. A `low` question and a `high` question.
  struct Question {
    const char* venue;
    int year;
    Direction dir;
  };
  for (const Question& spec : {Question{"SIGKDD", 2007, Direction::kLow},
                               Question{"SIGKDD", 2012, Direction::kHigh}}) {
    auto q = engine.MakeQuestion({"author", "venue", "year"},
                                 {Value::String(kDblpPlantedAuthor),
                                  Value::String(spec.venue), Value::Int64(spec.year)},
                                 AggFunc::kCount, "*", spec.dir);
    if (!q.ok()) return Fail(q.status());
    std::cout << "=== " << q->ToString() << " ===\n";
    auto cape_result = engine.Explain(*q);
    if (!cape_result.ok()) return Fail(cape_result.status());
    std::cout << "CAPE counterbalances:\n"
              << engine.RenderExplanations(cape_result->explanations);
    auto baseline_result = engine.ExplainBaseline(*q);
    if (!baseline_result.ok()) return Fail(baseline_result.status());
    std::cout << "\nBaseline (no patterns):\n"
              << engine.RenderExplanations(baseline_result->explanations) << "\n";
  }
  return 0;
}
