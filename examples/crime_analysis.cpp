// Crime analysis: CAPE on a wide, hierarchical dataset (Appendix A.1).
//
// Demonstrates:
//   * mining with FD optimizations on a schema with real hierarchies
//     (beat -> community -> district),
//   * the Table 5 scenario: explaining a dip in Battery crimes,
//   * customizing the distance model (class-based venue distance analog:
//     adjacent community areas are "near").

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "datagen/crime.h"
#include "explain/distance.h"

using namespace cape;  // NOLINT — example brevity

namespace {

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  CrimeOptions data;
  data.num_rows = 40000;
  data.num_attrs = 9;  // includes district/beat/ward with planted FDs
  data.seed = 7;
  auto table_result = GenerateCrime(data);
  if (!table_result.ok()) return Fail(table_result.status());
  TablePtr table = std::move(table_result).ValueOrDie();
  std::cout << "=== Crime sample (" << table->num_rows() << " rows, "
            << table->num_columns() << " attributes) ===\n"
            << table->ToString(6) << "\n";

  auto engine_result = Engine::FromTable(table);
  if (!engine_result.ok()) return Fail(engine_result.status());
  Engine engine = std::move(engine_result).ValueOrDie();

  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.15;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 5;
  mining.agg_functions = {AggFunc::kCount};
  mining.use_fd_optimizations = true;  // exploit beat -> community -> district

  Status st = engine.MinePatterns("ARP-MINE");
  if (!st.ok()) return Fail(st);
  const MiningProfile& profile = engine.mining_profile();
  std::printf("mined %zu patterns in %.1f ms; FD optimization skipped %lld candidates\n\n",
              engine.patterns().size(), profile.total_ns * 1e-6,
              static_cast<long long>(profile.num_candidates_skipped_fd));

  // Make adjacent community areas "near" so counterbalances in neighboring
  // areas (the paper's area 25 vs 26) are preferred over distant ones.
  const int community_col = engine.schema().GetFieldIndex("community");
  engine.distance_model().SetDistance(
      community_col, std::make_shared<BandedNumericDistance>(/*band=*/1.0));

  auto q = engine.MakeQuestion(
      {"primary_type", "community", "year"},
      {Value::String("Battery"), Value::Int64(26), Value::Int64(2011)}, AggFunc::kCount,
      "*", Direction::kLow);
  if (!q.ok()) return Fail(q.status());
  std::cout << "=== " << q->ToString() << " ===\n";

  auto result = engine.Explain(*q);
  if (!result.ok()) return Fail(result.status());
  std::cout << engine.RenderExplanations(result->explanations) << "\n";

  std::printf("generation: %.1f ms, %lld relevant patterns, %lld (P, P') pairs, "
              "%lld pairs pruned\n",
              result->profile.total_ns * 1e-6,
              static_cast<long long>(result->profile.num_relevant_patterns),
              static_cast<long long>(result->profile.num_refinement_pairs),
              static_cast<long long>(result->profile.num_pairs_pruned));
  return 0;
}
