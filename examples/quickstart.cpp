// Quickstart: the paper's running example end to end.
//
// Generates a synthetic DBLP-style publication table with the planted
// author "AX" (Example 1), mines aggregate regression patterns offline,
// and asks the question phi0 = "why did AX publish only 1 SIGKDD paper in
// 2007?" — expecting counterbalances like his ICDE 2006/2007 spikes
// (Table 3 of the paper).

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "explain/narrative.h"

using namespace cape;  // NOLINT — example brevity

int main() {
  // 1. Data: synthetic DBLP Pub(author, pubid, year, venue).
  DblpOptions data_options;
  data_options.num_rows = 8000;
  data_options.seed = 42;
  auto table_result = GenerateDblp(data_options);
  if (!table_result.ok()) {
    std::cerr << table_result.status().ToString() << "\n";
    return 1;
  }
  auto engine_result = Engine::FromTable(std::move(table_result).ValueOrDie());
  if (!engine_result.ok()) {
    std::cerr << engine_result.status().ToString() << "\n";
    return 1;
  }
  Engine engine = std::move(engine_result).ValueOrDie();
  std::cout << "Loaded relation " << engine.schema().ToString() << " with "
            << engine.table()->num_rows() << " rows\n\n";

  // 2. Offline: mine ARPs. Publication counts are small, so use the
  // thresholds the paper recommends for DBLP-like data.
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;   // theta
  mining.local_support_threshold = 3;  // delta
  mining.global_confidence_threshold = 0.3;  // lambda
  mining.global_support_threshold = 10;      // Delta
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};  // near-unique id column

  Status st = engine.MinePatterns("ARP-MINE");
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::printf("Mined %zu global patterns (%lld local) in %.2f ms\n",
              engine.patterns().size(),
              static_cast<long long>(engine.patterns().NumLocalPatterns()),
              engine.mining_profile().total_ns * 1e-6);
  std::cout << engine.RenderPatterns(10) << "\n";

  // 3. Online: ask why AX's SIGKDD 2007 count is low.
  auto question_result = engine.MakeQuestion(
      {"author", "venue", "year"},
      {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"), Value::Int64(2007)},
      AggFunc::kCount, "*", Direction::kLow);
  if (!question_result.ok()) {
    std::cerr << question_result.status().ToString() << "\n";
    return 1;
  }
  const UserQuestion& question = question_result.ValueOrDie();
  std::cout << "Question: " << question.ToString() << "\n\n";

  auto explain_result = engine.Explain(question);
  if (!explain_result.ok()) {
    std::cerr << explain_result.status().ToString() << "\n";
    return 1;
  }
  // First, the contrast that motivates CAPE: the provenance of this answer
  // is the one unremarkable SIGKDD 2007 paper — it cannot explain anything.
  auto provenance = question.Provenance();
  if (provenance.ok()) {
    std::cout << "Provenance of the answer (" << (*provenance)->num_rows()
              << " row):\n"
              << (*provenance)->ToString(3) << "\n";
  }

  std::cout << "Top-10 counterbalance explanations (CAPE):\n"
            << engine.RenderExplanations(explain_result->explanations) << "\n";
  if (!explain_result->explanations.empty()) {
    std::cout << "In words: "
              << NarrateExplanation(question, explain_result->explanations[0],
                                    engine.schema())
              << "\n\n";
  }

  // 4. For contrast: the pattern-free baseline of Appendix A.2.
  auto baseline_result = engine.ExplainBaseline(question);
  if (!baseline_result.ok()) {
    std::cerr << baseline_result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Top-10 explanations (pattern-free baseline):\n"
            << engine.RenderExplanations(baseline_result->explanations);
  return 0;
}
