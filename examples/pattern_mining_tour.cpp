// Pattern-mining tour: the ARP machinery on the paper's own tiny example
// (Table 1 / Figure 1), step by step, without the Engine facade.
//
// Walks through: building a relation, running a retrieval query Q_{P,f},
// fitting the regression models of Example 2, checking local/global
// semantics (Definitions 3 and 4), and mining with explicit thresholds.

#include <cstdio>
#include <iostream>

#include "pattern/mining.h"
#include "relational/operators.h"
#include "relational/table.h"
#include "stats/regression.h"

using namespace cape;  // NOLINT — example brevity

int main() {
  // The Figure 1 instance of Pub(author, pubid, year, venue).
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"pubid", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  auto add = [&](const char* a, const char* p, int y, const char* v) {
    (void)table->AppendRow(
        {Value::String(a), Value::String(p), Value::Int64(y), Value::String(v)});
  };
  add("AX", "P1", 2004, "SIGKDD");
  add("AX", "P2", 2004, "SIGKDD");
  add("AX", "P3", 2005, "SIGKDD");
  add("AX", "P4", 2005, "SIGKDD");
  add("AX", "P5", 2005, "ICDE");
  add("AY", "P2", 2004, "SIGKDD");
  add("AY", "P6", 2004, "ICDE");
  add("AY", "P7", 2004, "ICDM");
  add("AY", "P8", 2005, "ICDE");
  add("AZ", "P9", 2004, "SIGMOD");
  std::cout << "Pub =\n" << table->ToString() << "\n";

  // P1 = [author] : year ~Const~> count(*)  (Section 2.2).
  Pattern p1{AttrSet::Single(0), AttrSet::Single(2), AggFunc::kCount, Pattern::kCountStar,
             ModelType::kConst};
  std::cout << "P1 = " << p1.ToString(*table->schema()) << "\n\n";

  // frag(Pub, P1) = pi_author(Pub).
  auto fragments = ProjectDistinct(*table, {0}).ValueOrDie();
  std::cout << "frag(Pub, P1) =\n" << fragments->ToString() << "\n";

  // Retrieval query Q_{P1,f} and the regression of Example 2, per fragment.
  for (int64_t f = 0; f < fragments->num_rows(); ++f) {
    const Value author = fragments->GetValue(f, 0);
    auto selected = FilterEquals(*table, {{0, author}}).ValueOrDie();
    auto data = GroupByAggregate(*selected, std::vector<int>{2},
                                 {AggregateSpec::CountStar("cnt")})
                    .ValueOrDie();
    std::printf("Q_{P1,%s}:\n%s", author.ToString().c_str(), data->ToString().c_str());
    std::vector<double> y;
    for (int64_t r = 0; r < data->num_rows(); ++r) {
      y.push_back(data->column(1).GetNumeric(r));
    }
    auto model = ConstantRegression::Fit(y).ValueOrDie();
    std::printf("  support=%lld  fit: %s  GoF=%.3f  -> %s (delta=2, theta=0.2)\n\n",
                static_cast<long long>(data->num_rows()), model->ToString().c_str(),
                model->goodness_of_fit(),
                (data->num_rows() >= 2 && model->goodness_of_fit() >= 0.2)
                    ? "holds locally"
                    : "does NOT hold locally");
  }

  // Definition 4 end to end: mine with the Section 2.3 thresholds.
  MiningConfig config;
  config.max_pattern_size = 2;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.5;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount};
  auto result = MakeArpMiner()->Mine(*table, config).ValueOrDie();
  std::cout << "Patterns holding globally (theta=0.2, delta=2, lambda=0.5, Delta=2):\n"
            << result.patterns.ToString(*table->schema());

  const GlobalPattern* global_p1 = result.patterns.Find(p1);
  if (global_p1 != nullptr) {
    std::printf("\nP1 holds globally: confidence=%.2f (= %lld/%lld), support=%lld >= 2\n",
                global_p1->global_confidence,
                static_cast<long long>(global_p1->num_holding),
                static_cast<long long>(global_p1->num_supported),
                static_cast<long long>(global_p1->num_holding));
  }
  return 0;
}
