// Question discovery: the fully automatic analysis loop.
//
// CAPE's pipeline assumes the analyst already spotted an outlier. This
// example closes the loop: mined patterns themselves surface the most
// question-worthy aggregate answers (largest deviations from their local
// models), and the top recommendation is immediately explained — no human
// in the loop.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "datagen/crime.h"
#include "explain/question_finder.h"

using namespace cape;  // NOLINT — example brevity

int main() {
  CrimeOptions data;
  data.num_rows = 30000;
  data.num_attrs = 7;
  data.seed = 7;
  auto table_result = GenerateCrime(data);
  if (!table_result.ok()) {
    std::cerr << table_result.status().ToString() << "\n";
    return 1;
  }
  TablePtr table = std::move(table_result).ValueOrDie();

  auto engine_result = Engine::FromTable(table);
  if (!engine_result.ok()) {
    std::cerr << engine_result.status().ToString() << "\n";
    return 1;
  }
  Engine engine = std::move(engine_result).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.15;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 5;
  mining.agg_functions = {AggFunc::kCount};
  if (Status st = engine.MinePatterns(); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::printf("mined %zu patterns from %lld rows\n\n", engine.patterns().size(),
              static_cast<long long>(table->num_rows()));

  // 1. Let the patterns propose questions.
  QuestionFinderOptions finder;
  finder.top_k = 8;
  finder.min_outlierness = 0.4;
  auto candidates = FindCandidateQuestions(table, engine.patterns(), finder);
  if (!candidates.ok()) {
    std::cerr << candidates.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Recommended questions (ranked by outlierness) ===\n";
  for (size_t i = 0; i < candidates->size(); ++i) {
    const CandidateQuestion& cq = (*candidates)[i];
    std::printf("%zu. %-70s dev=%+.1f (x%.2f)\n", i + 1,
                cq.question.ToString().c_str(), cq.deviation, cq.outlierness);
  }
  if (candidates->empty()) {
    std::cout << "(no outliers above the threshold)\n";
    return 0;
  }

  // 2. Explain the strongest one end to end.
  const CandidateQuestion& top = (*candidates)[0];
  std::cout << "\n=== Explaining #1: " << top.question.ToString() << " ===\n";
  std::printf("flagged by pattern: %s\n\n",
              top.pattern.ToString(engine.schema()).c_str());
  auto provenance = top.question.Provenance();
  if (provenance.ok()) {
    std::printf("(provenance of this answer: %lld input rows — none of which "
                "explain the anomaly)\n\n",
                static_cast<long long>((*provenance)->num_rows()));
  }
  auto result = engine.Explain(top.question);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << engine.RenderExplanations(result->explanations);
  return 0;
}
