// SQL session: a CLI-style front end over the engine.
//
//   SELECT author, venue, count(*) AS pubcnt FROM pub
//       WHERE year >= 2005 GROUP BY author, venue ORDER BY pubcnt DESC LIMIT 5;
//   EXPLAIN WHY count(*) IS LOW FOR author='AX', venue='SIGKDD', year=2007
//       FROM pub TOP 10;
//
// Reads statements from stdin (one per line; lines starting with -- are
// comments); with no piped input it runs a built-in demo script.

#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "relational/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"

using namespace cape;  // NOLINT — example brevity

namespace {

constexpr const char* kDemoScript = R"sql(
-- Explore the data first.
SELECT venue, count(*) AS pubs FROM pub GROUP BY venue ORDER BY pubs DESC LIMIT 5;
SELECT year, count(*) AS pubs FROM pub WHERE author = 'AX' GROUP BY year ORDER BY year;
SELECT venue, year, count(*) AS pubs FROM pub WHERE author = 'AX' AND year = 2007 GROUP BY venue, year;
-- Now ask CAPE the running-example question.
EXPLAIN WHY count(*) IS LOW FOR author='AX', venue='SIGKDD', year=2007 FROM pub TOP 10;
EXPLAIN WHY count(*) IS HIGH FOR author='AX', venue='SIGKDD', year=2012 FROM pub TOP 5;
)sql";

class Session {
 public:
  explicit Session(Engine engine) : engine_(std::move(engine)) {
    catalog_.RegisterOrReplaceTable("pub", engine_.table());
  }

  void Run(std::istream& input) {
    std::string line;
    while (std::getline(input, line)) {
      const std::string trimmed(TrimLeft(line));
      if (trimmed.empty() || trimmed.rfind("--", 0) == 0) continue;
      std::cout << "cape> " << trimmed << "\n";
      Execute(trimmed);
      std::cout << "\n";
    }
  }

 private:
  static std::string TrimLeft(const std::string& s) {
    size_t i = 0;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    return s.substr(i);
  }

  void Execute(const std::string& sql) {
    auto statement = ParseStatement(sql);
    if (!statement.ok()) {
      std::cout << "error: " << statement.status().ToString() << "\n";
      return;
    }
    if (auto* select = std::get_if<SelectQuery>(&*statement)) {
      auto result = ExecuteSelect(catalog_, *select);
      if (!result.ok()) {
        std::cout << "error: " << result.status().ToString() << "\n";
        return;
      }
      std::cout << (*result)->ToString(20);
      return;
    }
    const auto& why = std::get<ExplainWhyCommand>(*statement);
    auto question = BuildQuestion(catalog_, why);
    if (!question.ok()) {
      std::cout << "error: " << question.status().ToString() << "\n";
      return;
    }
    if (why.top_k.has_value()) {
      engine_.explain_config().top_k = static_cast<int>(*why.top_k);
    }
    auto result = engine_.Explain(*question);
    if (!result.ok()) {
      std::cout << "error: " << result.status().ToString() << "\n";
      return;
    }
    std::cout << question->ToString() << "\n"
              << engine_.RenderExplanations(result->explanations);
  }

  Engine engine_;
  Catalog catalog_;
};

}  // namespace

int main() {
  DblpOptions data;
  data.num_rows = 20000;
  data.seed = 42;
  auto table = GenerateDblp(data);
  if (!table.ok()) {
    std::cerr << table.status().ToString() << "\n";
    return 1;
  }
  auto engine_result = Engine::FromTable(std::move(table).ValueOrDie());
  if (!engine_result.ok()) {
    std::cerr << engine_result.status().ToString() << "\n";
    return 1;
  }
  Engine engine = std::move(engine_result).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  if (Status st = engine.MinePatterns(); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "Loaded table `pub` (" << engine.table()->num_rows() << " rows); mined "
            << engine.patterns().size() << " patterns.\n\n";

  Session session(std::move(engine));
  if (isatty(STDIN_FILENO)) {
    std::istringstream demo(kDemoScript);
    session.Run(demo);
  } else {
    session.Run(std::cin);
  }
  return 0;
}
