# Empty dependencies file for sql_session.
# This may be replaced when dependencies are built.
