# Empty compiler generated dependencies file for sql_session.
# This may be replaced when dependencies are built.
