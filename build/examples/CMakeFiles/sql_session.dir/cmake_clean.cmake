file(REMOVE_RECURSE
  "CMakeFiles/sql_session.dir/sql_session.cpp.o"
  "CMakeFiles/sql_session.dir/sql_session.cpp.o.d"
  "sql_session"
  "sql_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
