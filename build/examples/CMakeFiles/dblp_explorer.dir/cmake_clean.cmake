file(REMOVE_RECURSE
  "CMakeFiles/dblp_explorer.dir/dblp_explorer.cpp.o"
  "CMakeFiles/dblp_explorer.dir/dblp_explorer.cpp.o.d"
  "dblp_explorer"
  "dblp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
