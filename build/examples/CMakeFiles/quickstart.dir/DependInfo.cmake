
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/cape_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/cape_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/cape_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/cape_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/cape_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/cape_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cape_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
