file(REMOVE_RECURSE
  "CMakeFiles/pattern_mining_tour.dir/pattern_mining_tour.cpp.o"
  "CMakeFiles/pattern_mining_tour.dir/pattern_mining_tour.cpp.o.d"
  "pattern_mining_tour"
  "pattern_mining_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_mining_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
