# Empty compiler generated dependencies file for question_discovery.
# This may be replaced when dependencies are built.
