file(REMOVE_RECURSE
  "CMakeFiles/question_discovery.dir/question_discovery.cpp.o"
  "CMakeFiles/question_discovery.dir/question_discovery.cpp.o.d"
  "question_discovery"
  "question_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/question_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
