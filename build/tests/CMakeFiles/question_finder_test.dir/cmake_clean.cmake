file(REMOVE_RECURSE
  "CMakeFiles/question_finder_test.dir/question_finder_test.cc.o"
  "CMakeFiles/question_finder_test.dir/question_finder_test.cc.o.d"
  "question_finder_test"
  "question_finder_test.pdb"
  "question_finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/question_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
