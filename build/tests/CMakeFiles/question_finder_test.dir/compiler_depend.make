# Empty compiler generated dependencies file for question_finder_test.
# This may be replaced when dependencies are built.
