file(REMOVE_RECURSE
  "CMakeFiles/operators_edge_test.dir/operators_edge_test.cc.o"
  "CMakeFiles/operators_edge_test.dir/operators_edge_test.cc.o.d"
  "operators_edge_test"
  "operators_edge_test.pdb"
  "operators_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operators_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
