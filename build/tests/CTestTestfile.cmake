# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/fd_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_io_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/question_finder_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/operators_edge_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
