file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dblp_high.dir/bench_table4_dblp_high.cc.o"
  "CMakeFiles/bench_table4_dblp_high.dir/bench_table4_dblp_high.cc.o.d"
  "bench_table4_dblp_high"
  "bench_table4_dblp_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dblp_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
