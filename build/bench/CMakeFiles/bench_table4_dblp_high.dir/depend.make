# Empty dependencies file for bench_table4_dblp_high.
# This may be replaced when dependencies are built.
