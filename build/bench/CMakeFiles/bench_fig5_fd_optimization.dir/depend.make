# Empty dependencies file for bench_fig5_fd_optimization.
# This may be replaced when dependencies are built.
