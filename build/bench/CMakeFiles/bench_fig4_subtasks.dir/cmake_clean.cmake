file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_subtasks.dir/bench_fig4_subtasks.cc.o"
  "CMakeFiles/bench_fig4_subtasks.dir/bench_fig4_subtasks.cc.o.d"
  "bench_fig4_subtasks"
  "bench_fig4_subtasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_subtasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
