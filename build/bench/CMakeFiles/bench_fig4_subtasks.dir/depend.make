# Empty dependencies file for bench_fig4_subtasks.
# This may be replaced when dependencies are built.
