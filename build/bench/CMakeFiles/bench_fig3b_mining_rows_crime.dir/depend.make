# Empty dependencies file for bench_fig3b_mining_rows_crime.
# This may be replaced when dependencies are built.
