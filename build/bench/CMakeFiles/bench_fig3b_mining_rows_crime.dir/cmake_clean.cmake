file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_mining_rows_crime.dir/bench_fig3b_mining_rows_crime.cc.o"
  "CMakeFiles/bench_fig3b_mining_rows_crime.dir/bench_fig3b_mining_rows_crime.cc.o.d"
  "bench_fig3b_mining_rows_crime"
  "bench_fig3b_mining_rows_crime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_mining_rows_crime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
