# Empty compiler generated dependencies file for bench_fig6a_expl_dblp.
# This may be replaced when dependencies are built.
