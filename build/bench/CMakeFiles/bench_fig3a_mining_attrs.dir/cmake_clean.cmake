file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_mining_attrs.dir/bench_fig3a_mining_attrs.cc.o"
  "CMakeFiles/bench_fig3a_mining_attrs.dir/bench_fig3a_mining_attrs.cc.o.d"
  "bench_fig3a_mining_attrs"
  "bench_fig3a_mining_attrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_mining_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
