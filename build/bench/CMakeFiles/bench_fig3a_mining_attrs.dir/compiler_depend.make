# Empty compiler generated dependencies file for bench_fig3a_mining_attrs.
# This may be replaced when dependencies are built.
