file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dblp_topk.dir/bench_table3_dblp_topk.cc.o"
  "CMakeFiles/bench_table3_dblp_topk.dir/bench_table3_dblp_topk.cc.o.d"
  "bench_table3_dblp_topk"
  "bench_table3_dblp_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dblp_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
