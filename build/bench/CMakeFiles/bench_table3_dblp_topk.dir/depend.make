# Empty dependencies file for bench_table3_dblp_topk.
# This may be replaced when dependencies are built.
