# Empty compiler generated dependencies file for bench_parallel_mining.
# This may be replaced when dependencies are built.
