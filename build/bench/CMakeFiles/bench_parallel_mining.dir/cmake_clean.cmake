file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_mining.dir/bench_parallel_mining.cc.o"
  "CMakeFiles/bench_parallel_mining.dir/bench_parallel_mining.cc.o.d"
  "bench_parallel_mining"
  "bench_parallel_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
