# Empty compiler generated dependencies file for bench_fig6c_expl_uq_attrs.
# This may be replaced when dependencies are built.
