file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_expl_uq_attrs.dir/bench_fig6c_expl_uq_attrs.cc.o"
  "CMakeFiles/bench_fig6c_expl_uq_attrs.dir/bench_fig6c_expl_uq_attrs.cc.o.d"
  "bench_fig6c_expl_uq_attrs"
  "bench_fig6c_expl_uq_attrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_expl_uq_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
