# Empty compiler generated dependencies file for bench_fig6b_expl_crime.
# This may be replaced when dependencies are built.
