file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_expl_crime.dir/bench_fig6b_expl_crime.cc.o"
  "CMakeFiles/bench_fig6b_expl_crime.dir/bench_fig6b_expl_crime.cc.o.d"
  "bench_fig6b_expl_crime"
  "bench_fig6b_expl_crime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_expl_crime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
