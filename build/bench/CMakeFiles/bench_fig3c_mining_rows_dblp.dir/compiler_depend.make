# Empty compiler generated dependencies file for bench_fig3c_mining_rows_dblp.
# This may be replaced when dependencies are built.
