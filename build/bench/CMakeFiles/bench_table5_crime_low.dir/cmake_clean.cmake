file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_crime_low.dir/bench_table5_crime_low.cc.o"
  "CMakeFiles/bench_table5_crime_low.dir/bench_table5_crime_low.cc.o.d"
  "bench_table5_crime_low"
  "bench_table5_crime_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_crime_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
