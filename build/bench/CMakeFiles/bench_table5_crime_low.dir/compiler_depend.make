# Empty compiler generated dependencies file for bench_table5_crime_low.
# This may be replaced when dependencies are built.
