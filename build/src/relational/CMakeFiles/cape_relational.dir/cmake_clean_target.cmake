file(REMOVE_RECURSE
  "libcape_relational.a"
)
