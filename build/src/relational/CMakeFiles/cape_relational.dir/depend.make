# Empty dependencies file for cape_relational.
# This may be replaced when dependencies are built.
