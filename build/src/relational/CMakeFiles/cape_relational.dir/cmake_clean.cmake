file(REMOVE_RECURSE
  "CMakeFiles/cape_relational.dir/catalog.cc.o"
  "CMakeFiles/cape_relational.dir/catalog.cc.o.d"
  "CMakeFiles/cape_relational.dir/column.cc.o"
  "CMakeFiles/cape_relational.dir/column.cc.o.d"
  "CMakeFiles/cape_relational.dir/csv.cc.o"
  "CMakeFiles/cape_relational.dir/csv.cc.o.d"
  "CMakeFiles/cape_relational.dir/operators.cc.o"
  "CMakeFiles/cape_relational.dir/operators.cc.o.d"
  "CMakeFiles/cape_relational.dir/schema.cc.o"
  "CMakeFiles/cape_relational.dir/schema.cc.o.d"
  "CMakeFiles/cape_relational.dir/table.cc.o"
  "CMakeFiles/cape_relational.dir/table.cc.o.d"
  "CMakeFiles/cape_relational.dir/value.cc.o"
  "CMakeFiles/cape_relational.dir/value.cc.o.d"
  "libcape_relational.a"
  "libcape_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
