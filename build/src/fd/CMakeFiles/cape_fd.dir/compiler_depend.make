# Empty compiler generated dependencies file for cape_fd.
# This may be replaced when dependencies are built.
