file(REMOVE_RECURSE
  "libcape_fd.a"
)
