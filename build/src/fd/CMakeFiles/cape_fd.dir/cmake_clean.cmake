file(REMOVE_RECURSE
  "CMakeFiles/cape_fd.dir/fd_detector.cc.o"
  "CMakeFiles/cape_fd.dir/fd_detector.cc.o.d"
  "CMakeFiles/cape_fd.dir/fd_set.cc.o"
  "CMakeFiles/cape_fd.dir/fd_set.cc.o.d"
  "libcape_fd.a"
  "libcape_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
