# Empty compiler generated dependencies file for cape_core.
# This may be replaced when dependencies are built.
