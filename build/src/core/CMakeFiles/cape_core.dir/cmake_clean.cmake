file(REMOVE_RECURSE
  "CMakeFiles/cape_core.dir/engine.cc.o"
  "CMakeFiles/cape_core.dir/engine.cc.o.d"
  "libcape_core.a"
  "libcape_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
