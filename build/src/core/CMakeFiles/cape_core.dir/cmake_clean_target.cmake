file(REMOVE_RECURSE
  "libcape_core.a"
)
