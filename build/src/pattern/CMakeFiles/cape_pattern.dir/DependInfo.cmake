
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/miner_arp_mine.cc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_arp_mine.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_arp_mine.cc.o.d"
  "/root/repo/src/pattern/miner_cube.cc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_cube.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_cube.cc.o.d"
  "/root/repo/src/pattern/miner_naive.cc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_naive.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_naive.cc.o.d"
  "/root/repo/src/pattern/miner_share_grp.cc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_share_grp.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/miner_share_grp.cc.o.d"
  "/root/repo/src/pattern/mining_internal.cc" "src/pattern/CMakeFiles/cape_pattern.dir/mining_internal.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/mining_internal.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/pattern/CMakeFiles/cape_pattern.dir/pattern.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/pattern.cc.o.d"
  "/root/repo/src/pattern/pattern_io.cc" "src/pattern/CMakeFiles/cape_pattern.dir/pattern_io.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/pattern_io.cc.o.d"
  "/root/repo/src/pattern/pattern_set.cc" "src/pattern/CMakeFiles/cape_pattern.dir/pattern_set.cc.o" "gcc" "src/pattern/CMakeFiles/cape_pattern.dir/pattern_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/cape_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/cape_fd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
