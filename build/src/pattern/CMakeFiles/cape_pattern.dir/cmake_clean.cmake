file(REMOVE_RECURSE
  "CMakeFiles/cape_pattern.dir/miner_arp_mine.cc.o"
  "CMakeFiles/cape_pattern.dir/miner_arp_mine.cc.o.d"
  "CMakeFiles/cape_pattern.dir/miner_cube.cc.o"
  "CMakeFiles/cape_pattern.dir/miner_cube.cc.o.d"
  "CMakeFiles/cape_pattern.dir/miner_naive.cc.o"
  "CMakeFiles/cape_pattern.dir/miner_naive.cc.o.d"
  "CMakeFiles/cape_pattern.dir/miner_share_grp.cc.o"
  "CMakeFiles/cape_pattern.dir/miner_share_grp.cc.o.d"
  "CMakeFiles/cape_pattern.dir/mining_internal.cc.o"
  "CMakeFiles/cape_pattern.dir/mining_internal.cc.o.d"
  "CMakeFiles/cape_pattern.dir/pattern.cc.o"
  "CMakeFiles/cape_pattern.dir/pattern.cc.o.d"
  "CMakeFiles/cape_pattern.dir/pattern_io.cc.o"
  "CMakeFiles/cape_pattern.dir/pattern_io.cc.o.d"
  "CMakeFiles/cape_pattern.dir/pattern_set.cc.o"
  "CMakeFiles/cape_pattern.dir/pattern_set.cc.o.d"
  "libcape_pattern.a"
  "libcape_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
