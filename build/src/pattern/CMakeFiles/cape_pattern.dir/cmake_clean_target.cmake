file(REMOVE_RECURSE
  "libcape_pattern.a"
)
