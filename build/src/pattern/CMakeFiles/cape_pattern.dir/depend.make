# Empty dependencies file for cape_pattern.
# This may be replaced when dependencies are built.
