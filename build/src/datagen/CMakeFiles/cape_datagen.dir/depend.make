# Empty dependencies file for cape_datagen.
# This may be replaced when dependencies are built.
