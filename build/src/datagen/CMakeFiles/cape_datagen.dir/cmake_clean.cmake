file(REMOVE_RECURSE
  "CMakeFiles/cape_datagen.dir/crime.cc.o"
  "CMakeFiles/cape_datagen.dir/crime.cc.o.d"
  "CMakeFiles/cape_datagen.dir/dblp.cc.o"
  "CMakeFiles/cape_datagen.dir/dblp.cc.o.d"
  "CMakeFiles/cape_datagen.dir/ground_truth.cc.o"
  "CMakeFiles/cape_datagen.dir/ground_truth.cc.o.d"
  "libcape_datagen.a"
  "libcape_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
