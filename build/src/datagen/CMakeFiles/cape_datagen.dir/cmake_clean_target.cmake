file(REMOVE_RECURSE
  "libcape_datagen.a"
)
