file(REMOVE_RECURSE
  "libcape_stats.a"
)
