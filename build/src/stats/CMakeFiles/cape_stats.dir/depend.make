# Empty dependencies file for cape_stats.
# This may be replaced when dependencies are built.
