file(REMOVE_RECURSE
  "CMakeFiles/cape_stats.dir/descriptive.cc.o"
  "CMakeFiles/cape_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/cape_stats.dir/distributions.cc.o"
  "CMakeFiles/cape_stats.dir/distributions.cc.o.d"
  "CMakeFiles/cape_stats.dir/regression.cc.o"
  "CMakeFiles/cape_stats.dir/regression.cc.o.d"
  "libcape_stats.a"
  "libcape_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
