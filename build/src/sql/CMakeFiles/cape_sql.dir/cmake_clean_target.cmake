file(REMOVE_RECURSE
  "libcape_sql.a"
)
