# Empty dependencies file for cape_sql.
# This may be replaced when dependencies are built.
