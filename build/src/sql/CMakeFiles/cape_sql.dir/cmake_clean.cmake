file(REMOVE_RECURSE
  "CMakeFiles/cape_sql.dir/executor.cc.o"
  "CMakeFiles/cape_sql.dir/executor.cc.o.d"
  "CMakeFiles/cape_sql.dir/lexer.cc.o"
  "CMakeFiles/cape_sql.dir/lexer.cc.o.d"
  "CMakeFiles/cape_sql.dir/parser.cc.o"
  "CMakeFiles/cape_sql.dir/parser.cc.o.d"
  "libcape_sql.a"
  "libcape_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
