file(REMOVE_RECURSE
  "CMakeFiles/cape_common.dir/logging.cc.o"
  "CMakeFiles/cape_common.dir/logging.cc.o.d"
  "CMakeFiles/cape_common.dir/status.cc.o"
  "CMakeFiles/cape_common.dir/status.cc.o.d"
  "CMakeFiles/cape_common.dir/string_util.cc.o"
  "CMakeFiles/cape_common.dir/string_util.cc.o.d"
  "libcape_common.a"
  "libcape_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
