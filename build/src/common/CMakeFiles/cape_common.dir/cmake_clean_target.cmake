file(REMOVE_RECURSE
  "libcape_common.a"
)
