# Empty dependencies file for cape_common.
# This may be replaced when dependencies are built.
