file(REMOVE_RECURSE
  "libcape_explain.a"
)
