file(REMOVE_RECURSE
  "CMakeFiles/cape_explain.dir/baseline.cc.o"
  "CMakeFiles/cape_explain.dir/baseline.cc.o.d"
  "CMakeFiles/cape_explain.dir/distance.cc.o"
  "CMakeFiles/cape_explain.dir/distance.cc.o.d"
  "CMakeFiles/cape_explain.dir/explainer.cc.o"
  "CMakeFiles/cape_explain.dir/explainer.cc.o.d"
  "CMakeFiles/cape_explain.dir/explanation.cc.o"
  "CMakeFiles/cape_explain.dir/explanation.cc.o.d"
  "CMakeFiles/cape_explain.dir/narrative.cc.o"
  "CMakeFiles/cape_explain.dir/narrative.cc.o.d"
  "CMakeFiles/cape_explain.dir/question_finder.cc.o"
  "CMakeFiles/cape_explain.dir/question_finder.cc.o.d"
  "CMakeFiles/cape_explain.dir/user_question.cc.o"
  "CMakeFiles/cape_explain.dir/user_question.cc.o.d"
  "libcape_explain.a"
  "libcape_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cape_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
