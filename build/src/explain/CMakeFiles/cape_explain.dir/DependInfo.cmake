
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/baseline.cc" "src/explain/CMakeFiles/cape_explain.dir/baseline.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/baseline.cc.o.d"
  "/root/repo/src/explain/distance.cc" "src/explain/CMakeFiles/cape_explain.dir/distance.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/distance.cc.o.d"
  "/root/repo/src/explain/explainer.cc" "src/explain/CMakeFiles/cape_explain.dir/explainer.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/explainer.cc.o.d"
  "/root/repo/src/explain/explanation.cc" "src/explain/CMakeFiles/cape_explain.dir/explanation.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/explanation.cc.o.d"
  "/root/repo/src/explain/narrative.cc" "src/explain/CMakeFiles/cape_explain.dir/narrative.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/narrative.cc.o.d"
  "/root/repo/src/explain/question_finder.cc" "src/explain/CMakeFiles/cape_explain.dir/question_finder.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/question_finder.cc.o.d"
  "/root/repo/src/explain/user_question.cc" "src/explain/CMakeFiles/cape_explain.dir/user_question.cc.o" "gcc" "src/explain/CMakeFiles/cape_explain.dir/user_question.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/cape_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/cape_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/cape_fd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
