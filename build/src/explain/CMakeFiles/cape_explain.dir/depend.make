# Empty dependencies file for cape_explain.
# This may be replaced when dependencies are built.
