// Figure 6a: explanation-generation runtime vs. number of local patterns
// N_P (DBLP dataset) for EXPL-GEN-NAIVE vs EXPL-GEN-OPT.
//
// Expected shape: total runtime over the question batch grows linearly in
// N_P; the optimized generator beats the naive one with a margin that grows
// in N_P (the paper reports up to 35%).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "datagen/dblp.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 6a", "Explanation runtime vs N_P (DBLP) — EXPL-GEN-NAIVE vs EXPL-GEN-OPT");

  DblpOptions data;
  data.num_rows = 60000;
  data.seed = 42;
  auto table = CheckResult(GenerateDblp(data), "GenerateDblp");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.1;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.2;
  mining.global_support_threshold = 5;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  const PatternSet all_patterns = engine.patterns();
  const int64_t total_locals = all_patterns.NumLocalPatterns();
  std::printf("mined %zu global patterns, %lld local patterns\n\n", all_patterns.size(),
              static_cast<long long>(total_locals));

  // Several worst-case (large-group) questions, as in Section 5.2.
  auto questions = GenerateQuestions(table, {"author", "venue", "year"}, 6, Direction::kLow);
  auto more = GenerateQuestions(table, {"author", "year"}, 2, Direction::kHigh);
  questions.insert(questions.end(), more.begin(), more.end());
  std::printf("generated %zu user questions\n\n", questions.size());

  std::printf("%-8s %14s %14s %10s %16s\n", "N_P", "NAIVE(ms)", "OPT(ms)", "saving",
              "pairs pruned");
  for (double fraction : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    const int64_t n_p = static_cast<int64_t>(fraction * static_cast<double>(total_locals));
    PatternSet subset = all_patterns.Truncated(n_p);
    engine.SetPatterns(subset);

    double naive_ms = 0.0;
    double opt_ms = 0.0;
    int64_t pruned = 0;
    for (const UserQuestion& q : questions) {
      auto naive = CheckResult(engine.Explain(q, /*optimized=*/false), "naive");
      naive_ms += naive.profile.total_ns * 1e-6;
      auto opt = CheckResult(engine.Explain(q, /*optimized=*/true), "opt");
      opt_ms += opt.profile.total_ns * 1e-6;
      pruned += opt.profile.num_pairs_pruned;
    }
    std::printf("%-8lld %14.1f %14.1f %9.1f%% %16lld\n", static_cast<long long>(n_p),
                naive_ms, opt_ms, 100.0 * (naive_ms - opt_ms) / naive_ms,
                static_cast<long long>(pruned));
  }
  return 0;
}
