// Table 4: top-5 CAPE explanations for the `high` question
// (Q0, Pub, (AX, SIGKDD, 2012, 9), high).
//
// Expected shape (paper Table 4): a coarse low year total (the paper's
// (AX, 2013, 43)) plus low per-venue counts in 2012/2013 (TKDE 2012,
// SIGMOD 2012/2013).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dblp.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Table 4", "Top-5 CAPE explanations for (Q0, Pub, (AX, SIGKDD, 2012, 9), high)");

  DblpOptions data;
  data.num_rows = 30000;
  data.seed = 42;
  auto table = CheckResult(GenerateDblp(data), "GenerateDblp");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");

  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");

  engine.explain_config().top_k = 5;
  auto question = CheckResult(
      engine.MakeQuestion({"author", "venue", "year"},
                          {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                           Value::Int64(2012)},
                          AggFunc::kCount, "*", Direction::kHigh),
      "MakeQuestion");
  std::printf("question: %s\n\n", question.ToString().c_str());

  auto result = CheckResult(engine.Explain(question), "Explain");
  std::printf("%s\n", engine.RenderExplanations(result.explanations).c_str());
  return 0;
}
