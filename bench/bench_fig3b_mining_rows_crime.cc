// Figure 3b: ARP mining runtime vs. dataset size D (Crime dataset, A = 7).
//
// Expected shape: runtime linear in D for all three shared miners
// (aggregation and regression are both linear in D); ARP-MINE fastest,
// SHARE-GRP a few percent behind, CUBE clearly slower. NAIVE is omitted
// like in the paper.
//
// The paper sweeps to D = 1M; the default here stops at 100k so the whole
// bench suite stays runnable (set CAPE_BENCH_FULL=1 for 10k..400k).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "pattern/mining.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 3b", "Mining runtime vs #rows (Crime, A=7) — CUBE/SHARE-GRP/ARP-MINE");

  std::vector<int64_t> sizes = {10000, 25000, 50000, 100000};
  if (std::getenv("CAPE_BENCH_FULL") != nullptr) sizes.push_back(400000);

  std::printf("%-8s %12s %12s %12s %10s\n", "D", "CUBE(s)", "SHARE-GRP(s)",
              "ARP-MINE(s)", "patterns");
  for (int64_t rows : sizes) {
    CrimeOptions data;
    data.num_rows = rows;
    data.num_attrs = 7;
    data.seed = 7;
    auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
    const MiningConfig config = PaperMiningConfig();

    auto cube = CheckResult(MakeCubeMiner()->Mine(*table, config), "CUBE");
    auto share = CheckResult(MakeShareGrpMiner()->Mine(*table, config), "SHARE-GRP");
    auto arp = CheckResult(MakeArpMiner()->Mine(*table, config), "ARP-MINE");
    std::printf("%-8lld %12.2f %12.2f %12.2f %10zu\n", static_cast<long long>(rows),
                cube.profile.total_ns * 1e-9, share.profile.total_ns * 1e-9,
                arp.profile.total_ns * 1e-9, arp.patterns.size());
  }
  return 0;
}
