// Serving-layer amortization: CAPE mines ARPs once and answers many
// questions (paper Section 5's offline/online split). This harness measures
// the three ways an engine can obtain its pattern set — cold mining, a warm
// PatternCache hit, and a disk load of the binary store — and pins the
// serving contract: the warm path performs zero mining work (RunStats
// mine_ns == 0, cache_hits == 1) yet every phase returns a byte-identical
// top-k for every question. Explanations are answered through an
// ExplainSession so the cross-question memoization is exercised too.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "datagen/crime.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

namespace {

/// Full-precision rendering of one explain run (table + %.17g scores) so a
/// byte comparison catches any drifting bit.
std::string RenderRun(const Engine& engine, const ExplainResult& result) {
  std::string out = engine.RenderExplanations(result.explanations);
  for (const Explanation& e : result.explanations) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g\n", e.score);
    out += buf;
  }
  return out;
}

MiningConfig BenchMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 4;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.2;
  config.global_support_threshold = 10;
  config.agg_functions = {AggFunc::kCount};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Pattern cache", "cold mine vs warm cache vs disk load (Crime, D=30k, A=7)");
  const std::string json_path = ParseJsonPath(argc, argv);

  CrimeOptions data;
  data.num_rows = 30000;
  data.num_attrs = 7;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  auto questions =
      GenerateQuestions(table, {"primary_type", "community", "year"}, 6, Direction::kLow);
  std::printf("generated %zu user questions\n\n", questions.size());

  PatternCache cache;

  BenchJson json("pattern_cache");
  json.AddConfig("dataset", "crime");
  json.AddConfig("num_rows", static_cast<int64_t>(data.num_rows));
  json.AddConfig("num_attrs", static_cast<int64_t>(data.num_attrs));
  json.AddConfig("seed", static_cast<int64_t>(data.seed));
  json.AddConfig("num_questions", static_cast<int64_t>(questions.size()));

  std::vector<std::string> reference_runs;
  std::printf("%-10s %12s %12s %10s %10s\n", "phase", "acquire(s)", "explain(s)", "hits",
              "patterns");

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "cape_bench_pattern_cache").string();

  for (const std::string phase : {"cold", "warm", "disk"}) {
    PatternCache disk_cache;  // fresh cache for the disk phase
    Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
    engine.mining_config() = BenchMiningConfig();
    engine.set_pattern_cache(phase == "disk" ? &disk_cache : &cache);

    // Acquire the pattern set: mine (cold), hit the shared cache (warm), or
    // load the binary stores persisted by the cold phase (disk).
    Stopwatch acquire;
    if (phase == "disk") {
      const int loaded =
          CheckResult(disk_cache.LoadFromDirectory(store_dir, engine.schema(),
                                                   table->Fingerprint()),
                      "LoadFromDirectory");
      if (loaded < 1) {
        std::fprintf(stderr, "disk phase loaded %d stores, expected >= 1\n", loaded);
        return 1;
      }
    }
    CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
    const double acquire_s = acquire.ElapsedNanos() * 1e-9;

    const RunStats& stats = engine.run_stats();
    if (phase == "cold") {
      if (stats.cache_hits != 0 || stats.cache_misses != 1) {
        std::fprintf(stderr, "cold phase expected 0 hits/1 miss, got %lld/%lld\n",
                     static_cast<long long>(stats.cache_hits),
                     static_cast<long long>(stats.cache_misses));
        return 1;
      }
      CheckOk(cache.SaveToDirectory(store_dir), "SaveToDirectory");
    } else {
      // The serving contract: a warm engine does zero mining work.
      if (stats.cache_hits != 1 || stats.mine_ns != 0) {
        std::fprintf(stderr,
                     "%s phase expected cache_hits == 1 and mine_ns == 0, got "
                     "hits=%lld mine_ns=%lld\n",
                     phase.c_str(), static_cast<long long>(stats.cache_hits),
                     static_cast<long long>(stats.mine_ns));
        return 1;
      }
    }

    ExplainSession session = CheckResult(engine.MakeExplainSession(), "MakeExplainSession");
    Stopwatch explain;
    for (size_t qi = 0; qi < questions.size(); ++qi) {
      auto result = CheckResult(session.Explain(questions[qi]), "Explain");
      const std::string rendered = RenderRun(engine, result);
      if (phase == "cold") {
        reference_runs.push_back(rendered);
      } else if (rendered != reference_runs[qi]) {
        std::fprintf(stderr, "%s phase: top-k differs from cold run at question %zu\n",
                     phase.c_str(), qi);
        return 1;
      }
    }
    const double explain_s = explain.ElapsedNanos() * 1e-9;

    std::printf("%-10s %12.3f %12.3f %10lld %10lld\n", phase.c_str(), acquire_s, explain_s,
                static_cast<long long>(stats.cache_hits),
                static_cast<long long>(stats.patterns_mined));
    json.BeginResult();
    json.Add("phase", phase);
    json.Add("acquire_s", acquire_s);
    json.Add("explain_s", explain_s);
    json.Add("cache_hits", stats.cache_hits);
    json.Add("cache_misses", stats.cache_misses);
    json.Add("mine_ns", stats.mine_ns);
    json.Add("patterns", stats.patterns_mined);
    json.Add("agg_tables_cached", static_cast<int64_t>(session.num_cached_agg_tables()));
  }

  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);

  std::printf("\nwarm and disk phases: zero mining work, top-k byte-identical to cold\n");
  if (!json_path.empty()) json.Write(json_path);
  return 0;
}
