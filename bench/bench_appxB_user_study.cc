// Appendix B: the user study, reproduced with simulated analysts (the human
// study cannot be re-run in code; see DESIGN.md §4 for the substitution).
//
// Setup mirroring the paper: questions over Q = (type, location, year) on a
// crime subset. A *treatment* analyst reads CAPE's top-10 explanations and
// confirms them against the data; a *control* analyst explores with ad-hoc
// queries — modeled as scanning the question's own query result ranked by
// |deviation from average| (the natural manual strategy, identical to the
// Appendix A.2 baseline) under a fixed inspection budget.
//
// Success = a planted ground-truth counterbalance is among the tuples the
// analyst inspected. Expected shape: treatment success rate clearly above
// control, like the paper's 86/71/57% vs 71/43/0%.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "datagen/ground_truth.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

namespace {

bool ExplanationsHit(const GroundTruthCase& c, const std::vector<Explanation>& explanations,
                     int budget) {
  std::vector<std::vector<Explanation>> one = {explanations};
  std::vector<GroundTruthCase> cases = {c};
  return GroundTruthPrecision(cases, one, budget) > 0.0;
}

}  // namespace

int main() {
  Banner("Appendix B", "Simulated-analyst user study: treatment (CAPE) vs control");

  CrimeOptions data;
  data.num_rows = 25000;
  data.num_communities = 6;  // the paper restricts to 2 community areas
  data.num_types = 10;
  data.plant_scenario = false;
  data.seed = 11;
  auto base = CheckResult(GenerateCrime(data), "GenerateCrime");

  GroundTruthOptions gt_options;
  gt_options.group_by = {"primary_type", "community", "year"};
  gt_options.num_questions = 9;  // 3 questions x 3 difficulty tiers
  gt_options.counterbalances_per_question = 2;
  gt_options.min_cell_rows = 8;
  gt_options.seed = 23;
  auto injected = CheckResult(InjectGroundTruth(*base, gt_options), "InjectGroundTruth");

  Engine engine = CheckResult(Engine::FromTable(injected.table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.15;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 3;
  mining.agg_functions = {AggFunc::kCount};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  engine.explain_config().top_k = 10;

  constexpr int kInspectionBudget = 10;  // tuples an analyst can confirm in time
  int treatment_hits = 0;
  int control_hits = 0;
  std::printf("%-6s %-44s %10s %10s\n", "phi", "question", "treatment", "control");
  int index = 1;
  for (const GroundTruthCase& c : injected.cases) {
    auto cape_result = CheckResult(engine.Explain(c.question), "Explain");
    const bool treatment = ExplanationsHit(c, cape_result.explanations, kInspectionBudget);

    auto control_result = CheckResult(engine.ExplainBaseline(c.question), "Baseline");
    const bool control = ExplanationsHit(c, control_result.explanations, kInspectionBudget);

    treatment_hits += treatment ? 1 : 0;
    control_hits += control ? 1 : 0;
    std::printf("phi%-3d %-44s %10s %10s\n", index++,
                c.question.ToString().substr(0, 44).c_str(),
                treatment ? "success" : "miss", control ? "success" : "miss");
  }
  const double n = static_cast<double>(injected.cases.size());
  std::printf("\nSuccess rate: treatment (CAPE top-10) %.0f%%, control (manual) %.0f%%\n",
              100.0 * treatment_hits / n, 100.0 * control_hits / n);
  return 0;
}
