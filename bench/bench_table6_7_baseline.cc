// Tables 6 and 7: top-5 explanations from the pattern-free baseline
// (Appendix A.2) for the same two questions as Tables 4 and 5.
//
// Expected shape: the baseline prefers tuples with extreme absolute values
// regardless of whether they are unusual — low-count venues for the DBLP
// `high` question (Table 6) and the perennially-high adjacent area for the
// crime `low` question (Table 7) — illustrating why patterns matter.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "datagen/dblp.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Tables 6 & 7", "Baseline (no patterns) explanations for the Table 4/5 questions");

  {
    DblpOptions data;
    data.num_rows = 30000;
    data.seed = 42;
    auto table = CheckResult(GenerateDblp(data), "GenerateDblp");
    Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
    engine.explain_config().top_k = 5;
    auto question = CheckResult(
        engine.MakeQuestion({"author", "venue", "year"},
                            {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                             Value::Int64(2012)},
                            AggFunc::kCount, "*", Direction::kHigh),
        "MakeQuestion");
    std::printf("Table 6 — baseline for: %s\n\n", question.ToString().c_str());
    auto result = CheckResult(engine.ExplainBaseline(question), "ExplainBaseline");
    std::printf("%s\n", engine.RenderExplanations(result.explanations).c_str());
  }

  {
    CrimeOptions data;
    data.num_rows = 50000;
    data.seed = 7;
    auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
    Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
    engine.explain_config().top_k = 5;
    auto question = CheckResult(
        engine.MakeQuestion({"primary_type", "community", "year"},
                            {Value::String("Battery"), Value::Int64(26), Value::Int64(2011)},
                            AggFunc::kCount, "*", Direction::kLow),
        "MakeQuestion");
    std::printf("Table 7 — baseline for: %s\n\n", question.ToString().c_str());
    auto result = CheckResult(engine.ExplainBaseline(question), "ExplainBaseline");
    std::printf("%s\n", engine.RenderExplanations(result.explanations).c_str());
  }
  return 0;
}
