// Chaos load harness for the explanation server (DESIGN.md §13): drives a
// thousand concurrent EXPLAIN WHY sessions through the in-process
// ServerHarness, first quiet and then with failpoints firing inside the
// explanation pipeline at ~1% per scan (chaos mode, the CAPE_FAILPOINTS
// syntax). The harness *fails* — nonzero exit — unless every submitted
// request reaches exactly one terminal outcome: an answer, a truncated
// answer, or a structured rejection. Latency percentiles and the
// shed/timeout/rejection tallies go into the JSON document for
// BENCH_results.json.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "datagen/dblp.h"
#include "server/protocol.h"
#include "server/server.h"

using namespace cape;          // NOLINT
using namespace cape::bench;   // NOLINT
using namespace cape::server;  // NOLINT

namespace {

constexpr int kRequests = 1000;
constexpr int kWorkers = 8;
constexpr int64_t kWaitBudgetMs = 300000;  // hang detector, not a tuning knob

struct Collector {
  Mutex mu;
  CondVar cv;
  std::vector<Response> responses CAPE_GUARDED_BY(mu);

  RequestScheduler::ResponseCallback Callback() {
    return [this](const Response& response) {
      MutexLock lock(mu);
      responses.push_back(response);
      cv.NotifyAll();
    };
  }

  /// Waits for `n` terminal responses; false on timeout (a hung request —
  /// exactly what the chaos harness exists to catch).
  bool WaitFor(size_t n, int64_t budget_ms) CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    const Deadline deadline = Deadline::AfterMillis(budget_ms);
    while (responses.size() < n) {
      const int64_t remaining_ms = deadline.RemainingNanos() / 1000000;
      if (remaining_ms <= 0) return false;
      cv.WaitFor(mu, remaining_ms < 100 ? remaining_ms : 100);
    }
    return true;
  }
};

std::string ExplainLine(const Table& table, int64_t row, int64_t id,
                        int64_t deadline_ms) {
  const int author = table.schema()->GetFieldIndex("author");
  const int venue = table.schema()->GetFieldIndex("venue");
  const int year = table.schema()->GetFieldIndex("year");
  const Row values = table.GetRow(row);
  std::string line = "[id=" + std::to_string(id);
  if (deadline_ms > 0) line += " deadline_ms=" + std::to_string(deadline_ms);
  line += " top_k=5] EXPLAIN WHY count(*) IS ";
  line += row % 2 == 0 ? "HIGH" : "LOW";
  line += " FOR author = '" + values[author].string_value() + "'";
  line += ", venue = '" + values[venue].string_value() + "'";
  line += ", year = " + std::to_string(values[year].int64_value());
  line += " FROM pub";
  return line;
}

int64_t Percentile(std::vector<int64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

/// One storm: submits kRequests concurrent EXPLAINs (every tenth with a
/// 1 ms deadline so shedding/truncation paths stay hot), waits for all
/// terminal responses, and verifies the exactly-one-outcome invariant.
/// Returns false on any violation.
bool RunPhase(ServerHarness* harness, const Table& table, const char* phase,
              BenchJson* json) {
  Collector collector;
  Stopwatch wall;
  for (int i = 0; i < kRequests; ++i) {
    const int64_t row = (static_cast<int64_t>(i) * 37) % table.num_rows();
    const int64_t deadline_ms = i % 10 == 9 ? 1 : 20000;
    harness->CallAsync(ExplainLine(table, row, i + 1, deadline_ms),
                       collector.Callback());
  }
  if (!collector.WaitFor(kRequests, kWaitBudgetMs)) {
    std::fprintf(stderr, "[bench] %s: requests hung past %lld ms\n", phase,
                 static_cast<long long>(kWaitBudgetMs));
    return false;
  }
  const double wall_s = wall.ElapsedNanos() * 1e-9;

  std::map<Outcome, int64_t> outcomes;
  std::vector<int64_t> latencies_ms;
  std::map<int64_t, int> by_id;
  MutexLock lock(collector.mu);
  for (const Response& r : collector.responses) {
    ++outcomes[r.outcome];
    ++by_id[r.id];
    latencies_ms.push_back(r.elapsed_ms);
  }
  bool ok = true;
  if (by_id.size() != static_cast<size_t>(kRequests)) {
    std::fprintf(stderr, "[bench] %s: %zu distinct ids, expected %d\n", phase,
                 by_id.size(), kRequests);
    ok = false;
  }
  for (const auto& [id, count] : by_id) {
    if (count != 1) {
      std::fprintf(stderr, "[bench] %s: request %lld answered %d times\n", phase,
                   static_cast<long long>(id), count);
      ok = false;
    }
  }
  int64_t total = 0;
  for (const auto& [outcome, count] : outcomes) total += count;
  if (total != kRequests) {
    std::fprintf(stderr, "[bench] %s: outcome sum %lld != %d\n", phase,
                 static_cast<long long>(total), kRequests);
    ok = false;
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const int64_t p50 = Percentile(latencies_ms, 0.50);
  const int64_t p99 = Percentile(latencies_ms, 0.99);
  std::printf(
      "%-6s ok=%lld degraded=%lld truncated=%lld shed=%lld overloaded=%lld "
      "retry_after=%lld errors=%lld  p50=%lldms p99=%lldms  %.0f req/s\n",
      phase, static_cast<long long>(outcomes[Outcome::kOk]),
      static_cast<long long>(outcomes[Outcome::kDegraded]),
      static_cast<long long>(outcomes[Outcome::kTruncated]),
      static_cast<long long>(outcomes[Outcome::kShed]),
      static_cast<long long>(outcomes[Outcome::kOverloaded]),
      static_cast<long long>(outcomes[Outcome::kRetryAfter]),
      static_cast<long long>(outcomes[Outcome::kError]),
      static_cast<long long>(p50), static_cast<long long>(p99),
      static_cast<double>(kRequests) / wall_s);

  json->BeginResult();
  json->Add("phase", std::string(phase));
  json->Add("requests", static_cast<int64_t>(kRequests));
  json->Add("ok", outcomes[Outcome::kOk]);
  json->Add("degraded", outcomes[Outcome::kDegraded]);
  json->Add("truncated", outcomes[Outcome::kTruncated]);
  json->Add("shed", outcomes[Outcome::kShed]);
  json->Add("overloaded", outcomes[Outcome::kOverloaded]);
  json->Add("retry_after", outcomes[Outcome::kRetryAfter]);
  json->Add("errors", outcomes[Outcome::kError]);
  json->Add("p50_ms", p50);
  json->Add("p99_ms", p99);
  json->Add("wall_s", wall_s);
  json->Add("requests_per_s", static_cast<double>(kRequests) / wall_s);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Server chaos load",
         "1000 concurrent EXPLAIN WHY sessions, quiet then 1% failpoint chaos");
  const std::string json_path = ParseJsonPath(argc, argv);

  DblpOptions data;
  data.num_rows = 3000;
  data.seed = 5;
  auto table = CheckResult(GenerateDblp(data), "GenerateDblp");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  CheckOk(engine.MinePatterns(), "MinePatterns");
  std::printf("mined %zu patterns over %lld rows\n\n", engine.patterns().size(),
              static_cast<long long>(table->num_rows()));

  ServerOptions options;
  options.num_workers = kWorkers;
  options.scheduler.admission.max_in_system = 4096;
  options.scheduler.default_deadline_ms = 20000;
  options.scheduler.degrade_queue_depth = 64;
  options.scheduler.degraded_top_k = 3;
  ServerHarness harness(&engine, options);

  BenchJson json("server_load");
  json.AddConfig("dataset", "dblp");
  json.AddConfig("num_rows", static_cast<int64_t>(data.num_rows));
  json.AddConfig("seed", static_cast<int64_t>(data.seed));
  json.AddConfig("requests_per_phase", static_cast<int64_t>(kRequests));
  json.AddConfig("workers", static_cast<int64_t>(kWorkers));
  json.AddConfig("chaos_spec", "explain.norm=io%0.01;explain.refine=io%0.01");

  bool ok = RunPhase(&harness, *table, "quiet", &json);

  CheckOk(failpoint::ActivateFromSpec("explain.norm=io%0.01"), "arm explain.norm");
  CheckOk(failpoint::ActivateFromSpec("explain.refine=io%0.01"), "arm explain.refine");
  ok = RunPhase(&harness, *table, "chaos", &json) && ok;
  failpoint::DeactivateAll();

  harness.Shutdown();
  const RequestScheduler::Stats stats = harness.scheduler().stats();
  const int64_t terminal = stats.ok + stats.degraded + stats.truncated + stats.shed +
                           stats.overloaded + stats.retry_after + stats.errors;
  if (stats.submitted != terminal) {
    std::fprintf(stderr, "[bench] scheduler bookkeeping: submitted=%lld terminal=%lld\n",
                 static_cast<long long>(stats.submitted),
                 static_cast<long long>(terminal));
    ok = false;
  }
  std::printf("\npeak queue depth: %lld\n", static_cast<long long>(stats.peak_queued));

  if (!json_path.empty()) json.Write(json_path);
  if (!ok) {
    std::fprintf(stderr, "[bench] FAILED: a request was lost or double-answered\n");
    return 1;
  }
  std::printf("every request reached exactly one terminal outcome\n");
  return 0;
}
