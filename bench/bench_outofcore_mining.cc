// Out-of-core mining (DESIGN.md §15): streams a crime-shaped table straight
// to a columnar heap file (never materializing it), then runs NAIVE ARP
// mining with the buffer-manager cache capped at 10% of the file — the
// shape that proves mining scales past RAM. Reports generation and mining
// wall time plus the page-cache counters (hits/misses/evictions/bytes) that
// Engine::run_stats() surfaces, and fails if the scan did not actually page
// (a bench that silently ran in-memory would measure nothing).
//
// The default 10M rows writes a ~0.5 GB file and mines it through a ~50 MB
// cache; CAPE_BENCH_SMALL=1 drops to 1M rows for quick local runs.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "datagen/crime.h"
#include "storage/paged_table.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main(int argc, char** argv) {
  Banner("Out-of-core mining",
         "NAIVE over a heap-file crime table, page cache = 10% of the file");
  const std::string json_path = ParseJsonPath(argc, argv);
  const bool small = std::getenv("CAPE_BENCH_SMALL") != nullptr;

  CrimeOptions data;
  data.num_rows = small ? 1'000'000 : 10'000'000;
  data.num_attrs = 7;
  data.seed = 7;

  const std::string path =
      (std::filesystem::temp_directory_path() / "cape_bench_outofcore.cape").string();

  // Phase 1: stream the table to disk. Memory stays O(one page): the row
  // callback feeds HeapFileWriter directly, no Table is ever built.
  Stopwatch gen;
  CheckOk(GenerateCrimeToHeapFile(data, path), "GenerateCrimeToHeapFile");
  const double gen_s = gen.ElapsedNanos() * 1e-9;
  const auto file_bytes = static_cast<int64_t>(std::filesystem::file_size(path));
  const int64_t budget_bytes = file_bytes / 10;
  std::printf("generated %lld rows -> %.1f MB heap file in %.2fs (%.2f Mrows/s)\n",
              static_cast<long long>(data.num_rows), file_bytes / 1e6, gen_s,
              data.num_rows / gen_s / 1e6);

  // Phase 2: open non-resident (rows stay on disk) and mine. NAIVE is the
  // scan-heaviest miner — every candidate pattern is its own fused
  // filter/group/aggregate pass — so it exercises the cache hardest;
  // max_pattern_size=2 keeps the candidate count proportionate to one bench.
  auto table = CheckResult(OpenPagedTable(path, budget_bytes), "OpenPagedTable");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  engine.mining_config() = PaperMiningConfig();
  engine.mining_config().max_pattern_size = 2;

  Stopwatch mine;
  CheckOk(engine.MinePatterns("NAIVE"), "MinePatterns(NAIVE)");
  const double mine_s = mine.ElapsedNanos() * 1e-9;
  const RunStats stats = engine.run_stats();
  const int64_t pins = stats.page_hits + stats.page_misses;

  std::printf("mined %lld patterns in %.2fs\n",
              static_cast<long long>(engine.patterns().size()), mine_s);
  std::printf("cache: budget %.1f MB (%.0f%% of file), %lld hits / %lld misses "
              "(%.1f%% hit rate), %lld evictions, %.1f MB read, peak pinned %.2f MB\n",
              budget_bytes / 1e6, 100.0 * budget_bytes / file_bytes,
              static_cast<long long>(stats.page_hits),
              static_cast<long long>(stats.page_misses),
              pins > 0 ? 100.0 * stats.page_hits / pins : 0.0,
              static_cast<long long>(stats.page_evictions), stats.page_bytes_read / 1e6,
              stats.page_bytes_pinned / 1e6);

  // Guard rails: the run must have actually paged (misses and, with a 10%
  // budget, evictions), must have mined something, and must hold no pins.
  if (stats.page_misses == 0 || stats.page_evictions == 0) {
    std::fprintf(stderr, "bench did not exercise the page cache (misses=%lld "
                 "evictions=%lld) — paged path disabled?\n",
                 static_cast<long long>(stats.page_misses),
                 static_cast<long long>(stats.page_evictions));
    return 1;
  }
  if (engine.patterns().size() == 0 || stats.page_bytes_pinned != 0) {
    std::fprintf(stderr, "unexpected end state: %lld patterns, %lld bytes pinned\n",
                 static_cast<long long>(engine.patterns().size()),
                 static_cast<long long>(stats.page_bytes_pinned));
    return 1;
  }

  if (!json_path.empty()) {
    BenchJson json("outofcore_mining");
    json.AddConfig("dataset", "crime");
    json.AddConfig("num_rows", data.num_rows);
    json.AddConfig("num_attrs", static_cast<int64_t>(data.num_attrs));
    json.AddConfig("seed", static_cast<int64_t>(data.seed));
    json.AddConfig("max_pattern_size", static_cast<int64_t>(2));
    json.AddConfig("file_bytes", file_bytes);
    json.AddConfig("budget_bytes", budget_bytes);
    json.BeginResult();
    json.Add("phase", "generate");
    json.Add("seconds", gen_s);
    json.Add("rows_per_sec", data.num_rows / gen_s);
    json.BeginResult();
    json.Add("phase", "mine_naive");
    json.Add("seconds", mine_s);
    json.Add("patterns", static_cast<int64_t>(engine.patterns().size()));
    json.Add("page_hits", stats.page_hits);
    json.Add("page_misses", stats.page_misses);
    json.Add("page_evictions", stats.page_evictions);
    json.Add("page_bytes_read", stats.page_bytes_read);
    json.Add("hit_rate", pins > 0 ? static_cast<double>(stats.page_hits) / pins : 0.0);
    json.Write(json_path);
  }

  std::filesystem::remove(path);
  return 0;
}
