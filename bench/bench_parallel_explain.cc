// Beyond the paper: EXPL-GEN-OPT with the (P, P') scoring units partitioned
// across the shared thread pool, pruning against a shared monotone top-k
// floor (DESIGN.md §9). The rendered top-k is asserted byte-identical to the
// single-threaded run at every thread count — parallelism changes wall
// time, never answers.
//
// Wall vs CPU: wall is elapsed per-question time summed over questions; CPU
// is scoring work summed across workers. cpu/wall approximates the achieved
// parallelism and is bounded by the hardware threads actually available.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "datagen/crime.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

namespace {

/// Full-precision rendering of one explain run: the paper-style table plus
/// every score at %.17g so byte comparison catches any drifting bit.
std::string RenderRun(const Engine& engine, const ExplainResult& result) {
  std::string out = engine.RenderExplanations(result.explanations);
  for (const Explanation& e : result.explanations) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g\n", e.score);
    out += buf;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Parallel explanation",
         "EXPL-GEN-OPT wall vs CPU time by worker threads (Crime, D=30k, A=7)");
  const std::string json_path = ParseJsonPath(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u (wall speedup is bounded by this)\n\n", hw);

  CrimeOptions data;
  data.num_rows = 30000;
  data.num_attrs = 7;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 4;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.2;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  std::printf("mined %zu global patterns\n", engine.patterns().size());

  auto questions =
      GenerateQuestions(table, {"primary_type", "community", "year"}, 6, Direction::kLow);
  auto more = GenerateQuestions(table, {"primary_type", "community", "year", "month"}, 2,
                                Direction::kHigh);
  questions.insert(questions.end(), more.begin(), more.end());
  std::printf("generated %zu user questions\n\n", questions.size());

  BenchJson json("parallel_explain_opt");
  json.AddConfig("dataset", "crime");
  json.AddConfig("num_rows", static_cast<int64_t>(data.num_rows));
  json.AddConfig("num_attrs", static_cast<int64_t>(data.num_attrs));
  json.AddConfig("seed", static_cast<int64_t>(data.seed));
  json.AddConfig("num_questions", static_cast<int64_t>(questions.size()));
  json.AddConfig("hardware_threads", static_cast<int64_t>(hw));

  std::vector<std::string> reference_runs;
  double reference_seconds = 0.0;
  std::printf("%-8s %10s %10s %9s %9s %12s\n", "threads", "wall(s)", "cpu(s)", "speedup",
              "cpu/wall", "expl");
  for (int threads : {1, 2, 4, 8}) {
    engine.explain_config().num_threads = threads;
    double wall_s = 0.0;
    double cpu_s = 0.0;
    int64_t num_expl = 0;
    for (size_t qi = 0; qi < questions.size(); ++qi) {
      auto result = CheckResult(engine.Explain(questions[qi], /*optimized=*/true), "Explain");
      wall_s += result.profile.total_ns * 1e-9;
      cpu_s += result.profile.cpu_ns * 1e-9;
      num_expl += static_cast<int64_t>(result.explanations.size());
      const std::string rendered = RenderRun(engine, result);
      if (threads == 1) {
        reference_runs.push_back(rendered);
      } else if (rendered != reference_runs[qi]) {
        std::fprintf(stderr,
                     "PARALLEL MISMATCH at %d threads, question %zu: top-k differs\n",
                     threads, qi);
        return 1;
      }
    }
    if (threads == 1) reference_seconds = wall_s;
    std::printf("%-8d %10.2f %10.2f %8.2fx %9.2f %12lld\n", threads, wall_s, cpu_s,
                reference_seconds / wall_s, cpu_s / wall_s,
                static_cast<long long>(num_expl));
    json.BeginResult();
    json.Add("threads", static_cast<int64_t>(threads));
    json.Add("wall_s", wall_s);
    json.Add("cpu_s", cpu_s);
    json.Add("speedup", reference_seconds / wall_s);
    json.Add("explanations", num_expl);
  }
  std::printf("\ntop-k byte-identical across all thread counts\n");
  if (!json_path.empty()) json.Write(json_path);
  return 0;
}
