// Ablation: which part of the Section 3.5 optimization buys what?
//
// EXPL-GEN-OPT combines two prunings on top of Algorithm 1:
//   (1) pair-level: process (P, P') pairs in decreasing score-upper-bound
//       order and stop once the bound falls under the current top-k floor;
//   (2) local-level: while scanning candidate tuples, skip fragments whose
//       stored deviation bound cannot beat the floor.
// This harness measures all four combinations on the Crime workload.
//
// Expected shape: pair-level pruning provides the bulk of the saving (it
// skips whole aggregation scans); local-level pruning adds a smaller
// increment on the scanned pairs; all four variants return identical top-k
// sets (asserted).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Ablation", "EXPL-GEN-OPT pruning components (Crime)");

  CrimeOptions data;
  data.num_rows = 30000;
  data.num_attrs = 7;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 4;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.2;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  std::printf("mined %zu global patterns (%lld locals)\n\n", engine.patterns().size(),
              static_cast<long long>(engine.patterns().NumLocalPatterns()));

  auto questions =
      GenerateQuestions(table, {"primary_type", "community", "year"}, 6, Direction::kLow);

  struct Variant {
    const char* name;
    bool optimized;
    bool prune_pairs;
    bool prune_locals;
  };
  const std::vector<Variant> variants = {
      {"naive (no pruning)", false, false, false},
      {"opt: pairs only", true, true, false},
      {"opt: locals only", true, false, true},
      {"opt: pairs + locals", true, true, true},
  };

  std::vector<double> reference_scores;
  std::printf("%-22s %12s %16s %14s\n", "variant", "time(ms)", "tuples checked",
              "pairs pruned");
  for (const Variant& variant : variants) {
    engine.explain_config().prune_pairs = variant.prune_pairs;
    engine.explain_config().prune_locals = variant.prune_locals;
    double total_ms = 0.0;
    int64_t tuples = 0;
    int64_t pruned = 0;
    std::vector<double> scores;
    for (const UserQuestion& q : questions) {
      auto result = CheckResult(engine.Explain(q, variant.optimized), "Explain");
      total_ms += result.profile.total_ns * 1e-6;
      tuples += result.profile.num_tuples_checked;
      pruned += result.profile.num_pairs_pruned;
      for (const Explanation& e : result.explanations) scores.push_back(e.score);
    }
    std::printf("%-22s %12.1f %16lld %14lld\n", variant.name, total_ms,
                static_cast<long long>(tuples), static_cast<long long>(pruned));
    if (reference_scores.empty()) {
      reference_scores = scores;
    } else {
      if (scores.size() != reference_scores.size()) {
        std::fprintf(stderr, "ABLATION MISMATCH: %zu vs %zu explanations\n",
                     scores.size(), reference_scores.size());
        return 1;
      }
      for (size_t i = 0; i < scores.size(); ++i) {
        if (std::fabs(scores[i] - reference_scores[i]) > 1e-9) {
          std::fprintf(stderr, "ABLATION MISMATCH at %zu: %.12f vs %.12f\n", i,
                       scores[i], reference_scores[i]);
          return 1;
        }
      }
    }
  }
  std::printf("\nall variants returned identical top-k score sequences\n");
  return 0;
}
