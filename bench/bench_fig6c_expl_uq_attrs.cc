// Figure 6c: explanation-generation runtime vs. the number of group-by
// attributes in the user question, A_phi (Crime dataset).
//
// Expected shape: more group-by attributes make more patterns relevant and
// more refinements applicable, so runtime grows with A_phi; OPT stays ahead
// of NAIVE throughout.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 6c", "Explanation runtime vs #UQ group-by attributes A_phi (Crime)");

  CrimeOptions data;
  data.num_rows = 15000;
  data.num_attrs = 9;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 4;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.2;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  std::printf("mined %zu global patterns (%lld locals)\n\n", engine.patterns().size(),
              static_cast<long long>(engine.patterns().NumLocalPatterns()));

  // Group-by attribute lists of increasing width (2..8).
  const std::vector<std::string> attr_order = {"primary_type", "community", "year",
                                               "month",        "district",  "location_desc",
                                               "arrest",       "beat"};
  std::printf("%-6s %12s %12s %14s %14s\n", "A_phi", "NAIVE(ms)", "OPT(ms)",
              "relevant", "pairs");
  for (size_t width = 2; width <= attr_order.size(); ++width) {
    std::vector<std::string> group_by(attr_order.begin(),
                                      attr_order.begin() + static_cast<long>(width));
    auto questions = GenerateQuestions(table, group_by, 3, Direction::kLow);
    if (questions.empty()) continue;

    double naive_ms = 0.0;
    double opt_ms = 0.0;
    int64_t relevant = 0;
    int64_t pairs = 0;
    for (const UserQuestion& q : questions) {
      auto naive = CheckResult(engine.Explain(q, /*optimized=*/false), "naive");
      naive_ms += naive.profile.total_ns * 1e-6;
      auto opt = CheckResult(engine.Explain(q, /*optimized=*/true), "opt");
      opt_ms += opt.profile.total_ns * 1e-6;
      relevant += opt.profile.num_relevant_patterns;
      pairs += opt.profile.num_refinement_pairs;
    }
    std::printf("%-6zu %12.1f %12.1f %14lld %14lld\n", width, naive_ms, opt_ms,
                static_cast<long long>(relevant), static_cast<long long>(pairs));
  }
  return 0;
}
