// Table 3: top-10 CAPE explanations for phi0 = "why is the number of AX's
// SIGKDD 2007 publications low?" on the (synthetic) DBLP dataset.
//
// Expected shape (paper Table 3): same-year other-venue spikes (ICDE 2007,
// ICDM 2007) near the top, adjacent-year venue spikes below them, and a
// coarser year-level tuple (the paper's (AX, 2010, 63)) near the bottom.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dblp.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Table 3", "Top-10 CAPE explanations for phi0 = (Q0, Pub, (AX, SIGKDD, 2007, 1), low)");

  DblpOptions data;
  data.num_rows = 30000;
  data.seed = 42;
  auto table = CheckResult(GenerateDblp(data), "GenerateDblp");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");

  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  std::printf("mined %zu global patterns (%lld locals) in %.1f ms\n\n",
              engine.patterns().size(),
              static_cast<long long>(engine.patterns().NumLocalPatterns()),
              engine.mining_profile().total_ns * 1e-6);

  auto question = CheckResult(
      engine.MakeQuestion({"author", "venue", "year"},
                          {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                           Value::Int64(2007)},
                          AggFunc::kCount, "*", Direction::kLow),
      "MakeQuestion");
  std::printf("question: %s\n\n", question.ToString().c_str());

  auto result = CheckResult(engine.Explain(question), "Explain");
  std::printf("%s\n", engine.RenderExplanations(result.explanations).c_str());
  std::printf("explanation generation: %.1f ms, %lld candidates checked\n",
              result.profile.total_ns * 1e-6,
              static_cast<long long>(result.profile.num_tuples_checked));
  return 0;
}
