// Figure 3a: ARP mining runtime vs. number of attributes A (Crime dataset,
// D = 10k, psi = 4, theta = 0.5, lambda = 0.5, delta = 15, Delta = 15).
//
// Expected shape: runtime grows ~A^4 (the candidate count with psi = 4);
// NAIVE is orders of magnitude slower than the shared miners (the paper
// reports 18,000 s at A = 7 and omits the point); ARP-MINE <= SHARE-GRP,
// both beat CUBE with a margin that grows in A.
//
// NAIVE is run only for A <= kNaiveMaxAttrs to keep the harness runnable;
// set CAPE_BENCH_FULL=1 to extend the sweep to A = 11.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "pattern/mining.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main(int argc, char** argv) {
  Banner("Figure 3a", "Mining runtime vs #attributes (Crime, D=10k) — NAIVE/CUBE/SHARE-GRP/ARP-MINE");

  const std::string json_path = ParseJsonPath(argc, argv);
  BenchJson json("fig3a_mining_attrs");

  const bool full = std::getenv("CAPE_BENCH_FULL") != nullptr;
  const int max_attrs = full ? 11 : 9;
  constexpr int kNaiveMaxAttrs = 5;
  json.AddConfig("dataset", "crime");
  json.AddConfig("num_rows", static_cast<int64_t>(10000));
  json.AddConfig("max_attrs", static_cast<int64_t>(max_attrs));
  json.AddConfig("dictionary_kernels",
                 static_cast<int64_t>(DictionaryKernelsEnabled() ? 1 : 0));

  std::printf("%-4s %12s %12s %12s %12s %10s\n", "A", "NAIVE(s)", "CUBE(s)",
              "SHARE-GRP(s)", "ARP-MINE(s)", "patterns");
  for (int attrs = 4; attrs <= max_attrs; ++attrs) {
    CrimeOptions data;
    data.num_rows = 10000;
    data.num_attrs = attrs;
    data.seed = 7;
    auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
    const MiningConfig config = PaperMiningConfig();

    double naive_s = -1.0;
    if (attrs <= kNaiveMaxAttrs) {
      auto result = CheckResult(MakeNaiveMiner()->Mine(*table, config), "NAIVE");
      naive_s = result.profile.total_ns * 1e-9;
    }
    auto cube = CheckResult(MakeCubeMiner()->Mine(*table, config), "CUBE");
    auto share = CheckResult(MakeShareGrpMiner()->Mine(*table, config), "SHARE-GRP");
    auto arp = CheckResult(MakeArpMiner()->Mine(*table, config), "ARP-MINE");

    char naive_buf[32];
    if (naive_s >= 0) {
      std::snprintf(naive_buf, sizeof(naive_buf), "%.2f", naive_s);
    } else {
      std::snprintf(naive_buf, sizeof(naive_buf), "(omitted)");
    }
    std::printf("%-4d %12s %12.2f %12.2f %12.2f %10zu\n", attrs, naive_buf,
                cube.profile.total_ns * 1e-9, share.profile.total_ns * 1e-9,
                arp.profile.total_ns * 1e-9, arp.patterns.size());

    json.BeginResult();
    json.Add("num_attrs", static_cast<int64_t>(attrs));
    if (naive_s >= 0) json.Add("naive_s", naive_s);
    json.Add("cube_s", cube.profile.total_ns * 1e-9);
    json.Add("share_grp_s", share.profile.total_ns * 1e-9);
    json.Add("arp_mine_s", arp.profile.total_ns * 1e-9);
    json.Add("patterns", static_cast<int64_t>(arp.patterns.size()));
  }
  if (!full) {
    std::printf("\n(set CAPE_BENCH_FULL=1 to extend the sweep to A=11)\n");
  }
  if (!json_path.empty()) json.Write(json_path);
  return 0;
}
