// Figure 5: ARP-MINE with and without the functional-dependency
// optimizations (Appendix D) on the Crime dataset with A = 9, which carries
// planted FDs (community -> district, community -> ward, beat -> community).
//
// Expected shape: activating the FD optimizations improves runtime by
// roughly 20-50% (the paper reports 18-53%), and every pattern pruned is
// redundant (implied by an un-pruned pattern).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "pattern/mining.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 5", "ARP-MINE with/without FD optimizations (Crime, A=9)");

  std::vector<int64_t> sizes = {10000, 20000, 40000};
  if (std::getenv("CAPE_BENCH_FULL") != nullptr) sizes.push_back(160000);

  // Use beat/ward/district attributes (positions 7/8 need num_attrs >= 9).
  std::printf("%-8s %14s %14s %10s %14s %14s\n", "D", "no-FD(s)", "FD(s)", "saving",
              "patterns(noFD)", "skipped-cands");
  for (int64_t rows : sizes) {
    CrimeOptions data;
    data.num_rows = rows;
    data.num_attrs = 9;
    data.seed = 7;
    auto table = CheckResult(GenerateCrime(data), "GenerateCrime");

    MiningConfig config = PaperMiningConfig();
    config.use_fd_optimizations = false;
    auto without = CheckResult(MakeArpMiner()->Mine(*table, config), "no-fd");
    config.use_fd_optimizations = true;
    auto with = CheckResult(MakeArpMiner()->Mine(*table, config), "fd");

    const double no_fd_s = without.profile.total_ns * 1e-9;
    const double fd_s = with.profile.total_ns * 1e-9;
    std::printf("%-8lld %14.2f %14.2f %9.1f%% %14zu %14lld\n",
                static_cast<long long>(rows), no_fd_s, fd_s,
                100.0 * (no_fd_s - fd_s) / no_fd_s, without.patterns.size(),
                static_cast<long long>(with.profile.num_candidates_skipped_fd));
  }
  std::printf("\nFDs discovered at D=%lld: run with the detector enabled prunes\n"
              "augmented patterns (Appendix D) in addition to saving time.\n",
              static_cast<long long>(sizes.front()));
  return 0;
}
