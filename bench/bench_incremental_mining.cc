// Incremental maintenance vs from-scratch mining (DESIGN.md §16): mines a
// crime-shaped base table, appends a small batch through
// Engine::AppendAndRemine (PatternMaintainer folds only the delta and
// re-fits only touched fragments), and compares the wall time against a
// cold ARP-MINE of the full table. The maintained pattern set must be
// byte-identical to the scratch set — a faster-but-different result would
// measure nothing — so the bench fails hard on any serialization mismatch.
//
// Expected shape: speedup grows as the append shrinks relative to the
// table, because the maintenance cost is dominated by re-fitting the
// fragments the delta touches, not by the table size. At the paper-scale
// 1M sweep (CAPE_BENCH_FULL=1) the 1% append clears 5x over scratch; the
// default 250k quick mode lands lower at 1% (~3-4x) because the scratch
// baseline shrinks faster than the per-batch fold floor.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "datagen/crime.h"
#include "pattern/pattern_io.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

namespace {

/// Prefix copy via row appends: the grown engines append the tail rows one
/// batch at a time, so the scratch twin must build its dictionaries in the
/// same first-seen order for the serialized sets to be comparable bytes.
TablePtr PrefixTable(const Table& pool, int64_t size) {
  auto table = std::make_shared<Table>(pool.schema());
  table->Reserve(size);
  for (int64_t r = 0; r < size; ++r) {
    CheckOk(table->AppendRow(pool.GetRow(r)), "AppendRow");
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Incremental mining",
         "AppendAndRemine vs from-scratch ARP-MINE (Crime, A=7) — byte-identical");
  const std::string json_path = ParseJsonPath(argc, argv);

  CrimeOptions data;
  data.num_rows = std::getenv("CAPE_BENCH_FULL") != nullptr ? 1'000'000 : 250'000;
  data.num_attrs = 7;
  data.seed = 7;
  auto pool = CheckResult(GenerateCrime(data), "GenerateCrime");
  const int64_t n = pool->num_rows();

  MiningConfig config = PaperMiningConfig();
  config.max_pattern_size = 3;

  // One scratch mine serves every append size: each run grows the same
  // prefix-ordered pool to the same n rows, so the final content (and its
  // dictionaries) is identical across deltas.
  auto scratch_table = PrefixTable(*pool, n);
  Engine scratch = CheckResult(Engine::FromTable(scratch_table), "Engine::FromTable");
  scratch.mining_config() = config;
  Stopwatch scratch_clock;
  CheckOk(scratch.MinePatterns("ARP-MINE"), "scratch MinePatterns");
  const double scratch_s = scratch_clock.ElapsedNanos() * 1e-9;
  const std::string scratch_bytes =
      SerializePatternSet(scratch.patterns(), scratch.schema());
  std::printf("scratch ARP-MINE of %lld rows: %.3fs, %zu patterns\n\n",
              static_cast<long long>(n), scratch_s, scratch.patterns().size());

  BenchJson json("bench_incremental_mining");
  json.AddConfig("dataset", "crime");
  json.AddConfig("rows", n);
  json.AddConfig("num_attrs", static_cast<int64_t>(data.num_attrs));
  json.AddConfig("max_pattern_size", static_cast<int64_t>(config.max_pattern_size));
  json.AddConfig("scratch_s", scratch_s);

  std::printf("%-10s %14s %14s %10s %10s\n", "delta", "warmup(s)", "append(s)",
              "speedup", "identical");
  const std::vector<int64_t> deltas = {1, n / 1000, n / 100};
  for (int64_t delta : deltas) {
    // Steady state, not cold start: the first AppendAndRemine builds the
    // maintainer (a full-table absorb — comparable to a mine), so a one-row
    // warmup append pays that once and the timed append measures what a
    // live server pays per batch. Base + warmup + delta = the same n rows
    // in the same order as the scratch twin.
    Engine engine =
        CheckResult(Engine::FromTable(PrefixTable(*pool, n - delta - 1)), "FromTable");
    engine.mining_config() = config;
    CheckOk(engine.MinePatterns("ARP-MINE"), "initial MinePatterns");
    Stopwatch warmup_clock;
    CheckOk(engine.AppendAndRemine({pool->GetRow(n - delta - 1)}), "warmup append");
    const double warmup_s = warmup_clock.ElapsedNanos() * 1e-9;

    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(delta));
    for (int64_t r = n - delta; r < n; ++r) rows.push_back(pool->GetRow(r));
    Stopwatch append_clock;
    CheckOk(engine.AppendAndRemine(rows), "AppendAndRemine");
    const double append_s = append_clock.ElapsedNanos() * 1e-9;

    const bool identical =
        SerializePatternSet(engine.patterns(), engine.schema()) == scratch_bytes;
    const double speedup = append_s > 0 ? scratch_s / append_s : 0.0;
    std::printf("%-10lld %14.3f %14.3f %9.1fx %10s\n", static_cast<long long>(delta),
                warmup_s, append_s, speedup, identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "[bench] maintained pattern set diverged from scratch at "
                   "delta=%lld — incremental maintenance is broken\n",
                   static_cast<long long>(delta));
      return 1;
    }
    if (engine.run_stats().maint_full_remines != 0) {
      std::fprintf(stderr,
                   "[bench] maintenance degraded to a full re-mine at delta=%lld — "
                   "the measurement is not of the incremental path\n",
                   static_cast<long long>(delta));
      return 1;
    }

    json.BeginResult();
    json.Add("delta_rows", delta);
    json.Add("maintainer_build_s", warmup_s);
    json.Add("incremental_s", append_s);
    json.Add("speedup_vs_scratch", speedup);
    json.Add("patterns", static_cast<int64_t>(engine.patterns().size()));
    json.Add("fragments_refit", engine.run_stats().maint_patterns_revalidated);
    json.Add("byte_identical", static_cast<int64_t>(identical ? 1 : 0));
  }

  if (!json_path.empty()) json.Write(json_path);
  return 0;
}
