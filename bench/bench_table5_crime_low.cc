// Table 5: top-5 CAPE explanations for phi1 = (Q_Crime,
// (Battery, 26, 2011, low)) on the (synthetic) Chicago crime dataset.
//
// Expected shape (paper Table 5): the 2012 spike in area 26 (total and
// Battery-specific), the adjacent area 25 Battery spike in 2011, and the
// Assault spike in area 26 in 2011.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/crime.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Table 5", "Top-5 CAPE explanations for phi1 = (Q_Crime, (Battery, 26, 2011), low)");

  CrimeOptions data;
  data.num_rows = 50000;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");

  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.15;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 5;
  mining.agg_functions = {AggFunc::kCount};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  std::printf("mined %zu global patterns in %.1f ms\n\n", engine.patterns().size(),
              engine.mining_profile().total_ns * 1e-6);

  engine.explain_config().top_k = 5;
  auto question = CheckResult(
      engine.MakeQuestion({"primary_type", "community", "year"},
                          {Value::String("Battery"), Value::Int64(26), Value::Int64(2011)},
                          AggFunc::kCount, "*", Direction::kLow),
      "MakeQuestion");
  std::printf("question: %s\n\n", question.ToString().c_str());

  auto result = CheckResult(engine.Explain(question), "Explain");
  std::printf("%s\n", engine.RenderExplanations(result.explanations).c_str());
  return 0;
}
