// Micro-benchmarks (google-benchmark) for the substrate operators the
// mining/explanation costs are built from: hash group-by, multi-key sort,
// CUBE, selection, CSV ingest, regression fitting, and the chi-square CDF.
// The *Legacy variants run the same operator with dictionary kernels
// disabled, giving an in-binary A/B of the code-path win (DESIGN.md §10).
//
// `bench_micro_engine --smoke` skips benchmarking and instead runs a fast
// correctness pass over the kernel paths (dictionary vs legacy output
// equality, CSV quarantine hygiene); ctest wires this into tier-1.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <string>

#include "datagen/crime.h"
#include "relational/csv.h"
#include "relational/kernels.h"
#include "relational/operators.h"
#include "stats/distributions.h"
#include "stats/regression.h"

namespace cape {
namespace {

TablePtr BenchTable(int64_t rows) {
  CrimeOptions options;
  options.num_rows = rows;
  options.num_attrs = 7;
  options.seed = 3;
  auto table = GenerateCrime(options);
  return table.ok() ? *table : nullptr;
}

/// Flips the dictionary-kernel switch for one benchmark run.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(bool enabled) : saved_(DictionaryKernelsEnabled()) {
    SetDictionaryKernelsEnabled(enabled);
  }
  ~KernelModeGuard() { SetDictionaryKernelsEnabled(saved_); }

 private:
  bool saved_;
};

/// Flips the block/morsel vectorized-kernel switch for one benchmark run.
class VectorizedModeGuard {
 public:
  explicit VectorizedModeGuard(bool enabled) : saved_(VectorizedKernelsEnabled()) {
    SetVectorizedKernelsEnabled(enabled);
  }
  ~VectorizedModeGuard() { SetVectorizedKernelsEnabled(saved_); }

 private:
  bool saved_;
};

void RunGroupByAggregate(benchmark::State& state, bool dictionary) {
  KernelModeGuard guard(dictionary);
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                                   {AggregateSpec::CountStar("cnt")});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GroupByAggregate(benchmark::State& state) { RunGroupByAggregate(state, true); }
BENCHMARK(BM_GroupByAggregate)->Arg(10000)->Arg(100000);

void BM_GroupByAggregateLegacy(benchmark::State& state) {
  RunGroupByAggregate(state, false);
}
BENCHMARK(BM_GroupByAggregateLegacy)->Arg(10000)->Arg(100000);

void RunSortTable(benchmark::State& state, bool dictionary) {
  KernelModeGuard guard(dictionary);
  auto table = BenchTable(state.range(0));
  auto grouped = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                                  {AggregateSpec::CountStar("cnt")});
  for (auto _ : state) {
    auto result = SortTable(**grouped, {SortKey{0, true}, SortKey{1, true}});
    benchmark::DoNotOptimize(result);
  }
}

void BM_SortTable(benchmark::State& state) { RunSortTable(state, true); }
BENCHMARK(BM_SortTable)->Arg(10000)->Arg(100000);

void BM_SortTableLegacy(benchmark::State& state) { RunSortTable(state, false); }
BENCHMARK(BM_SortTableLegacy)->Arg(10000)->Arg(100000);

void RunCube(benchmark::State& state, bool dictionary) {
  KernelModeGuard guard(dictionary);
  auto table = BenchTable(10000);
  CubeOptions options;
  options.min_group_size = 2;
  options.max_group_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = Cube(*table, {0, 1, 2, 3, 4}, {AggregateSpec::CountStar("cnt")}, options);
    benchmark::DoNotOptimize(result);
  }
}

void BM_Cube(benchmark::State& state) { RunCube(state, true); }
BENCHMARK(BM_Cube)->Arg(2)->Arg(3)->Arg(4);

void BM_CubeLegacy(benchmark::State& state) { RunCube(state, false); }
BENCHMARK(BM_CubeLegacy)->Arg(3);

void RunFilterEquals(benchmark::State& state, bool dictionary) {
  KernelModeGuard guard(dictionary);
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = FilterEquals(*table, {{0, Value::String("Battery")}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FilterEquals(benchmark::State& state) { RunFilterEquals(state, true); }
BENCHMARK(BM_FilterEquals)->Arg(10000)->Arg(100000);

void BM_FilterEqualsLegacy(benchmark::State& state) { RunFilterEquals(state, false); }
BENCHMARK(BM_FilterEqualsLegacy)->Arg(10000)->Arg(100000);

void BM_FilterEqualsAbsent(benchmark::State& state) {
  // Condition value outside every dictionary: the kernel proves emptiness
  // without a scan (legacy mode scans the whole table for zero matches).
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = FilterEquals(*table, {{0, Value::String("__absent__")}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterEqualsAbsent)->Arg(100000);

// --- Block/morsel vectorized kernel A/Bs (DESIGN.md §14). The *RowAtATime
// variants run the identical query with SetVectorizedKernelsEnabled(false),
// so each pair isolates one kernel's win over the legacy scan.

void RunFilterKernel(benchmark::State& state, bool vectorized) {
  // Pure selection kernel: count matching rows without materializing — the
  // existence/cardinality probe shape. Vectorized mode counts off the block
  // masks; legacy mode scans with RowEqualityMatcher.
  VectorizedModeGuard guard(vectorized);
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = CountFilterMatches(*table, {{0, Value::String("Battery")}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FilterKernel(benchmark::State& state) { RunFilterKernel(state, true); }
BENCHMARK(BM_FilterKernel)->Arg(10000)->Arg(100000);

void BM_FilterKernelRowAtATime(benchmark::State& state) {
  RunFilterKernel(state, false);
}
BENCHMARK(BM_FilterKernelRowAtATime)->Arg(10000)->Arg(100000);

void RunGroupBuildKernel(benchmark::State& state, bool vectorized) {
  // Dense group-key build + aggregate update over the whole table: the
  // vectorized path packs mixed-radix keys block-at-a-time.
  VectorizedModeGuard guard(vectorized);
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                                   {AggregateSpec::CountStar("cnt")});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GroupBuildKernel(benchmark::State& state) { RunGroupBuildKernel(state, true); }
BENCHMARK(BM_GroupBuildKernel)->Arg(10000)->Arg(100000);

void BM_GroupBuildKernelRowAtATime(benchmark::State& state) {
  RunGroupBuildKernel(state, false);
}
BENCHMARK(BM_GroupBuildKernelRowAtATime)->Arg(10000)->Arg(100000);

void RunFusedFilterGroupAggregate(benchmark::State& state, bool vectorized) {
  // The retrieval-query shape γ_{V,agg}(σ_{F=f}(R)) the miners and explainers
  // issue per fragment. Vectorized mode fuses the pass; the legacy mode is
  // the materializing FilterEquals → GroupByAggregate composition.
  VectorizedModeGuard guard(vectorized);
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = FilterGroupAggregate(*table, {{0, Value::String("Battery")}},
                                       std::vector<int>{1, 2},
                                       {AggregateSpec::CountStar("cnt")});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FusedFilterGroupAggregate(benchmark::State& state) {
  RunFusedFilterGroupAggregate(state, true);
}
BENCHMARK(BM_FusedFilterGroupAggregate)->Arg(10000)->Arg(100000);

void BM_FusedFilterGroupAggregateComposed(benchmark::State& state) {
  RunFusedFilterGroupAggregate(state, false);
}
BENCHMARK(BM_FusedFilterGroupAggregateComposed)->Arg(10000)->Arg(100000);

void BM_CsvIngest(benchmark::State& state) {
  // Round-trips the generated table through CSV text so the benchmark
  // measures parse + typed append + dictionary build, not disk.
  auto table = BenchTable(state.range(0));
  const std::string text = WriteCsvString(*table);
  for (auto _ : state) {
    auto result = ReadCsvString(text);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CsvIngest)->Arg(10000)->Arg(100000);

void BM_ConstantRegression(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::poisson_distribution<int> pois(20);
  std::vector<double> y;
  for (int64_t i = 0; i < state.range(0); ++i) y.push_back(pois(rng));
  for (auto _ : state) {
    auto model = ConstantRegression::Fit(y);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConstantRegression)->Arg(16)->Arg(256)->Arg(4096);

void BM_LinearRegression(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int64_t i = 0; i < state.range(0); ++i) {
    X.push_back({static_cast<double>(i), static_cast<double>(i % 12)});
    y.push_back(0.3 * static_cast<double>(i) + noise(rng));
  }
  for (auto _ : state) {
    auto model = LinearRegression::Fit(X, y);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinearRegression)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChiSquareSf(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChiSquareSf(x, 16.0));
    x += 0.1;
    if (x > 60.0) x = 0.1;
  }
}
BENCHMARK(BM_ChiSquareSf);

/// --smoke: fast correctness pass over the kernel paths, suitable for ctest.
/// Returns the process exit code.
int RunSmoke() {
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("%-60s %s\n", what, ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  };

  auto table = BenchTable(4000);
  check(table != nullptr, "generate crime table");
  if (table == nullptr) return 1;

  // Dictionary and legacy kernels must produce byte-identical operator
  // output (the same invariant determinism_test pins for the full pipeline).
  std::string grouped[2], sorted[2], filtered[2], cubed[2], distinct[2];
  for (int mode = 0; mode < 2; ++mode) {
    KernelModeGuard guard(mode == 0);
    auto g = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                              {AggregateSpec::CountStar("cnt")});
    auto s = g.ok() ? SortTable(**g, {SortKey{0, true}, SortKey{1, false}})
                    : Result<TablePtr>(g.status());
    auto f = FilterEquals(*table, {{0, Value::String("Battery")}, {1, Value::String("Street")}});
    CubeOptions copts;
    copts.min_group_size = 1;
    copts.max_group_size = 2;
    auto c = Cube(*table, {0, 1, 2}, {AggregateSpec::CountStar("cnt")}, copts);
    auto d = ProjectDistinct(*table, {0, 1});
    if (!g.ok() || !s.ok() || !f.ok() || !c.ok() || !d.ok()) {
      check(false, "operators run without error");
      return 1;
    }
    grouped[mode] = WriteCsvString(**g);
    sorted[mode] = WriteCsvString(**s);
    filtered[mode] = WriteCsvString(**f);
    cubed[mode] = WriteCsvString(**c);
    distinct[mode] = WriteCsvString(**d);
  }
  check(grouped[0] == grouped[1], "group-by: dictionary == legacy");
  check(sorted[0] == sorted[1], "sort: dictionary == legacy");
  check(filtered[0] == filtered[1], "filter: dictionary == legacy");
  check(cubed[0] == cubed[1], "cube: dictionary == legacy");
  check(distinct[0] == distinct[1], "distinct: dictionary == legacy");

  // Vectorized and row-at-a-time kernels must also produce byte-identical
  // output, and the fused pass must equal its two-operator definition.
  std::string vec_filtered[2], vec_grouped[2], vec_fused[2];
  int64_t vec_count[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    VectorizedModeGuard guard(mode == 0);
    const std::vector<std::pair<int, Value>> conditions = {{0, Value::String("Battery")}};
    auto f = FilterEquals(*table, conditions);
    auto g = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                              {AggregateSpec::CountStar("cnt")});
    auto fused = FilterGroupAggregate(*table, conditions, std::vector<int>{1, 2},
                                      {AggregateSpec::CountStar("cnt")});
    auto n = CountFilterMatches(*table, conditions);
    if (!f.ok() || !g.ok() || !fused.ok() || !n.ok()) {
      check(false, "vectorized kernels run without error");
      return 1;
    }
    vec_filtered[mode] = WriteCsvString(**f);
    vec_grouped[mode] = WriteCsvString(**g);
    vec_fused[mode] = WriteCsvString(**fused);
    vec_count[mode] = *n;
  }
  check(vec_filtered[0] == vec_filtered[1], "filter: vectorized == row-at-a-time");
  check(vec_grouped[0] == vec_grouped[1], "group-by: vectorized == row-at-a-time");
  check(vec_fused[0] == vec_fused[1], "fused filter+group: vectorized == composed");
  check(vec_count[0] == vec_count[1], "count probe: vectorized == row-at-a-time");

  // Absent-value selections short-circuit to the same (empty) answer.
  auto absent = FilterEquals(*table, {{0, Value::String("__absent__")}});
  check(absent.ok() && (*absent)->num_rows() == 0, "absent value selects empty");

  // CSV ingest round-trip preserves content, and quarantined rows leave no
  // trace in the dictionaries.
  const std::string text = WriteCsvString(*table);
  auto reread = ReadCsvString(text);
  check(reread.ok() && WriteCsvString(**reread) == text, "csv ingest round-trip");
  CsvReadOptions qopts;
  qopts.schema = Schema::Make({Field{"name", DataType::kString, true},
                               Field{"year", DataType::kInt64, true}});
  qopts.quarantine_malformed = true;
  CsvParseReport report;
  auto quarantined = ReadCsvString("name,year\nAX,2007\nGHOST,bad\n", qopts, &report);
  check(quarantined.ok() && report.num_rows_quarantined == 1 &&
            (*quarantined)->column(0).FindCode("GHOST") == Column::kNullCode,
        "quarantined rows do not pollute dictionaries");

  std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cape

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return cape::RunSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
