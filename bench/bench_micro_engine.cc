// Micro-benchmarks (google-benchmark) for the substrate operators the
// mining/explanation costs are built from: hash group-by, multi-key sort,
// CUBE, selection, regression fitting, and the chi-square CDF.

#include <benchmark/benchmark.h>

#include <random>

#include "datagen/crime.h"
#include "relational/operators.h"
#include "stats/distributions.h"
#include "stats/regression.h"

namespace cape {
namespace {

TablePtr BenchTable(int64_t rows) {
  CrimeOptions options;
  options.num_rows = rows;
  options.num_attrs = 7;
  options.seed = 3;
  auto table = GenerateCrime(options);
  return table.ok() ? *table : nullptr;
}

void BM_GroupByAggregate(benchmark::State& state) {
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                                   {AggregateSpec::CountStar("cnt")});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAggregate)->Arg(10000)->Arg(100000);

void BM_SortTable(benchmark::State& state) {
  auto table = BenchTable(state.range(0));
  auto grouped = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                                  {AggregateSpec::CountStar("cnt")});
  for (auto _ : state) {
    auto result = SortTable(**grouped, {SortKey{0, true}, SortKey{1, true}});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SortTable)->Arg(10000)->Arg(100000);

void BM_Cube(benchmark::State& state) {
  auto table = BenchTable(10000);
  CubeOptions options;
  options.min_group_size = 2;
  options.max_group_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = Cube(*table, {0, 1, 2, 3, 4}, {AggregateSpec::CountStar("cnt")}, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Cube)->Arg(2)->Arg(3)->Arg(4);

void BM_FilterEquals(benchmark::State& state) {
  auto table = BenchTable(state.range(0));
  for (auto _ : state) {
    auto result = FilterEquals(*table, {{0, Value::String("Battery")}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterEquals)->Arg(10000)->Arg(100000);

void BM_ConstantRegression(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::poisson_distribution<int> pois(20);
  std::vector<double> y;
  for (int64_t i = 0; i < state.range(0); ++i) y.push_back(pois(rng));
  for (auto _ : state) {
    auto model = ConstantRegression::Fit(y);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConstantRegression)->Arg(16)->Arg(256)->Arg(4096);

void BM_LinearRegression(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int64_t i = 0; i < state.range(0); ++i) {
    X.push_back({static_cast<double>(i), static_cast<double>(i % 12)});
    y.push_back(0.3 * static_cast<double>(i) + noise(rng));
  }
  for (auto _ : state) {
    auto model = LinearRegression::Fit(X, y);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinearRegression)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChiSquareSf(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChiSquareSf(x, 16.0));
    x += 0.1;
    if (x > 60.0) x = 0.1;
  }
}
BENCHMARK(BM_ChiSquareSf);

}  // namespace
}  // namespace cape

BENCHMARK_MAIN();
