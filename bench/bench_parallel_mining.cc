// Beyond the paper: SHARE-GRP with a worker pool. Attribute sets G are
// independent work units (their candidate patterns are disjoint), so mining
// parallelizes embarrassingly across them. Results are asserted identical
// to the sequential run.
//
// The table distinguishes wall time (elapsed) from CPU time (work summed
// across workers): wall should drop with threads while CPU stays roughly
// flat, and cpu/wall is the achieved parallelism — bounded by the hardware
// threads actually available.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main(int argc, char** argv) {
  Banner("Parallel mining", "SHARE-GRP wall vs CPU time by worker threads (Crime, D=25k, A=8)");
  const std::string json_path = ParseJsonPath(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u (wall speedup is bounded by this)\n\n", hw);

  CrimeOptions data;
  data.num_rows = 25000;
  data.num_attrs = 8;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  MiningConfig config = PaperMiningConfig();

  BenchJson json("parallel_mining_share_grp");
  json.AddConfig("dataset", "crime");
  json.AddConfig("num_rows", static_cast<int64_t>(data.num_rows));
  json.AddConfig("num_attrs", static_cast<int64_t>(data.num_attrs));
  json.AddConfig("seed", static_cast<int64_t>(data.seed));
  json.AddConfig("miner", "SHARE-GRP");
  json.AddConfig("hardware_threads", static_cast<int64_t>(hw));

  std::string reference_serialized;
  size_t reference_patterns = 0;
  double reference_seconds = 0.0;
  std::printf("%-8s %10s %10s %9s %9s %10s\n", "threads", "wall(s)", "cpu(s)",
              "speedup", "cpu/wall", "patterns");
  for (int threads : {1, 2, 4, 8}) {
    config.num_threads = threads;
    auto result = CheckResult(MakeShareGrpMiner()->Mine(*table, config), "Mine");
    const double wall = result.profile.total_ns * 1e-9;
    const double cpu = result.profile.cpu_ns * 1e-9;
    const std::string serialized = SerializePatternSet(result.patterns, *table->schema());
    if (threads == 1) {
      reference_serialized = serialized;
      reference_patterns = result.patterns.size();
      reference_seconds = wall;
    } else if (serialized != reference_serialized) {
      std::fprintf(stderr, "PARALLEL MISMATCH at %d threads: pattern sets differ "
                           "(%zu vs %zu patterns)\n",
                   threads, result.patterns.size(), reference_patterns);
      return 1;
    }
    std::printf("%-8d %10.2f %10.2f %8.2fx %9.2f %10zu\n", threads, wall, cpu,
                reference_seconds / wall, cpu / wall, result.patterns.size());
    json.BeginResult();
    json.Add("threads", static_cast<int64_t>(threads));
    json.Add("wall_s", wall);
    json.Add("cpu_s", cpu);
    json.Add("speedup", reference_seconds / wall);
    json.Add("patterns", static_cast<int64_t>(result.patterns.size()));
  }
  if (!json_path.empty()) json.Write(json_path);
  return 0;
}
