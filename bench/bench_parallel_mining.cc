// Beyond the paper: SHARE-GRP with a worker pool. Attribute sets G are
// independent work units (their candidate patterns are disjoint), so mining
// parallelizes embarrassingly across them. Results are asserted identical
// to the sequential run; the table shows wall-clock scaling.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "pattern/mining.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Parallel mining", "SHARE-GRP wall time vs worker threads (Crime, D=25k, A=8)");

  std::printf("hardware threads available: %u (speedup is bounded by this)\n\n",
              std::thread::hardware_concurrency());

  CrimeOptions data;
  data.num_rows = 25000;
  data.num_attrs = 8;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  MiningConfig config = PaperMiningConfig();

  size_t reference_patterns = 0;
  double reference_seconds = 0.0;
  std::printf("%-8s %12s %10s %10s\n", "threads", "wall(s)", "speedup", "patterns");
  for (int threads : {1, 2, 4, 8}) {
    config.num_threads = threads;
    auto result = CheckResult(MakeShareGrpMiner()->Mine(*table, config), "Mine");
    const double seconds = result.profile.total_ns * 1e-9;
    if (threads == 1) {
      reference_patterns = result.patterns.size();
      reference_seconds = seconds;
    } else if (result.patterns.size() != reference_patterns) {
      std::fprintf(stderr, "PARALLEL MISMATCH: %zu vs %zu patterns\n",
                   result.patterns.size(), reference_patterns);
      return 1;
    }
    std::printf("%-8d %12.2f %9.2fx %10zu\n", threads, seconds,
                reference_seconds / seconds, result.patterns.size());
  }
  return 0;
}
