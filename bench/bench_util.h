#ifndef CAPE_BENCH_BENCH_UTIL_H_
#define CAPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "relational/operators.h"

namespace cape::bench {

/// Aborts with a message on error — benchmark harnesses have no caller to
/// propagate a Status to.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// The paper's Section 5.1 mining thresholds: psi=4, theta=0.5, lambda=0.5,
/// delta=15, Delta=15 (used for the mining performance figures).
inline MiningConfig PaperMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 4;
  config.local_gof_threshold = 0.5;
  config.local_support_threshold = 15;
  config.global_confidence_threshold = 0.5;
  config.global_support_threshold = 15;
  config.agg_functions = {AggFunc::kCount};
  return config;
}

/// Questions biased toward large groups ("worst case for explanation
/// generation", Section 5.2): takes the `count`-largest groups of
/// gamma_{group_by, count(*)}(table).
inline std::vector<UserQuestion> GenerateQuestions(TablePtr table,
                                                   const std::vector<std::string>& group_by,
                                                   int count, Direction dir) {
  std::vector<int> cols;
  for (const std::string& name : group_by) {
    cols.push_back(table->schema()->GetFieldIndex(name));
  }
  auto grouped = CheckResult(
      GroupByAggregate(*table, cols, {AggregateSpec::CountStar("cnt")}), "group-by");
  auto sorted = CheckResult(
      SortTable(*grouped, {SortKey{static_cast<int>(cols.size()), false}}), "sort");
  std::vector<UserQuestion> questions;
  for (int64_t row = 0; row < sorted->num_rows() && static_cast<int>(questions.size()) < count;
       ++row) {
    std::vector<Value> values;
    for (size_t c = 0; c < cols.size(); ++c) {
      values.push_back(sorted->GetValue(row, static_cast<int>(c)));
    }
    auto q = MakeUserQuestion(table, group_by, values, AggFunc::kCount, "*", dir);
    if (q.ok()) questions.push_back(std::move(q).ValueOrDie());
  }
  return questions;
}

}  // namespace cape::bench

#endif  // CAPE_BENCH_BENCH_UTIL_H_
