#ifndef CAPE_BENCH_BENCH_UTIL_H_
#define CAPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "relational/operators.h"

namespace cape::bench {

/// Aborts with a message on error — benchmark harnesses have no caller to
/// propagate a Status to.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// The paper's Section 5.1 mining thresholds: psi=4, theta=0.5, lambda=0.5,
/// delta=15, Delta=15 (used for the mining performance figures).
inline MiningConfig PaperMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 4;
  config.local_gof_threshold = 0.5;
  config.local_support_threshold = 15;
  config.global_confidence_threshold = 0.5;
  config.global_support_threshold = 15;
  config.agg_functions = {AggFunc::kCount};
  return config;
}

/// Questions biased toward large groups ("worst case for explanation
/// generation", Section 5.2): takes the `count`-largest groups of
/// gamma_{group_by, count(*)}(table).
inline std::vector<UserQuestion> GenerateQuestions(TablePtr table,
                                                   const std::vector<std::string>& group_by,
                                                   int count, Direction dir) {
  std::vector<int> cols;
  for (const std::string& name : group_by) {
    cols.push_back(table->schema()->GetFieldIndex(name));
  }
  auto grouped = CheckResult(
      GroupByAggregate(*table, cols, {AggregateSpec::CountStar("cnt")}), "group-by");
  auto sorted = CheckResult(
      SortTable(*grouped, {SortKey{static_cast<int>(cols.size()), false}}), "sort");
  std::vector<UserQuestion> questions;
  for (int64_t row = 0; row < sorted->num_rows() && static_cast<int>(questions.size()) < count;
       ++row) {
    std::vector<Value> values;
    for (size_t c = 0; c < cols.size(); ++c) {
      values.push_back(sorted->GetValue(row, static_cast<int>(c)));
    }
    auto q = MakeUserQuestion(table, group_by, values, AggFunc::kCount, "*", dir);
    if (q.ok()) questions.push_back(std::move(q).ValueOrDie());
  }
  return questions;
}

/// Machine-readable benchmark results. Every harness accepts `--json <path>`
/// (see ParseJsonPath); when given, it writes one JSON document of the form
///
///   {"name": "...", "config": {...}, "results": [{...}, ...]}
///
/// where `config` holds the experiment's fixed parameters and `results` one
/// object per measured configuration (thread count, dataset size, ...).
/// Numeric values are emitted as numbers, everything else as strings.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void AddConfig(const std::string& key, const std::string& value) {
    config_.emplace_back(key, Quote(value));
  }
  void AddConfig(const std::string& key, int64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void AddConfig(const std::string& key, double value) {
    config_.emplace_back(key, FormatDouble(value));
  }

  /// Starts a new entry in `results`; subsequent Add calls fill it.
  void BeginResult() { results_.emplace_back(); }

  void Add(const std::string& key, const std::string& value) {
    results_.back().emplace_back(key, Quote(value));
  }
  void Add(const std::string& key, int64_t value) {
    results_.back().emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, double value) {
    results_.back().emplace_back(key, FormatDouble(value));
  }

  /// Serializes the document. Exits on I/O failure (bench semantics).
  void Write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n", path.c_str());
      std::exit(1);
    }
    out << "{\"name\": " << Quote(name_) << ",\n \"config\": {";
    WriteFields(out, config_);
    out << "},\n \"results\": [";
    for (size_t i = 0; i < results_.size(); ++i) {
      if (i > 0) out << ",\n             ";
      out << "{";
      WriteFields(out, results_[i]);
      out << "}";
    }
    out << "]}\n";
    if (!out.good()) {
      std::fprintf(stderr, "[bench] write to %s failed\n", path.c_str());
      std::exit(1);
    }
    std::printf("[bench] wrote JSON results to %s\n", path.c_str());
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
    return out;
  }

  static void WriteFields(std::ofstream& out, const Fields& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out << ", ";
      out << Quote(fields[i].first) << ": " << fields[i].second;
    }
  }

  std::string name_;
  Fields config_;
  std::vector<Fields> results_;
};

/// Extracts `--json <path>` from argv (empty string when absent). Exits with
/// a usage message when the flag is present without a value.
inline std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return "";
}

}  // namespace cape::bench

#endif  // CAPE_BENCH_BENCH_UTIL_H_
