// Figure 4: breakdown of mining time into regression / query processing /
// remaining tasks, normalized to the slowest method (CUBE), for the Crime
// dataset (D = 10k) and varying A.
//
// Expected shape: all methods spend the same absolute time on regression;
// the regression share grows with A; CUBE's query-processing share grows
// with A (exponential group blow-up).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "pattern/mining.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 4", "Mining subtask breakdown (Crime, D=10k), normalized to CUBE total");

  std::vector<int> attr_counts = {4, 7, 9};
  if (std::getenv("CAPE_BENCH_FULL") != nullptr) attr_counts.push_back(11);

  std::printf("%-4s %-10s %10s %10s %10s %10s %12s\n", "A", "miner", "regr(%)",
              "query(%)", "other(%)", "total(%)", "total(s)");
  for (int attrs : attr_counts) {
    CrimeOptions data;
    data.num_rows = 10000;
    data.num_attrs = attrs;
    data.seed = 7;
    auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
    const MiningConfig config = PaperMiningConfig();

    struct Entry {
      const char* name;
      MiningProfile profile;
    };
    std::vector<Entry> entries;
    entries.push_back({"ARP-MINE",
                       CheckResult(MakeArpMiner()->Mine(*table, config), "arp").profile});
    entries.push_back(
        {"SHARE-GRP",
         CheckResult(MakeShareGrpMiner()->Mine(*table, config), "share").profile});
    entries.push_back(
        {"CUBE", CheckResult(MakeCubeMiner()->Mine(*table, config), "cube").profile});

    const double cube_total = static_cast<double>(entries.back().profile.total_ns);
    for (const Entry& e : entries) {
      std::printf("%-4d %-10s %10.1f %10.1f %10.1f %10.1f %12.2f\n", attrs, e.name,
                  100.0 * e.profile.regression_ns / cube_total,
                  100.0 * e.profile.query_ns / cube_total,
                  100.0 * e.profile.other_ns() / cube_total,
                  100.0 * e.profile.total_ns / cube_total, e.profile.total_ns * 1e-9);
    }
    std::printf("\n");
  }
  return 0;
}
