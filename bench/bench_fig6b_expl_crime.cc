// Figure 6b: explanation-generation runtime vs. number of local patterns
// N_P (Crime dataset) for EXPL-GEN-NAIVE vs EXPL-GEN-OPT.
//
// Expected shape: linear in N_P, OPT faster (the paper reports up to 28%).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main(int argc, char** argv) {
  Banner("Figure 6b", "Explanation runtime vs N_P (Crime) — EXPL-GEN-NAIVE vs EXPL-GEN-OPT");

  const std::string json_path = ParseJsonPath(argc, argv);
  BenchJson json("fig6b_expl_crime");

  CrimeOptions data;
  data.num_rows = 30000;
  data.num_attrs = 7;
  data.seed = 7;
  auto table = CheckResult(GenerateCrime(data), "GenerateCrime");
  Engine engine = CheckResult(Engine::FromTable(table), "Engine::FromTable");
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 4;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.2;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");
  const PatternSet all_patterns = engine.patterns();
  const int64_t total_locals = all_patterns.NumLocalPatterns();
  std::printf("mined %zu global patterns, %lld local patterns\n\n", all_patterns.size(),
              static_cast<long long>(total_locals));

  auto questions =
      GenerateQuestions(table, {"primary_type", "community", "year"}, 6, Direction::kLow);
  auto more = GenerateQuestions(table, {"primary_type", "community", "year", "month"}, 2,
                                Direction::kHigh);
  questions.insert(questions.end(), more.begin(), more.end());
  std::printf("generated %zu user questions\n\n", questions.size());

  json.AddConfig("dataset", "crime");
  json.AddConfig("num_rows", static_cast<int64_t>(data.num_rows));
  json.AddConfig("num_questions", static_cast<int64_t>(questions.size()));
  json.AddConfig("total_local_patterns", total_locals);
  json.AddConfig("dictionary_kernels",
                 static_cast<int64_t>(DictionaryKernelsEnabled() ? 1 : 0));

  std::printf("%-8s %14s %14s %10s %16s\n", "N_P", "NAIVE(ms)", "OPT(ms)", "saving",
              "pairs pruned");
  for (double fraction : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    const int64_t n_p = static_cast<int64_t>(fraction * static_cast<double>(total_locals));
    engine.SetPatterns(all_patterns.Truncated(n_p));

    double naive_ms = 0.0;
    double opt_ms = 0.0;
    int64_t pruned = 0;
    for (const UserQuestion& q : questions) {
      auto naive = CheckResult(engine.Explain(q, /*optimized=*/false), "naive");
      naive_ms += naive.profile.total_ns * 1e-6;
      auto opt = CheckResult(engine.Explain(q, /*optimized=*/true), "opt");
      opt_ms += opt.profile.total_ns * 1e-6;
      pruned += opt.profile.num_pairs_pruned;
    }
    std::printf("%-8lld %14.1f %14.1f %9.1f%% %16lld\n", static_cast<long long>(n_p),
                naive_ms, opt_ms, 100.0 * (naive_ms - opt_ms) / naive_ms,
                static_cast<long long>(pruned));

    json.BeginResult();
    json.Add("n_p", n_p);
    json.Add("naive_ms", naive_ms);
    json.Add("opt_ms", opt_ms);
    json.Add("pairs_pruned", pruned);
  }
  if (!json_path.empty()) json.Write(json_path);
  return 0;
}
