#!/usr/bin/env bash
# Runs every JSON-capable benchmark harness and aggregates the per-bench
# documents into one BENCH_results.json, giving future PRs a perf trajectory.
#
# Usage: bench/run_all.sh [build_dir] [output.json]
#
# Harnesses emit {"name", "config", "results"} via --json (bench_util.h);
# bench_micro_engine uses google-benchmark's native JSON writer. Harnesses
# without JSON support (the table/figure reproductions that only print) are
# intentionally not run here — they are reproduction scripts, not trend
# benchmarks. Set CAPE_BENCH_FULL=1 for the extended sweeps.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_results.json}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found (build with: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

JSON_BENCHES=(
  bench_fig3a_mining_attrs
  bench_fig6b_expl_crime
  bench_parallel_mining
  bench_parallel_explain
)

docs=()
for bench in "${JSON_BENCHES[@]}"; do
  exe="${BENCH_DIR}/${bench}"
  if [[ ! -x "${exe}" ]]; then
    echo "warning: ${exe} missing, skipping" >&2
    continue
  fi
  echo "=== ${bench} ==="
  "${exe}" --json "${TMP_DIR}/${bench}.json"
  docs+=("${TMP_DIR}/${bench}.json")
done

micro="${BENCH_DIR}/bench_micro_engine"
if [[ -x "${micro}" ]]; then
  echo "=== bench_micro_engine ==="
  "${micro}" --benchmark_out="${TMP_DIR}/bench_micro_engine.json" \
             --benchmark_out_format=json
  docs+=("${TMP_DIR}/bench_micro_engine.json")
fi

{
  echo '{"benches": ['
  first=1
  for doc in "${docs[@]}"; do
    [[ ${first} -eq 0 ]] && echo ','
    first=0
    cat "${doc}"
  done
  echo ']}'
} > "${OUT}"

echo "wrote aggregate results to ${OUT} (${#docs[@]} benches)"
