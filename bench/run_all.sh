#!/usr/bin/env bash
# Runs every JSON-capable benchmark harness and aggregates the per-bench
# documents into one BENCH_results.json, giving future PRs a perf trajectory.
#
# Usage: bench/run_all.sh [--only <pattern>] [build_dir] [output.json]
#
# --only <pattern> runs just the benches whose name contains <pattern>
# (substring match) — e.g. `bench/run_all.sh --only outofcore` — and the
# aggregate then contains only those entries (skipped benches are not
# failures).
#
# Harnesses emit {"name", "config", "results"} via --json (bench_util.h);
# bench_micro_engine uses google-benchmark's native JSON writer. Harnesses
# without JSON support (the table/figure reproductions that only print) are
# intentionally not run here — they are reproduction scripts, not trend
# benchmarks. Set CAPE_BENCH_FULL=1 for the extended sweeps.

set -euo pipefail

ONLY=""
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --only)
      if [[ $# -lt 2 ]]; then
        echo "error: --only requires a pattern" >&2
        exit 2
      fi
      ONLY="$2"
      shift 2
      ;;
    *)
      POSITIONAL+=("$1")
      shift
      ;;
  esac
done
BUILD_DIR="${POSITIONAL[0]:-build}"
OUT="${POSITIONAL[1]:-BENCH_results.json}"
BENCH_DIR="${BUILD_DIR}/bench"

selected() {
  [[ -z "${ONLY}" || "$1" == *"${ONLY}"* ]]
}

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found (build with: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

JSON_BENCHES=(
  bench_fig3a_mining_attrs
  bench_fig6b_expl_crime
  bench_parallel_mining
  bench_parallel_explain
  bench_pattern_cache
  bench_server_load
  bench_outofcore_mining
  bench_incremental_mining
)

# A failing bench must fail the aggregate: its entry becomes an explicit
# {"name", "error", "exit_code"} marker (never a silently missing bench) and
# the script exits nonzero after running everything else.
failures=0

mark_failure() {
  local bench="$1" code="$2" reason="$3"
  echo "error: ${bench} failed (${reason})" >&2
  printf '{"name": "%s", "error": "%s", "exit_code": %d}\n' \
    "${bench}" "${reason}" "${code}" > "${TMP_DIR}/${bench}.json"
  failures=$((failures + 1))
}

docs=()
for bench in "${JSON_BENCHES[@]}"; do
  selected "${bench}" || continue
  exe="${BENCH_DIR}/${bench}"
  if [[ ! -x "${exe}" ]]; then
    mark_failure "${bench}" 127 "executable missing"
    docs+=("${TMP_DIR}/${bench}.json")
    continue
  fi
  echo "=== ${bench} ==="
  code=0
  "${exe}" --json "${TMP_DIR}/${bench}.json" || code=$?
  if [[ ${code} -ne 0 ]]; then
    mark_failure "${bench}" "${code}" "exited nonzero"
  elif [[ ! -s "${TMP_DIR}/${bench}.json" ]]; then
    mark_failure "${bench}" 0 "wrote no JSON output"
  fi
  docs+=("${TMP_DIR}/${bench}.json")
done

micro="${BENCH_DIR}/bench_micro_engine"
if ! selected bench_micro_engine; then
  :
elif [[ -x "${micro}" ]]; then
  echo "=== bench_micro_engine ==="
  code=0
  "${micro}" --benchmark_out="${TMP_DIR}/bench_micro_engine.json" \
             --benchmark_out_format=json || code=$?
  if [[ ${code} -ne 0 ]]; then
    mark_failure bench_micro_engine "${code}" "exited nonzero"
  fi
  docs+=("${TMP_DIR}/bench_micro_engine.json")
else
  mark_failure bench_micro_engine 127 "executable missing"
  docs+=("${TMP_DIR}/bench_micro_engine.json")
fi

if [[ ${#docs[@]} -eq 0 ]]; then
  echo "error: --only '${ONLY}' matched no benches" >&2
  exit 2
fi

{
  echo '{"benches": ['
  first=1
  for doc in "${docs[@]}"; do
    [[ ${first} -eq 0 ]] && echo ','
    first=0
    cat "${doc}"
  done
  echo ']}'
} > "${OUT}"

echo "wrote aggregate results to ${OUT} (${#docs[@]} benches, ${failures} failed)"
if [[ ${failures} -gt 0 ]]; then
  exit 1
fi
