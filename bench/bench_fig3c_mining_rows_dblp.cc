// Figure 3c: ARP mining runtime vs. dataset size D (DBLP dataset, A = 4).
//
// Expected shape: linear in D; the gap between the miners is less
// pronounced than on Crime because the schema is narrow (few candidates).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/dblp.h"
#include "pattern/mining.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 3c", "Mining runtime vs #rows (DBLP, A=4) — CUBE/SHARE-GRP/ARP-MINE");

  std::vector<int64_t> sizes = {10000, 50000, 100000, 200000};
  if (std::getenv("CAPE_BENCH_FULL") != nullptr) sizes.push_back(1000000);

  // DBLP has a near-unique pubid attribute; like the paper's preprocessing
  // we keep it out of the pattern space but it still inflates the CUBE
  // miner's finest grouping, which is part of the measured effect.
  std::printf("%-8s %12s %12s %12s %10s\n", "D", "CUBE(s)", "SHARE-GRP(s)",
              "ARP-MINE(s)", "patterns");
  for (int64_t rows : sizes) {
    DblpOptions data;
    data.num_rows = rows;
    data.seed = 42;
    auto table = CheckResult(GenerateDblp(data), "GenerateDblp");
    MiningConfig config = PaperMiningConfig();
    config.excluded_attrs = {"pubid"};
    config.local_support_threshold = 5;  // DBLP careers have ~16 distinct years

    auto cube = CheckResult(MakeCubeMiner()->Mine(*table, config), "CUBE");
    auto share = CheckResult(MakeShareGrpMiner()->Mine(*table, config), "SHARE-GRP");
    auto arp = CheckResult(MakeArpMiner()->Mine(*table, config), "ARP-MINE");
    std::printf("%-8lld %12.2f %12.2f %12.2f %10zu\n", static_cast<long long>(rows),
                cube.profile.total_ns * 1e-9, share.profile.total_ns * 1e-9,
                arp.profile.total_ns * 1e-9, arp.patterns.size());
  }
  return 0;
}
