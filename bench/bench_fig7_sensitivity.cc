// Figure 7: parameter sensitivity — precision w.r.t. planted ground-truth
// counterbalances for varying (theta, lambda, Delta) (Section 5.3).
//
// Methodology (as in the paper): plant outlier/counterbalance pairs into
// the dataset, generate 10 `low` questions, take CAPE's top-10 explanations
// for each, and report the fraction of the 100 returned explanations that
// are planted counterbalances.
//
// Expected shape: precision degrades as theta grows (outlier-containing
// fragments stop holding locally); lambda matters little at low theta;
// large Delta (15, 25) sharply reduces the number of usable patterns and
// with it precision.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/crime.h"
#include "datagen/ground_truth.h"

using namespace cape;         // NOLINT
using namespace cape::bench;  // NOLINT

int main() {
  Banner("Figure 7", "Precision vs ground truth for varying (theta, lambda, Delta)");

  CrimeOptions data;
  data.num_rows = 20000;
  data.num_communities = 10;
  data.num_types = 6;
  data.plant_scenario = false;  // ground truth provides the outliers
  data.year_trend = false;      // stationary fragments (pure Poisson noise)
  data.seed = 7;
  auto base = CheckResult(GenerateCrime(data), "GenerateCrime");

  GroundTruthOptions gt_options;
  gt_options.group_by = {"primary_type", "community", "year"};
  gt_options.num_questions = 10;
  gt_options.counterbalances_per_question = 5;
  gt_options.min_cell_rows = 15;
  gt_options.seed = 17;
  auto injected = CheckResult(InjectGroundTruth(*base, gt_options), "InjectGroundTruth");
  std::printf("planted %zu questions x %d counterbalances into %lld rows\n\n",
              injected.cases.size(), gt_options.counterbalances_per_question,
              static_cast<long long>(injected.table->num_rows()));

  Engine engine = CheckResult(Engine::FromTable(injected.table), "Engine::FromTable");
  engine.explain_config().top_k = 10;

  const std::vector<double> thetas = {0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7};
  const std::vector<double> lambdas = {0.1, 0.3, 0.5, 0.7};
  const std::vector<int64_t> deltas = {5, 15, 25};

  for (int64_t global_support : deltas) {
    std::printf("Delta = %lld\n", static_cast<long long>(global_support));
    std::printf("%-8s", "theta");
    for (double lambda : lambdas) std::printf("  lambda=%.1f", lambda);
    std::printf("\n");
    for (double theta : thetas) {
      std::printf("%-8.2f", theta);
      for (double lambda : lambdas) {
        MiningConfig& mining = engine.mining_config();
        mining.max_pattern_size = 3;
        mining.local_gof_threshold = theta;
        mining.local_support_threshold = 3;  // delta; low per Section 5.3
        mining.global_confidence_threshold = lambda;
        mining.global_support_threshold = global_support;
        mining.agg_functions = {AggFunc::kCount};
        CheckOk(engine.MinePatterns("ARP-MINE"), "MinePatterns");

        std::vector<std::vector<Explanation>> per_case;
        for (const GroundTruthCase& c : injected.cases) {
          auto result = CheckResult(engine.Explain(c.question), "Explain");
          per_case.push_back(std::move(result.explanations));
        }
        std::printf("  %10.3f",
                    GroundTruthPrecision(injected.cases, per_case, 10));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
