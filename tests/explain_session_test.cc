// ExplainSession (DESIGN.md §11): batch serving over one pattern set with
// memoized question-independent work. The contract under test is byte
// equality — every session answer must match the one-shot Engine::Explain()
// on the same question, because the memoized γ tables and refinement
// adjacency only skip recomputation, never change candidate order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/dblp.h"

namespace cape {
namespace {

Engine MakeEngine(uint64_t seed = 5) {
  DblpOptions options;
  options.num_rows = 3000;
  options.seed = seed;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  Engine engine = std::move(Engine::FromTable(std::move(table).ValueOrDie())).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  return engine;
}

/// A spread of questions: the planted outlier plus groups taken straight
/// from distinct rows of the relation (guaranteed to exist in Q(R)).
std::vector<UserQuestion> MakeQuestions(const Engine& engine) {
  std::vector<UserQuestion> questions;
  auto planted = engine.MakeQuestion(
      {"author", "venue", "year"},
      {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"), Value::Int64(2007)},
      AggFunc::kCount, "*", Direction::kLow);
  EXPECT_TRUE(planted.ok()) << planted.status().ToString();
  questions.push_back(*planted);

  const Table& table = *engine.table();
  const int author = table.schema()->GetFieldIndex("author");
  const int venue = table.schema()->GetFieldIndex("venue");
  const int year = table.schema()->GetFieldIndex("year");
  for (const int64_t row : {int64_t{0}, int64_t{500}, int64_t{1500}}) {
    const Row values = table.GetRow(row);
    auto q = engine.MakeQuestion({"author", "venue", "year"},
                                 {values[author], values[venue], values[year]},
                                 AggFunc::kCount, "*",
                                 row % 2 == 0 ? Direction::kHigh : Direction::kLow);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    questions.push_back(*q);
  }
  return questions;
}

void ExpectSameResult(const ExplainResult& got, const ExplainResult& want,
                      const std::string& context) {
  ASSERT_EQ(got.explanations.size(), want.explanations.size()) << context;
  for (size_t i = 0; i < got.explanations.size(); ++i) {
    const Explanation& g = got.explanations[i];
    const Explanation& w = want.explanations[i];
    // Bit-exact, not approximate: the session must score the same
    // candidates with the same floating-point operations.
    EXPECT_EQ(g.score, w.score) << context << " explanation " << i;
    EXPECT_EQ(g.tuple_values, w.tuple_values) << context << " explanation " << i;
    EXPECT_EQ(g.relevant_pattern, w.relevant_pattern) << context;
    EXPECT_EQ(g.refinement_pattern, w.refinement_pattern) << context;
    EXPECT_EQ(g.deviation, w.deviation) << context;
    EXPECT_EQ(g.distance, w.distance) << context;
  }
}

TEST(ExplainSessionTest, MatchesOneShotExplainOnEveryQuestion) {
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.MinePatterns().ok());
  const std::vector<UserQuestion> questions = MakeQuestions(engine);

  for (const bool optimized : {false, true}) {
    auto session = engine.MakeExplainSession();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (size_t i = 0; i < questions.size(); ++i) {
      auto one_shot = engine.Explain(questions[i], optimized);
      ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();
      auto served = session->Explain(questions[i], optimized);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ExpectSameResult(*served, *one_shot,
                       "question " + std::to_string(i) + " optimized=" +
                           std::to_string(optimized));
    }
  }
}

TEST(ExplainSessionTest, BatchMatchesOneShotAnswers) {
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.MinePatterns().ok());
  const std::vector<UserQuestion> questions = MakeQuestions(engine);

  auto session = engine.MakeExplainSession();
  ASSERT_TRUE(session.ok());
  auto batch = session->ExplainBatch(questions);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), questions.size());
  EXPECT_EQ(session->questions_answered(), static_cast<int64_t>(questions.size()));
  for (size_t i = 0; i < questions.size(); ++i) {
    auto one_shot = engine.Explain(questions[i]);
    ASSERT_TRUE(one_shot.ok());
    ExpectSameResult((*batch)[i], *one_shot, "batch question " + std::to_string(i));
  }
}

TEST(ExplainSessionTest, MemoizesAggTablesAcrossQuestions) {
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.MinePatterns().ok());
  const std::vector<UserQuestion> questions = MakeQuestions(engine);

  auto session = engine.MakeExplainSession();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->questions_answered(), 0);
  EXPECT_EQ(session->num_cached_agg_tables(), 0u);

  ASSERT_TRUE(session->Explain(questions[0]).ok());
  const size_t after_first = session->num_cached_agg_tables();
  EXPECT_GT(after_first, 0u);
  EXPECT_EQ(session->questions_answered(), 1);

  // Re-answering the same question reuses every memoized γ table: the
  // cache must not grow at all.
  ASSERT_TRUE(session->Explain(questions[0]).ok());
  EXPECT_EQ(session->num_cached_agg_tables(), after_first);
  EXPECT_EQ(session->questions_answered(), 2);

  // Different questions share the pattern-derived γ tables, so the cache
  // grows sub-linearly: far fewer new entries than a fresh session built
  // per question would compute.
  for (size_t i = 1; i < questions.size(); ++i) {
    ASSERT_TRUE(session->Explain(questions[i]).ok());
  }
  EXPECT_LT(session->num_cached_agg_tables(), after_first * questions.size());
}

TEST(ExplainSessionTest, RejectsQuestionsOverADifferentRelation) {
  Engine first = MakeEngine(5);
  ASSERT_TRUE(first.MinePatterns().ok());
  Engine second = MakeEngine(6);  // different table instance and content

  auto session = first.MakeExplainSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Explain(MakeQuestions(first)[0]).ok());

  auto foreign = second.MakeQuestion(
      {"author", "venue", "year"},
      {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"), Value::Int64(2007)},
      AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(foreign.ok());
  auto served = session->Explain(*foreign);
  EXPECT_FALSE(served.ok());
  EXPECT_TRUE(served.status().IsInvalidArgument());
  EXPECT_EQ(session->questions_answered(), 1);  // the rejection did not count
}

TEST(ExplainSessionTest, CancelledBatchLeavesSessionReusable) {
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.MinePatterns().ok());
  const std::vector<UserQuestion> questions = MakeQuestions(engine);

  std::vector<ExplainResult> reference;
  for (const UserQuestion& q : questions) {
    auto r = engine.Explain(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(std::move(*r));
  }

  auto cancelled = engine.MakeExplainSession();
  auto healthy = engine.MakeExplainSession();
  ASSERT_TRUE(cancelled.ok());
  ASSERT_TRUE(healthy.ok());
  CancellationSource source;
  cancelled->config().cancel_token = source.token();
  source.RequestCancel();  // every answer in the batch observes the stop

  // Serve both batches concurrently on a shared pool (the serving shape:
  // one session per thread over one engine). The cancelled batch must not
  // disturb the healthy session's answers in any way.
  struct Latch {
    Mutex mu;
    CondVar cv;
    int remaining CAPE_GUARDED_BY(mu) = 2;
  } latch;
  Result<std::vector<ExplainResult>> cancelled_batch =
      Status::InvalidArgument("pending");
  Result<std::vector<ExplainResult>> healthy_batch = Status::InvalidArgument("pending");
  ThreadPool pool(2);
  auto run = [&latch](ExplainSession* session, const std::vector<UserQuestion>& qs,
                      Result<std::vector<ExplainResult>>* out) {
    *out = session->ExplainBatch(qs);
    MutexLock lock(latch.mu);
    if (--latch.remaining == 0) latch.cv.NotifyAll();
  };
  pool.Submit([&] { run(&*cancelled, questions, &cancelled_batch); });
  pool.Submit([&] { run(&*healthy, questions, &healthy_batch); });
  {
    MutexLock lock(latch.mu);
    while (latch.remaining > 0) latch.cv.Wait(latch.mu);
  }

  // The cancelled batch still terminates cleanly: OK status, every answer
  // marked partial with the cancellation reason.
  ASSERT_TRUE(cancelled_batch.ok()) << cancelled_batch.status().ToString();
  ASSERT_EQ(cancelled_batch->size(), questions.size());
  for (const ExplainResult& r : *cancelled_batch) {
    EXPECT_TRUE(r.partial);
    EXPECT_EQ(r.stop_reason, StopReason::kCancelled);
  }

  ASSERT_TRUE(healthy_batch.ok()) << healthy_batch.status().ToString();
  ASSERT_EQ(healthy_batch->size(), questions.size());
  for (size_t i = 0; i < questions.size(); ++i) {
    ExpectSameResult((*healthy_batch)[i], reference[i],
                     "healthy concurrent question " + std::to_string(i));
  }

  // The memoized γ tables the cancelled batch left behind must be reusable:
  // clearing the token and re-answering gives answers byte-identical to the
  // one-shot reference — the aborted run never half-populated the cache.
  cancelled->config().cancel_token = CancellationToken();
  for (size_t i = 0; i < questions.size(); ++i) {
    auto reanswered = cancelled->Explain(questions[i]);
    ASSERT_TRUE(reanswered.ok()) << reanswered.status().ToString();
    EXPECT_FALSE(reanswered->partial);
    ExpectSameResult(*reanswered, reference[i],
                     "re-answered question " + std::to_string(i));
  }
}

TEST(ExplainSessionTest, RequiresMinedPatterns) {
  Engine engine = MakeEngine();
  auto session = engine.MakeExplainSession();
  EXPECT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

}  // namespace
}  // namespace cape
