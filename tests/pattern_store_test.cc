// Binary pattern store (DESIGN.md §11): versioned, checksummed, value-exact.
// Alongside the functional round-trip checks, this suite carries the
// fuzz-ish robustness property: corrupting or truncating the serialized
// bytes at *every offset* must produce a clean Status error — never a
// crash, CHECK, or out-of-bounds read (the suite runs under ASan in the
// sanitizer CI flavor).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/engine.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"
#include "relational/table.h"

namespace cape {
namespace {

struct MinedFixture {
  TablePtr table;
  PatternSet patterns;
  MiningConfig config;
};

/// Mines a small but representative set: Const and Lin models, multi-attr
/// fragments, strings with spaces/tabs/percent signs. Small on purpose —
/// the every-offset fuzz tests are quadratic in the store size.
MinedFixture Mine() {
  auto table = MakeEmptyTable({Field{"author name", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  const char* authors[] = {"Ada L.", "Grace%H", "Edsger\tD", "Barbara"};
  const char* venues[] = {"SIG KDD", "ICDE"};
  for (int a = 0; a < 4; ++a) {
    for (int year = 2000; year < 2010; ++year) {
      for (int v = 0; v < 2; ++v) {
        const int n = 2 + (a + year + v) % 3;
        for (int i = 0; i < n; ++i) {
          EXPECT_TRUE(table
                          ->AppendRow({Value::String(authors[a]), Value::Int64(year),
                                       Value::String(venues[v])})
                          .ok());
        }
      }
    }
  }
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.05;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.2;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount};
  auto result = MakeArpMiner()->Mine(*table, config);
  EXPECT_TRUE(result.ok());
  return MinedFixture{table, std::move(result->patterns), config};
}

TEST(PatternStoreTest, BinaryRoundTripIsExactAndAFixpoint) {
  MinedFixture fixture = Mine();
  ASSERT_GT(fixture.patterns.size(), 0u);
  const Schema& schema = *fixture.table->schema();
  const uint64_t digest = MiningConfigDigest(fixture.config);

  const std::string binary = SerializePatternSetBinary(fixture.patterns, schema, digest);
  ASSERT_TRUE(LooksLikeBinaryPatternStore(binary));

  PatternStoreMeta meta;
  auto loaded = DeserializePatternSetBinary(binary, schema, &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(meta.format_version, kPatternStoreFormatVersion);
  EXPECT_EQ(meta.schema_digest, schema.Digest());
  EXPECT_EQ(meta.mining_config_digest, digest);

  // Value-exact: the loaded set re-serializes to the same bytes in both
  // formats (binary fixpoint, and text equal to the fresh set's text).
  EXPECT_EQ(SerializePatternSetBinary(*loaded, schema, digest), binary);
  EXPECT_EQ(SerializePatternSet(*loaded, schema),
            SerializePatternSet(fixture.patterns, schema));
}

TEST(PatternStoreTest, CrossFormatRoundTripsAreFixpoints) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  const std::string text = SerializePatternSet(fixture.patterns, schema);
  const std::string binary = SerializePatternSetBinary(fixture.patterns, schema);

  // text -> parse -> binary == fresh binary; binary -> parse -> text == text.
  auto from_text = DeserializePatternSet(text, schema);
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(SerializePatternSetBinary(*from_text, schema), binary);

  auto from_binary = DeserializePatternSetBinary(binary, schema);
  ASSERT_TRUE(from_binary.ok());
  EXPECT_EQ(SerializePatternSet(*from_binary, schema), text);
}

TEST(PatternStoreTest, EmptySetRoundTrips) {
  auto table = MakeEmptyTable({Field{"x", DataType::kInt64, false}});
  const std::string binary = SerializePatternSetBinary(PatternSet(), *table->schema());
  auto loaded = DeserializePatternSetBinary(binary, *table->schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(PatternStoreTest, SchemaMismatchRejected) {
  MinedFixture fixture = Mine();
  const std::string binary =
      SerializePatternSetBinary(fixture.patterns, *fixture.table->schema());

  auto wrong_arity = Schema::Make({Field{"author name", DataType::kString, false}});
  EXPECT_TRUE(DeserializePatternSetBinary(binary, *wrong_arity).status().IsInvalidArgument());

  auto wrong_name = Schema::Make({Field{"renamed", DataType::kString, false},
                                  Field{"year", DataType::kInt64, false},
                                  Field{"venue", DataType::kString, false}});
  EXPECT_TRUE(DeserializePatternSetBinary(binary, *wrong_name).status().IsInvalidArgument());

  auto wrong_type = Schema::Make({Field{"author name", DataType::kString, false},
                                  Field{"year", DataType::kDouble, false},
                                  Field{"venue", DataType::kString, false}});
  EXPECT_TRUE(DeserializePatternSetBinary(binary, *wrong_type).status().IsInvalidArgument());
}

TEST(PatternStoreTest, UnknownVersionRejected) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  std::string binary = SerializePatternSetBinary(fixture.patterns, schema);
  // Bump the version field (offset 8, after the magic). The checksum covers
  // the version bytes too, so this fails closed either way — what matters
  // is that it is a clean InvalidArgument, not a misparse.
  binary[8] = static_cast<char>(kPatternStoreFormatVersion + 1);
  auto loaded = DeserializePatternSetBinary(binary, schema);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(PatternStoreTest, TruncationAtEveryOffsetFailsCleanly) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  const std::string binary = SerializePatternSetBinary(fixture.patterns, schema);
  ASSERT_GT(binary.size(), 32u);
  for (size_t len = 0; len < binary.size(); ++len) {
    auto loaded = DeserializePatternSetBinary(std::string_view(binary).substr(0, len), schema);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << len << " bytes parsed successfully";
    ASSERT_TRUE(loaded.status().IsInvalidArgument())
        << "truncation to " << len << ": " << loaded.status().ToString();
  }
}

TEST(PatternStoreTest, CorruptionAtEveryOffsetFailsCleanly) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  const std::string binary = SerializePatternSetBinary(fixture.patterns, schema);
  // Two flip patterns per offset: a single-bit flip and a full-byte flip.
  // The trailing FNV-1a checksum is updated byte-by-byte with xor-then-
  // multiply (bijective per byte), so any payload change shifts the digest
  // and every corruption must be rejected before a single field is parsed.
  for (size_t offset = 0; offset < binary.size(); ++offset) {
    for (const unsigned char flip : {0x01u, 0xFFu}) {
      std::string corrupt = binary;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ flip);
      auto loaded = DeserializePatternSetBinary(corrupt, schema);
      ASSERT_FALSE(loaded.ok())
          << "flip 0x" << std::hex << static_cast<int>(flip) << " at offset " << std::dec
          << offset << " parsed successfully";
      ASSERT_TRUE(loaded.status().IsInvalidArgument())
          << "offset " << offset << ": " << loaded.status().ToString();
    }
  }
}

TEST(PatternStoreTest, TrailingGarbageRejected) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  std::string binary = SerializePatternSetBinary(fixture.patterns, schema);
  binary += "extra";
  EXPECT_TRUE(DeserializePatternSetBinary(binary, schema).status().IsInvalidArgument());
}

TEST(PatternStoreTest, FileSniffingLoadsBothFormats) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  const auto dir = std::filesystem::temp_directory_path();
  const std::string text_path = (dir / "cape_store_test.arp").string();
  const std::string binary_path = (dir / "cape_store_test.arpb").string();

  ASSERT_TRUE(SavePatternSet(fixture.patterns, schema, text_path).ok());
  ASSERT_TRUE(SavePatternSetBinary(fixture.patterns, schema, binary_path, 42).ok());

  PatternStoreMeta text_meta;
  auto from_text = LoadPatternSet(text_path, schema, &text_meta);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_EQ(text_meta.format_version, 0u);  // text form has no binary header

  PatternStoreMeta binary_meta;
  auto from_binary = LoadPatternSet(binary_path, schema, &binary_meta);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  EXPECT_EQ(binary_meta.format_version, kPatternStoreFormatVersion);
  EXPECT_EQ(binary_meta.mining_config_digest, 42u);

  EXPECT_EQ(SerializePatternSet(*from_text, schema),
            SerializePatternSet(*from_binary, schema));
  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
}

TEST(PatternStoreTest, EngineBinarySaveLoadWorkflow) {
  MinedFixture fixture = Mine();
  const std::string path =
      (std::filesystem::temp_directory_path() / "cape_store_engine.arpb").string();

  Engine offline = std::move(Engine::FromTable(fixture.table)).ValueOrDie();
  offline.mining_config() = fixture.config;
  EXPECT_TRUE(offline.SavePatternsBinary(path).IsInvalidArgument());  // nothing mined
  offline.SetPatterns(fixture.patterns);
  ASSERT_TRUE(offline.SavePatternsBinary(path).ok());

  Engine online = std::move(Engine::FromTable(fixture.table)).ValueOrDie();
  ASSERT_TRUE(online.LoadPatterns(path).ok());
  ASSERT_TRUE(online.has_patterns());
  EXPECT_EQ(SerializePatternSet(online.patterns(), online.schema()),
            SerializePatternSet(fixture.patterns, *fixture.table->schema()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cape
