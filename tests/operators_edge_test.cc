#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/csv.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace cape {
namespace {

TablePtr SmallTable() {
  auto table = MakeEmptyTable({Field{"k", DataType::kString, true},
                               Field{"v", DataType::kInt64, true}});
  auto add = [&](Value k, Value v) {
    EXPECT_TRUE(table->AppendRow({std::move(k), std::move(v)}).ok());
  };
  add(Value::String("b"), Value::Int64(1));
  add(Value::String("a"), Value::Int64(2));
  add(Value::String("b"), Value::Int64(3));
  add(Value::Null(), Value::Int64(4));
  add(Value::String("a"), Value::Null());
  return table;
}

TEST(SortEdgeTest, DescendingPutsNullsLast) {
  auto table = SmallTable();
  auto sorted = SortTable(*table, {SortKey{0, false}});
  ASSERT_TRUE(sorted.ok());
  // Descending: b, b, a, a, NULL (nulls sort first ascending => last desc).
  EXPECT_EQ((*sorted)->GetValue(0, 0), Value::String("b"));
  EXPECT_TRUE((*sorted)->GetValue(4, 0).is_null());
}

TEST(SortEdgeTest, StableWithinEqualKeys) {
  auto table = SmallTable();
  auto sorted = SortTable(*table, {SortKey{0, true}});
  ASSERT_TRUE(sorted.ok());
  // The two "b" rows keep their original relative order (v=1 before v=3).
  EXPECT_EQ((*sorted)->GetValue(1, 1), Value::Int64(2));  // first "a" row
  EXPECT_EQ((*sorted)->GetValue(3, 1), Value::Int64(1));
  EXPECT_EQ((*sorted)->GetValue(4, 1), Value::Int64(3));
}

TEST(SortEdgeTest, EmptyTableAndNoKeys) {
  auto empty = MakeEmptyTable({Field{"x", DataType::kInt64, true}});
  auto sorted = SortTable(*empty, {SortKey{0, true}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)->num_rows(), 0);

  auto table = SmallTable();
  auto identity = SortTable(*table, {});
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ((*identity)->num_rows(), table->num_rows());
  EXPECT_EQ((*identity)->GetValue(0, 0), table->GetValue(0, 0));
}

TEST(CubeEdgeTest, EmptyBandYieldsNoRows) {
  auto table = SmallTable();
  CubeOptions options;
  options.min_group_size = 3;  // > number of cube columns
  auto cube = Cube(*table, {0}, {AggregateSpec::CountStar("n")}, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->num_rows(), 0);
}

TEST(CubeEdgeTest, WithoutGroupingIdColumn) {
  auto table = SmallTable();
  CubeOptions options;
  options.add_grouping_id = false;
  auto cube = Cube(*table, {0}, {AggregateSpec::CountStar("n")}, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->num_columns(), 2);  // k, n only
}

TEST(CubeEdgeTest, EmptyInputTable) {
  auto empty = MakeEmptyTable({Field{"x", DataType::kInt64, true}});
  auto cube = Cube(*empty, {0}, {AggregateSpec::CountStar("n")});
  ASSERT_TRUE(cube.ok());
  // Only the global grouping produces a row (count = 0).
  ASSERT_EQ((*cube)->num_rows(), 1);
  EXPECT_EQ((*cube)->GetValue(0, 1), Value::Int64(0));
}

TEST(CubeEdgeTest, TooManyColumnsRejected) {
  std::vector<Field> fields;
  for (int i = 0; i < 21; ++i) {
    fields.push_back(Field{"c" + std::to_string(i), DataType::kInt64, true});
  }
  auto wide = MakeEmptyTable(std::move(fields));
  std::vector<int> cols;
  for (int i = 0; i < 21; ++i) cols.push_back(i);
  EXPECT_TRUE(Cube(*wide, cols, {AggregateSpec::CountStar("n")})
                  .status()
                  .IsInvalidArgument());
}

TEST(FilterEdgeTest, NoConditionsKeepsEverything) {
  auto table = SmallTable();
  auto all = FilterEquals(*table, {});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ((*all)->num_rows(), table->num_rows());
}

TEST(ProjectEdgeTest, DuplicateColumnsAllowed) {
  auto table = SmallTable();
  auto doubled = Project(*table, {1, 1});
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ((*doubled)->num_columns(), 2);
  EXPECT_EQ((*doubled)->GetValue(0, 0), (*doubled)->GetValue(0, 1));
}

TEST(ProjectDistinctEdgeTest, MultiColumnWithNulls) {
  auto table = SmallTable();
  auto distinct = ProjectDistinct(*table, {0});
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ((*distinct)->num_rows(), 3);  // "b", "a", NULL
}

TEST(GroupByEdgeTest, FirstSeenGroupOrderIsDeterministic) {
  auto table = SmallTable();
  auto grouped = GroupByAggregate(*table, std::vector<int>{0},
                                  {AggregateSpec::CountStar("n")});
  ASSERT_TRUE(grouped.ok());
  // Order of appearance: b, a, NULL.
  EXPECT_EQ((*grouped)->GetValue(0, 0), Value::String("b"));
  EXPECT_EQ((*grouped)->GetValue(1, 0), Value::String("a"));
  EXPECT_TRUE((*grouped)->GetValue(2, 0).is_null());
}

TEST(GroupByEdgeTest, MinMaxOverStringsWork) {
  auto table = SmallTable();
  auto grouped = GroupByAggregate(
      *table, std::vector<int>{},
      {AggregateSpec::Min(0, "lo"), AggregateSpec::Max(0, "hi")});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->GetValue(0, 0), Value::String("a"));
  EXPECT_EQ((*grouped)->GetValue(0, 1), Value::String("b"));
}

TEST(CatalogTest, RegisterGetDropList) {
  Catalog catalog;
  auto t1 = SmallTable();
  auto t2 = SmallTable();
  ASSERT_TRUE(catalog.RegisterTable("pub", t1).ok());
  EXPECT_TRUE(catalog.RegisterTable("pub", t2).IsAlreadyExists());
  EXPECT_TRUE(catalog.RegisterTable("bad", nullptr).IsInvalidArgument());
  catalog.RegisterOrReplaceTable("pub", t2);
  ASSERT_TRUE(catalog.GetTable("pub").ok());
  EXPECT_EQ(*catalog.GetTable("pub"), t2);
  EXPECT_TRUE(catalog.HasTable("pub"));
  EXPECT_FALSE(catalog.HasTable("nope"));
  EXPECT_TRUE(catalog.GetTable("nope").status().IsNotFound());

  catalog.RegisterOrReplaceTable("crime", t1);
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"crime", "pub"}));
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_TRUE(catalog.DropTable("crime").ok());
  EXPECT_TRUE(catalog.DropTable("crime").IsNotFound());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CsvEdgeTest, SemicolonDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  auto table = ReadCsvString("a;b\n1;x\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->GetValue(0, 0), Value::Int64(1));
  EXPECT_EQ((*table)->GetValue(0, 1), Value::String("x"));

  CsvWriteOptions write_options;
  write_options.delimiter = ';';
  const std::string out = WriteCsvString(**table, write_options);
  EXPECT_EQ(out, "a;b\n1;x\n");
}

}  // namespace
}  // namespace cape
