// Randomized equivalence suite (DESIGN.md §11): seeded generators of small
// random tables — mixed types, NULLs, skewed dictionaries — drive two
// property checks that the hand-written fixtures cannot cover by breadth:
//
//  1. Dictionary-code kernels vs the legacy string path produce identical
//     GroupByAggregate / FilterEquals / SortTable output on every table.
//  2. A pattern set round-tripped through the binary store (and the text
//     form) is byte-identical to the freshly mined one.
//  3. The out-of-core paged scan path (heap file + buffer manager) produces
//     byte-identical operator outputs and mined pattern sets to the
//     in-memory arrays, on every table, under every kernel-toggle
//     combination and thread count (the PagedRandomEquivalenceTest suite;
//     sanitizer CI selects it with `ctest -R Paged`).
//
// Every test is parameterized over a fixed seed list, so each seed is its
// own ctest entry and a failure names the reproducing seed directly. The
// suite carries the `slow` ctest label.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"
#include "relational/csv.h"
#include "relational/kernels.h"
#include "relational/operators.h"
#include "relational/page_source.h"
#include "relational/table.h"
#include "storage/heap_file.h"
#include "storage/paged_table.h"

namespace cape {
namespace {

class KernelModeGuard {
 public:
  explicit KernelModeGuard(bool enabled) : saved_(DictionaryKernelsEnabled()) {
    SetDictionaryKernelsEnabled(enabled);
  }
  ~KernelModeGuard() { SetDictionaryKernelsEnabled(saved_); }

 private:
  bool saved_;
};

class VectorizedModeGuard {
 public:
  explicit VectorizedModeGuard(bool enabled) : saved_(VectorizedKernelsEnabled()) {
    SetVectorizedKernelsEnabled(enabled);
  }
  ~VectorizedModeGuard() { SetVectorizedKernelsEnabled(saved_); }

 private:
  bool saved_;
};

/// Small random relation: two string columns with skewed dictionaries
/// (including awkward strings — spaces, tabs, '%'), a nullable int64, and a
/// nullable double. All content is a pure function of the seed.
TablePtr MakeRandomTable(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto table = MakeEmptyTable({Field{"cat", DataType::kString, true},
                               Field{"city", DataType::kString, true},
                               Field{"num", DataType::kInt64, true},
                               Field{"val", DataType::kDouble, true}});

  const std::vector<std::string> cat_pool = {"alpha", "beta x", "g%mma", "d\te", "eps"};
  const std::vector<std::string> city_pool = {"oslo", "rio", "SIG KDD", "ICDE", "np", "q"};
  const int64_t num_rows = 80 + static_cast<int64_t>(rng() % 160);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int64_t r = 0; r < num_rows; ++r) {
    // Cubing the uniform draw skews the dictionary: index 0 dominates,
    // the tail codes are rare — the shape that exposes dense-path bugs.
    const double u = unit(rng);
    const size_t cat_idx = static_cast<size_t>(u * u * u * cat_pool.size());
    const size_t city_idx = static_cast<size_t>(rng() % city_pool.size());
    Row row;
    row.push_back(unit(rng) < 0.1 ? Value::Null() : Value::String(cat_pool[cat_idx]));
    row.push_back(unit(rng) < 0.1 ? Value::Null() : Value::String(city_pool[city_idx]));
    row.push_back(unit(rng) < 0.15 ? Value::Null()
                                   : Value::Int64(static_cast<int64_t>(rng() % 50)));
    row.push_back(unit(rng) < 0.15 ? Value::Null() : Value::Double(unit(rng) * 100.0));
    EXPECT_TRUE(table->AppendRow(row).ok());
  }
  return table;
}

class RandomEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomEquivalenceTest, KernelsMatchLegacyOnRandomTables) {
  TablePtr table = MakeRandomTable(GetParam());
  const std::vector<AggregateSpec> aggs = {AggregateSpec::CountStar("n"),
                                           AggregateSpec::Sum(2, "num_sum"),
                                           AggregateSpec::Sum(3, "val_sum")};
  // Filter values chosen so some conditions hit, some miss, one is NULL.
  const std::vector<std::vector<std::pair<int, Value>>> filters = {
      {{0, Value::String("alpha")}},
      {{0, Value::String("absent")}},
      {{0, Value::Null()}},
      {{0, Value::String("g%mma")}, {1, Value::String("ICDE")}},
      {{2, Value::Int64(7)}},
  };
  const std::vector<std::vector<SortKey>> sort_keys = {
      {{0, true}},
      {{0, false}, {2, true}},
      {{1, true}, {3, false}, {0, true}},
  };

  // Render every operator output under both kernel modes and compare bytes.
  std::vector<std::string> rendered[2];
  for (int mode = 0; mode < 2; ++mode) {
    KernelModeGuard guard(mode == 0);
    for (const auto& conditions : filters) {
      auto filtered = FilterEquals(*table, conditions);
      ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
      rendered[mode].push_back(WriteCsvString(**filtered));
    }
    for (const std::vector<int>& group_cols :
         std::vector<std::vector<int>>{{0}, {0, 1}, {1, 2}, {}}) {
      auto grouped = GroupByAggregate(*table, group_cols, aggs);
      ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
      rendered[mode].push_back(WriteCsvString(**grouped));
    }
    for (const auto& keys : sort_keys) {
      auto sorted = SortTable(*table, keys);
      ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
      rendered[mode].push_back(WriteCsvString(**sorted));
    }
  }
  ASSERT_EQ(rendered[0].size(), rendered[1].size());
  for (size_t i = 0; i < rendered[0].size(); ++i) {
    EXPECT_EQ(rendered[0][i], rendered[1][i]) << "operator output " << i << " differs "
                                              << "(seed " << GetParam() << ")";
  }
}

TEST_P(RandomEquivalenceTest, VectorizedKernelsMatchLegacyOnRandomTables) {
  TablePtr table = MakeRandomTable(GetParam());
  // Aggregates cover every update shape: mask popcounts (count(*) and
  // count(col) over a nullable column), the dual int64 sum, the double
  // sum/avg, and the boxed min/max comparisons (numeric and string).
  const std::vector<AggregateSpec> aggs = {
      AggregateSpec::CountStar("n"),
      AggregateSpec{AggFunc::kCount, 3, "val_n"},
      AggregateSpec::Sum(2, "num_sum"),
      AggregateSpec::Avg(3, "val_avg"),
      AggregateSpec::Min(3, "val_min"),
      AggregateSpec::Max(0, "cat_max"),
  };
  // Conditions cover code equality, the dictionary-miss proof, NULL on a
  // string and on a numeric column, multi-column conjunctions, int64
  // equality, and the scalar int64-vs-double shape.
  const std::vector<std::vector<std::pair<int, Value>>> filters = {
      {},
      {{0, Value::String("alpha")}},
      {{0, Value::String("absent")}},
      {{0, Value::Null()}},
      {{2, Value::Null()}},
      {{0, Value::String("g%mma")}, {1, Value::String("ICDE")}},
      {{2, Value::Int64(7)}},
      {{2, Value::Double(7.0)}},
      {{1, Value::String("rio")}, {2, Value::Int64(3)}},
  };
  const std::vector<std::vector<int>> group_sets = {{0}, {0, 1}, {1, 2}, {2}, {3}, {}};

  std::vector<std::string> rendered[2];
  std::vector<int64_t> counts[2];
  for (int mode = 0; mode < 2; ++mode) {
    VectorizedModeGuard guard(mode == 0);
    for (const auto& conditions : filters) {
      auto filtered = FilterEquals(*table, conditions);
      ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
      rendered[mode].push_back(WriteCsvString(**filtered));
      auto count = CountFilterMatches(*table, conditions);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      counts[mode].push_back(*count);
      EXPECT_EQ(*count, (*filtered)->num_rows());
      for (const std::vector<int>& group_cols : group_sets) {
        // The fused kernel must match its own definition: the composed
        // two-operator result computed in the same mode.
        auto fused = FilterGroupAggregate(*table, conditions, group_cols, aggs);
        ASSERT_TRUE(fused.ok()) << fused.status().ToString();
        auto composed = GroupByAggregate(**filtered, group_cols, aggs);
        ASSERT_TRUE(composed.ok()) << composed.status().ToString();
        EXPECT_EQ(WriteCsvString(**fused), WriteCsvString(**composed))
            << "fused vs composed differ (seed " << GetParam() << ")";
        rendered[mode].push_back(WriteCsvString(**fused));
      }
    }
    for (const std::vector<int>& group_cols : group_sets) {
      auto grouped = GroupByAggregate(*table, group_cols, aggs);
      ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
      rendered[mode].push_back(WriteCsvString(**grouped));
    }
  }
  ASSERT_EQ(rendered[0].size(), rendered[1].size());
  for (size_t i = 0; i < rendered[0].size(); ++i) {
    EXPECT_EQ(rendered[0][i], rendered[1][i])
        << "vectorized vs legacy output " << i << " differs (seed " << GetParam() << ")";
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST_P(RandomEquivalenceTest, VectorizedKernelsMatchWithDictionaryKernelsDisabled) {
  // The two toggles are independent: vectorized kernels always run on codes,
  // so flipping the dictionary switch must not change any vectorized output.
  TablePtr table = MakeRandomTable(GetParam());
  const std::vector<AggregateSpec> aggs = {AggregateSpec::CountStar("n"),
                                           AggregateSpec::Sum(3, "val_sum")};
  const std::vector<std::pair<int, Value>> conditions = {{0, Value::String("alpha")}};
  std::vector<std::string> rendered[2];
  for (int mode = 0; mode < 2; ++mode) {
    KernelModeGuard dict_guard(mode == 0);
    VectorizedModeGuard vec_guard(true);
    auto filtered = FilterEquals(*table, conditions);
    ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
    rendered[mode].push_back(WriteCsvString(**filtered));
    for (const std::vector<int>& group_cols :
         std::vector<std::vector<int>>{{0, 1}, {2}, {}}) {
      auto fused = FilterGroupAggregate(*table, conditions, group_cols, aggs);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      rendered[mode].push_back(WriteCsvString(**fused));
    }
  }
  ASSERT_EQ(rendered[0].size(), rendered[1].size());
  for (size_t i = 0; i < rendered[0].size(); ++i) {
    EXPECT_EQ(rendered[0][i], rendered[1][i])
        << "dictionary toggle changed vectorized output " << i << " (seed " << GetParam()
        << ")";
  }
}

TEST_P(RandomEquivalenceTest, RoundTrippedPatternSetIsByteIdenticalToFreshMining) {
  TablePtr table = MakeRandomTable(GetParam());
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.05;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.1;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount, AggFunc::kSum};
  auto mined = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  const Schema& schema = *table->schema();
  const uint64_t digest = MiningConfigDigest(config);
  const std::string text = SerializePatternSet(mined->patterns, schema);
  const std::string binary = SerializePatternSetBinary(mined->patterns, schema, digest);

  // Binary round trip reproduces the text serialization byte-for-byte, and
  // re-serializing the loaded set is a binary fixpoint.
  auto from_binary = DeserializePatternSetBinary(binary, schema);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  EXPECT_EQ(SerializePatternSet(*from_binary, schema), text) << "seed " << GetParam();
  EXPECT_EQ(SerializePatternSetBinary(*from_binary, schema, digest), binary);

  // Text round trip feeds back into an identical binary store.
  auto from_text = DeserializePatternSet(text, schema);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_EQ(SerializePatternSetBinary(*from_text, schema, digest), binary);

  // And a second fresh mining run serializes identically (mining itself is
  // deterministic, so any difference would be a codec defect).
  auto remined = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(remined.ok());
  EXPECT_EQ(SerializePatternSetBinary(remined->patterns, schema, digest), binary);
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, RandomEquivalenceTest,
                         ::testing::Values(7u, 21u, 42u, 99u, 1337u, 2026u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Paged-vs-in-memory byte identity (DESIGN.md §15).
// ---------------------------------------------------------------------------

class PagedModeGuard {
 public:
  explicit PagedModeGuard(bool enabled) : saved_(PagedStorageEnabled()) {
    SetPagedStorageEnabled(enabled);
  }
  ~PagedModeGuard() { SetPagedStorageEnabled(saved_); }

 private:
  bool saved_;
};

/// Multi-page variant of MakeRandomTable: same column shapes, enough rows to
/// span several 2048-row heap-file pages (so the paged fixtures cross page
/// boundaries, hit the short last page, and recycle frames under a small
/// budget). Content is a pure function of the seed.
TablePtr MakeLargeRandomTable(uint64_t seed) {
  std::mt19937_64 rng(seed * 2654435761u + 1);
  auto table = MakeEmptyTable({Field{"cat", DataType::kString, true},
                               Field{"city", DataType::kString, true},
                               Field{"num", DataType::kInt64, true},
                               Field{"val", DataType::kDouble, true}});
  const std::vector<std::string> cat_pool = {"alpha", "beta x", "g%mma", "d\te", "eps"};
  const std::vector<std::string> city_pool = {"oslo", "rio", "SIG KDD", "ICDE", "np", "q"};
  const int64_t num_rows = 4500 + static_cast<int64_t>(rng() % 1024);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  table->Reserve(num_rows);
  for (int64_t r = 0; r < num_rows; ++r) {
    const double u = unit(rng);
    const size_t cat_idx = static_cast<size_t>(u * u * u * cat_pool.size());
    Row row;
    row.push_back(unit(rng) < 0.1 ? Value::Null() : Value::String(cat_pool[cat_idx]));
    row.push_back(unit(rng) < 0.1 ? Value::Null()
                                  : Value::String(city_pool[rng() % city_pool.size()]));
    row.push_back(unit(rng) < 0.15 ? Value::Null()
                                   : Value::Int64(static_cast<int64_t>(rng() % 50)));
    row.push_back(unit(rng) < 0.15 ? Value::Null() : Value::Double(unit(rng) * 100.0));
    EXPECT_TRUE(table->AppendRow(row).ok());
  }
  return table;
}

/// A random table plus its heap-file twin opened as a non-resident paged
/// table under a deliberately tight budget (~2 pages), with the temp file
/// removed at scope exit.
struct PagedFixture {
  TablePtr resident;
  TablePtr paged;
  std::string path;

  ~PagedFixture() {
    paged.reset();
    if (!path.empty()) std::remove(path.c_str());
  }
};

PagedFixture MakePagedFixture(uint64_t seed) {
  PagedFixture fx;
  fx.resident = MakeLargeRandomTable(seed);
  fx.path = ::testing::TempDir() + "cape_paged_equiv_" + std::to_string(seed) + ".cape";
  EXPECT_TRUE(WriteTableToHeapFile(*fx.resident, fx.path, /*rows_per_page=*/2048).ok());
  auto opened = OpenPagedTable(fx.path, /*budget_bytes=*/1 << 17);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  fx.paged = *opened;
  return fx;
}

class PagedRandomEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagedRandomEquivalenceTest, PagedOperatorsMatchInMemoryUnderEveryToggle) {
  PagedFixture fx = MakePagedFixture(GetParam());
  const std::vector<AggregateSpec> aggs = {
      AggregateSpec::CountStar("n"),
      AggregateSpec{AggFunc::kCount, 3, "val_n"},
      AggregateSpec::Sum(2, "num_sum"),
      AggregateSpec::Avg(3, "val_avg"),
      AggregateSpec::Min(3, "val_min"),
      AggregateSpec::Max(0, "cat_max"),
  };
  const std::vector<std::vector<std::pair<int, Value>>> filters = {
      {},
      {{0, Value::String("alpha")}},
      {{0, Value::String("absent")}},
      {{0, Value::Null()}},
      {{0, Value::String("g%mma")}, {1, Value::String("ICDE")}},
      {{2, Value::Int64(7)}},
  };
  const std::vector<std::vector<int>> group_sets = {{0}, {0, 1}, {1, 2}, {3}, {}};

  // The paged scan must agree with the in-memory arrays no matter how the
  // dictionary / vectorized toggles are set for the in-memory side (the
  // byte-identity contract is toggle-independent).
  for (int dict = 0; dict < 2; ++dict) {
    for (int vec = 0; vec < 2; ++vec) {
      KernelModeGuard dict_guard(dict == 1);
      VectorizedModeGuard vec_guard(vec == 1);
      for (const auto& conditions : filters) {
        auto mem_count = CountFilterMatches(*fx.resident, conditions);
        auto paged_count = CountFilterMatches(*fx.paged, conditions);
        ASSERT_TRUE(mem_count.ok() && paged_count.ok());
        EXPECT_EQ(*mem_count, *paged_count) << "seed " << GetParam();

        auto mem_filtered = FilterEquals(*fx.resident, conditions);
        auto paged_filtered = FilterEquals(*fx.paged, conditions);
        ASSERT_TRUE(mem_filtered.ok()) << mem_filtered.status().ToString();
        ASSERT_TRUE(paged_filtered.ok()) << paged_filtered.status().ToString();
        EXPECT_EQ(WriteCsvString(**mem_filtered), WriteCsvString(**paged_filtered))
            << "seed " << GetParam() << " dict=" << dict << " vec=" << vec;

        for (const std::vector<int>& group_cols : group_sets) {
          auto mem = FilterGroupAggregate(*fx.resident, conditions, group_cols, aggs);
          auto pg = FilterGroupAggregate(*fx.paged, conditions, group_cols, aggs);
          ASSERT_TRUE(mem.ok()) << mem.status().ToString();
          ASSERT_TRUE(pg.ok()) << pg.status().ToString();
          EXPECT_EQ(WriteCsvString(**mem), WriteCsvString(**pg))
              << "seed " << GetParam() << " dict=" << dict << " vec=" << vec;
        }
      }
      for (const std::vector<int>& group_cols : group_sets) {
        auto mem = GroupByAggregate(*fx.resident, group_cols, aggs);
        auto pg = GroupByAggregate(*fx.paged, group_cols, aggs);
        ASSERT_TRUE(mem.ok()) << mem.status().ToString();
        ASSERT_TRUE(pg.ok()) << pg.status().ToString();
        EXPECT_EQ(WriteCsvString(**mem), WriteCsvString(**pg)) << "seed " << GetParam();
        auto mem_d = ProjectDistinct(*fx.resident, group_cols);
        auto pg_d = ProjectDistinct(*fx.paged, group_cols);
        ASSERT_TRUE(mem_d.ok() && pg_d.ok());
        EXPECT_EQ(WriteCsvString(**mem_d), WriteCsvString(**pg_d)) << "seed " << GetParam();
      }
    }
  }
}

TEST_P(PagedRandomEquivalenceTest, PagedMiningMatchesInMemoryAcrossThreadCounts) {
  PagedFixture fx = MakePagedFixture(GetParam());
  MiningConfig config;
  config.max_pattern_size = 2;
  config.local_gof_threshold = 0.05;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.1;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount, AggFunc::kSum};

  auto mine = [&](TablePtr t, int threads) -> std::string {
    auto engine = Engine::FromTable(std::move(t));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    engine->mining_config() = config;
    engine->set_num_threads(threads);
    const Status st = engine->MinePatterns("NAIVE");
    EXPECT_TRUE(st.ok()) << st.ToString();
    return SerializePatternSet(engine->patterns(), engine->schema());
  };

  // Out-of-core mining is deterministic and thread-count-invariant: every
  // (storage, threads) combination serializes the same pattern set.
  // (In-memory thread invariance is the determinism suite's job; here the
  // subject is the paged scan, so only it sweeps thread counts.)
  const std::string want = mine(fx.resident, 1);
  EXPECT_FALSE(want.empty());
  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(mine(fx.paged, threads), want)
        << "paged mining diverged (seed " << GetParam() << ", threads " << threads << ")";
  }
}

TEST_P(PagedRandomEquivalenceTest, ResidentAttachTogglesBetweenIdenticalScans) {
  // A/B shape: one resident table with its own heap file attached; the
  // process toggle flips scans between in-memory arrays and the paged path
  // over identical data, and every output byte matches.
  TablePtr table = MakeLargeRandomTable(GetParam());
  const std::string path =
      ::testing::TempDir() + "cape_paged_attach_" + std::to_string(GetParam()) + ".cape";
  ASSERT_TRUE(WriteTableToHeapFile(*table, path, /*rows_per_page=*/2048).ok());
  ASSERT_TRUE(AttachHeapFile(*table, path, /*budget_bytes=*/1 << 17).ok());

  const std::vector<AggregateSpec> aggs = {AggregateSpec::CountStar("n"),
                                           AggregateSpec::Sum(3, "val_sum")};
  const std::vector<std::pair<int, Value>> conditions = {{0, Value::String("alpha")}};
  std::vector<std::string> rendered[2];
  for (int mode = 0; mode < 2; ++mode) {
    PagedModeGuard guard(mode == 1);
    ASSERT_EQ(table->UsesPagedScan(), mode == 1);
    for (const std::vector<int>& group_cols :
         std::vector<std::vector<int>>{{0}, {1, 2}, {}}) {
      auto fused = FilterGroupAggregate(*table, conditions, group_cols, aggs);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      rendered[mode].push_back(WriteCsvString(**fused));
    }
    auto filtered = FilterEquals(*table, conditions);
    ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
    rendered[mode].push_back(WriteCsvString(**filtered));
  }
  ASSERT_EQ(rendered[0].size(), rendered[1].size());
  for (size_t i = 0; i < rendered[0].size(); ++i) {
    EXPECT_EQ(rendered[0][i], rendered[1][i])
        << "paged toggle changed output " << i << " (seed " << GetParam() << ")";
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, PagedRandomEquivalenceTest,
                         ::testing::Values(7u, 21u, 42u, 99u, 1337u, 2026u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Incremental maintenance vs from-scratch mining (DESIGN.md §16).
//
// The oracle: a base prefix of a random table mined once, then grown through
// Engine::AppendAndRemine under several append schedules, must serialize the
// exact same pattern set — and produce the exact same top-k explanations —
// as a cold mine of the full table, under every kernel-toggle combination,
// across scratch-miner thread counts, and against a paged twin of the grown
// table. maint_full_remines is pinned to zero so a silent fallback to
// re-mining (which would also pass the byte comparison) cannot masquerade as
// incremental maintenance.
// ---------------------------------------------------------------------------

MiningConfig OracleMiningConfig(int max_pattern_size) {
  MiningConfig config;
  config.max_pattern_size = max_pattern_size;
  config.local_gof_threshold = 0.05;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.1;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount, AggFunc::kSum};
  return config;
}

/// Fold points for the append schedules: element 0 is the base size mined
/// cold; each later element is the table size after one AppendAndRemine.
std::vector<std::vector<int64_t>> AppendSchedules(int64_t n) {
  const int64_t one_pct = std::max<int64_t>(1, n / 100);
  std::vector<int64_t> repeated;
  for (int64_t r = (n * 3) / 5; r < n; r += 7) repeated.push_back(r);
  repeated.push_back(n);
  return {
      {n - 1, n},        // a single appended row
      {n - one_pct, n},  // a 1% batch
      {n / 2, n},        // a 50% batch
      repeated,          // many small batches, Absorb after each
  };
}

/// Builds a table holding rows [0, size) of `pool` (same append order, so
/// dictionaries and group discovery order are identical to the pool's).
TablePtr PrefixTable(const TablePtr& pool, int64_t size) {
  auto table = std::make_shared<Table>(pool->schema());
  for (int64_t r = 0; r < size; ++r) {
    EXPECT_TRUE(table->AppendRow(pool->GetRow(r)).ok());
  }
  return table;
}

/// Mines rows [0, schedule.front()) cold, then replays the schedule through
/// AppendAndRemine. Returns the engine so callers can also explain on it.
Result<Engine> GrowIncrementally(const TablePtr& pool,
                                 const std::vector<int64_t>& schedule,
                                 const MiningConfig& config) {
  CAPE_ASSIGN_OR_RETURN(Engine engine, Engine::FromTable(PrefixTable(pool, schedule[0])));
  engine.mining_config() = config;
  CAPE_RETURN_IF_ERROR(engine.MinePatterns("ARP-MINE"));
  for (size_t i = 1; i < schedule.size(); ++i) {
    std::vector<Row> delta;
    for (int64_t r = schedule[i - 1]; r < schedule[i]; ++r) {
      delta.push_back(pool->GetRow(r));
    }
    CAPE_RETURN_IF_ERROR(engine.AppendAndRemine(delta));
  }
  return engine;
}

Result<Engine> MineScratch(const TablePtr& pool, int64_t size, const MiningConfig& config,
                           int threads) {
  CAPE_ASSIGN_OR_RETURN(Engine engine, Engine::FromTable(PrefixTable(pool, size)));
  engine.mining_config() = config;
  engine.set_num_threads(threads);
  CAPE_RETURN_IF_ERROR(engine.MinePatterns("ARP-MINE"));
  return engine;
}

class IncrementalVsScratchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalVsScratchTest, AppendSchedulesMatchScratchUnderEveryToggle) {
  TablePtr pool = MakeRandomTable(GetParam());
  const int64_t n = pool->num_rows();
  const MiningConfig config = OracleMiningConfig(3);

  for (int dict = 0; dict < 2; ++dict) {
    for (int vec = 0; vec < 2; ++vec) {
      KernelModeGuard dict_guard(dict == 1);
      VectorizedModeGuard vec_guard(vec == 1);
      auto scratch = MineScratch(pool, n, config, /*threads=*/1);
      ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
      const std::string want =
          SerializePatternSet(scratch->patterns(), scratch->schema());

      for (const std::vector<int64_t>& schedule : AppendSchedules(n)) {
        auto grown = GrowIncrementally(pool, schedule, config);
        ASSERT_TRUE(grown.ok()) << grown.status().ToString();
        EXPECT_EQ(grown->run_stats().maint_full_remines, 0)
            << "fell back to re-mining (seed " << GetParam() << ", base "
            << schedule[0] << ")";
        EXPECT_EQ(SerializePatternSet(grown->patterns(), grown->schema()), want)
            << "seed " << GetParam() << " base " << schedule[0] << " steps "
            << schedule.size() - 1 << " dict=" << dict << " vec=" << vec;
      }
    }
  }
}

TEST_P(IncrementalVsScratchTest, MaintainedSetMatchesScratchAcrossThreadCounts) {
  TablePtr pool = MakeRandomTable(GetParam());
  const int64_t n = pool->num_rows();
  const MiningConfig config = OracleMiningConfig(3);

  // The many-small-batches schedule is the one with the most maintained
  // state; the scratch side sweeps thread counts (byte identity must be
  // thread-count-invariant; on a single-hardware-thread host this still
  // exercises the work-splitting paths).
  auto grown = GrowIncrementally(pool, AppendSchedules(n)[3], config);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  const std::string maintained =
      SerializePatternSet(grown->patterns(), grown->schema());

  for (int threads : {1, 2, 4, 8}) {
    auto scratch = MineScratch(pool, n, config, threads);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    EXPECT_EQ(maintained, SerializePatternSet(scratch->patterns(), scratch->schema()))
        << "seed " << GetParam() << " threads " << threads;
  }
}

TEST_P(IncrementalVsScratchTest, MaintainedSetMatchesScratchMineOfPagedTwin) {
  TablePtr pool = MakeRandomTable(GetParam());
  const int64_t n = pool->num_rows();
  // max_pattern_size 2 mirrors the paged-mining precedent above (the paged
  // scan re-reads pages per query; depth 3 buys no extra coverage here).
  const MiningConfig config = OracleMiningConfig(2);

  auto grown = GrowIncrementally(pool, AppendSchedules(n)[1], config);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();

  // Spill the grown table to a heap file and scratch-mine the non-resident
  // twin: incremental maintenance on resident arrays must land on the same
  // bytes as a cold out-of-core mine of the same content.
  const std::string path = ::testing::TempDir() + "cape_incr_paged_" +
                           std::to_string(GetParam()) + ".cape";
  ASSERT_TRUE(WriteTableToHeapFile(*grown->table(), path, /*rows_per_page=*/2048).ok());
  auto paged = OpenPagedTable(path, /*budget_bytes=*/1 << 17);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto twin = Engine::FromTable(*paged);
  ASSERT_TRUE(twin.ok());
  twin->mining_config() = config;
  // ARP-MINE, not NAIVE: the maintained set mirrors the ARP evaluation
  // order bit-for-bit, and the two miners agree only up to the last ulp of
  // the deviation statistics (their fold orders differ). The paged toggle
  // is the subject here, so the twin runs the same algorithm out-of-core.
  ASSERT_TRUE(twin->MinePatterns("ARP-MINE").ok());

  EXPECT_EQ(SerializePatternSet(grown->patterns(), grown->schema()),
            SerializePatternSet(twin->patterns(), twin->schema()))
      << "seed " << GetParam();
  std::remove(path.c_str());
}

TEST_P(IncrementalVsScratchTest, TopKExplanationsMatchScratchAfterAppends) {
  TablePtr pool = MakeRandomTable(GetParam());
  const int64_t n = pool->num_rows();
  const MiningConfig config = OracleMiningConfig(3);

  auto grown = GrowIncrementally(pool, AppendSchedules(n)[2], config);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  auto scratch = MineScratch(pool, n, config, /*threads=*/1);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();

  // One question per direction, anchored at the first group with both
  // grouping attributes present. The full rendered top-k must match — the
  // explanation pipeline consumes the maintained pattern set downstream, so
  // any divergence the serialization comparison missed would surface here.
  Value cat, city;
  bool found = false;
  for (int64_t r = 0; r < n && !found; ++r) {
    if (!pool->GetValue(r, 0).is_null() && !pool->GetValue(r, 1).is_null()) {
      cat = pool->GetValue(r, 0);
      city = pool->GetValue(r, 1);
      found = true;
    }
  }
  ASSERT_TRUE(found);

  for (Direction dir : {Direction::kLow, Direction::kHigh}) {
    auto question =
        grown->MakeQuestion({"cat", "city"}, {cat, city}, AggFunc::kCount, "*", dir);
    ASSERT_TRUE(question.ok()) << question.status().ToString();
    auto from_grown = grown->Explain(*question);
    auto from_scratch = scratch->Explain(*question);
    ASSERT_TRUE(from_grown.ok()) << from_grown.status().ToString();
    ASSERT_TRUE(from_scratch.ok()) << from_scratch.status().ToString();
    EXPECT_EQ(grown->RenderExplanations(from_grown->explanations),
              scratch->RenderExplanations(from_scratch->explanations))
        << "seed " << GetParam() << " dir " << static_cast<int>(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, IncrementalVsScratchTest,
                         ::testing::Values(7u, 21u, 42u, 99u, 1337u, 2026u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cape
