#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "relational/csv.h"

namespace cape {
namespace {

TEST(CsvReadTest, InfersTypes) {
  auto result = ReadCsvString("name,year,score\nAX,2007,1.5\nAY,2008,2\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = **result;
  EXPECT_EQ(t.schema()->field(0).type, DataType::kString);
  EXPECT_EQ(t.schema()->field(1).type, DataType::kInt64);
  EXPECT_EQ(t.schema()->field(2).type, DataType::kDouble);
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.GetValue(1, 1), Value::Int64(2008));
  EXPECT_EQ(t.GetValue(1, 2), Value::Double(2.0));
}

TEST(CsvReadTest, EmptyFieldsBecomeNull) {
  auto result = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)->GetValue(0, 1).is_null());
  EXPECT_TRUE((*result)->GetValue(1, 0).is_null());
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto result = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0, 0), Value::String("x,y"));
  EXPECT_EQ((*result)->GetValue(0, 1), Value::String("he said \"hi\""));
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  CsvReadOptions options;
  options.has_header = false;
  auto result = ReadCsvString("1,a\n2,b\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema()->field(0).name, "c0");
  EXPECT_EQ((*result)->schema()->field(1).name, "c1");
  EXPECT_EQ((*result)->num_rows(), 2);
}

TEST(CsvReadTest, ExplicitSchemaOverridesInference) {
  CsvReadOptions options;
  options.schema = Schema::Make({Field{"k", DataType::kString, true},
                                 Field{"v", DataType::kString, true}});
  auto result = ReadCsvString("k,v\n1,2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0, 0), Value::String("1"));
}

TEST(CsvReadTest, Errors) {
  EXPECT_TRUE(ReadCsvString("").status().IsInvalidArgument());
  EXPECT_TRUE(ReadCsvString("a,b\n1\n").status().IsInvalidArgument());  // ragged row
  EXPECT_TRUE(ReadCsvString("a\n\"unterminated\n").status().IsInvalidArgument());
  CsvReadOptions options;
  options.schema = Schema::Make({Field{"only", DataType::kInt64, true}});
  EXPECT_TRUE(ReadCsvString("a,b\n1,2\n", options).status().IsInvalidArgument());
}

TEST(CsvReadTest, CarriageReturnsStripped) {
  auto result = ReadCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0, 1), Value::Int64(2));
}

TEST(CsvWriteTest, RoundTrip) {
  auto table = MakeEmptyTable({Field{"name", DataType::kString, true},
                               Field{"year", DataType::kInt64, true}});
  ASSERT_TRUE(table->AppendRow({Value::String("a,b \"x\""), Value::Int64(3)}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Null(), Value::Int64(-1)}).ok());
  std::string csv = WriteCsvString(*table);
  auto back = ReadCsvString(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->GetValue(0, 0), Value::String("a,b \"x\""));
  EXPECT_EQ((*back)->GetValue(0, 1), Value::Int64(3));
  EXPECT_TRUE((*back)->GetValue(1, 0).is_null());
}

TEST(CsvFileTest, WriteAndReadFile) {
  auto table = MakeEmptyTable({Field{"x", DataType::kInt64, true}});
  ASSERT_TRUE(table->AppendRow({Value::Int64(11)}).ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "cape_csv_test.csv").string();
  ASSERT_TRUE(WriteCsvFile(*table, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->GetValue(0, 0), Value::Int64(11));
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile("/nonexistent/no.csv").status().IsIOError());
}

TEST(CsvQuarantineTest, StrictModeStillFailsWithLineNumber) {
  auto result = ReadCsvString("a,b\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(CsvQuarantineTest, MalformedRowsAreSkippedAndReported) {
  CsvReadOptions options;
  options.quarantine_malformed = true;
  CsvParseReport report;
  // Line 3 is ragged; line 5 has an unterminated quote.
  auto result = ReadCsvString("a,b\n1,2\n3\n4,5\n\"oops,6\n", options, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->num_rows(), 2);
  EXPECT_EQ(report.num_rows_loaded, 2);
  EXPECT_EQ(report.num_rows_quarantined, 2);
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].line, 5);  // record-level reject happens first
  EXPECT_EQ(report.diagnostics[1].line, 3);
}

TEST(CsvQuarantineTest, BadFieldRecordsColumnIndex) {
  CsvReadOptions options;
  options.quarantine_malformed = true;
  auto fields = std::vector<Field>{Field{"a", DataType::kInt64, true},
                                   Field{"b", DataType::kInt64, true}};
  options.schema = Schema::Make(std::move(fields));
  CsvParseReport report;
  auto result = ReadCsvString("a,b\n1,2\n3,oops\n", options, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(report.num_rows_loaded, 1);
  EXPECT_EQ(report.num_rows_quarantined, 1);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].line, 3);
  EXPECT_EQ(report.diagnostics[0].column, 1);
}

TEST(CsvQuarantineTest, DiagnosticsAreCapped) {
  CsvReadOptions options;
  options.quarantine_malformed = true;
  options.max_quarantine_diagnostics = 2;
  CsvParseReport report;
  auto result = ReadCsvString("a,b\n1,2\nx\nx\nx\nx\n", options, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.num_rows_quarantined, 4);
  EXPECT_EQ(report.diagnostics.size(), 2u);
}

TEST(CsvQuarantineTest, AllRowsMalformedIsAnError) {
  CsvReadOptions options;
  options.quarantine_malformed = true;
  auto result = ReadCsvString("a,b\n1\n2\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace cape
