#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "explain/baseline.h"
#include "explain/distance.h"
#include "explain/explainer.h"
#include "explain/narrative.h"
#include "explain/user_question.h"
#include "pattern/mining.h"
#include "relational/table.h"

namespace cape {
namespace {

/// A small table engineered for Example 5: three authors with constant
/// yearly output; AX dips in SIGKDD 2007 and spikes in ICDE 2007.
TablePtr Example5Table() {
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  auto add_n = [&](const char* a, int y, const char* v, int n) {
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(
          table->AppendRow({Value::String(a), Value::Int64(y), Value::String(v)}).ok());
    }
  };
  for (int year = 2004; year <= 2009; ++year) {
    // AX: SIGKDD 3/year except 1 in 2007; ICDE 3/year except 6 in 2007.
    add_n("AX", year, "SIGKDD", year == 2007 ? 1 : 3);
    add_n("AX", year, "ICDE", year == 2007 ? 6 : 3);
    // Background authors keep the patterns globally supported.
    add_n("AY", year, "SIGKDD", 2);
    add_n("AY", year, "ICDE", 2);
    add_n("AZ", year, "SIGKDD", 4);
    add_n("AZ", year, "ICDE", 3);
  }
  return table;
}

MiningConfig Example5MiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.5;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount};
  return config;
}

UserQuestion Phi0(TablePtr table) {
  auto q = MakeUserQuestion(
      table, {"author", "venue", "year"},
      {Value::String("AX"), Value::String("SIGKDD"), Value::Int64(2007)}, AggFunc::kCount,
      "*", Direction::kLow);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).ValueOrDie();
}

TEST(UserQuestionTest, BuildsAndValidates) {
  auto table = Example5Table();
  UserQuestion q = Phi0(table);
  EXPECT_EQ(q.result_value, 1.0);
  EXPECT_EQ(q.group_attrs, AttrSet::FromIndices({0, 1, 2}));
  // Values normalized to ascending attribute order: author, year, venue.
  EXPECT_EQ(q.group_values[0], Value::String("AX"));
  EXPECT_EQ(q.group_values[1], Value::Int64(2007));
  EXPECT_EQ(q.group_values[2], Value::String("SIGKDD"));
  EXPECT_NE(q.ToString().find("low"), std::string::npos);

  // Projection helper.
  EXPECT_EQ(q.ProjectGroupValues(AttrSet::Single(0)), (Row{Value::String("AX")}));
  EXPECT_EQ(q.ProjectGroupValues(AttrSet::FromIndices({1, 2})),
            (Row{Value::Int64(2007), Value::String("SIGKDD")}));
}

TEST(UserQuestionTest, RejectionCases) {
  auto table = Example5Table();
  // Unknown attribute.
  EXPECT_TRUE(MakeUserQuestion(table, {"bogus"}, {Value::Int64(1)}, AggFunc::kCount, "*",
                               Direction::kLow)
                  .status()
                  .IsNotFound());
  // Tuple not in Q(R).
  EXPECT_TRUE(MakeUserQuestion(table, {"author"}, {Value::String("NOBODY")},
                               AggFunc::kCount, "*", Direction::kLow)
                  .status()
                  .IsNotFound());
  // Arity mismatch.
  EXPECT_TRUE(MakeUserQuestion(table, {"author", "year"}, {Value::String("AX")},
                               AggFunc::kCount, "*", Direction::kLow)
                  .status()
                  .IsInvalidArgument());
  // Duplicate group-by attribute.
  EXPECT_TRUE(MakeUserQuestion(table, {"author", "author"},
                               {Value::String("AX"), Value::String("AX")}, AggFunc::kCount,
                               "*", Direction::kLow)
                  .status()
                  .IsInvalidArgument());
  // Aggregated attribute inside the group-by.
  EXPECT_TRUE(MakeUserQuestion(table, {"year"}, {Value::Int64(2007)}, AggFunc::kSum,
                               "year", Direction::kLow)
                  .status()
                  .IsInvalidArgument());
  // Null relation.
  EXPECT_TRUE(MakeUserQuestion(nullptr, {"author"}, {Value::String("AX")}, AggFunc::kCount,
                               "*", Direction::kLow)
                  .status()
                  .IsInvalidArgument());
}

TEST(DistanceModelTest, AttributeDistances) {
  CategoricalDistance cat;
  EXPECT_DOUBLE_EQ(cat.Distance(Value::String("a"), Value::String("a")), 0.0);
  EXPECT_DOUBLE_EQ(cat.Distance(Value::String("a"), Value::String("b")), 1.0);

  NumericDistance num(10.0);
  EXPECT_DOUBLE_EQ(num.Distance(Value::Int64(3), Value::Int64(3)), 0.0);
  EXPECT_DOUBLE_EQ(num.Distance(Value::Int64(3), Value::Int64(8)), 0.5);
  EXPECT_DOUBLE_EQ(num.Distance(Value::Int64(0), Value::Int64(100)), 1.0);
  EXPECT_DOUBLE_EQ(num.Distance(Value::Null(), Value::Int64(1)), 1.0);

  BandedNumericDistance banded(2.0);
  EXPECT_DOUBLE_EQ(banded.Distance(Value::Int64(2007), Value::Int64(2007)), 0.0);
  EXPECT_DOUBLE_EQ(banded.Distance(Value::Int64(2007), Value::Int64(2006)), 0.5);
  EXPECT_DOUBLE_EQ(banded.Distance(Value::Int64(2007), Value::Int64(2012)), 1.0);

  ClassBasedDistance classes({{"SIGKDD", 0}, {"ICDM", 0}, {"SIGMOD", 1}, {"VLDB", 1}},
                             0.4);
  EXPECT_DOUBLE_EQ(classes.Distance(Value::String("SIGKDD"), Value::String("SIGKDD")), 0.0);
  EXPECT_DOUBLE_EQ(classes.Distance(Value::String("SIGKDD"), Value::String("ICDM")), 0.4);
  EXPECT_DOUBLE_EQ(classes.Distance(Value::String("SIGKDD"), Value::String("VLDB")), 1.0);
  EXPECT_DOUBLE_EQ(classes.Distance(Value::String("SIGKDD"), Value::String("UNKNOWN")),
                   1.0);
}

TEST(DistanceModelTest, Definition9Semantics) {
  auto table = Example5Table();
  DistanceModel model = DistanceModel::MakeDefault(*table);

  // Identity.
  AttrSet all = AttrSet::FromIndices({0, 1, 2});
  Row t{Value::String("AX"), Value::Int64(2007), Value::String("SIGKDD")};
  EXPECT_DOUBLE_EQ(model.Distance(all, t, all, t), 0.0);

  // Symmetry.
  Row u{Value::String("AX"), Value::Int64(2007), Value::String("ICDE")};
  EXPECT_DOUBLE_EQ(model.Distance(all, t, all, u), model.Distance(all, u, all, t));

  // One attribute differs fully (venue): sqrt(w / (3w)) = sqrt(1/3).
  EXPECT_NEAR(model.Distance(all, t, all, u), std::sqrt(1.0 / 3.0), 1e-12);

  // Missing attribute counts as distance 1: t over (author, year) only.
  AttrSet coarse = AttrSet::FromIndices({0, 1});
  Row tc{Value::String("AX"), Value::Int64(2007)};
  EXPECT_NEAR(model.Distance(all, t, coarse, tc), std::sqrt(1.0 / 3.0), 1e-12);

  // Disjoint schemas: everything contributes 1.
  AttrSet venue_only = AttrSet::Single(2);
  Row tv{Value::String("SIGKDD")};
  EXPECT_NEAR(model.Distance(coarse, tc, venue_only, tv), 1.0, 1e-12);
}

TEST(DistanceModelTest, WeightsAffectDistance) {
  auto table = Example5Table();
  DistanceModel model = DistanceModel::MakeDefault(*table);
  AttrSet all = AttrSet::FromIndices({0, 1, 2});
  Row t{Value::String("AX"), Value::Int64(2007), Value::String("SIGKDD")};
  Row u{Value::String("AY"), Value::Int64(2007), Value::String("SIGKDD")};
  const double before = model.Distance(all, t, all, u);
  model.SetWeight(0, 0.05);  // de-emphasize author
  const double after = model.Distance(all, t, all, u);
  EXPECT_LT(after, before);
}

TEST(DistanceModelTest, LowerBoundIsSoundOverRandomTuples) {
  auto table = Example5Table();
  DistanceModel model = DistanceModel::MakeDefault(*table);
  std::mt19937_64 rng(9);
  const char* authors[] = {"AX", "AY", "AZ"};
  const char* venues[] = {"SIGKDD", "ICDE"};
  for (int trial = 0; trial < 200; ++trial) {
    AttrSet a1(rng() % 7 + 1);  // non-empty subset of {0,1,2}
    AttrSet a2(rng() % 7 + 1);
    auto make_values = [&](AttrSet attrs) {
      Row row;
      for (int attr : attrs.ToIndices()) {
        if (attr == 0) row.push_back(Value::String(authors[rng() % 3]));
        if (attr == 1) row.push_back(Value::Int64(2004 + static_cast<int>(rng() % 6)));
        if (attr == 2) row.push_back(Value::String(venues[rng() % 2]));
      }
      return row;
    };
    Row v1 = make_values(a1);
    Row v2 = make_values(a2);
    EXPECT_LE(model.LowerBound(a1, a2), model.Distance(a1, v1, a2, v2) + 1e-12);
  }
}

TEST(ExplainTest, Example5CounterbalanceIsFound) {
  auto table = Example5Table();
  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  ASSERT_GT(mined->patterns.size(), 0u);

  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  ExplainConfig config;
  config.top_k = 10;
  auto result = MakeNaiveExplainer()->Explain(q, mined->patterns, distance, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->explanations.empty());

  // The ICDE 2007 spike must appear among the counterbalances.
  bool found_icde_2007 = false;
  for (const Explanation& e : result->explanations) {
    if (e.tuple_attrs == AttrSet::FromIndices({0, 1, 2}) &&
        e.tuple_values == Row{Value::String("AX"), Value::Int64(2007),
                              Value::String("ICDE")}) {
      found_icde_2007 = true;
      EXPECT_GT(e.agg_value, e.predicted);  // deviates opposite to `low`
      EXPECT_GT(e.deviation, 0.0);
      EXPECT_GT(e.score, 0.0);
    }
    // Every explanation must counterbalance: positive deviation for `low`.
    EXPECT_GT(e.deviation, 0.0);
    // Scores are internally consistent with Definition 10.
    EXPECT_NEAR(e.score,
                e.deviation / ((e.distance + config.epsilon) *
                               (std::fabs(e.norm) + config.epsilon)),
                1e-9);
  }
  EXPECT_TRUE(found_icde_2007);

  // The question tuple itself never appears.
  for (const Explanation& e : result->explanations) {
    EXPECT_FALSE(e.tuple_attrs == q.group_attrs && e.tuple_values == q.group_values);
  }
}

TEST(ExplainTest, HighDirectionFindsNegativeDeviations) {
  auto table = Example5Table();
  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  // "Why is AX's ICDE 2007 count high?" — SIGKDD 2007 dip counterbalances.
  auto q = MakeUserQuestion(table, {"author", "venue", "year"},
                            {Value::String("AX"), Value::String("ICDE"), Value::Int64(2007)},
                            AggFunc::kCount, "*", Direction::kHigh);
  ASSERT_TRUE(q.ok());
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = MakeNaiveExplainer()->Explain(*q, mined->patterns, distance, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty());
  for (const Explanation& e : result->explanations) {
    EXPECT_LT(e.deviation, 0.0);
    EXPECT_GT(e.score, 0.0);
  }
  bool found_sigkdd_dip = false;
  for (const Explanation& e : result->explanations) {
    if (e.tuple_values == Row{Value::String("AX"), Value::Int64(2007),
                              Value::String("SIGKDD")}) {
      found_sigkdd_dip = true;
    }
  }
  EXPECT_TRUE(found_sigkdd_dip);
}

TEST(ExplainTest, NoDuplicateTuplesInTopK) {
  auto table = Example5Table();
  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = MakeOptimizedExplainer()->Explain(q, mined->patterns, distance, {});
  ASSERT_TRUE(result.ok());
  std::set<std::string> seen;
  for (const Explanation& e : result->explanations) {
    std::string key = std::to_string(e.tuple_attrs.bits());
    for (const Value& v : e.tuple_values) key += "|" + v.ToString();
    EXPECT_TRUE(seen.insert(key).second) << "duplicate tuple " << key;
  }
}

TEST(ExplainTest, EmptyPatternSetYieldsNoExplanations) {
  auto table = Example5Table();
  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = MakeNaiveExplainer()->Explain(q, PatternSet(), distance, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->explanations.empty());
  EXPECT_EQ(result->profile.num_relevant_patterns, 0);
}

TEST(ExplainTest, TopKLimitsOutput) {
  auto table = Example5Table();
  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  ExplainConfig config;
  config.top_k = 2;
  auto small = MakeNaiveExplainer()->Explain(q, mined->patterns, distance, config);
  ASSERT_TRUE(small.ok());
  EXPECT_LE(small->explanations.size(), 2u);
  config.top_k = 1000;
  auto large = MakeNaiveExplainer()->Explain(q, mined->patterns, distance, config);
  ASSERT_TRUE(large.ok());
  EXPECT_GE(large->explanations.size(), small->explanations.size());
  // Scores are sorted descending.
  for (size_t i = 1; i < large->explanations.size(); ++i) {
    EXPECT_GE(large->explanations[i - 1].score, large->explanations[i].score);
  }
}

/// Property: the optimized generator returns exactly the naive top-k.
class OptEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptEquivalenceProperty, OptimizedMatchesNaive) {
  std::mt19937_64 rng(GetParam());
  // Random publications table.
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  const char* authors[] = {"A", "B", "C", "D", "E", "F"};
  const char* venues[] = {"V1", "V2", "V3"};
  for (int i = 0; i < 900; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::String(authors[rng() % 6]),
                                 Value::Int64(2000 + static_cast<int>(rng() % 8)),
                                 Value::String(venues[rng() % 3])})
                    .ok());
  }
  MiningConfig mining_config;
  mining_config.max_pattern_size = 3;
  mining_config.local_gof_threshold = 0.05;
  mining_config.local_support_threshold = 3;
  mining_config.global_confidence_threshold = 0.2;
  mining_config.global_support_threshold = 2;
  mining_config.agg_functions = {AggFunc::kCount};
  auto mined = MakeArpMiner()->Mine(*table, mining_config);
  ASSERT_TRUE(mined.ok());
  if (mined->patterns.empty()) GTEST_SKIP() << "no patterns on this seed";

  // Ask about a random existing group.
  auto groups = GroupByAggregate(*table, std::vector<int>{0, 1, 2},
                                 {AggregateSpec::CountStar("cnt")});
  ASSERT_TRUE(groups.ok());
  const int64_t row = static_cast<int64_t>(rng() % (*groups)->num_rows());
  auto q = MakeUserQuestion(
      table, {"author", "year", "venue"},
      {(*groups)->GetValue(row, 0), (*groups)->GetValue(row, 1), (*groups)->GetValue(row, 2)},
      AggFunc::kCount, "*", rng() % 2 == 0 ? Direction::kLow : Direction::kHigh);
  ASSERT_TRUE(q.ok());

  DistanceModel distance = DistanceModel::MakeDefault(*table);
  ExplainConfig config;
  config.top_k = 7;
  auto naive = MakeNaiveExplainer()->Explain(*q, mined->patterns, distance, config);
  auto opt = MakeOptimizedExplainer()->Explain(*q, mined->patterns, distance, config);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(opt.ok());

  ASSERT_EQ(naive->explanations.size(), opt->explanations.size());
  for (size_t i = 0; i < naive->explanations.size(); ++i) {
    EXPECT_NEAR(naive->explanations[i].score, opt->explanations[i].score, 1e-9);
    EXPECT_EQ(naive->explanations[i].tuple_values, opt->explanations[i].tuple_values);
    EXPECT_EQ(naive->explanations[i].tuple_attrs, opt->explanations[i].tuple_attrs);
  }
  // The optimized generator must never *examine* more tuples than naive.
  EXPECT_LE(opt->profile.num_tuples_checked, naive->profile.num_tuples_checked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalenceProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

TEST(ExplainTest, SumAggregateEndToEnd) {
  // Retail-style relation: stores with steady monthly revenue; store S1
  // dips in month 6 and spikes in month 7.
  auto table = MakeEmptyTable({Field{"store", DataType::kString, false},
                               Field{"month", DataType::kInt64, false},
                               Field{"amount", DataType::kInt64, false}});
  auto add_sales = [&](const char* store, int month, int total) {
    // Split the monthly total into a few transactions.
    int remaining = total;
    while (remaining > 0) {
      int tx = std::min(remaining, 25);
      ASSERT_TRUE(table
                      ->AppendRow({Value::String(store), Value::Int64(month),
                                   Value::Int64(tx)})
                      .ok());
      remaining -= tx;
    }
  };
  for (int month = 1; month <= 12; ++month) {
    add_sales("S1", month, month == 6 ? 75 : (month == 7 ? 130 : 100));
    add_sales("S2", month, 80);
    add_sales("S3", month, 120);
  }

  MiningConfig mining;
  mining.max_pattern_size = 2;
  mining.local_gof_threshold = 0.01;  // sums have large absolute chi-square stats
  mining.local_support_threshold = 4;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 2;
  mining.agg_functions = {AggFunc::kSum};
  auto mined = MakeArpMiner()->Mine(*table, mining);
  ASSERT_TRUE(mined.ok());
  Pattern store_month_sum{AttrSet::Single(0), AttrSet::Single(1), AggFunc::kSum, 2,
                          ModelType::kConst};
  ASSERT_NE(mined->patterns.Find(store_month_sum), nullptr)
      << mined->patterns.ToString(*table->schema());

  auto q = MakeUserQuestion(table, {"store", "month"},
                            {Value::String("S1"), Value::Int64(6)}, AggFunc::kSum,
                            "amount", Direction::kLow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->result_value, 75.0);

  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = MakeOptimizedExplainer()->Explain(*q, mined->patterns, distance, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty());
  // The month-7 revenue spike must be the counterbalance.
  bool found_spike = false;
  for (const Explanation& e : result->explanations) {
    EXPECT_GT(e.deviation, 0.0);
    if (e.tuple_values == Row{Value::String("S1"), Value::Int64(7)}) {
      found_spike = true;
      EXPECT_DOUBLE_EQ(e.agg_value, 130.0);
    }
  }
  EXPECT_TRUE(found_spike);
}

TEST(ExplainTest, ProvenanceIsTheQuestionSlice) {
  auto table = Example5Table();
  UserQuestion q = Phi0(table);
  auto provenance = q.Provenance();
  ASSERT_TRUE(provenance.ok());
  // Exactly the 1 SIGKDD 2007 paper — the paper's point: provenance alone
  // cannot explain why the count is low.
  EXPECT_EQ((*provenance)->num_rows(), 1);
  EXPECT_EQ((*provenance)->GetValue(0, 0), Value::String("AX"));
  EXPECT_EQ((*provenance)->GetValue(0, 2), Value::String("SIGKDD"));
}

TEST(ExplainTest, AblationFlagsPreserveResults) {
  auto table = Example5Table();
  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);

  ExplainConfig config;
  auto reference = MakeNaiveExplainer()->Explain(q, mined->patterns, distance, config);
  ASSERT_TRUE(reference.ok());
  for (bool prune_pairs : {false, true}) {
    for (bool prune_locals : {false, true}) {
      config.prune_pairs = prune_pairs;
      config.prune_locals = prune_locals;
      auto variant = MakeOptimizedExplainer()->Explain(q, mined->patterns, distance, config);
      ASSERT_TRUE(variant.ok());
      ASSERT_EQ(variant->explanations.size(), reference->explanations.size());
      for (size_t i = 0; i < variant->explanations.size(); ++i) {
        EXPECT_NEAR(variant->explanations[i].score, reference->explanations[i].score,
                    1e-9);
      }
    }
  }
}

TEST(NarrativeTest, RendersExample5Interpretation) {
  auto table = Example5Table();
  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = MakeOptimizedExplainer()->Explain(q, mined->patterns, distance, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty());

  const Explanation* icde = nullptr;
  for (const Explanation& e : result->explanations) {
    if (e.tuple_values ==
        Row{Value::String("AX"), Value::Int64(2007), Value::String("ICDE")}) {
      icde = &e;
    }
  }
  ASSERT_NE(icde, nullptr);
  const std::string narrative = NarrateExplanation(q, *icde, *table->schema());
  // The Example 5 story, in one sentence: pattern context, the low
  // observation, and the counterbalance with its deviation.
  EXPECT_NE(narrative.find("Even though"), std::string::npos);
  EXPECT_NE(narrative.find("lower than expected"), std::string::npos);
  EXPECT_NE(narrative.find("venue=SIGKDD"), std::string::npos);
  EXPECT_NE(narrative.find("venue=ICDE"), std::string::npos);
  EXPECT_NE(narrative.find("above"), std::string::npos) << narrative;

  // High direction flips the phrasing.
  auto high_q = MakeUserQuestion(table, {"author", "venue", "year"},
                                 {Value::String("AX"), Value::String("ICDE"),
                                  Value::Int64(2007)},
                                 AggFunc::kCount, "*", Direction::kHigh);
  ASSERT_TRUE(high_q.ok());
  auto high_result =
      MakeOptimizedExplainer()->Explain(*high_q, mined->patterns, distance, {});
  ASSERT_TRUE(high_result.ok());
  ASSERT_FALSE(high_result->explanations.empty());
  const std::string high_narrative =
      NarrateExplanation(*high_q, high_result->explanations[0], *table->schema());
  EXPECT_NE(high_narrative.find("higher than expected"), std::string::npos);
  EXPECT_NE(high_narrative.find("below"), std::string::npos);
}

TEST(MissingValueQuestionTest, ZeroCountQuestionIsExplainable) {
  // Like Example5Table but AX has NO SIGKDD papers at all in 2007 — the
  // paper's Section 7 open problem.
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  auto add_n = [&](const char* a, int y, const char* v, int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          table->AppendRow({Value::String(a), Value::Int64(y), Value::String(v)}).ok());
    }
  };
  for (int year = 2004; year <= 2009; ++year) {
    add_n("AX", year, "SIGKDD", year == 2007 ? 0 : 3);
    add_n("AX", year, "ICDE", year == 2007 ? 6 : 3);
    add_n("AY", year, "SIGKDD", 2);
    add_n("AY", year, "ICDE", 2);
    add_n("AZ", year, "SIGKDD", 4);
    add_n("AZ", year, "ICDE", 3);
  }

  // MakeUserQuestion refuses (t not in Q(R)); the missing-value variant
  // accepts and models the count as 0.
  EXPECT_TRUE(MakeUserQuestion(table, {"author", "venue", "year"},
                               {Value::String("AX"), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow)
                  .status()
                  .IsNotFound());
  auto q = MakeMissingValueQuestion(table, {"author", "venue", "year"},
                                    {Value::String("AX"), Value::String("SIGKDD"),
                                     Value::Int64(2007)});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->result_value, 0.0);
  EXPECT_EQ(q->dir, Direction::kLow);
  auto provenance = q->Provenance();
  ASSERT_TRUE(provenance.ok());
  EXPECT_EQ((*provenance)->num_rows(), 0);  // nothing to show: the paper's point

  auto mined = MakeArpMiner()->Mine(*table, Example5MiningConfig());
  ASSERT_TRUE(mined.ok());
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = MakeOptimizedExplainer()->Explain(*q, mined->patterns, distance, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty());
  bool found_icde = false;
  for (const Explanation& e : result->explanations) {
    EXPECT_GT(e.deviation, 0.0);
    if (e.tuple_values ==
        Row{Value::String("AX"), Value::Int64(2007), Value::String("ICDE")}) {
      found_icde = true;
    }
  }
  EXPECT_TRUE(found_icde);
}

TEST(MissingValueQuestionTest, Validation) {
  auto table = Example5Table();
  // Group exists -> use the regular constructor.
  EXPECT_TRUE(MakeMissingValueQuestion(table, {"author", "venue", "year"},
                                       {Value::String("AX"), Value::String("SIGKDD"),
                                        Value::Int64(2007)})
                  .status()
                  .IsInvalidArgument());
  // A value outside the attribute's domain is a typo, not a missing group.
  EXPECT_TRUE(MakeMissingValueQuestion(table, {"author", "venue", "year"},
                                       {Value::String("NOBODY"), Value::String("SIGKDD"),
                                        Value::Int64(2007)})
                  .status()
                  .IsNotFound());
  // A genuinely missing combination of existing values is accepted.
  auto q = MakeMissingValueQuestion(table, {"author", "venue", "year"},
                                    {Value::String("AY"), Value::String("SIGKDD"),
                                     Value::Int64(2030)});
  EXPECT_TRUE(q.status().IsNotFound());  // 2030 not in the domain either
}

TEST(BaselineTest, FindsOppositeDeviationsFromAverage) {
  auto table = Example5Table();
  UserQuestion q = Phi0(table);
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  ExplainConfig config;
  config.top_k = 5;
  auto result = BaselineExplain(q, distance, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty());
  EXPECT_LE(result->explanations.size(), 5u);
  for (const Explanation& e : result->explanations) {
    EXPECT_GT(e.deviation, 0.0);  // `low` question -> above-average tuples
    EXPECT_FALSE(e.tuple_values == q.group_values);
    EXPECT_EQ(e.tuple_attrs, q.group_attrs);  // baseline never leaves Q(R)
  }
  for (size_t i = 1; i < result->explanations.size(); ++i) {
    EXPECT_GE(result->explanations[i - 1].score, result->explanations[i].score);
  }
}

TEST(BaselineTest, HighDirection) {
  auto table = Example5Table();
  auto q = MakeUserQuestion(table, {"author", "venue", "year"},
                            {Value::String("AX"), Value::String("ICDE"), Value::Int64(2007)},
                            AggFunc::kCount, "*", Direction::kHigh);
  ASSERT_TRUE(q.ok());
  DistanceModel distance = DistanceModel::MakeDefault(*table);
  auto result = BaselineExplain(*q, distance, {});
  ASSERT_TRUE(result.ok());
  for (const Explanation& e : result->explanations) {
    EXPECT_LT(e.deviation, 0.0);
    EXPECT_GT(e.score, 0.0);
  }
}

}  // namespace
}  // namespace cape
