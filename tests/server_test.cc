// The serving stack (DESIGN.md §13): protocol parsing/rendering, the
// in-process ServerHarness end to end, and every robustness behavior the
// scheduler promises — admission rejection under overload, per-tenant
// budget rejections with a retry hint, shedding of expired queued work, the
// degradation tier, drain-based shutdown, and the exactly-one-terminal-
// response invariant. A final test drives the real TCP front end.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cape::server {
namespace {

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, ParseRequestLineDefaultsAndHeaders) {
  auto bare = ParseRequestLine("ping");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->id, 0);
  EXPECT_EQ(bare->tenant, "default");
  EXPECT_EQ(bare->deadline_ms, 0);
  EXPECT_EQ(bare->top_k, 0);
  EXPECT_EQ(bare->statement, "ping");

  auto full = ParseRequestLine(
      "  [id=42 tenant=alice deadline_ms=250 top_k=3]  SELECT author FROM pub  ");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->id, 42);
  EXPECT_EQ(full->tenant, "alice");
  EXPECT_EQ(full->deadline_ms, 250);
  EXPECT_EQ(full->top_k, 3);
  EXPECT_EQ(full->statement, "SELECT author FROM pub");
}

TEST(ProtocolTest, ParseRequestLineRejectsMalformedInput) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("   ").ok());
  EXPECT_FALSE(ParseRequestLine("[id=1 ping").ok());         // missing ']'
  EXPECT_FALSE(ParseRequestLine("[id=1]").ok());             // empty statement
  EXPECT_FALSE(ParseRequestLine("[bogus=1] ping").ok());     // unknown key
  EXPECT_FALSE(ParseRequestLine("[id] ping").ok());          // not key=value
  EXPECT_FALSE(ParseRequestLine("[id=xyz] ping").ok());      // bad int
  EXPECT_FALSE(ParseRequestLine("[deadline_ms=-1] ping").ok());
  EXPECT_FALSE(ParseRequestLine("[top_k=-2] ping").ok());
  EXPECT_FALSE(ParseRequestLine("[tenant=] ping").ok());
}

TEST(ProtocolTest, RenderResponseShapes) {
  Response ok;
  ok.id = 7;
  ok.outcome = Outcome::kOk;
  ok.elapsed_ms = 3;
  ok.payload_json = "[1,2]";
  EXPECT_EQ(RenderResponse(ok),
            "{\"id\":7,\"outcome\":\"ok\",\"elapsed_ms\":3,\"result\":[1,2]}");

  Response retry;
  retry.id = 8;
  retry.outcome = Outcome::kRetryAfter;
  retry.retry_after_ms = 120;
  EXPECT_EQ(RenderResponse(retry),
            "{\"id\":8,\"outcome\":\"retry_after\",\"retry_after_ms\":120,"
            "\"elapsed_ms\":0}");

  Response error;
  error.outcome = Outcome::kError;
  error.error = "bad \"quote\"";
  EXPECT_EQ(RenderResponse(error),
            "{\"id\":0,\"outcome\":\"error\",\"error\":\"bad \\\"quote\\\"\","
            "\"elapsed_ms\":0}");
}

TEST(ProtocolTest, OutcomeClassification) {
  EXPECT_TRUE(IsAnswer(Outcome::kOk));
  EXPECT_TRUE(IsAnswer(Outcome::kDegraded));
  EXPECT_TRUE(IsAnswer(Outcome::kTruncated));
  EXPECT_FALSE(IsAnswer(Outcome::kShed));
  EXPECT_FALSE(IsAnswer(Outcome::kOverloaded));
  EXPECT_FALSE(IsAnswer(Outcome::kRetryAfter));
  EXPECT_FALSE(IsAnswer(Outcome::kError));
  EXPECT_STREQ(OutcomeToString(Outcome::kShed), "shed");
}

// ---------------------------------------------------------------------------
// Serving fixture: one mined engine shared by every harness/server test
// (mining once keeps the smoke suite fast; the scheduler only touches the
// engine's const surface, so sharing is exactly the serving contract).

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions options;
    options.num_rows = 2000;
    options.seed = 5;
    auto table = GenerateDblp(options);
    ASSERT_TRUE(table.ok());
    engine_ = new Engine(std::move(Engine::FromTable(std::move(table).ValueOrDie()))
                             .ValueOrDie());
    MiningConfig& mining = engine_->mining_config();
    mining.max_pattern_size = 3;
    mining.local_gof_threshold = 0.2;
    mining.local_support_threshold = 3;
    mining.global_confidence_threshold = 0.3;
    mining.global_support_threshold = 10;
    mining.agg_functions = {AggFunc::kCount};
    mining.excluded_attrs = {"pubid"};
    ASSERT_TRUE(engine_->MinePatterns().ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static std::string PlantedExplainLine(const std::string& header) {
    std::string line = header;
    if (!line.empty()) line += " ";
    line += "EXPLAIN WHY count(*) IS LOW FOR author = '";
    line += kDblpPlantedAuthor;
    line += "', venue = 'SIGKDD', year = 2007 FROM pub";
    return line;
  }

  static size_t CountScores(const std::string& payload) {
    size_t count = 0;
    for (size_t pos = payload.find("\"score\""); pos != std::string::npos;
         pos = payload.find("\"score\"", pos + 1)) {
      ++count;
    }
    return count;
  }

  static Engine* engine_;
};

Engine* ServerTest::engine_ = nullptr;

/// Blocks the serving worker inside the execution hook until opened, and
/// lets the test wait until a request is provably mid-execution.
struct Gate {
  Mutex mu;
  CondVar cv;
  bool entered CAPE_GUARDED_BY(mu) = false;
  bool open CAPE_GUARDED_BY(mu) = false;

  void Enter() CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    entered = true;
    cv.NotifyAll();
    while (!open) cv.Wait(mu);
  }
  void AwaitEntered() CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    while (!entered) cv.Wait(mu);
  }
  void Open() CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    open = true;
    cv.NotifyAll();
  }
};

/// Thread-safe terminal-response collector for CallAsync storms.
struct Collector {
  Mutex mu;
  CondVar cv;
  std::vector<Response> responses CAPE_GUARDED_BY(mu);

  RequestScheduler::ResponseCallback Callback() {
    return [this](const Response& response) {
      MutexLock lock(mu);
      responses.push_back(response);
      cv.NotifyAll();
    };
  }
  std::vector<Response> WaitFor(size_t n) CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    while (responses.size() < n) cv.Wait(mu);
    return responses;
  }
};

Response FindById(const std::vector<Response>& responses, int64_t id) {
  for (const Response& r : responses) {
    if (r.id == id) return r;
  }
  ADD_FAILURE() << "no response with id " << id;
  return Response{};
}

TEST_F(ServerTest, PingStatsSelectAndErrorsOverTheHarness) {
  ServerOptions options;
  options.num_workers = 2;
  ServerHarness harness(engine_, options);

  Response pong = harness.Call("[id=5] ping");
  EXPECT_EQ(pong.id, 5);
  EXPECT_EQ(pong.outcome, Outcome::kOk);
  EXPECT_EQ(pong.payload_json, "\"pong\"");

  Response stats = harness.Call("STATS");
  EXPECT_EQ(stats.outcome, Outcome::kOk);
  EXPECT_NE(stats.payload_json.find("\"serve_requests\""), std::string::npos);
  EXPECT_NE(stats.payload_json.find("\"scheduler\""), std::string::npos);

  Response select = harness.Call("SELECT author, venue FROM pub");
  EXPECT_EQ(select.outcome, Outcome::kOk);
  EXPECT_NE(select.payload_json.find("\"columns\""), std::string::npos);

  // Structured errors, not crashes: bad header, bad grammar, bad table.
  EXPECT_EQ(harness.Call("[bogus=1] ping").outcome, Outcome::kError);
  EXPECT_EQ(harness.Call("FROBNICATE the database").outcome, Outcome::kError);
  EXPECT_EQ(harness.Call("SELECT x FROM no_such_table").outcome, Outcome::kError);
}

TEST_F(ServerTest, ExplainAnswersAreByteIdenticalAndRespectTopK) {
  ServerOptions options;
  options.num_workers = 2;
  ServerHarness harness(engine_, options);

  const std::string line = PlantedExplainLine("[id=1 deadline_ms=30000]");
  Response first = harness.Call(line);
  ASSERT_EQ(first.outcome, Outcome::kOk) << first.error;
  ASSERT_FALSE(first.payload_json.empty());
  EXPECT_GE(CountScores(first.payload_json), 1u);

  // Serving is deterministic: the same question yields the same bytes, even
  // though the second answer came from a memoized session.
  Response second = harness.Call(line);
  ASSERT_EQ(second.outcome, Outcome::kOk);
  EXPECT_EQ(second.payload_json, first.payload_json);

  Response capped = harness.Call(PlantedExplainLine("[id=2 top_k=1]"));
  ASSERT_EQ(capped.outcome, Outcome::kOk) << capped.error;
  EXPECT_EQ(CountScores(capped.payload_json), 1u);
}

TEST_F(ServerTest, QueueFullRejectsWithOverloaded) {
  const RunStats before = engine_->run_stats();
  ServerOptions options;
  options.num_workers = 1;
  options.scheduler.admission.max_in_system = 1;
  ServerHarness harness(engine_, options);
  Gate gate;
  harness.scheduler().SetExecutionHookForTest([&gate] { gate.Enter(); });

  Collector collector;
  harness.CallAsync("[id=1] ping", collector.Callback());
  gate.AwaitEntered();

  // The slot is occupied; the second request is rejected synchronously.
  Response rejected = harness.Call("[id=2] ping");
  EXPECT_EQ(rejected.outcome, Outcome::kOverloaded);

  gate.Open();
  const std::vector<Response> responses = collector.WaitFor(1);
  EXPECT_EQ(responses[0].outcome, Outcome::kOk);

  const RequestScheduler::Stats stats = harness.scheduler().stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.ok, 1);
  EXPECT_EQ(stats.overloaded, 1);
  const RunStats after = engine_->run_stats();
  EXPECT_EQ(after.serve_requests - before.serve_requests, 1);
  EXPECT_EQ(after.serve_rejected - before.serve_rejected, 1);
}

TEST_F(ServerTest, TenantByteBudgetRejectsWithRetryAfter) {
  ServerOptions options;
  options.num_workers = 1;
  options.scheduler.admission.tenant_bytes_per_sec = 1;
  options.scheduler.admission.burst_seconds = 1.0;
  ServerHarness harness(engine_, options);

  // The first request is admitted (a cold tenant holds a full burst) and
  // debits its response bytes post-paid, overdrawing the one-byte bucket.
  EXPECT_EQ(harness.Call("[id=1 tenant=alice] ping").outcome, Outcome::kOk);

  Response rejected = harness.Call("[id=2 tenant=alice] ping");
  EXPECT_EQ(rejected.outcome, Outcome::kRetryAfter);
  EXPECT_GE(rejected.retry_after_ms, 1);

  // Budgets are per tenant: another tenant is unaffected.
  EXPECT_EQ(harness.Call("[id=3 tenant=bob] ping").outcome, Outcome::kOk);

  const RequestScheduler::Stats stats = harness.scheduler().stats();
  EXPECT_EQ(stats.retry_after, 1);
}

TEST_F(ServerTest, ExpiredQueuedRequestsAreShed) {
  const RunStats before = engine_->run_stats();
  ServerOptions options;
  options.num_workers = 1;
  ServerHarness harness(engine_, options);
  Gate gate;
  harness.scheduler().SetExecutionHookForTest([&gate] { gate.Enter(); });

  Collector collector;
  harness.CallAsync("[id=1] ping", collector.Callback());
  gate.AwaitEntered();
  // Queued behind the blocked worker with a 1 ms deadline; by the time the
  // worker frees up, the deadline has passed and the work is shed.
  harness.CallAsync("[id=2 deadline_ms=1] ping", collector.Callback());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();

  const std::vector<Response> responses = collector.WaitFor(2);
  EXPECT_EQ(FindById(responses, 1).outcome, Outcome::kOk);
  EXPECT_EQ(FindById(responses, 2).outcome, Outcome::kShed);
  EXPECT_EQ(harness.scheduler().stats().shed, 1);
  const RunStats after = engine_->run_stats();
  EXPECT_EQ(after.serve_shed - before.serve_shed, 1);
}

TEST_F(ServerTest, DegradationTierCapsTopKUnderBacklog) {
  ServerOptions options;
  options.num_workers = 1;
  options.scheduler.degrade_queue_depth = 1;
  options.scheduler.degraded_top_k = 1;
  ServerHarness harness(engine_, options);
  Gate gate;
  harness.scheduler().SetExecutionHookForTest([&gate] { gate.Enter(); });

  Collector collector;
  harness.CallAsync("[id=1] ping", collector.Callback());
  gate.AwaitEntered();
  // Two EXPLAINs pile up behind the blocked worker. The first is served with
  // a backlog still standing (depth 1 >= threshold) and is degraded; by the
  // second the queue is empty again and full top-k service resumes.
  harness.CallAsync(PlantedExplainLine("[id=2 top_k=5 deadline_ms=30000]"),
                    collector.Callback());
  harness.CallAsync(PlantedExplainLine("[id=3 top_k=5 deadline_ms=30000]"),
                    collector.Callback());
  gate.Open();

  const std::vector<Response> responses = collector.WaitFor(3);
  const Response degraded = FindById(responses, 2);
  ASSERT_EQ(degraded.outcome, Outcome::kDegraded) << degraded.error;
  EXPECT_EQ(CountScores(degraded.payload_json), 1u);
  const Response full = FindById(responses, 3);
  ASSERT_EQ(full.outcome, Outcome::kOk) << full.error;
  EXPECT_GT(CountScores(full.payload_json), 1u);
  EXPECT_EQ(harness.scheduler().stats().degraded, 1);
}

TEST_F(ServerTest, ShutdownDrainsInFlightWorkThenRejects) {
  ServerOptions options;
  options.num_workers = 2;
  ServerHarness harness(engine_, options);

  Collector collector;
  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    harness.CallAsync("[id=" + std::to_string(i + 1) + "] ping",
                      collector.Callback());
  }
  harness.Shutdown();

  // Drain semantics: every admitted request reached its terminal response
  // before Shutdown returned — no callback is ever dropped.
  const std::vector<Response> responses = collector.WaitFor(kRequests);
  EXPECT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (const Response& r : responses) EXPECT_EQ(r.outcome, Outcome::kOk);

  EXPECT_EQ(harness.Call("[id=99] ping").outcome, Outcome::kOverloaded);

  const RequestScheduler::Stats stats = harness.scheduler().stats();
  EXPECT_EQ(stats.submitted, stats.ok + stats.degraded + stats.truncated + stats.shed +
                                 stats.overloaded + stats.retry_after + stats.errors);
}

// ---------------------------------------------------------------------------
// APPEND verb

/// Fresh mutable engine per test: APPEND mutates the table in place, so
/// these tests cannot share the suite-wide read-only engine.
Engine MakeAppendEngine() {
  DblpOptions options;
  options.num_rows = 1500;
  options.seed = 5;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  Engine engine =
      std::move(Engine::FromTable(std::move(table).ValueOrDie())).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  EXPECT_TRUE(engine.MinePatterns().ok());
  return engine;
}

TEST_F(ServerTest, AppendGrowsTableAndRevalidatesPatterns) {
  Engine engine = MakeAppendEngine();
  const int64_t before = engine.table()->num_rows();
  ServerOptions options;
  options.num_workers = 2;
  options.mutable_engine = &engine;
  ServerHarness harness(&engine, options);

  Response ok = harness.Call(
      "[id=1] APPEND NewAuthor,P90001,2007,SIGKDD;NewAuthor,P90002,2008,ICDE");
  EXPECT_EQ(ok.outcome, Outcome::kOk) << ok.error;
  EXPECT_NE(ok.payload_json.find("\"rows_appended\":2"), std::string::npos)
      << ok.payload_json;
  EXPECT_NE(ok.payload_json.find("\"maint_appends\":1"), std::string::npos)
      << ok.payload_json;
  EXPECT_EQ(engine.table()->num_rows(), before + 2);
  EXPECT_EQ(engine.run_stats().maint_appends, 1);
  EXPECT_EQ(engine.run_stats().maint_full_remines, 0);

  // Reads after the append observe the grown relation and maintenance stats.
  Response stats = harness.Call("STATS");
  EXPECT_EQ(stats.outcome, Outcome::kOk);
  EXPECT_NE(stats.payload_json.find("\"maint_appends\":1"), std::string::npos);
  Response select = harness.Call("SELECT author, venue FROM pub");
  EXPECT_EQ(select.outcome, Outcome::kOk);
  EXPECT_EQ(harness.Call(PlantedExplainLine("[id=2]")).outcome, Outcome::kOk);
}

TEST_F(ServerTest, AppendRejectedWhenServerIsReadOnly) {
  ServerOptions options;
  options.num_workers = 1;
  ServerHarness harness(engine_, options);  // mutable_engine left null

  Response rejected = harness.Call("APPEND X,P1,2000,ICDE");
  EXPECT_EQ(rejected.outcome, Outcome::kError);
  EXPECT_NE(rejected.error.find("read-only"), std::string::npos) << rejected.error;
}

TEST_F(ServerTest, MalformedAppendIsRejectedWithoutSideEffects) {
  Engine engine = MakeAppendEngine();
  const int64_t before = engine.table()->num_rows();
  ServerOptions options;
  options.num_workers = 1;
  options.mutable_engine = &engine;
  ServerHarness harness(&engine, options);

  EXPECT_EQ(harness.Call("APPEND").outcome, Outcome::kError);  // empty payload
  // Wrong arity in the second row: the whole batch is rejected, nothing
  // lands (Engine::AppendAndRemine validates every row before appending).
  Response bad = harness.Call("APPEND A,P90001,2007,SIGKDD;B,P90002,2008");
  EXPECT_EQ(bad.outcome, Outcome::kError);
  EXPECT_EQ(engine.table()->num_rows(), before);
  EXPECT_EQ(engine.run_stats().maint_appends, 0);
}

TEST_F(ServerTest, ConcurrentAppendsAndReadsAllReachTerminalOutcomes) {
  Engine engine = MakeAppendEngine();
  const int64_t before = engine.table()->num_rows();
  ServerOptions options;
  options.num_workers = 4;
  options.mutable_engine = &engine;
  ServerHarness harness(&engine, options);

  // Mixed storm: every fourth request is an append (lowercase, exercising
  // the case-insensitive verb match), the rest are reads. The write gate
  // serializes appends against reads, so every request must still reach a
  // terminal kOk and every appended row must land exactly once.
  Collector collector;
  const int kRequests = 24;
  int appends = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = std::to_string(i + 1);
    if (i % 4 == 0) {
      ++appends;
      harness.CallAsync("[id=" + id + " deadline_ms=30000] append A" + id +
                            ",P9" + id + ",2007,SIGKDD",
                        collector.Callback());
    } else {
      harness.CallAsync("[id=" + id + " deadline_ms=30000] SELECT author FROM pub",
                        collector.Callback());
    }
  }
  const std::vector<Response> responses = collector.WaitFor(kRequests);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (const Response& r : responses) {
    EXPECT_EQ(r.outcome, Outcome::kOk) << "id " << r.id << ": " << r.error;
  }
  EXPECT_EQ(engine.table()->num_rows(), before + appends);
  EXPECT_EQ(engine.run_stats().maint_appends, appends);
  EXPECT_EQ(engine.run_stats().maint_rows_appended, appends);
}

// ---------------------------------------------------------------------------
// TCP front end

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval timeout{};
  timeout.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError("send failed");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadLine(int fd, std::string* buffer) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return Status::IOError("connection closed before newline");
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

TEST_F(ServerTest, TcpServerAnswersOverARealSocket) {
  ServerOptions options;
  options.num_workers = 2;
  options.port = 0;  // ephemeral
  CapeServer server(engine_, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string buffer;

  // Two pipelined requests on one connection.
  ASSERT_TRUE(SendAll(fd, "[id=9] ping\n[id=10] stats\n").ok());
  auto pong = ReadLine(fd, &buffer);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_NE(pong->find("\"id\":9"), std::string::npos) << *pong;
  EXPECT_NE(pong->find("\"outcome\":\"ok\""), std::string::npos) << *pong;
  auto stats = ReadLine(fd, &buffer);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"serve_requests\""), std::string::npos) << *stats;

  ASSERT_TRUE(SendAll(fd, PlantedExplainLine("[id=11 deadline_ms=30000]") + "\n").ok());
  auto explain = ReadLine(fd, &buffer);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("\"id\":11"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("\"outcome\":\"ok\""), std::string::npos) << *explain;
  EXPECT_NE(explain->find("\"score\""), std::string::npos) << *explain;

  // A malformed line gets a structured error on the same connection.
  ASSERT_TRUE(SendAll(fd, "[wat=1] ping\n").ok());
  auto error = ReadLine(fd, &buffer);
  ASSERT_TRUE(error.ok());
  EXPECT_NE(error->find("\"outcome\":\"error\""), std::string::npos) << *error;

  // "quit" closes the connection from the server side.
  ASSERT_TRUE(SendAll(fd, "quit\n").ok());
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.Stop();
}

}  // namespace
}  // namespace cape::server
