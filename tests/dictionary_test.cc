#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "relational/csv.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace cape {
namespace {

/// Restores the dictionary-kernel switch on scope exit so a failing test
/// cannot leak legacy mode into the rest of the suite.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(bool enabled) : saved_(DictionaryKernelsEnabled()) {
    SetDictionaryKernelsEnabled(enabled);
  }
  ~KernelModeGuard() { SetDictionaryKernelsEnabled(saved_); }

 private:
  bool saved_;
};

TEST(DictionaryTest, FirstAppearanceCodesAndNullInterleaving) {
  Column col(DataType::kString);
  col.AppendString("b");
  col.AppendNull();
  col.AppendString("a");
  col.AppendString("b");
  col.AppendNull();
  col.AppendString("c");
  col.AppendString("a");

  EXPECT_EQ(col.size(), 7);
  EXPECT_EQ(col.dict_size(), 3);
  // Codes are assigned in first-appearance order, not sorted order.
  EXPECT_EQ(col.GetCode(0), 0);
  EXPECT_EQ(col.GetCode(1), Column::kNullCode);
  EXPECT_EQ(col.GetCode(2), 1);
  EXPECT_EQ(col.GetCode(3), 0);
  EXPECT_EQ(col.GetCode(4), Column::kNullCode);
  EXPECT_EQ(col.GetCode(5), 2);
  EXPECT_EQ(col.GetCode(6), 1);
  EXPECT_EQ(col.DictString(0), "b");
  EXPECT_EQ(col.DictString(1), "a");
  EXPECT_EQ(col.DictString(2), "c");
  // Round-trips through both accessors, nulls included.
  EXPECT_EQ(col.GetString(0), "b");
  EXPECT_EQ(col.GetString(1), "");  // null reads as empty, as before encoding
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(2), Value::String("a"));
  EXPECT_TRUE(col.GetValue(4).is_null());
}

TEST(DictionaryTest, DuplicateHeavyAndAllDistinctCardinalities) {
  Column dup(DataType::kString);
  for (int i = 0; i < 1000; ++i) dup.AppendString("v" + std::to_string(i % 7));
  EXPECT_EQ(dup.size(), 1000);
  EXPECT_EQ(dup.dict_size(), 7);
  EXPECT_EQ(dup.CountDistinct(), 7);

  Column distinct(DataType::kString);
  for (int i = 0; i < 1000; ++i) distinct.AppendString("v" + std::to_string(i));
  EXPECT_EQ(distinct.dict_size(), 1000);
  EXPECT_EQ(distinct.CountDistinct(), 1000);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(distinct.GetCode(i), i);  // all-new values appear in append order
  }
}

TEST(DictionaryTest, FindCodeHitsAndMisses) {
  Column col(DataType::kString);
  col.AppendString("x");
  col.AppendString("y");
  EXPECT_EQ(col.FindCode("x"), 0);
  EXPECT_EQ(col.FindCode("y"), 1);
  EXPECT_EQ(col.FindCode("z"), Column::kNullCode);
  EXPECT_EQ(col.FindCode(""), Column::kNullCode);  // nulls don't intern ""
}

TEST(DictionaryTest, SortedCodeRanksMatchStringOrdering) {
  Column col(DataType::kString);
  const std::vector<std::string> values = {"pear",  "Apple", "fig", "apple",
                                           "Fig",   "",      "10",  "2",
                                           "pear2", "p"};
  for (const std::string& v : values) col.AppendString(v);
  const std::vector<int32_t> ranks = col.SortedCodeRanks();
  ASSERT_EQ(static_cast<int64_t>(ranks.size()), col.dict_size());
  for (int32_t a = 0; a < col.dict_size(); ++a) {
    for (int32_t b = 0; b < col.dict_size(); ++b) {
      EXPECT_EQ(ranks[a] < ranks[b], col.DictString(a) < col.DictString(b))
          << "'" << col.DictString(a) << "' vs '" << col.DictString(b) << "'";
    }
  }
}

TEST(DictionaryTest, AppendManyFromTranslatesCodesAcrossTables) {
  auto schema = Schema::Make({Field{"s", DataType::kString, true}});
  Table src(schema);
  ASSERT_TRUE(src.AppendRow({Value::String("a")}).ok());
  ASSERT_TRUE(src.AppendRow({Value::String("b")}).ok());
  ASSERT_TRUE(src.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(src.AppendRow({Value::String("c")}).ok());

  Table dst(schema);
  ASSERT_TRUE(dst.AppendRow({Value::String("c")}).ok());  // pre-existing entry
  // Copy in an order that reverses first-appearance: dst codes must be
  // remapped, not copied.
  ASSERT_TRUE(dst.AppendRowsFrom(src, {3, 2, 1, 0, 1}).ok());
  EXPECT_EQ(dst.num_rows(), 6);
  EXPECT_EQ(dst.GetValue(0, 0), Value::String("c"));
  EXPECT_EQ(dst.GetValue(1, 0), Value::String("c"));
  EXPECT_TRUE(dst.GetValue(2, 0).is_null());
  EXPECT_EQ(dst.GetValue(3, 0), Value::String("b"));
  EXPECT_EQ(dst.GetValue(4, 0), Value::String("a"));
  EXPECT_EQ(dst.GetValue(5, 0), Value::String("b"));
  EXPECT_EQ(dst.column(0).GetCode(0), dst.column(0).GetCode(1));  // same "c"
  EXPECT_EQ(dst.column(0).dict_size(), 3);
}

TEST(DictionaryTest, CsvQuarantineDoesNotPolluteDictionary) {
  // Row 3 has a bad int cell after a fresh string value: the whole row is
  // quarantined and "GHOST" must not be interned.
  CsvReadOptions options;
  options.schema = Schema::Make({Field{"name", DataType::kString, true},
                                 Field{"year", DataType::kInt64, true}});
  options.quarantine_malformed = true;
  CsvParseReport report;
  auto result = ReadCsvString("name,year\nAX,2007\nGHOST,nope\nAY,2008\n", options, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = **result;
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(report.num_rows_quarantined, 1);
  EXPECT_EQ(t.column(0).dict_size(), 2);
  EXPECT_EQ(t.column(0).FindCode("GHOST"), Column::kNullCode);
  EXPECT_EQ(t.column(0).FindCode("AX"), 0);
  EXPECT_EQ(t.column(0).FindCode("AY"), 1);
}

TablePtr MakeCityTable() {
  auto schema = Schema::Make({Field{"city", DataType::kString, true},
                              Field{"tier", DataType::kString, true},
                              Field{"pop", DataType::kInt64, true}});
  auto table = std::make_shared<Table>(schema);
  const char* cities[] = {"rome", "oslo", "lima", "rome", "oslo", "bern", "lima", "rome"};
  const char* tiers[] = {"a", "b", "a", "b", "a", "b", "a", "a"};
  for (int i = 0; i < 8; ++i) {
    Row row{Value::String(cities[i]), Value::String(tiers[i]), Value::Int64(i * 10)};
    if (i == 5) row[0] = Value::Null();
    EXPECT_TRUE(table->AppendRow(row).ok());
  }
  return table;
}

TEST(DictionaryTest, FilterEqualsShortCircuitsOnAbsentValue) {
  TablePtr table = MakeCityTable();
  // Value present: normal selection.
  auto hit = FilterEquals(*table, {{0, Value::String("oslo")}});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ((*hit)->num_rows(), 2);
  // Value absent from the dictionary: provably empty, no scan needed.
  auto miss = FilterEquals(*table, {{0, Value::String("paris")}});
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ((*miss)->num_rows(), 0);
  // Type-mismatched condition on a string column: never equal.
  auto mismatch = FilterEquals(*table, {{0, Value::Int64(7)}});
  ASSERT_TRUE(mismatch.ok());
  EXPECT_EQ((*mismatch)->num_rows(), 0);
  // NULL condition matches exactly the NULL row.
  auto nulls = FilterEquals(*table, {{0, Value::Null()}});
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ((*nulls)->num_rows(), 1);
}

TEST(DictionaryTest, KernelsAndLegacyAgreeOnFilterGroupSortDistinct) {
  TablePtr table = MakeCityTable();
  const std::vector<std::pair<int, Value>> conditions = {{1, Value::String("a")}};
  const std::vector<SortKey> keys = {{0, true}, {2, false}};
  const std::vector<AggregateSpec> aggs = {AggregateSpec::CountStar("n"),
                                           AggregateSpec::Sum(2, "pop_sum")};

  std::string filtered[2], grouped[2], sorted[2], distinct[2];
  for (int mode = 0; mode < 2; ++mode) {
    KernelModeGuard guard(mode == 0);
    auto f = FilterEquals(*table, conditions);
    auto g = GroupByAggregate(*table, std::vector<int>{0, 1}, aggs);
    auto s = SortTable(*table, keys);
    auto d = ProjectDistinct(*table, {0});
    ASSERT_TRUE(f.ok() && g.ok() && s.ok() && d.ok());
    filtered[mode] = WriteCsvString(**f);
    grouped[mode] = WriteCsvString(**g);
    sorted[mode] = WriteCsvString(**s);
    distinct[mode] = WriteCsvString(**d);
  }
  EXPECT_EQ(filtered[0], filtered[1]);
  EXPECT_EQ(grouped[0], grouped[1]);
  EXPECT_EQ(sorted[0], sorted[1]);
  EXPECT_EQ(distinct[0], distinct[1]);
}

TEST(DictionaryTest, SortOrdersStringsNullsFirstBothModes) {
  TablePtr table = MakeCityTable();
  for (bool enabled : {true, false}) {
    KernelModeGuard guard(enabled);
    auto sorted = SortTable(*table, {{0, true}});
    ASSERT_TRUE(sorted.ok());
    ASSERT_EQ((*sorted)->num_rows(), 8);
    EXPECT_TRUE((*sorted)->GetValue(0, 0).is_null());
    std::vector<std::string> got;
    for (int64_t r = 1; r < 8; ++r) got.push_back((*sorted)->GetValue(r, 0).string_value());
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST(DictionaryTest, RowEqualityMatcherCompilesConditionKinds) {
  TablePtr table = MakeCityTable();
  // Multi-column: string code + int64 exact.
  RowEqualityMatcher both(*table, {{0, Value::String("rome")}, {2, Value::Int64(30)}});
  ASSERT_FALSE(both.never_matches());
  EXPECT_FALSE(both.Matches(0));  // rome but pop=0
  EXPECT_TRUE(both.Matches(3));   // rome, pop=30
  // Cross-type numeric equality: int64 column vs double condition.
  RowEqualityMatcher numeric(*table, {{2, Value::Double(30.0)}});
  ASSERT_FALSE(numeric.never_matches());
  EXPECT_TRUE(numeric.Matches(3));
  EXPECT_FALSE(numeric.Matches(4));
  // String condition against a numeric column can never hold.
  RowEqualityMatcher impossible(*table, {{2, Value::String("30")}});
  EXPECT_TRUE(impossible.never_matches());
}

TEST(DictionaryTest, ReserveDictKeepsContents) {
  Column col(DataType::kString);
  col.AppendString("early");
  col.ReserveDict(4096);
  col.Reserve(4096);
  col.AppendString("late");
  EXPECT_EQ(col.dict_size(), 2);
  EXPECT_EQ(col.FindCode("early"), 0);
  EXPECT_EQ(col.FindCode("late"), 1);
}

}  // namespace
}  // namespace cape
