#include <gtest/gtest.h>

#include "datagen/crime.h"
#include "datagen/dblp.h"
#include "datagen/ground_truth.h"
#include "relational/csv.h"
#include "relational/operators.h"

namespace cape {
namespace {

int64_t CountWhere(const Table& table, std::vector<std::pair<std::string, Value>> conds) {
  std::vector<std::pair<int, Value>> indexed;
  for (auto& [name, value] : conds) {
    int idx = table.schema()->GetFieldIndex(name);
    EXPECT_GE(idx, 0) << name;
    indexed.emplace_back(idx, value);
  }
  auto filtered = FilterEquals(table, indexed);
  EXPECT_TRUE(filtered.ok());
  return (*filtered)->num_rows();
}

TEST(DblpGeneratorTest, SchemaAndSize) {
  DblpOptions options;
  options.num_rows = 2000;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 2000);
  EXPECT_EQ((*table)->schema()->ToString(),
            "(author: string, pubid: string, year: int64, venue: string)");
  EXPECT_TRUE((*table)->Validate().ok());
}

TEST(DblpGeneratorTest, Deterministic) {
  DblpOptions options;
  options.num_rows = 1500;
  options.seed = 99;
  auto a = GenerateDblp(options);
  auto b = GenerateDblp(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(WriteCsvString(**a), WriteCsvString(**b));
  options.seed = 100;
  auto c = GenerateDblp(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(WriteCsvString(**a), WriteCsvString(**c));
}

TEST(DblpGeneratorTest, PlantedRunningExampleCounts) {
  DblpOptions options;
  options.num_rows = 5000;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());
  // The phi0 outlier and its engineered counterbalances (dblp.cc).
  auto count = [&](const char* venue, int year) {
    return CountWhere(**table, {{"author", Value::String(kDblpPlantedAuthor)},
                                {"venue", Value::String(venue)},
                                {"year", Value::Int64(year)}});
  };
  EXPECT_EQ(count("SIGKDD", 2007), 1);
  EXPECT_EQ(count("SIGKDD", 2012), 9);
  EXPECT_EQ(count("ICDE", 2007), 10);
  EXPECT_EQ(count("ICDE", 2006), 8);
  EXPECT_EQ(count("ICDM", 2007), 5);
  EXPECT_EQ(count("TKDE", 2012), 1);
  EXPECT_EQ(count("VLDB", 2008), 1);
}

TEST(DblpGeneratorTest, PlantingCanBeDisabled) {
  DblpOptions options;
  options.num_rows = 1000;
  options.plant_running_example = false;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(CountWhere(**table, {{"author", Value::String(kDblpPlantedAuthor)}}), 0);
}

TEST(DblpGeneratorTest, YearRangeRespected) {
  DblpOptions options;
  options.num_rows = 1200;
  options.plant_running_example = false;  // planted rows use their own years
  options.year_min = 2005;
  options.year_max = 2008;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());
  const Column* years = *(*table)->ColumnByName("year");
  EXPECT_EQ(years->Min(), Value::Int64(2005));
  EXPECT_GE(2008, years->Max().int64_value());
}

TEST(DblpGeneratorTest, InvalidOptionsRejected) {
  DblpOptions options;
  options.num_rows = 0;
  EXPECT_TRUE(GenerateDblp(options).status().IsInvalidArgument());
  options.num_rows = 10;
  options.num_venues = 0;
  EXPECT_TRUE(GenerateDblp(options).status().IsInvalidArgument());
  options.num_venues = 5;
  options.year_min = 2010;
  options.year_max = 2005;
  EXPECT_TRUE(GenerateDblp(options).status().IsInvalidArgument());
}

TEST(CrimeGeneratorTest, AttributeCountVariants) {
  for (int num_attrs : {4, 7, 11}) {
    CrimeOptions options;
    options.num_rows = 800;
    options.num_attrs = num_attrs;
    auto table = GenerateCrime(options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    EXPECT_EQ((*table)->num_columns(), num_attrs);
    EXPECT_EQ((*table)->num_rows(), 800);
    EXPECT_TRUE((*table)->Validate().ok());
  }
}

TEST(CrimeGeneratorTest, PlantedHierarchyFdsHold) {
  CrimeOptions options;
  options.num_rows = 3000;
  options.num_attrs = 11;
  auto table = GenerateCrime(options);
  ASSERT_TRUE(table.ok());
  const Table& t = **table;
  const int community = t.schema()->GetFieldIndex("community");
  const int district = t.schema()->GetFieldIndex("district");
  const int beat = t.schema()->GetFieldIndex("beat");
  const int ward = t.schema()->GetFieldIndex("ward");
  const int month = t.schema()->GetFieldIndex("month");
  const int week = t.schema()->GetFieldIndex("week");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const int64_t c = t.GetValue(r, community).int64_value();
    EXPECT_EQ(t.GetValue(r, district).int64_value(), (c - 1) / 4 + 1);
    EXPECT_EQ(t.GetValue(r, ward).int64_value(), (c - 1) / 2 + 1);
    EXPECT_EQ(t.GetValue(r, beat).int64_value() / 10, c);  // beat -> community
    const int64_t w = t.GetValue(r, week).int64_value();
    EXPECT_EQ((w - 1) / 4 + 1, t.GetValue(r, month).int64_value());  // week -> month
  }
}

TEST(CrimeGeneratorTest, PlantedScenarioShape) {
  CrimeOptions options;
  options.num_rows = 10000;
  auto table = GenerateCrime(options);
  ASSERT_TRUE(table.ok());
  auto count = [&](const char* type, int community, int year) {
    return CountWhere(**table, {{"primary_type", Value::String(type)},
                                {"community", Value::Int64(community)},
                                {"year", Value::Int64(year)}});
  };
  // Planted floor + background: the dip/spike shape must be present.
  const int64_t dip = count("Battery", 26, 2011);
  const int64_t spike = count("Battery", 26, 2012);
  EXPECT_LT(dip, spike);
  EXPECT_GE(spike, 20);
  EXPECT_LT(dip, count("Battery", 26, 2010));
  // Adjacent community 25 spikes in 2011 (Table 5 explanation 3).
  EXPECT_GT(count("Battery", 25, 2011), count("Battery", 25, 2010));
  // Assault in the same area spikes in 2011 (Table 5 explanation 5).
  EXPECT_GT(count("Assault", 26, 2011), count("Assault", 26, 2010));
}

TEST(CrimeGeneratorTest, Deterministic) {
  CrimeOptions options;
  options.num_rows = 600;
  auto a = GenerateCrime(options);
  auto b = GenerateCrime(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(WriteCsvString(**a), WriteCsvString(**b));
}

TEST(CrimeGeneratorTest, InvalidOptionsRejected) {
  CrimeOptions options;
  options.num_attrs = 3;
  EXPECT_TRUE(GenerateCrime(options).status().IsInvalidArgument());
  options.num_attrs = 12;
  EXPECT_TRUE(GenerateCrime(options).status().IsInvalidArgument());
  options.num_attrs = 5;
  options.num_rows = -1;
  EXPECT_TRUE(GenerateCrime(options).status().IsInvalidArgument());
}

GroundTruthOptions CrimeGroundTruthOptions() {
  GroundTruthOptions options;
  options.group_by = {"primary_type", "community", "year"};
  options.num_questions = 5;
  options.counterbalances_per_question = 3;
  options.min_cell_rows = 6;
  return options;
}

TEST(GroundTruthTest, InjectionCreatesDentsAndSpikes) {
  CrimeOptions crime;
  crime.num_rows = 20000;
  crime.num_communities = 10;
  crime.num_types = 6;
  auto base = GenerateCrime(crime);
  ASSERT_TRUE(base.ok());

  auto injected = InjectGroundTruth(**base, CrimeGroundTruthOptions());
  ASSERT_TRUE(injected.ok()) << injected.status().ToString();
  EXPECT_EQ(injected->cases.size(), 5u);

  for (const GroundTruthCase& c : injected->cases) {
    // The question is a valid `low` question against the modified table.
    EXPECT_EQ(c.question.dir, Direction::kLow);
    EXPECT_GT(c.question.result_value, 0.0);
    EXPECT_EQ(c.counterbalances.size(), 3u);

    // The dented cell has fewer rows than in the base table; counterbalance
    // cells have more.
    const std::vector<int> g = c.question.group_attrs.ToIndices();
    std::vector<std::pair<int, Value>> conds;
    for (size_t i = 0; i < g.size(); ++i) {
      conds.emplace_back(g[i], c.question.group_values[i]);
    }
    auto base_dent = FilterEquals(**base, conds);
    auto new_dent = FilterEquals(*injected->table, conds);
    ASSERT_TRUE(base_dent.ok());
    ASSERT_TRUE(new_dent.ok());
    EXPECT_LT((*new_dent)->num_rows(), (*base_dent)->num_rows());

    for (const PlantedCounterbalance& cb : c.counterbalances) {
      std::vector<std::pair<int, Value>> cb_conds;
      const std::vector<int> cb_attrs = cb.attrs.ToIndices();
      for (size_t i = 0; i < cb_attrs.size(); ++i) {
        cb_conds.emplace_back(cb_attrs[i], cb.values[i]);
      }
      auto base_cb = FilterEquals(**base, cb_conds);
      auto new_cb = FilterEquals(*injected->table, cb_conds);
      ASSERT_TRUE(base_cb.ok());
      ASSERT_TRUE(new_cb.ok());
      EXPECT_GT((*new_cb)->num_rows(), (*base_cb)->num_rows());
    }
  }
}

TEST(GroundTruthTest, RequiresEnoughFragments) {
  CrimeOptions crime;
  crime.num_rows = 300;
  crime.num_communities = 3;
  crime.num_types = 2;
  auto base = GenerateCrime(crime);
  ASSERT_TRUE(base.ok());
  GroundTruthOptions options = CrimeGroundTruthOptions();
  options.num_questions = 500;  // impossible
  EXPECT_TRUE(InjectGroundTruth(**base, options).status().IsInvalidArgument());
  options.group_by = {"year"};
  EXPECT_TRUE(InjectGroundTruth(**base, options).status().IsInvalidArgument());
}

TEST(GroundTruthTest, PrecisionMeasure) {
  // Build one synthetic case with known counterbalances.
  GroundTruthCase c;
  PlantedCounterbalance cb;
  cb.attrs = AttrSet::FromIndices({0, 1});
  cb.values = {Value::String("Battery"), Value::Int64(2012)};
  c.counterbalances.push_back(cb);

  Explanation hit;
  hit.tuple_attrs = AttrSet::FromIndices({0, 1});
  hit.tuple_values = {Value::String("Battery"), Value::Int64(2012)};
  Explanation finer_hit;  // covers the counterbalance with an extra attr
  finer_hit.tuple_attrs = AttrSet::FromIndices({0, 1, 2});
  finer_hit.tuple_values = {Value::String("Battery"), Value::Int64(2012),
                            Value::String("extra")};
  Explanation miss;
  miss.tuple_attrs = AttrSet::FromIndices({0, 1});
  miss.tuple_values = {Value::String("Theft"), Value::Int64(2012)};
  Explanation coarser_miss;  // does not cover all counterbalance attrs
  coarser_miss.tuple_attrs = AttrSet::FromIndices({0});
  coarser_miss.tuple_values = {Value::String("Battery")};

  std::vector<GroundTruthCase> cases = {c};
  std::vector<std::vector<Explanation>> per_case = {
      {hit, finer_hit, miss, coarser_miss}};
  EXPECT_DOUBLE_EQ(GroundTruthPrecision(cases, per_case, 4), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(GroundTruthPrecision(cases, per_case, 1), 1.0);
  EXPECT_DOUBLE_EQ(GroundTruthPrecision({}, {}, 10), 0.0);
}

}  // namespace
}  // namespace cape
