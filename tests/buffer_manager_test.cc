// Out-of-core storage tests (DESIGN.md §15): heap-file round trips, buffer
// manager pin/unpin and eviction invariants under byte budgets, corruption
// and failpoint degradation, and paged-vs-in-memory operator identity —
// including the Engine-level page counters the server STATS verb reports.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "datagen/crime.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"
#include "relational/csv.h"
#include "relational/kernels.h"
#include "relational/operators.h"
#include "relational/page_source.h"
#include "relational/table.h"
#include "storage/buffer_manager.h"
#include "storage/heap_file.h"
#include "storage/paged_table.h"

namespace cape {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + name; }

/// Removes a temp heap file at scope exit so repeated runs stay clean.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(TempPath(std::move(name))) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class PagedModeGuard {
 public:
  explicit PagedModeGuard(bool enabled) : saved_(PagedStorageEnabled()) {
    SetPagedStorageEnabled(enabled);
  }
  ~PagedModeGuard() { SetPagedStorageEnabled(saved_); }

 private:
  bool saved_;
};

/// Deterministic mixed-type table spanning several 2048-row pages: a skewed
/// string column, a nullable int64, a nullable double, and a second string
/// column whose dictionary grows late in the file (so file-global interning
/// actually matters past page 0).
TablePtr MakeMixedTable(int64_t num_rows) {
  auto table = MakeEmptyTable({Field{"cat", DataType::kString, true},
                               Field{"num", DataType::kInt64, true},
                               Field{"val", DataType::kDouble, true},
                               Field{"tag", DataType::kString, true}});
  const char* const cats[] = {"alpha", "beta", "g%mma", "d\te", "eps"};
  for (int64_t r = 0; r < num_rows; ++r) {
    Row row;
    row.push_back(r % 13 == 0 ? Value::Null() : Value::String(cats[(r * r) % 5]));
    row.push_back(r % 7 == 0 ? Value::Null() : Value::Int64(r % 50 - 10));
    row.push_back(r % 11 == 0 ? Value::Null() : Value::Double(0.5 * static_cast<double>(r % 40)));
    row.push_back(Value::String("tag" + std::to_string(r / 1500)));
    EXPECT_TRUE(table->AppendRow(row).ok());
  }
  EXPECT_TRUE(table->Validate().ok());
  return table;
}

constexpr int64_t kRowsPerPage = 2048;

TEST(HeapFileTest, RoundTripPreservesGeometrySchemaStatsAndDictionaries) {
  TablePtr table = MakeMixedTable(5000);
  TempFile file("cape_bm_roundtrip.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());

  auto opened = HeapFile::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const HeapFile& hf = **opened;
  EXPECT_EQ(hf.num_rows(), table->num_rows());
  EXPECT_EQ(hf.rows_per_page(), kRowsPerPage);
  EXPECT_EQ(hf.num_pages(), 3);  // ceil(5000 / 2048)
  EXPECT_TRUE(*hf.schema() == *table->schema());
  EXPECT_NE(hf.content_digest(), 0u);

  for (int c = 0; c < table->schema()->num_fields(); ++c) {
    const Column& col = table->column(c);
    const HeapFileColumnStats& cs = hf.column_stats(c);
    EXPECT_EQ(cs.null_total, col.null_count()) << "column " << c;
    if (col.null_count() < table->num_rows()) {
      EXPECT_EQ(cs.min, col.Min()) << "column " << c;
      EXPECT_EQ(cs.max, col.Max()) << "column " << c;
    }
    if (table->schema()->field(c).type == DataType::kString) {
      // File-global codes == the table's own interning order.
      ASSERT_EQ(static_cast<int64_t>(hf.dictionary(c).size()), col.dict_size());
      for (int64_t code = 0; code < col.dict_size(); ++code) {
        EXPECT_EQ(hf.dictionary(c)[static_cast<size_t>(code)],
                  col.DictString(static_cast<int32_t>(code)));
      }
    } else {
      EXPECT_TRUE(hf.dictionary(c).empty());
    }
  }

  // Page 0's parsed chunks reproduce the source values slot for slot.
  std::vector<uint8_t> buf(static_cast<size_t>(hf.page_bytes()));
  ASSERT_TRUE(hf.ReadPage(0, buf.data()).ok());
  int64_t row_begin = -1;
  int row_count = 0;
  std::vector<ColumnChunk> chunks;
  ASSERT_TRUE(hf.ParsePage(buf.data(), &row_begin, &row_count, &chunks).ok());
  EXPECT_EQ(row_begin, 0);
  EXPECT_EQ(row_count, kRowsPerPage);
  ASSERT_EQ(chunks.size(), 4u);
  for (int64_t r = 0; r < row_count; ++r) {
    const Row want = table->GetRow(r);
    EXPECT_EQ(chunks[0].validity[r] != 0, !want[0].is_null());
    if (!want[0].is_null()) {
      EXPECT_EQ(hf.dictionary(0)[static_cast<size_t>(chunks[0].codes[r])],
                want[0].string_value());
    }
    if (!want[1].is_null()) {
      EXPECT_EQ(chunks[1].i64[r], want[1].int64_value());
    }
    if (!want[2].is_null()) {
      EXPECT_EQ(chunks[2].f64[r], want[2].double_value());
    }
  }
}

TEST(HeapFileTest, WriterRejectsBadGeometryAndMalformedRows) {
  TablePtr table = MakeMixedTable(8);
  TempFile file("cape_bm_badwriter.cape");
  // rows_per_page must be a positive multiple of the kernel block size.
  EXPECT_FALSE(HeapFileWriter::Create(file.path(), table->schema(), 1000).ok());
  EXPECT_FALSE(HeapFileWriter::Create(file.path(), table->schema(), 0).ok());

  auto writer = HeapFileWriter::Create(file.path(), table->schema(), kRowsPerPage);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_FALSE((*writer)->Append(Row{Value::Int64(1)}).ok());  // wrong arity
  EXPECT_FALSE(
      (*writer)
          ->Append(Row{Value::Int64(1), Value::Int64(2), Value::Double(3.0), Value::String("x")})
          .ok());  // type mismatch on column 0
  ASSERT_TRUE((*writer)->Append(table->GetRow(0)).ok());
  EXPECT_EQ((*writer)->rows_written(), 1);
  ASSERT_TRUE((*writer)->Finish().ok());

  auto reopened = HeapFile::Open(file.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_rows(), 1);
}

TEST(HeapFileTest, ReadPageRejectsOutOfRangePages) {
  TablePtr table = MakeMixedTable(100);
  TempFile file("cape_bm_range.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());
  auto hf = HeapFile::Open(file.path());
  ASSERT_TRUE(hf.ok());
  std::vector<uint8_t> buf(static_cast<size_t>((*hf)->page_bytes()));
  EXPECT_FALSE((*hf)->ReadPage(-1, buf.data()).ok());
  EXPECT_FALSE((*hf)->ReadPage((*hf)->num_pages(), buf.data()).ok());
}

TEST(HeapFileTest, CorruptPagePayloadFailsWithCleanChecksumError) {
  TablePtr table = MakeMixedTable(3000);
  TempFile file("cape_bm_corrupt.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());

  // Flip one payload byte inside page 1 (preamble is 4096 bytes, the page
  // header 64; the page checksum covers everything after the header).
  auto hf = HeapFile::Open(file.path());
  ASSERT_TRUE(hf.ok());
  const int64_t page_bytes = (*hf)->page_bytes();
  {
    std::fstream f(file.path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(4096 + page_bytes + 64 + 100);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(4096 + page_bytes + 64 + 100);
    f.write(&b, 1);
  }

  // Open still succeeds (preamble and trailer are intact); the damaged page
  // surfaces as a clean IOError naming the checksum, both from ReadPage and
  // from a whole-table scan through the paged path.
  auto damaged = HeapFile::Open(file.path());
  ASSERT_TRUE(damaged.ok()) << damaged.status().ToString();
  std::vector<uint8_t> buf(static_cast<size_t>(page_bytes));
  ASSERT_TRUE((*damaged)->ReadPage(0, buf.data()).ok());
  const Status bad = (*damaged)->ReadPage(1, buf.data());
  EXPECT_TRUE(bad.IsIOError()) << bad.ToString();
  EXPECT_NE(bad.message().find("checksum"), std::string::npos) << bad.ToString();

  auto paged = OpenPagedTable(file.path(), 1 << 20);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  const Status scan = CountFilterMatches(**paged, {}).status();
  EXPECT_TRUE(scan.IsIOError()) << scan.ToString();
}

TEST(BufferManagerTest, PinUnpinMaintainsCountersAndViews) {
  TablePtr table = MakeMixedTable(5000);
  TempFile file("cape_bm_pins.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());
  auto paged = OpenPagedTable(file.path(), 64 << 20);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto source = std::dynamic_pointer_cast<PagedTable>((*paged)->page_source());
  ASSERT_NE(source, nullptr);
  const int64_t page_bytes = source->heap_file()->page_bytes();

  EXPECT_FALSE((*paged)->rows_resident());
  EXPECT_TRUE((*paged)->UsesPagedScan());
  EXPECT_EQ(source->num_pages(), 3);
  EXPECT_EQ(source->rows_per_page(), kRowsPerPage);

  {
    auto first = source->Pin(0);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_TRUE(first->valid());
    EXPECT_EQ(first->view().row_begin, 0);
    EXPECT_EQ(first->view().row_count, kRowsPerPage);
    ASSERT_NE(first->view().cols, nullptr);
    EXPECT_NE(first->view().cols[0].validity, nullptr);

    // Second pin on the same page is a hit and does not double-count the
    // pinned bytes (the frame was already pinned).
    auto second = source->Pin(0);
    ASSERT_TRUE(second.ok());
    PageSourceStats st = source->stats();
    EXPECT_EQ(st.misses, 1);
    EXPECT_EQ(st.hits, 1);
    EXPECT_EQ(st.bytes_pinned, page_bytes);
    EXPECT_EQ(st.bytes_read, page_bytes);
  }
  // Both guards released: nothing pinned, peak remembers the high-water mark.
  PageSourceStats st = source->stats();
  EXPECT_EQ(st.bytes_pinned, 0);
  EXPECT_EQ(st.peak_bytes_pinned, page_bytes);

  // Repin after release: still cached under this generous budget.
  auto again = source->Pin(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(source->stats().misses, 1);
  EXPECT_EQ(source->stats().hits, 2);

  // A short last page reports its true row count.
  auto last = source->Pin(2);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->view().row_begin, 2 * kRowsPerPage);
  EXPECT_EQ(last->view().row_count, 5000 - 2 * kRowsPerPage);
  EXPECT_FALSE(source->Pin(3).ok());
  EXPECT_FALSE(source->Pin(-1).ok());
}

TEST(BufferManagerTest, SingleFrameBudgetScansWholeFileWithEvictions) {
  TablePtr table = MakeMixedTable(9000);  // 5 pages
  TempFile file("cape_bm_tiny_budget.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());

  // A budget below one page degrades to a single recycled frame; the scan
  // must still complete, faulting every page exactly once (the prefetch
  // hint is skipped while the only frame is pinned — no double reads).
  auto paged = OpenPagedTable(file.path(), /*budget_bytes=*/1);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto source = std::dynamic_pointer_cast<PagedTable>((*paged)->page_source());
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->buffer_manager().max_frames(), 1);

  auto count = CountFilterMatches(**paged, {});
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 9000);

  const int64_t page_bytes = source->heap_file()->page_bytes();
  PageSourceStats st = source->stats();
  EXPECT_EQ(st.misses, source->num_pages());
  EXPECT_EQ(st.bytes_read, source->num_pages() * page_bytes);
  EXPECT_GE(st.evictions, source->num_pages() - 1);
  EXPECT_EQ(st.bytes_pinned, 0);

  // The same tight cache serves grouped aggregation too.
  auto grouped =
      GroupByAggregate(**paged, std::vector<int>{0}, {AggregateSpec::CountStar("n")});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_GT((*grouped)->num_rows(), 0);
}

TEST(BufferManagerTest, PrefetchWarmsCacheButNeverGrowsPastBudget) {
  TablePtr table = MakeMixedTable(9000);  // 5 pages
  TempFile file("cape_bm_prefetch.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());
  auto hf = HeapFile::Open(file.path());
  ASSERT_TRUE(hf.ok());
  const int64_t page_bytes = (*hf)->page_bytes();

  // Two frames: pin page 0, prefetch page 1 into the spare frame, and the
  // subsequent pin is a pure cache hit.
  auto paged = OpenPagedTable(file.path(), 2 * page_bytes);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto source = std::dynamic_pointer_cast<PagedTable>((*paged)->page_source());
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->buffer_manager().max_frames(), 2);

  auto pinned = source->Pin(0);
  ASSERT_TRUE(pinned.ok());
  source->Prefetch(1);
  EXPECT_EQ(source->stats().bytes_read, 2 * page_bytes);
  auto next = source->Pin(1);
  ASSERT_TRUE(next.ok());
  PageSourceStats st = source->stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);  // prefetch IO is not a page fault
  EXPECT_EQ(st.bytes_read, 2 * page_bytes);

  // With both frames pinned the hint has nowhere to go and must not grow
  // the cache past its budget (prefetch never fails, it just declines).
  source->Prefetch(2);
  EXPECT_EQ(source->stats().bytes_read, 2 * page_bytes);
}

TEST(BufferManagerTest, PageReadFailpointInjectsAndRecovers) {
  TablePtr table = MakeMixedTable(3000);
  TempFile file("cape_bm_failpoint.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());
  auto paged = OpenPagedTable(file.path(), /*budget_bytes=*/1);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  {
    failpoint::ScopedFailpoint fp("storage.page_read");
    ASSERT_TRUE(fp.activation_status().ok()) << fp.activation_status().ToString();
    const Status st = CountFilterMatches(**paged, {}).status();
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    EXPECT_NE(st.message().find("injected fault"), std::string::npos) << st.ToString();
  }
  // Disarmed: the same table scans cleanly again (no frame was left in a
  // half-loaded state by the failed read).
  auto count = CountFilterMatches(**paged, {});
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 3000);
}

TEST(BufferManagerTest, PagedScanMatchesInMemoryOperatorsByteForByte) {
  TablePtr table = MakeMixedTable(5000);
  TempFile file("cape_bm_equiv.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());
  auto paged = OpenPagedTable(file.path(), /*budget_bytes=*/1 << 16);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  const std::vector<AggregateSpec> aggs = {
      AggregateSpec::CountStar("n"), AggregateSpec::Sum(1, "num_sum"),
      AggregateSpec::Avg(2, "val_avg"), AggregateSpec::Min(2, "val_min"),
      AggregateSpec::Max(0, "cat_max")};
  const std::vector<std::vector<std::pair<int, Value>>> filters = {
      {},
      {{0, Value::String("alpha")}},
      {{0, Value::String("absent")}},
      {{0, Value::Null()}},
      {{1, Value::Int64(3)}, {3, Value::String("tag1")}},
  };
  for (const auto& conditions : filters) {
    auto mem_count = CountFilterMatches(*table, conditions);
    auto paged_count = CountFilterMatches(**paged, conditions);
    ASSERT_TRUE(mem_count.ok() && paged_count.ok());
    EXPECT_EQ(*mem_count, *paged_count);

    auto mem_filtered = FilterEquals(*table, conditions);
    auto paged_filtered = FilterEquals(**paged, conditions);
    ASSERT_TRUE(mem_filtered.ok()) << mem_filtered.status().ToString();
    ASSERT_TRUE(paged_filtered.ok()) << paged_filtered.status().ToString();
    EXPECT_EQ(WriteCsvString(**mem_filtered), WriteCsvString(**paged_filtered));

    for (const std::vector<int>& group_cols :
         std::vector<std::vector<int>>{{0}, {0, 3}, {1}, {2}, {}}) {
      auto mem = FilterGroupAggregate(*table, conditions, group_cols, aggs);
      auto pg = FilterGroupAggregate(**paged, conditions, group_cols, aggs);
      ASSERT_TRUE(mem.ok()) << mem.status().ToString();
      ASSERT_TRUE(pg.ok()) << pg.status().ToString();
      EXPECT_EQ(WriteCsvString(**mem), WriteCsvString(**pg));
    }
  }
  for (const std::vector<int>& cols : std::vector<std::vector<int>>{{0}, {0, 1}, {3}, {}}) {
    auto mem = ProjectDistinct(*table, cols);
    auto pg = ProjectDistinct(**paged, cols);
    ASSERT_TRUE(mem.ok()) << mem.status().ToString();
    ASSERT_TRUE(pg.ok()) << pg.status().ToString();
    EXPECT_EQ(WriteCsvString(**mem), WriteCsvString(**pg));
  }
}

TEST(BufferManagerTest, AttachHeapFileValidatesAndTogglesResidentScans) {
  TablePtr table = MakeMixedTable(5000);
  TempFile file("cape_bm_attach.cape");
  ASSERT_TRUE(WriteTableToHeapFile(*table, file.path(), kRowsPerPage).ok());

  // A different table (row count mismatch) must be rejected.
  TablePtr other = MakeMixedTable(4000);
  EXPECT_FALSE(AttachHeapFile(*other, file.path(), 1 << 20).ok());

  ASSERT_TRUE(AttachHeapFile(*table, file.path(), 1 << 20).ok());
  EXPECT_TRUE(table->rows_resident());

  // A/B: the process toggle flips the same resident table between the
  // in-memory arrays and the paged path; outputs are byte-identical and the
  // paged mode provably went through the buffer manager.
  std::string rendered[2];
  for (int mode = 0; mode < 2; ++mode) {
    PagedModeGuard guard(mode == 1);
    EXPECT_EQ(table->UsesPagedScan(), mode == 1);
    auto grouped = GroupByAggregate(*table, std::vector<int>{0, 3},
                                    {AggregateSpec::CountStar("n"),
                                     AggregateSpec::Sum(2, "val_sum")});
    ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
    rendered[mode] = WriteCsvString(**grouped);
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_GT(table->page_source()->stats().misses, 0);
}

TEST(BufferManagerTest, EngineRunStatsExposePageCountersAndMiningMatches) {
  CrimeOptions options;
  options.num_rows = 6000;
  options.num_attrs = 5;
  options.seed = 42;

  TempFile file("cape_bm_engine.cape");
  ASSERT_TRUE(GenerateCrimeToHeapFile(options, file.path(), kRowsPerPage).ok());
  auto paged = OpenPagedTable(file.path(), /*budget_bytes=*/1 << 18);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  auto in_memory = GenerateCrime(options);
  ASSERT_TRUE(in_memory.ok());
  ASSERT_EQ((*paged)->num_rows(), (*in_memory)->num_rows());

  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 10;
  config.agg_functions = {AggFunc::kCount};

  auto mine = [&](TablePtr t) -> std::string {
    auto engine = Engine::FromTable(std::move(t));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    engine->mining_config() = config;
    const Status st = engine->MinePatterns("NAIVE");
    EXPECT_TRUE(st.ok()) << st.ToString();
    return SerializePatternSet(engine->patterns(), engine->schema());
  };

  // Out-of-core NAIVE mining produces the identical pattern set, and the
  // engine surfaces the buffer-manager counters through run_stats().
  auto engine = Engine::FromTable(*paged);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  engine->mining_config() = config;
  ASSERT_TRUE(engine->MinePatterns("NAIVE").ok());
  const RunStats stats = engine->run_stats();
  EXPECT_GT(stats.page_misses, 0);
  EXPECT_GT(stats.page_bytes_read, 0);
  EXPECT_EQ(stats.page_bytes_pinned, 0);  // nothing pinned between requests
  EXPECT_GT(stats.page_hits + stats.page_misses, (*paged)->page_source()->num_pages());

  const std::string from_paged = SerializePatternSet(engine->patterns(), engine->schema());
  EXPECT_EQ(from_paged, mine(*in_memory));
  EXPECT_FALSE(from_paged.empty());
}

}  // namespace
}  // namespace cape
