#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/table.h"

namespace cape {
namespace {

std::shared_ptr<Schema> PubSchema() {
  return Schema::Make({Field{"author", DataType::kString, false},
                       Field{"year", DataType::kInt64, false},
                       Field{"score", DataType::kDouble, true}});
}

TEST(SchemaTest, LookupByName) {
  auto schema = PubSchema();
  EXPECT_EQ(schema->num_fields(), 3);
  EXPECT_EQ(schema->GetFieldIndex("year"), 1);
  EXPECT_EQ(schema->GetFieldIndex("nope"), -1);
  EXPECT_TRUE(schema->HasField("author"));
  ASSERT_TRUE(schema->GetFieldIndexChecked("score").ok());
  EXPECT_TRUE(schema->GetFieldIndexChecked("nope").status().IsNotFound());
}

TEST(SchemaTest, ToStringAndNames) {
  auto schema = PubSchema();
  EXPECT_EQ(schema->ToString(), "(author: string, year: int64, score: double)");
  EXPECT_EQ(schema->field_names(), (std::vector<std::string>{"author", "year", "score"}));
}

TEST(ColumnTest, AppendAndGet) {
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendNull();
  ASSERT_TRUE(col.AppendValue(Value::Int64(9)).ok());
  EXPECT_EQ(col.size(), 3);
  EXPECT_EQ(col.GetValue(0), Value::Int64(5));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetInt64(2), 9);
}

TEST(ColumnTest, TypeMismatchIsRejected) {
  Column col(DataType::kInt64);
  EXPECT_TRUE(col.AppendValue(Value::String("x")).IsTypeError());
  EXPECT_EQ(col.size(), 0);
}

TEST(ColumnTest, DoubleColumnAcceptsInt64Values) {
  Column col(DataType::kDouble);
  ASSERT_TRUE(col.AppendValue(Value::Int64(3)).ok());
  EXPECT_DOUBLE_EQ(col.GetDouble(0), 3.0);
}

TEST(ColumnTest, CountDistinctIgnoresNulls) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  col.AppendString("a");
  col.AppendNull();
  EXPECT_EQ(col.CountDistinct(), 2);
}

TEST(ColumnTest, MinMax) {
  Column col(DataType::kInt64);
  col.AppendNull();
  col.AppendInt64(4);
  col.AppendInt64(-2);
  col.AppendInt64(9);
  EXPECT_EQ(col.Min(), Value::Int64(-2));
  EXPECT_EQ(col.Max(), Value::Int64(9));
  Column empty(DataType::kDouble);
  EXPECT_TRUE(empty.Min().is_null());
  EXPECT_TRUE(empty.Max().is_null());
}

TEST(TableTest, AppendAndRead) {
  Table table(PubSchema());
  ASSERT_TRUE(
      table.AppendRow({Value::String("AX"), Value::Int64(2007), Value::Double(1.5)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::String("AY"), Value::Int64(2008), Value::Null()}).ok());
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.GetValue(0, 0), Value::String("AX"));
  EXPECT_TRUE(table.GetValue(1, 2).is_null());
  EXPECT_EQ(table.GetRow(1)[1], Value::Int64(2008));
  EXPECT_EQ(table.GetRowProjection(0, {2, 0}),
            (Row{Value::Double(1.5), Value::String("AX")}));
  EXPECT_TRUE(table.Validate().ok());
}

TEST(TableTest, ArityMismatchRejected) {
  Table table(PubSchema());
  EXPECT_TRUE(table.AppendRow({Value::String("AX")}).IsInvalidArgument());
  EXPECT_EQ(table.num_rows(), 0);
}

TEST(TableTest, TypeMismatchLeavesTableUnchanged) {
  Table table(PubSchema());
  Status st = table.AppendRow({Value::Int64(1), Value::Int64(2007), Value::Double(0.0)});
  EXPECT_TRUE(st.IsTypeError());
  EXPECT_EQ(table.num_rows(), 0);
  // All columns must still agree on size.
  EXPECT_TRUE(table.Validate().ok());
}

TEST(TableTest, FromRowsBuildsValidTable) {
  auto result = Table::FromRows(
      PubSchema(), {{Value::String("A"), Value::Int64(1), Value::Double(0.5)},
                    {Value::String("B"), Value::Int64(2), Value::Null()}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2);
}

TEST(TableTest, ColumnByName) {
  Table table(PubSchema());
  ASSERT_TRUE(
      table.AppendRow({Value::String("AX"), Value::Int64(2007), Value::Double(1.5)}).ok());
  auto col = table.ColumnByName("year");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->GetInt64(0), 2007);
  EXPECT_TRUE(table.ColumnByName("bogus").status().IsNotFound());
}

TEST(TableTest, DuplicateFieldNamesFailValidation) {
  auto schema = Schema::Make({Field{"a", DataType::kInt64, false},
                              Field{"a", DataType::kInt64, false}});
  Table table(schema);
  EXPECT_TRUE(table.Validate().IsInvalidArgument());
}

TEST(TableTest, ToStringRendersHeaderAndRows) {
  Table table(PubSchema());
  ASSERT_TRUE(
      table.AppendRow({Value::String("AX"), Value::Int64(2007), Value::Double(1.5)}).ok());
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("author"), std::string::npos);
  EXPECT_NE(rendered.find("2007"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table table(PubSchema());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        table.AppendRow({Value::String("A"), Value::Int64(i), Value::Double(0)}).ok());
  }
  EXPECT_NE(table.ToString(5).find("more rows"), std::string::npos);
}

TEST(TableTest, AppendRowsFromBulkCopy) {
  Table src(PubSchema());
  ASSERT_TRUE(src.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  ASSERT_TRUE(src.AppendRow({Value::String("B"), Value::Int64(2), Value::Null()}).ok());
  ASSERT_TRUE(src.AppendRow({Value::String("C"), Value::Int64(3), Value::Double(2.5)}).ok());

  Table dst(src.schema());
  ASSERT_TRUE(dst.AppendRowsFrom(src, {2, 0, 2}).ok());
  ASSERT_EQ(dst.num_rows(), 3);
  EXPECT_EQ(dst.GetValue(0, 0), Value::String("C"));
  EXPECT_EQ(dst.GetValue(1, 0), Value::String("A"));
  EXPECT_EQ(dst.GetValue(2, 1), Value::Int64(3));
  EXPECT_TRUE(dst.Validate().ok());

  // Nulls copy as nulls.
  ASSERT_TRUE(dst.AppendRowsFrom(src, {1}).ok());
  EXPECT_TRUE(dst.GetValue(3, 2).is_null());

  // Out-of-range rows and mismatched schemas are rejected atomically-enough
  // to keep the table valid.
  EXPECT_TRUE(dst.AppendRowsFrom(src, {5}).IsOutOfRange());
  Table other(Schema::Make({Field{"x", DataType::kInt64, false}}));
  EXPECT_TRUE(other.AppendRowsFrom(src, {0}).IsInvalidArgument());
  EXPECT_TRUE(dst.Validate().ok());
}

TEST(TableTest, AppendRowsFromEqualSchemaDifferentPointer) {
  Table src(PubSchema());
  ASSERT_TRUE(src.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  Table dst(PubSchema());  // equal schema, different shared_ptr
  EXPECT_TRUE(dst.AppendRowsFrom(src, {0}).ok());
  EXPECT_EQ(dst.num_rows(), 1);
}

TEST(TableTest, MakeEmptyTableHelper) {
  TablePtr t = MakeEmptyTable({Field{"x", DataType::kInt64, false}});
  EXPECT_EQ(t->num_rows(), 0);
  EXPECT_EQ(t->num_columns(), 1);
}

/// Fingerprint is the content hash that keys the pattern serving cache: any
/// visible change to schema or data must move it, and equal content must
/// reproduce it (across separately built instances).

TEST(TableTest, FingerprintIsReproducibleForEqualContent) {
  Table a(PubSchema());
  Table b(PubSchema());  // equal schema, different shared_ptr
  for (Table* t : {&a, &b}) {
    ASSERT_TRUE(t->AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
    ASSERT_TRUE(t->AppendRow({Value::String("B"), Value::Int64(2), Value::Null()}).ok());
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), a.Fingerprint());  // stable across calls
}

TEST(TableTest, FingerprintChangesWithData) {
  Table base(PubSchema());
  ASSERT_TRUE(base.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  const uint64_t fp = base.Fingerprint();

  // Appending a row moves it.
  Table more(PubSchema());
  ASSERT_TRUE(more.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  ASSERT_TRUE(more.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  EXPECT_NE(more.Fingerprint(), fp);

  // A single changed cell moves it.
  Table cell(PubSchema());
  ASSERT_TRUE(cell.AppendRow({Value::String("A"), Value::Int64(2), Value::Double(0.5)}).ok());
  EXPECT_NE(cell.Fingerprint(), fp);

  // NULL vs a present value moves it (null bitmaps are hashed).
  Table with_null(PubSchema());
  ASSERT_TRUE(with_null.AppendRow({Value::String("A"), Value::Int64(1), Value::Null()}).ok());
  EXPECT_NE(with_null.Fingerprint(), fp);

  // A dictionary-only difference (same codes, different string) moves it.
  Table other_string(PubSchema());
  ASSERT_TRUE(
      other_string.AppendRow({Value::String("B"), Value::Int64(1), Value::Double(0.5)}).ok());
  EXPECT_NE(other_string.Fingerprint(), fp);
}

TEST(TableTest, FingerprintChangesWithSchema) {
  Table a(PubSchema());
  Table renamed(Schema::Make({Field{"writer", DataType::kString, false},
                              Field{"year", DataType::kInt64, false},
                              Field{"score", DataType::kDouble, true}}));
  EXPECT_NE(a.Fingerprint(), renamed.Fingerprint());  // even while both empty
}

/// The fingerprint is maintained as an incremental chain: Fingerprint() after
/// an append extends the cached per-column states over just the delta rows,
/// and the result must be indistinguishable from hashing the whole table
/// fresh. This is what lets Engine::AppendAndRemine key the serving cache in
/// O(delta) instead of O(n) per append.

TEST(TableTest, FingerprintExtendsIncrementallyAcrossAppends) {
  Table grown(PubSchema());
  ASSERT_TRUE(grown.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  (void)grown.Fingerprint();  // seed the chain at 1 row
  ASSERT_TRUE(grown.AppendRow({Value::String("B"), Value::Int64(2), Value::Null()}).ok());
  ASSERT_TRUE(grown.AppendRow({Value::String("C"), Value::Int64(3), Value::Double(-0.0)}).ok());

  // Fresh-load twin: same rows, no intermediate Fingerprint() calls — its
  // first hash covers all rows at once.
  Table fresh(PubSchema());
  ASSERT_TRUE(fresh.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  ASSERT_TRUE(fresh.AppendRow({Value::String("B"), Value::Int64(2), Value::Null()}).ok());
  ASSERT_TRUE(fresh.AppendRow({Value::String("C"), Value::Int64(3), Value::Double(-0.0)}).ok());
  EXPECT_EQ(grown.Fingerprint(), fresh.Fingerprint());

  // Chain keeps extending: hash, append, hash again.
  ASSERT_TRUE(grown.AppendRow({Value::String("D"), Value::Int64(4), Value::Double(7.0)}).ok());
  ASSERT_TRUE(fresh.AppendRow({Value::String("D"), Value::Int64(4), Value::Double(7.0)}).ok());
  EXPECT_EQ(grown.Fingerprint(), fresh.Fingerprint());
}

TEST(TableTest, FingerprintCacheInvalidatedByMutableColumnAccess) {
  Table table(PubSchema());
  ASSERT_TRUE(table.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::String("B"), Value::Int64(2), Value::Double(1.5)}).ok());
  const uint64_t chained = table.Fingerprint();

  // mutable_column() hands out a writable alias the chain cannot see
  // through, so it must drop the cached states. The forced from-scratch
  // rehash of unchanged content has to land on the very same digest the
  // incremental chain produced — otherwise chained and cold fingerprints
  // would key different cache entries for identical tables.
  (void)table.mutable_column(1);
  EXPECT_EQ(table.Fingerprint(), chained);

  // The rebuilt chain keeps extending correctly after the invalidation.
  (void)table.mutable_column(0);
  ASSERT_TRUE(table.AppendRow({Value::String("C"), Value::Int64(3), Value::Null()}).ok());
  Table twin(PubSchema());
  ASSERT_TRUE(twin.AppendRow({Value::String("A"), Value::Int64(1), Value::Double(0.5)}).ok());
  ASSERT_TRUE(twin.AppendRow({Value::String("B"), Value::Int64(2), Value::Double(1.5)}).ok());
  ASSERT_TRUE(twin.AppendRow({Value::String("C"), Value::Int64(3), Value::Null()}).ok());
  EXPECT_EQ(table.Fingerprint(), twin.Fingerprint());
}

TEST(TableTest, FingerprintIncrementalMatchesBulkAppend) {
  // Row-at-a-time appends interleaved with Fingerprint() calls vs one
  // AppendRowsFrom bulk copy: same content, same fingerprint.
  Table source(PubSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(source
                    .AppendRow({Value::String("s" + std::to_string(i % 3)),
                                Value::Int64(i), i % 4 == 0 ? Value::Null()
                                                            : Value::Double(i * 0.25)})
                    .ok());
  }

  Table incremental(PubSchema());
  for (int64_t i = 0; i < source.num_rows(); ++i) {
    ASSERT_TRUE(incremental.AppendRow(source.GetRow(i)).ok());
    (void)incremental.Fingerprint();  // force a chain extension every row
  }

  std::vector<int64_t> all_rows(static_cast<size_t>(source.num_rows()));
  for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = static_cast<int64_t>(i);
  Table bulk(PubSchema());
  ASSERT_TRUE(bulk.AppendRowsFrom(source, all_rows).ok());
  EXPECT_EQ(incremental.Fingerprint(), bulk.Fingerprint());
}

}  // namespace
}  // namespace cape
