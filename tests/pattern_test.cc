#include <gtest/gtest.h>

#include "pattern/pattern.h"
#include "pattern/pattern_set.h"

namespace cape {
namespace {

std::shared_ptr<Schema> PubSchema() {
  return Schema::Make({Field{"author", DataType::kString, false},
                       Field{"pubid", DataType::kString, false},
                       Field{"year", DataType::kInt64, false},
                       Field{"venue", DataType::kString, false}});
}

Pattern P1() {  // [author] : year ~Const~> count(*)
  return Pattern{AttrSet::Single(0), AttrSet::Single(2), AggFunc::kCount,
                 Pattern::kCountStar, ModelType::kConst};
}

Pattern P2() {  // [author, venue] : year ~Const~> count(*)
  return Pattern{AttrSet::FromIndices({0, 3}), AttrSet::Single(2), AggFunc::kCount,
                 Pattern::kCountStar, ModelType::kConst};
}

TEST(PatternTest, WellFormedness) {
  EXPECT_TRUE(P1().IsWellFormed());
  EXPECT_TRUE(P2().IsWellFormed());

  Pattern empty_f = P1();
  empty_f.partition_attrs = AttrSet();
  EXPECT_FALSE(empty_f.IsWellFormed());

  Pattern overlap = P1();
  overlap.predictor_attrs = AttrSet::Single(0);
  EXPECT_FALSE(overlap.IsWellFormed());

  Pattern count_with_attr = P1();
  count_with_attr.agg_attr = 2;
  EXPECT_FALSE(count_with_attr.IsWellFormed());

  Pattern sum_star = P1();
  sum_star.agg = AggFunc::kSum;
  EXPECT_FALSE(sum_star.IsWellFormed());  // sum requires a real attribute

  Pattern sum_in_g = P1();
  sum_in_g.agg = AggFunc::kSum;
  sum_in_g.agg_attr = 2;  // year is a predictor
  EXPECT_FALSE(sum_in_g.IsWellFormed());

  Pattern sum_ok = P1();
  sum_ok.agg = AggFunc::kSum;
  sum_ok.agg_attr = 1;
  EXPECT_TRUE(sum_ok.IsWellFormed());
}

TEST(PatternTest, RefinementRelation) {
  // P2 refines P1 (Example 4); not vice versa.
  EXPECT_TRUE(P2().IsRefinementOf(P1()));
  EXPECT_FALSE(P1().IsRefinementOf(P2()));
  // Every pattern refines itself (F' = F).
  EXPECT_TRUE(P1().IsRefinementOf(P1()));
  // Refinement tolerates a different model type (Definition 6).
  Pattern lin = P2();
  lin.model = ModelType::kLinear;
  EXPECT_TRUE(lin.IsRefinementOf(P1()));
  // Different predictors break refinement.
  Pattern diff_v = P2();
  diff_v.predictor_attrs = AttrSet::Single(1);
  EXPECT_FALSE(diff_v.IsRefinementOf(P1()));
  // Different aggregate breaks refinement.
  Pattern diff_agg = P2();
  diff_agg.agg = AggFunc::kSum;
  diff_agg.agg_attr = 1;
  EXPECT_FALSE(diff_agg.IsRefinementOf(P1()));
}

TEST(PatternTest, GroupAttrs) {
  EXPECT_EQ(P2().GroupAttrs(), AttrSet::FromIndices({0, 2, 3}));
}

TEST(PatternTest, ToStringUsesPaperNotation) {
  auto schema = PubSchema();
  EXPECT_EQ(P1().ToString(*schema), "[author] : year ~Const~> count(*)");
  EXPECT_EQ(P2().ToString(*schema), "[author, venue] : year ~Const~> count(*)");
  Pattern sum = P1();
  sum.agg = AggFunc::kSum;
  sum.agg_attr = 1;
  sum.model = ModelType::kLinear;
  EXPECT_EQ(sum.ToString(*schema), "[author] : year ~Lin~> sum(pubid)");
}

TEST(PatternTest, EqualityAndHash) {
  EXPECT_EQ(P1(), P1());
  EXPECT_EQ(P1().Hash(), P1().Hash());
  Pattern lin = P1();
  lin.model = ModelType::kLinear;
  EXPECT_FALSE(P1() == lin);
  EXPECT_NE(P1().Hash(), lin.Hash());
}

TEST(EncodeRowKeyTest, EqualRowsEncodeEqual) {
  Row a{Value::String("AX"), Value::Int64(2007)};
  Row b{Value::String("AX"), Value::Int64(2007)};
  Row c{Value::String("AX"), Value::Int64(2008)};
  EXPECT_EQ(EncodeRowKey(a), EncodeRowKey(b));
  EXPECT_NE(EncodeRowKey(a), EncodeRowKey(c));
  // Cross-type numeric equality is preserved (Value::operator==).
  EXPECT_EQ(EncodeRowKey({Value::Int64(2)}), EncodeRowKey({Value::Double(2.0)}));
  EXPECT_NE(EncodeRowKey({Value::Null()}), EncodeRowKey({Value::Int64(0)}));
}

GlobalPattern MakeGlobal(Pattern p, std::vector<std::string> fragments) {
  GlobalPattern gp;
  gp.pattern = p;
  for (const std::string& f : fragments) {
    LocalPattern local;
    local.fragment = {Value::String(f)};
    local.support = 5;
    local.max_positive_dev = 2.0;
    local.min_negative_dev = -1.0;
    gp.locals.push_back(std::move(local));
  }
  gp.num_fragments = static_cast<int64_t>(fragments.size());
  gp.num_supported = gp.num_fragments;
  gp.num_holding = gp.num_fragments;
  gp.global_confidence = 1.0;
  return gp;
}

TEST(PatternSetTest, FindAndLocalLookup) {
  PatternSet set;
  set.Add(MakeGlobal(P1(), {"AX", "AY"}));
  EXPECT_EQ(set.size(), 1u);
  const GlobalPattern* found = set.Find(P1());
  ASSERT_NE(found, nullptr);
  EXPECT_NE(found->FindLocal({Value::String("AX")}), nullptr);
  EXPECT_EQ(found->FindLocal({Value::String("AZ")}), nullptr);
  EXPECT_EQ(set.Find(P2()), nullptr);
}

TEST(PatternSetTest, NumLocalPatternsAndTruncation) {
  PatternSet set;
  set.Add(MakeGlobal(P1(), {"A", "B", "C"}));
  set.Add(MakeGlobal(P2(), {"D", "E"}));
  EXPECT_EQ(set.NumLocalPatterns(), 5);

  PatternSet t = set.Truncated(4);
  EXPECT_EQ(t.NumLocalPatterns(), 4);
  EXPECT_EQ(t.size(), 2u);

  PatternSet t2 = set.Truncated(2);
  EXPECT_EQ(t2.NumLocalPatterns(), 2);
  EXPECT_EQ(t2.size(), 1u);

  PatternSet all = set.Truncated(100);
  EXPECT_EQ(all.NumLocalPatterns(), 5);
}

TEST(PatternSetTest, TruncatedSetsKeepWorkingIndexes) {
  PatternSet set;
  set.Add(MakeGlobal(P1(), {"A", "B", "C"}));
  PatternSet t = set.Truncated(2);
  const GlobalPattern* found = t.Find(P1());
  ASSERT_NE(found, nullptr);
  EXPECT_NE(found->FindLocal({Value::String("A")}), nullptr);
  EXPECT_EQ(found->FindLocal({Value::String("C")}), nullptr);  // truncated away
}

TEST(PatternSetTest, ToStringListsPatterns) {
  PatternSet set;
  set.Add(MakeGlobal(P1(), {"A"}));
  std::string rendered = set.ToString(*PubSchema());
  EXPECT_NE(rendered.find("[author] : year ~Const~> count(*)"), std::string::npos);
}

}  // namespace
}  // namespace cape
