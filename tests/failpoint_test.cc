#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/failpoint.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "fd/fd_detector.h"
#include "pattern/mining.h"
#include "relational/catalog.h"
#include "relational/csv.h"
#include "sql/executor.h"

namespace cape {
namespace {

// NOTE: this test must stay first in the file. CAPE_FAILPOINTS is parsed
// exactly once, at the process's first failpoint check; under ctest each
// test runs in its own process, and in a direct ./failpoint_test run
// declaration order keeps this test ahead of any other failpoint use.
TEST(FailpointTest, EnvVarArmsASite) {
  ::setenv("CAPE_FAILPOINTS", "csv.read_row=io", /*overwrite=*/1);
  auto result = ReadCsvString("a,b\n1,2\n");
  ::unsetenv("CAPE_FAILPOINTS");
  failpoint::DeactivateAll();

  if (result.ok()) {
    // Another test in this process already parsed the (then-unset) env var;
    // the once-only semantics make re-parsing impossible, so skip.
    GTEST_SKIP() << "CAPE_FAILPOINTS was already parsed by an earlier test";
  }
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_NE(result.status().message().find("CAPE_FAILPOINTS"), std::string::npos)
      << result.status().ToString();
}

TEST(FailpointTest, InactiveByDefaultAndSitesRegistered) {
  EXPECT_FALSE(failpoint::AnyActive());
  const std::vector<std::string> sites = failpoint::AllSites();
  EXPECT_GE(sites.size(), 11u);
  // A clean run is unaffected by the framework being compiled in.
  EXPECT_TRUE(ReadCsvString("a,b\n1,2\n").ok());
}

TEST(FailpointTest, UnknownSiteIsRejected) {
  EXPECT_TRUE(failpoint::Activate("no.such.site", StatusCode::kIOError, "x")
                  .IsInvalidArgument());
  failpoint::ScopedFailpoint fp("also.unknown");
  EXPECT_TRUE(fp.activation_status().IsInvalidArgument());
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST(FailpointTest, SkipAndCountSemantics) {
  DblpOptions options;
  options.num_rows = 200;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());

  // First hit passes (skip=1), second fails (count=1), third passes again.
  ASSERT_TRUE(failpoint::Activate("fd.count_groups", StatusCode::kIOError, "boom",
                                  /*skip=*/1, /*count=*/1)
                  .ok());
  EXPECT_TRUE(FdDetector::CountGroups(**table, AttrSet::Single(0)).ok());
  auto second = FdDetector::CountGroups(**table, AttrSet::Single(0));
  EXPECT_TRUE(second.status().IsIOError());
  EXPECT_EQ(second.status().message(), "boom");
  EXPECT_TRUE(FdDetector::CountGroups(**table, AttrSet::Single(0)).ok());
  failpoint::Deactivate("fd.count_groups");
}

// ---------------------------------------------------------------------------
// Every registered site, forced in turn, converts the injected fault into a
// clean Status from its pipeline stage — no crash, no partial mutation.

MiningConfig SmallMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 10;
  config.agg_functions = {AggFunc::kCount};
  config.excluded_attrs = {"pubid"};
  return config;
}

struct PipelineFixture {
  TablePtr table;
  Engine engine;
  UserQuestion question;
  Catalog catalog;
  SelectQuery select;
  std::string csv_path;
  std::string patterns_path;
};

PipelineFixture MakeFixture() {
  DblpOptions options;
  options.num_rows = 6000;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());

  auto engine = Engine::FromTable(*table);
  EXPECT_TRUE(engine.ok());
  Engine e = std::move(engine).ValueOrDie();
  e.mining_config() = SmallMiningConfig();
  EXPECT_TRUE(e.MinePatterns("ARP-MINE").ok());
  EXPECT_GT(e.patterns().size(), 0u);

  auto question = e.MakeQuestion({"author", "venue", "year"},
                                 {Value::String("AX"), Value::String("SIGKDD"),
                                  Value::Int64(2007)},
                                 AggFunc::kCount, "*", Direction::kLow);
  EXPECT_TRUE(question.ok());

  Catalog catalog;
  EXPECT_TRUE(catalog.RegisterTable("pub", *table).ok());
  auto select = ParseSelect("SELECT venue, count(*) FROM pub GROUP BY venue;");
  EXPECT_TRUE(select.ok());

  const std::string csv_path = ::testing::TempDir() + "cape_failpoint.csv";
  {
    std::ofstream out(csv_path);
    out << "a,b\n1,x\n2,y\n";
  }
  const std::string patterns_path = ::testing::TempDir() + "cape_failpoint.patterns";
  EXPECT_TRUE(e.SavePatterns(patterns_path).ok());

  return PipelineFixture{*table,
                         std::move(e),
                         std::move(question).ValueOrDie(),
                         std::move(catalog),
                         std::move(select).ValueOrDie(),
                         csv_path,
                         patterns_path};
}

/// Runs the pipeline stage that contains `site` and returns its Status.
Status DriveSite(const std::string& site, PipelineFixture& fx) {
  if (site == "csv.open") return ReadCsvFile(fx.csv_path).status();
  if (site == "csv.read_row") return ReadCsvString("a,b\n1,2\n3,4\n").status();
  if (site == "mining.group" || site == "mining.sort") {
    return MakeArpMiner()->Mine(*fx.table, SmallMiningConfig()).status();
  }
  if (site == "mining.cube.group") {
    return MakeCubeMiner()->Mine(*fx.table, SmallMiningConfig()).status();
  }
  if (site == "fd.count_groups") {
    return FdDetector::CountGroups(*fx.table, AttrSet::Single(0)).status();
  }
  if (site == "explain.norm" || site == "explain.refine") {
    return fx.engine.Explain(fx.question).status();
  }
  if (site == "sql.execute") return ExecuteSelect(fx.catalog, fx.select).status();
  if (site == "pattern_io.save") {
    return fx.engine.SavePatterns(::testing::TempDir() + "cape_failpoint_out.patterns");
  }
  if (site == "pattern_io.load") return fx.engine.LoadPatterns(fx.patterns_path);
  return Status::Internal("no driver for failpoint site '" + site + "'");
}

TEST(FailpointTest, EverySiteConvertsInjectedFaultIntoCleanStatus) {
  PipelineFixture fx = MakeFixture();

  for (const std::string& site : failpoint::AllSites()) {
    failpoint::ScopedFailpoint fp(site);
    ASSERT_TRUE(fp.activation_status().ok()) << site;
    Status st = DriveSite(site, fx);
    EXPECT_TRUE(st.IsIOError()) << site << ": " << st.ToString();
    EXPECT_NE(st.message().find("injected fault"), std::string::npos) << site;
  }

  // All sites disarmed again: every stage succeeds.
  EXPECT_FALSE(failpoint::AnyActive());
  for (const std::string& site : failpoint::AllSites()) {
    EXPECT_TRUE(DriveSite(site, fx).ok()) << site;
  }
}

TEST(FailpointTest, FaultedMiningLeavesEnginePatternsIntact) {
  PipelineFixture fx = MakeFixture();
  const size_t before = fx.engine.patterns().size();

  failpoint::ScopedFailpoint fp("mining.group");
  EXPECT_FALSE(fx.engine.MinePatterns("SHARE-GRP").ok());
  ASSERT_TRUE(fx.engine.has_patterns());
  EXPECT_EQ(fx.engine.patterns().size(), before);
}

TEST(FailpointTest, FaultedSaveDoesNotCreateTheFile) {
  PipelineFixture fx = MakeFixture();
  const std::string path = ::testing::TempDir() + "cape_failpoint_never_written.patterns";
  std::remove(path.c_str());

  failpoint::ScopedFailpoint fp("pattern_io.save");
  EXPECT_TRUE(fx.engine.SavePatterns(path).IsIOError());
  EXPECT_FALSE(std::ifstream(path).good());
}

}  // namespace
}  // namespace cape
