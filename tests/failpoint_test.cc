#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/failpoint.h"
#include "common/macros.h"
#include "core/engine.h"
#include "core/pattern_cache.h"
#include "datagen/dblp.h"
#include "fd/fd_detector.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"
#include "relational/catalog.h"
#include "relational/csv.h"
#include "relational/kernels.h"
#include "sql/executor.h"
#include "storage/heap_file.h"
#include "storage/paged_table.h"

namespace cape {
namespace {

// NOTE: this test must stay first in the file. CAPE_FAILPOINTS is parsed
// exactly once, at the process's first failpoint check; under ctest each
// test runs in its own process, and in a direct ./failpoint_test run
// declaration order keeps this test ahead of any other failpoint use.
TEST(FailpointTest, EnvVarArmsASite) {
  ::setenv("CAPE_FAILPOINTS", "csv.read_row=io", /*overwrite=*/1);
  auto result = ReadCsvString("a,b\n1,2\n");
  ::unsetenv("CAPE_FAILPOINTS");
  failpoint::DeactivateAll();

  if (result.ok()) {
    // Another test in this process already parsed the (then-unset) env var;
    // the once-only semantics make re-parsing impossible, so skip.
    GTEST_SKIP() << "CAPE_FAILPOINTS was already parsed by an earlier test";
  }
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_NE(result.status().message().find("CAPE_FAILPOINTS"), std::string::npos)
      << result.status().ToString();
}

TEST(FailpointTest, InactiveByDefaultAndSitesRegistered) {
  EXPECT_FALSE(failpoint::AnyActive());
  const std::vector<std::string> sites = failpoint::AllSites();
  EXPECT_GE(sites.size(), 15u);
  // A clean run is unaffected by the framework being compiled in.
  EXPECT_TRUE(ReadCsvString("a,b\n1,2\n").ok());
}

TEST(FailpointTest, UnknownSiteIsRejected) {
  EXPECT_TRUE(failpoint::Activate("no.such.site", StatusCode::kIOError, "x")
                  .IsInvalidArgument());
  failpoint::ScopedFailpoint fp("also.unknown");
  EXPECT_TRUE(fp.activation_status().IsInvalidArgument());
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST(FailpointTest, SkipAndCountSemantics) {
  DblpOptions options;
  options.num_rows = 200;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());

  // First hit passes (skip=1), second fails (count=1), third passes again.
  ASSERT_TRUE(failpoint::Activate("fd.count_groups", StatusCode::kIOError, "boom",
                                  /*skip=*/1, /*count=*/1)
                  .ok());
  EXPECT_TRUE(FdDetector::CountGroups(**table, AttrSet::Single(0)).ok());
  auto second = FdDetector::CountGroups(**table, AttrSet::Single(0));
  EXPECT_TRUE(second.status().IsIOError());
  EXPECT_EQ(second.status().message(), "boom");
  EXPECT_TRUE(FdDetector::CountGroups(**table, AttrSet::Single(0)).ok());
  failpoint::Deactivate("fd.count_groups");
}

TEST(FailpointTest, ActivateFromSpecSyntax) {
  // @skip from the env-style spec keeps exact trigger-after-N semantics.
  DblpOptions options;
  options.num_rows = 200;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(failpoint::ActivateFromSpec("fd.count_groups=internal@1").ok());
  EXPECT_TRUE(FdDetector::CountGroups(**table, AttrSet::Single(0)).ok());
  auto second = FdDetector::CountGroups(**table, AttrSet::Single(0));
  EXPECT_TRUE(second.status().IsInternal());
  failpoint::DeactivateAll();

  // Malformed or out-of-range specs are rejected, never armed.
  EXPECT_TRUE(failpoint::ActivateFromSpec("nonsense").IsInvalidArgument());
  EXPECT_TRUE(failpoint::ActivateFromSpec("no.such.site=io").IsInvalidArgument());
  EXPECT_TRUE(failpoint::ActivateFromSpec("fd.count_groups=io@-1").IsInvalidArgument());
  EXPECT_TRUE(failpoint::ActivateFromSpec("fd.count_groups=io%zero").IsInvalidArgument());
  EXPECT_TRUE(failpoint::ActivateFromSpec("fd.count_groups=io%0").IsInvalidArgument());
  EXPECT_TRUE(failpoint::ActivateFromSpec("fd.count_groups=io%1.5").IsInvalidArgument());
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST(FailpointTest, ProbabilisticFiringIsDeterministic) {
  DblpOptions options;
  options.num_rows = 200;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());

  // p = 0.4 over 40 hits: some hits fire, some pass, and because the per-site
  // stream is reset by each Activate, the firing pattern is reproducible.
  auto run = [&] {
    EXPECT_TRUE(failpoint::Activate("fd.count_groups", StatusCode::kIOError, "chaos",
                                    /*skip=*/0, /*count=*/-1, /*probability=*/0.4)
                    .ok());
    std::string pattern;
    for (int i = 0; i < 40; ++i) {
      pattern += FdDetector::CountGroups(**table, AttrSet::Single(0)).ok() ? '.' : 'X';
    }
    failpoint::Deactivate("fd.count_groups");
    return pattern;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  const size_t fired = static_cast<size_t>(std::count(first.begin(), first.end(), 'X'));
  EXPECT_GT(fired, 0u) << first;
  EXPECT_LT(fired, 40u) << first;
}

TEST(FailpointTest, ProbabilisticLosingDrawsDoNotConsumeCount) {
  DblpOptions options;
  options.num_rows = 200;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());

  // count=2 at p=0.4: exactly two of the eligible hits fire, regardless of
  // how many losing draws pass through in between.
  ASSERT_TRUE(failpoint::Activate("fd.count_groups", StatusCode::kIOError, "chaos",
                                  /*skip=*/0, /*count=*/2, /*probability=*/0.4)
                  .ok());
  int fired = 0;
  for (int i = 0; i < 60; ++i) {
    if (!FdDetector::CountGroups(**table, AttrSet::Single(0)).ok()) ++fired;
  }
  failpoint::Deactivate("fd.count_groups");
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// Every registered site, forced in turn, converts the injected fault into a
// clean Status from its pipeline stage — no crash, no partial mutation.
// Hard sites propagate the fault as an error Status; degrade sites absorb it
// (the stage still succeeds, falling back to cold behavior).

MiningConfig SmallMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 10;
  config.agg_functions = {AggFunc::kCount};
  config.excluded_attrs = {"pubid"};
  return config;
}

struct PipelineFixture {
  TablePtr table;
  Engine engine;
  UserQuestion question;
  Catalog catalog;
  SelectQuery select;
  std::string csv_path;
  std::string patterns_path;
};

PipelineFixture MakeFixture() {
  DblpOptions options;
  options.num_rows = 6000;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());

  auto engine = Engine::FromTable(*table);
  EXPECT_TRUE(engine.ok());
  Engine e = std::move(engine).ValueOrDie();
  e.mining_config() = SmallMiningConfig();
  EXPECT_TRUE(e.MinePatterns("ARP-MINE").ok());
  EXPECT_GT(e.patterns().size(), 0u);

  auto question = e.MakeQuestion({"author", "venue", "year"},
                                 {Value::String("AX"), Value::String("SIGKDD"),
                                  Value::Int64(2007)},
                                 AggFunc::kCount, "*", Direction::kLow);
  EXPECT_TRUE(question.ok());

  Catalog catalog;
  EXPECT_TRUE(catalog.RegisterTable("pub", *table).ok());
  auto select = ParseSelect("SELECT venue, count(*) FROM pub GROUP BY venue;");
  EXPECT_TRUE(select.ok());

  const std::string csv_path = ::testing::TempDir() + "cape_failpoint.csv";
  {
    std::ofstream out(csv_path);
    out << "a,b\n1,x\n2,y\n";
  }
  const std::string patterns_path = ::testing::TempDir() + "cape_failpoint.patterns";
  EXPECT_TRUE(e.SavePatterns(patterns_path).ok());

  return PipelineFixture{*table,
                         std::move(e),
                         std::move(question).ValueOrDie(),
                         std::move(catalog),
                         std::move(select).ValueOrDie(),
                         csv_path,
                         patterns_path};
}

/// Runs the pipeline stage that contains `site` and returns its Status.
Status DriveSite(const std::string& site, PipelineFixture& fx) {
  if (site == "csv.open") return ReadCsvFile(fx.csv_path).status();
  if (site == "csv.read_row") return ReadCsvString("a,b\n1,2\n3,4\n").status();
  if (site == "mining.group" || site == "mining.sort") {
    return MakeArpMiner()->Mine(*fx.table, SmallMiningConfig()).status();
  }
  if (site == "mining.cube.group") {
    return MakeCubeMiner()->Mine(*fx.table, SmallMiningConfig()).status();
  }
  if (site == "fd.count_groups") {
    return FdDetector::CountGroups(*fx.table, AttrSet::Single(0)).status();
  }
  if (site == "explain.norm" || site == "explain.refine") {
    return fx.engine.Explain(fx.question).status();
  }
  if (site == "sql.execute") return ExecuteSelect(fx.catalog, fx.select).status();
  if (site == "pattern_io.save") {
    return fx.engine.SavePatterns(::testing::TempDir() + "cape_failpoint_out.patterns");
  }
  if (site == "pattern_io.load") return fx.engine.LoadPatterns(fx.patterns_path);
  if (site == "engine.cache_admit") {
    PatternCache cache(/*byte_budget=*/1ull << 26);
    fx.engine.set_pattern_cache(&cache);
    Status st = fx.engine.MinePatterns("ARP-MINE");
    fx.engine.set_pattern_cache(nullptr);
    return st;
  }
  if (site == "pattern_cache.save_entry") {
    PatternCache cache(/*byte_budget=*/1ull << 26);
    cache.Insert(fx.table->Fingerprint(), /*mining_config_digest=*/1,
                 fx.engine.shared_patterns(), fx.table->schema());
    return cache.SaveToDirectory(::testing::TempDir() + "cape_failpoint_cache_out");
  }
  if (site == "pattern_cache.load_entry") {
    PatternCache cache(/*byte_budget=*/1ull << 26);
    cache.Insert(fx.table->Fingerprint(), /*mining_config_digest=*/1,
                 fx.engine.shared_patterns(), fx.table->schema());
    const std::string dir = ::testing::TempDir() + "cape_failpoint_cache_load";
    CAPE_RETURN_IF_ERROR(cache.SaveToDirectory(dir));
    PatternCache fresh(/*byte_budget=*/1ull << 26);
    return fresh.LoadFromDirectory(dir, *fx.table->schema(), fx.table->Fingerprint())
        .status();
  }
  if (site == "pattern_cache.lookup_race") {
    PatternCache cache(/*byte_budget=*/1ull << 26);
    cache.Insert(fx.table->Fingerprint(), /*mining_config_digest=*/1,
                 fx.engine.shared_patterns(), fx.table->schema());
    (void)cache.Lookup(fx.table->Fingerprint(), /*mining_config_digest=*/1);
    return Status::OK();
  }
  if (site == "incremental.merge") {
    // The fault fires at the maintainer's commit barrier; AppendAndRemine
    // must absorb it by re-mining from scratch — append durable, patterns
    // correct, no error surfaced.
    return fx.engine.AppendAndRemine({fx.table->GetRow(0)});
  }
  if (site == "storage.page_read") {
    const std::string path = ::testing::TempDir() + "cape_failpoint_heap.cape";
    CAPE_RETURN_IF_ERROR(WriteTableToHeapFile(*fx.table, path));
    // Open touches only the preamble/trailer; the page-read site fires on
    // the first scan, which must surface it as a clean Status.
    CAPE_ASSIGN_OR_RETURN(TablePtr paged, OpenPagedTable(path, /*budget_bytes=*/1 << 20));
    return CountFilterMatches(*paged, {}).status();
  }
  return Status::Internal("no driver for failpoint site '" + site + "'");
}

/// Sites whose correct response to a fault is to absorb it (fall back to a
/// cold mine, skip a poisoned entry) rather than propagate an error.
bool IsDegradeSite(const std::string& site) {
  return site == "engine.cache_admit" || site == "pattern_cache.load_entry" ||
         site == "pattern_cache.lookup_race" || site == "incremental.merge";
}

TEST(FailpointTest, EverySiteConvertsInjectedFaultIntoCleanStatus) {
  PipelineFixture fx = MakeFixture();

  for (const std::string& site : failpoint::AllSites()) {
    failpoint::ScopedFailpoint fp(site);
    ASSERT_TRUE(fp.activation_status().ok()) << site;
    Status st = DriveSite(site, fx);
    if (IsDegradeSite(site)) {
      EXPECT_TRUE(st.ok()) << site << ": " << st.ToString();
    } else {
      EXPECT_TRUE(st.IsIOError()) << site << ": " << st.ToString();
      EXPECT_NE(st.message().find("injected fault"), std::string::npos) << site;
    }
  }

  // All sites disarmed again: every stage succeeds.
  EXPECT_FALSE(failpoint::AnyActive());
  for (const std::string& site : failpoint::AllSites()) {
    EXPECT_TRUE(DriveSite(site, fx).ok()) << site;
  }
}

TEST(FailpointTest, FaultedMiningLeavesEnginePatternsIntact) {
  PipelineFixture fx = MakeFixture();
  const size_t before = fx.engine.patterns().size();

  failpoint::ScopedFailpoint fp("mining.group");
  EXPECT_FALSE(fx.engine.MinePatterns("SHARE-GRP").ok());
  ASSERT_TRUE(fx.engine.has_patterns());
  EXPECT_EQ(fx.engine.patterns().size(), before);
}

TEST(FailpointTest, FaultedSaveDoesNotCreateTheFile) {
  PipelineFixture fx = MakeFixture();
  const std::string path = ::testing::TempDir() + "cape_failpoint_never_written.patterns";
  std::remove(path.c_str());

  failpoint::ScopedFailpoint fp("pattern_io.save");
  EXPECT_TRUE(fx.engine.SavePatterns(path).IsIOError());
  EXPECT_FALSE(std::ifstream(path).good());
}

// ---------------------------------------------------------------------------
// Degrade-site semantics: the serving cache absorbs faults instead of
// propagating them, and the engine falls back to a cold mine.

TEST(FailpointTest, CacheAdmitFaultLeavesCacheColdButMiningSucceeds) {
  PipelineFixture fx = MakeFixture();
  PatternCache cache(/*byte_budget=*/1ull << 26);
  fx.engine.set_pattern_cache(&cache);

  {
    failpoint::ScopedFailpoint fp("engine.cache_admit");
    EXPECT_TRUE(fx.engine.MinePatterns("ARP-MINE").ok());
    EXPECT_GT(fx.engine.patterns().size(), 0u);  // the mine itself succeeded
    EXPECT_EQ(cache.stats().entries, 0);         // but nothing was admitted
  }

  // Disarmed: the next mine inserts, and the one after serves from cache.
  EXPECT_TRUE(fx.engine.MinePatterns("ARP-MINE").ok());
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_TRUE(fx.engine.MinePatterns("ARP-MINE").ok());
  EXPECT_EQ(fx.engine.run_stats().mine_ns, 0);
  fx.engine.set_pattern_cache(nullptr);
}

TEST(FailpointTest, LookupRaceDegradesToMiss) {
  PipelineFixture fx = MakeFixture();
  PatternCache cache(/*byte_budget=*/1ull << 26);
  cache.Insert(fx.table->Fingerprint(), /*mining_config_digest=*/1,
               fx.engine.shared_patterns(), fx.table->schema());

  {
    failpoint::ScopedFailpoint fp("pattern_cache.lookup_race");
    EXPECT_EQ(cache.Lookup(fx.table->Fingerprint(), 1), nullptr);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 0);
  }
  // The entry was never removed; with the race disarmed the hit returns.
  EXPECT_NE(cache.Lookup(fx.table->Fingerprint(), 1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(FailpointTest, PoisonedDiskEntryDegradesToColdMine) {
  PipelineFixture fx = MakeFixture();
  const std::string dir = ::testing::TempDir() + "cape_failpoint_poisoned_store";

  // Persist a valid cache snapshot for this table.
  {
    PatternCache cache(/*byte_budget=*/1ull << 26);
    fx.engine.set_pattern_cache(&cache);
    ASSERT_TRUE(fx.engine.MinePatterns("ARP-MINE").ok());
    ASSERT_EQ(cache.stats().entries, 1);
    ASSERT_TRUE(cache.SaveToDirectory(dir).ok());
    fx.engine.set_pattern_cache(nullptr);
  }
  const std::string rendered = fx.engine.RenderPatterns();

  // A poisoned (corrupt-read) disk entry is skipped at load: the warm-start
  // yields zero entries, and the engine simply mines cold — same patterns,
  // no error surfaced to the request path.
  PatternCache cache(/*byte_budget=*/1ull << 26);
  {
    failpoint::ScopedFailpoint fp("pattern_cache.load_entry");
    auto loaded = cache.LoadFromDirectory(dir, *fx.table->schema(), fx.table->Fingerprint());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded, 0);
    EXPECT_EQ(cache.stats().entries, 0);
  }
  fx.engine.set_pattern_cache(&cache);
  ASSERT_TRUE(fx.engine.MinePatterns("ARP-MINE").ok());
  const RunStats stats = fx.engine.run_stats();
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_GE(stats.cache_misses, 1);
  EXPECT_GT(stats.mine_ns, 0);  // a genuine cold mine, not a cache hit
  EXPECT_EQ(fx.engine.RenderPatterns(), rendered);
  fx.engine.set_pattern_cache(nullptr);

  // Sanity: with the failpoint disarmed the same directory loads cleanly.
  PatternCache healthy(/*byte_budget=*/1ull << 26);
  auto loaded = healthy.LoadFromDirectory(dir, *fx.table->schema(), fx.table->Fingerprint());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1);

  // Genuinely corrupt bytes (not just an injected fault) degrade the same
  // way: truncate the stored entry and reload.
  for (const auto& dirent : std::filesystem::directory_iterator(dir)) {
    std::ofstream out(dirent.path(), std::ios::trunc | std::ios::binary);
    out << "not a pattern store";
  }
  PatternCache corrupt(/*byte_budget=*/1ull << 26);
  loaded = corrupt.LoadFromDirectory(dir, *fx.table->schema(), fx.table->Fingerprint());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 0);
}

TEST(FailpointTest, PoisonedIncrementalMergeDegradesToFullRemine) {
  PipelineFixture fx = MakeFixture();
  const std::vector<Row> delta = {fx.table->GetRow(0), fx.table->GetRow(1)};

  // Reference: a second engine over a regenerated copy of the same data mines
  // the grown table from scratch — the poisoned maintenance pass must land
  // exactly here.
  DblpOptions options;
  options.num_rows = 6000;
  auto reference_table = GenerateDblp(options);
  ASSERT_TRUE(reference_table.ok());
  auto reference = Engine::FromTable(*reference_table);
  ASSERT_TRUE(reference.ok());
  reference->mining_config() = SmallMiningConfig();
  for (const Row& row : delta) ASSERT_TRUE((*reference_table)->AppendRow(row).ok());
  ASSERT_TRUE(reference->MinePatterns("ARP-MINE").ok());

  {
    failpoint::ScopedFailpoint fp("incremental.merge");
    Status st = fx.engine.AppendAndRemine(delta);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_EQ(fx.engine.run_stats().maint_full_remines, 1);
  EXPECT_EQ(SerializePatternSet(fx.engine.patterns(), fx.engine.schema()),
            SerializePatternSet(reference->patterns(), reference->schema()));

  // Disarmed: the next append maintains incrementally (no further re-mine).
  ASSERT_TRUE(fx.engine.AppendAndRemine({fx.table->GetRow(2)}).ok());
  EXPECT_EQ(fx.engine.run_stats().maint_full_remines, 1);
}

}  // namespace
}  // namespace cape
