#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/cancellation.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "fd/fd_detector.h"
#include "pattern/mining.h"
#include "relational/catalog.h"
#include "relational/operators.h"
#include "sql/executor.h"

namespace cape {
namespace {

// ---------------------------------------------------------------------------
// StopToken / Deadline unit behavior.

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingNanos(), INT64_MAX);
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline d = Deadline::AfterNanos(-1);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_LT(d.RemainingNanos(), 0);
}

TEST(StopTokenTest, DefaultTokenNeverStops) {
  StopToken stop;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(stop.ShouldStop());
  EXPECT_FALSE(stop.ShouldStopNow());
  EXPECT_EQ(stop.reason(), StopReason::kNone);
  EXPECT_TRUE(stop.ToStatus().ok());
}

TEST(StopTokenTest, ExpiredDeadlineStopsAndIsSticky) {
  StopToken stop(Deadline::AfterNanos(-1));
  EXPECT_TRUE(stop.ShouldStopNow());
  EXPECT_EQ(stop.reason(), StopReason::kDeadlineExceeded);
  EXPECT_TRUE(stop.ToStatus().IsDeadlineExceeded());
  EXPECT_TRUE(stop.ToStatus().IsStop());
  // Sticky: keeps reporting stopped.
  EXPECT_TRUE(stop.ShouldStop());
}

TEST(StopTokenTest, FirstCallConsultsTheClockDespiteStride) {
  // countdown starts at zero, so an already-expired deadline is noticed on
  // the very first check even with a huge stride.
  StopToken stop(Deadline::AfterNanos(-1), CancellationToken{}, /*check_stride=*/1000000);
  EXPECT_TRUE(stop.ShouldStop());
  EXPECT_EQ(stop.reason(), StopReason::kDeadlineExceeded);
}

TEST(StopTokenTest, StrideDelaysClockChecksButShouldStopNowForcesOne) {
  StopToken stop(Deadline::AfterMillis(30), CancellationToken{},
                 /*check_stride=*/1000000);
  EXPECT_FALSE(stop.ShouldStop());  // clock checked, deadline not yet reached
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The stride countdown masks the expiry on plain checks...
  EXPECT_FALSE(stop.ShouldStop());
  // ...but ShouldStopNow() (used at stage boundaries) forces the clock read.
  EXPECT_TRUE(stop.ShouldStopNow());
  EXPECT_EQ(stop.reason(), StopReason::kDeadlineExceeded);
}

TEST(StopTokenTest, CancellationIsObservedRegardlessOfStride) {
  CancellationSource source;
  StopToken cancel_stop(Deadline::Infinite(), source.token(), /*check_stride=*/1000000);
  EXPECT_FALSE(cancel_stop.ShouldStop());
  source.RequestCancel();
  EXPECT_TRUE(cancel_stop.ShouldStop());
  EXPECT_EQ(cancel_stop.reason(), StopReason::kCancelled);
  EXPECT_TRUE(cancel_stop.ToStatus().IsCancelled());
}

TEST(StopTokenTest, CopiesShareTheCancelFlag) {
  CancellationSource source;
  StopToken original(Deadline::Infinite(), source.token());
  StopToken copy = original;  // per-worker copy, shared flag
  source.RequestCancel();
  EXPECT_TRUE(copy.ShouldStop());
  EXPECT_TRUE(original.ShouldStop());
}

// ---------------------------------------------------------------------------
// Operators respect the stop token.

TEST(OperatorStopTest, ExpiredDeadlineStopsEveryOperator) {
  DblpOptions options;
  options.num_rows = 2000;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());
  const Table& t = **table;

  StopToken expired(Deadline::AfterNanos(-1), CancellationToken{}, /*check_stride=*/1);
  AggregateSpec count = AggregateSpec::CountStar("n");

  EXPECT_TRUE(GroupByAggregate(t, std::vector<int>{0}, {count}, &expired)
                  .status()
                  .IsDeadlineExceeded());
  EXPECT_TRUE(Filter(t, [](int64_t) { return true; }, &expired)
                  .status()
                  .IsDeadlineExceeded());
  EXPECT_TRUE(Project(t, {0}, &expired).status().IsDeadlineExceeded());
  EXPECT_TRUE(ProjectDistinct(t, {0}, &expired).status().IsDeadlineExceeded());
  EXPECT_TRUE(SortTable(t, {SortKey{0, true}}, &expired).status().IsDeadlineExceeded());
  EXPECT_TRUE(Cube(t, {0, 2}, {count}, {}, &expired).status().IsDeadlineExceeded());
  EXPECT_TRUE(
      FdDetector::CountGroups(t, AttrSet::Single(0), &expired).status().IsDeadlineExceeded());
}

// ---------------------------------------------------------------------------
// Miners degrade gracefully: truncated flag + subset-of-untimed patterns.

MiningConfig DblpMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 10;
  config.agg_functions = {AggFunc::kCount};
  config.excluded_attrs = {"pubid"};
  return config;
}

TablePtr DblpTable(int64_t rows) {
  DblpOptions options;
  options.num_rows = rows;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

/// Every pattern of `subset` must appear in `full` with identical stats —
/// the "truncated results are a prefix-consistent subset" guarantee.
void ExpectPatternSubset(const PatternSet& subset, const PatternSet& full) {
  for (const GlobalPattern& gp : subset.patterns()) {
    const GlobalPattern* match = full.Find(gp.pattern);
    ASSERT_NE(match, nullptr) << "truncated run produced a pattern absent from the "
                                 "untimed run";
    EXPECT_EQ(gp.num_fragments, match->num_fragments);
    EXPECT_EQ(gp.num_supported, match->num_supported);
    EXPECT_EQ(gp.num_holding, match->num_holding);
    EXPECT_EQ(gp.locals.size(), match->locals.size());
  }
}

class MinerDeadlineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MinerDeadlineTest, PreCancelledRunReturnsCleanTruncatedResult) {
  TablePtr table = DblpTable(1500);
  MiningConfig config = DblpMiningConfig();

  CancellationSource source;
  source.RequestCancel();  // cancelled before the run starts
  config.cancel_token = source.token();

  auto miner = MakeMinerByName(GetParam());
  ASSERT_TRUE(miner.ok());
  auto result = (*miner)->Mine(*table, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->stop_reason, StopReason::kCancelled);
  EXPECT_EQ(result->patterns.size(), 0u);
}

TEST_P(MinerDeadlineTest, TimedRunIsSubsetOfUntimedRun) {
  TablePtr table = DblpTable(1500);
  MiningConfig config = DblpMiningConfig();

  auto miner = MakeMinerByName(GetParam());
  ASSERT_TRUE(miner.ok());
  auto untimed = (*miner)->Mine(*table, config);
  ASSERT_TRUE(untimed.ok());
  EXPECT_FALSE(untimed->truncated);
  EXPECT_GT(untimed->patterns.size(), 0u);

  config.deadline_ms = 2;
  auto timed = (*miner)->Mine(*table, config);
  ASSERT_TRUE(timed.ok()) << timed.status().ToString();
  if (timed->truncated) {
    EXPECT_EQ(timed->stop_reason, StopReason::kDeadlineExceeded);
    EXPECT_LE(timed->patterns.size(), untimed->patterns.size());
  } else {
    // Fast machine: the whole run fit in the deadline, so results match.
    EXPECT_EQ(timed->patterns.size(), untimed->patterns.size());
  }
  ExpectPatternSubset(timed->patterns, untimed->patterns);
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerDeadlineTest,
                         ::testing::Values("NAIVE", "CUBE", "SHARE-GRP", "ARP-MINE"));

TEST(MinerDeadlineExtraTest, ParallelShareGrpHonorsCancellation) {
  TablePtr table = DblpTable(1500);
  MiningConfig config = DblpMiningConfig();
  config.num_threads = 4;

  CancellationSource source;
  source.RequestCancel();
  config.cancel_token = source.token();

  auto result = MakeShareGrpMiner()->Mine(*table, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->stop_reason, StopReason::kCancelled);
}

TEST(MinerDeadlineExtraTest, CancellationMidFlightStopsTheMiner) {
  // NAIVE on this size takes far longer than the cancel delay, so the
  // cancel lands mid-run; the miner must come back quickly and cleanly.
  TablePtr table = DblpTable(4000);
  MiningConfig config = DblpMiningConfig();

  CancellationSource source;
  config.cancel_token = source.token();
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    source.RequestCancel();
  });

  const auto start = std::chrono::steady_clock::now();
  auto result = MakeNaiveMiner()->Mine(*table, config);
  canceller.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->truncated) {
    EXPECT_EQ(result->stop_reason, StopReason::kCancelled);
  }
  // Generous bound: well under what the untimed NAIVE run takes at this size.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30);
}

// ---------------------------------------------------------------------------
// Explain degrades gracefully: partial flag + stage + wall-clock bound.

Engine MinedDblpEngine(int64_t rows) {
  auto engine = Engine::FromTable(DblpTable(rows));
  EXPECT_TRUE(engine.ok());
  Engine e = std::move(engine).ValueOrDie();
  e.mining_config() = DblpMiningConfig();
  EXPECT_TRUE(e.MinePatterns("ARP-MINE").ok());
  EXPECT_GT(e.patterns().size(), 0u);
  return e;
}

Result<UserQuestion> PlantedQuestion(const Engine& engine) {
  return engine.MakeQuestion({"author", "venue", "year"},
                             {Value::String("AX"), Value::String("SIGKDD"),
                              Value::Int64(2007)},
                             AggFunc::kCount, "*", Direction::kLow);
}

TEST(ExplainDeadlineTest, PreCancelledExplainReturnsPartial) {
  Engine engine = MinedDblpEngine(6000);
  auto q = PlantedQuestion(engine);
  ASSERT_TRUE(q.ok());

  CancellationSource source;
  source.RequestCancel();
  engine.explain_config().cancel_token = source.token();

  for (bool optimized : {false, true}) {
    auto result = engine.Explain(*q, optimized);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->partial);
    EXPECT_EQ(result->stop_reason, StopReason::kCancelled);
    EXPECT_TRUE(result->stopped_stage == "norm" || result->stopped_stage == "refine")
        << result->stopped_stage;
    EXPECT_TRUE(engine.run_stats().explain_partial);
  }
}

TEST(ExplainDeadlineTest, TightDeadlineReturnsQuicklyWithPartialResult) {
  Engine engine = MinedDblpEngine(8000);
  auto q = PlantedQuestion(engine);
  ASSERT_TRUE(q.ok());

  // Untimed baseline for comparing result consistency.
  auto untimed = engine.Explain(*q, /*optimized=*/false);
  ASSERT_TRUE(untimed.ok());
  EXPECT_FALSE(untimed->partial);

  engine.explain_config().deadline_ms = 10;
  const auto start = std::chrono::steady_clock::now();
  auto timed = engine.Explain(*q, /*optimized=*/false);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  ASSERT_TRUE(timed.ok()) << timed.status().ToString();

  // The run must come back in the neighborhood of the deadline, not the
  // untimed runtime. Generous slack absorbs CI scheduling noise.
  EXPECT_LT(elapsed_ms, 2000);
  if (timed->partial) {
    EXPECT_EQ(timed->stop_reason, StopReason::kDeadlineExceeded);
    EXPECT_TRUE(timed->stopped_stage == "norm" || timed->stopped_stage == "refine");
    EXPECT_LE(timed->explanations.size(), static_cast<size_t>(engine.explain_config().top_k));
  } else {
    // Entire explain fit inside 10ms: results must equal the untimed run.
    ASSERT_EQ(timed->explanations.size(), untimed->explanations.size());
  }
  // Every returned explanation is fully scored and appears in the untimed
  // run with the same score.
  for (const Explanation& e : timed->explanations) {
    bool found = false;
    for (const Explanation& u : untimed->explanations) {
      if (u.tuple_attrs == e.tuple_attrs && u.tuple_values == e.tuple_values &&
          u.score == e.score) {
        found = true;
        break;
      }
    }
    // When partial, an explanation may have ranked below the untimed top-k,
    // so membership is only required for complete runs.
    if (!timed->partial) {
      EXPECT_TRUE(found);
    }
  }
}

TEST(ExplainDeadlineTest, NoDeadlineMatchesSeedBehaviorExactly) {
  Engine engine = MinedDblpEngine(6000);
  auto q = PlantedQuestion(engine);
  ASSERT_TRUE(q.ok());

  auto a = engine.Explain(*q);
  auto b = engine.Explain(*q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->partial);
  EXPECT_FALSE(b->partial);
  ASSERT_EQ(a->explanations.size(), b->explanations.size());
  for (size_t i = 0; i < a->explanations.size(); ++i) {
    EXPECT_EQ(a->explanations[i].score, b->explanations[i].score);
    EXPECT_EQ(a->explanations[i].tuple_values, b->explanations[i].tuple_values);
  }
}

// ---------------------------------------------------------------------------
// Engine surfaces RunStats.

TEST(RunStatsTest, MiningAndExplainPopulateRunStats) {
  Engine engine = MinedDblpEngine(6000);
  const RunStats& stats = engine.run_stats();
  EXPECT_GT(stats.mine_ns, 0);
  EXPECT_GT(stats.mine_rows_scanned, 0);
  EXPECT_GT(stats.mine_candidates, 0);
  EXPECT_EQ(stats.patterns_mined, static_cast<int64_t>(engine.patterns().size()));
  EXPECT_FALSE(stats.mine_truncated);
  EXPECT_EQ(stats.mine_stop_reason, StopReason::kNone);

  auto q = PlantedQuestion(engine);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Explain(*q).ok());
  EXPECT_GT(engine.run_stats().explain_ns, 0);
  EXPECT_GT(engine.run_stats().explain_pairs_considered, 0);
  EXPECT_FALSE(engine.run_stats().explain_partial);
}

TEST(RunStatsTest, TruncatedMiningIsRecorded) {
  auto engine = Engine::FromTable(DblpTable(1500));
  ASSERT_TRUE(engine.ok());
  Engine e = std::move(engine).ValueOrDie();
  e.mining_config() = DblpMiningConfig();

  CancellationSource source;
  source.RequestCancel();
  e.mining_config().cancel_token = source.token();
  ASSERT_TRUE(e.MinePatterns("SHARE-GRP").ok());
  EXPECT_TRUE(e.run_stats().mine_truncated);
  EXPECT_EQ(e.run_stats().mine_stop_reason, StopReason::kCancelled);
}

// ---------------------------------------------------------------------------
// SQL executor honors the stop token.

TEST(SqlDeadlineTest, ExpiredDeadlineStopsExecuteSelect) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("pub", DblpTable(2000)).ok());
  auto select = ParseSelect("SELECT author, count(*) FROM pub GROUP BY author;");
  ASSERT_TRUE(select.ok());

  StopToken expired(Deadline::AfterNanos(-1), CancellationToken{}, /*check_stride=*/1);
  EXPECT_TRUE(ExecuteSelect(catalog, *select, &expired).status().IsDeadlineExceeded());

  StopToken fine;
  auto ok_result = ExecuteSelect(catalog, *select, &fine);
  EXPECT_TRUE(ok_result.ok());
}

}  // namespace
}  // namespace cape
