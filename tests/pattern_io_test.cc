#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"
#include "relational/table.h"

namespace cape {
namespace {

/// Mines a non-trivial pattern set (both Const and Lin models, multi-attr
/// fragments, string values with spaces) to serialize.
struct MinedFixture {
  TablePtr table;
  PatternSet patterns;
};

MinedFixture Mine() {
  auto table = MakeEmptyTable({Field{"author name", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  const char* authors[] = {"Ada L.", "Grace%H", "Edsger\tD", "Barbara"};
  const char* venues[] = {"SIG KDD", "ICDE"};
  for (int a = 0; a < 4; ++a) {
    for (int year = 2000; year < 2010; ++year) {
      for (int v = 0; v < 2; ++v) {
        const int n = 2 + (a + year + v) % 3;
        for (int i = 0; i < n; ++i) {
          EXPECT_TRUE(table
                          ->AppendRow({Value::String(authors[a]), Value::Int64(year),
                                       Value::String(venues[v])})
                          .ok());
        }
      }
    }
  }
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.05;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.2;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount};
  auto result = MakeArpMiner()->Mine(*table, config);
  EXPECT_TRUE(result.ok());
  return MinedFixture{table, std::move(result->patterns)};
}

void ExpectPatternSetsEqual(const PatternSet& a, const PatternSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const GlobalPattern& gp : a.patterns()) {
    const GlobalPattern* other = b.Find(gp.pattern);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(gp.num_fragments, other->num_fragments);
    EXPECT_EQ(gp.num_supported, other->num_supported);
    EXPECT_EQ(gp.num_holding, other->num_holding);
    EXPECT_DOUBLE_EQ(gp.global_confidence, other->global_confidence);
    EXPECT_DOUBLE_EQ(gp.max_positive_dev, other->max_positive_dev);
    EXPECT_DOUBLE_EQ(gp.min_negative_dev, other->min_negative_dev);
    ASSERT_EQ(gp.locals.size(), other->locals.size());
    for (const LocalPattern& local : gp.locals) {
      const LocalPattern* other_local = other->FindLocal(local.fragment);
      ASSERT_NE(other_local, nullptr);
      EXPECT_EQ(local.support, other_local->support);
      EXPECT_DOUBLE_EQ(local.max_positive_dev, other_local->max_positive_dev);
      EXPECT_DOUBLE_EQ(local.min_negative_dev, other_local->min_negative_dev);
      EXPECT_EQ(local.model->type(), other_local->model->type());
      EXPECT_DOUBLE_EQ(local.model->goodness_of_fit(),
                       other_local->model->goodness_of_fit());
      EXPECT_EQ(local.model->num_samples(), other_local->model->num_samples());
      // Prediction round-trips exactly (FormatDouble is lossless).
      for (double x : {0.0, 2003.0, 2009.5}) {
        EXPECT_DOUBLE_EQ(local.model->Predict({x}), other_local->model->Predict({x}));
      }
    }
  }
}

TEST(PatternIoTest, RoundTripPreservesEverything) {
  MinedFixture fixture = Mine();
  ASSERT_GT(fixture.patterns.size(), 0u);
  const std::string text =
      SerializePatternSet(fixture.patterns, *fixture.table->schema());
  auto loaded = DeserializePatternSet(text, *fixture.table->schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectPatternSetsEqual(fixture.patterns, *loaded);
  // And the round-trip is a fixpoint.
  EXPECT_EQ(text, SerializePatternSet(*loaded, *fixture.table->schema()));
}

TEST(PatternIoTest, EmptySetRoundTrips) {
  auto table = MakeEmptyTable({Field{"x", DataType::kInt64, false}});
  const std::string text = SerializePatternSet(PatternSet(), *table->schema());
  auto loaded = DeserializePatternSet(text, *table->schema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(PatternIoTest, SchemaMismatchRejected) {
  MinedFixture fixture = Mine();
  const std::string text =
      SerializePatternSet(fixture.patterns, *fixture.table->schema());

  auto wrong_arity = Schema::Make({Field{"author name", DataType::kString, false}});
  EXPECT_TRUE(DeserializePatternSet(text, *wrong_arity).status().IsInvalidArgument());

  auto wrong_name = Schema::Make({Field{"renamed", DataType::kString, false},
                                  Field{"year", DataType::kInt64, false},
                                  Field{"venue", DataType::kString, false}});
  EXPECT_TRUE(DeserializePatternSet(text, *wrong_name).status().IsInvalidArgument());

  auto wrong_type = Schema::Make({Field{"author name", DataType::kString, false},
                                  Field{"year", DataType::kDouble, false},
                                  Field{"venue", DataType::kString, false}});
  EXPECT_TRUE(DeserializePatternSet(text, *wrong_type).status().IsInvalidArgument());
}

TEST(PatternIoTest, CorruptInputRejected) {
  MinedFixture fixture = Mine();
  const Schema& schema = *fixture.table->schema();
  EXPECT_TRUE(DeserializePatternSet("", schema).status().IsNotFound());
  EXPECT_TRUE(DeserializePatternSet("BOGUS HEADER", schema).status().IsInvalidArgument());
  const std::string text = SerializePatternSet(fixture.patterns, schema);
  // Truncation mid-file.
  EXPECT_FALSE(DeserializePatternSet(text.substr(0, text.size() / 2), schema).ok());
  // Garbled numeric field.
  std::string garbled = text;
  size_t pos = garbled.find("pattern ");
  ASSERT_NE(pos, std::string::npos);
  garbled.replace(pos, 9, "pattern x");
  EXPECT_FALSE(DeserializePatternSet(garbled, schema).ok());
}

TEST(PatternIoTest, EngineSaveLoadWorkflow) {
  DblpOptions options;
  options.num_rows = 4000;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "cape_patterns_test.arp").string();

  // Offline phase: mine and save.
  {
    Engine engine = std::move(Engine::FromTable(*table)).ValueOrDie();
    MiningConfig& mining = engine.mining_config();
    mining.max_pattern_size = 3;
    mining.local_gof_threshold = 0.2;
    mining.local_support_threshold = 3;
    mining.global_confidence_threshold = 0.3;
    mining.global_support_threshold = 10;
    mining.agg_functions = {AggFunc::kCount};
    mining.excluded_attrs = {"pubid"};
    EXPECT_TRUE(engine.SavePatterns(path).IsInvalidArgument());  // nothing mined yet
    ASSERT_TRUE(engine.MinePatterns().ok());
    ASSERT_TRUE(engine.SavePatterns(path).ok());
  }

  // Online phase: load and explain without re-mining.
  {
    Engine engine = std::move(Engine::FromTable(*table)).ValueOrDie();
    ASSERT_TRUE(engine.LoadPatterns(path).ok());
    ASSERT_TRUE(engine.has_patterns());
    ASSERT_GT(engine.patterns().size(), 0u);
    auto q = engine.MakeQuestion({"author", "venue", "year"},
                                 {Value::String(kDblpPlantedAuthor),
                                  Value::String("SIGKDD"), Value::Int64(2007)},
                                 AggFunc::kCount, "*", Direction::kLow);
    ASSERT_TRUE(q.ok());
    auto result = engine.Explain(*q);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->explanations.empty());
  }
  std::remove(path.c_str());
  EXPECT_TRUE(LoadPatternSet("/no/such/file.arp", *(*table)->schema()).status().IsIOError());
}

TEST(PatternIoTest, MinedAndLoadedPatternsExplainIdentically) {
  MinedFixture fixture = Mine();
  const std::string text =
      SerializePatternSet(fixture.patterns, *fixture.table->schema());
  auto loaded = DeserializePatternSet(text, *fixture.table->schema());
  ASSERT_TRUE(loaded.ok());

  auto q = MakeUserQuestion(fixture.table, {"author name", "venue", "year"},
                            {Value::String("Ada L."), Value::String("ICDE"),
                             Value::Int64(2005)},
                            AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  DistanceModel distance = DistanceModel::MakeDefault(*fixture.table);
  auto from_mined =
      MakeOptimizedExplainer()->Explain(*q, fixture.patterns, distance, {});
  auto from_loaded = MakeOptimizedExplainer()->Explain(*q, *loaded, distance, {});
  ASSERT_TRUE(from_mined.ok());
  ASSERT_TRUE(from_loaded.ok());
  ASSERT_EQ(from_mined->explanations.size(), from_loaded->explanations.size());
  for (size_t i = 0; i < from_mined->explanations.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_mined->explanations[i].score,
                     from_loaded->explanations[i].score);
    EXPECT_EQ(from_mined->explanations[i].tuple_values,
              from_loaded->explanations[i].tuple_values);
  }
}

}  // namespace
}  // namespace cape
