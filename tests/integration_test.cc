#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "datagen/crime.h"
#include "datagen/dblp.h"
#include "datagen/ground_truth.h"
#include "relational/csv.h"

namespace cape {
namespace {

Engine DblpEngine(int64_t rows = 6000) {
  DblpOptions options;
  options.num_rows = rows;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  auto engine = Engine::FromTable(std::move(table).ValueOrDie());
  EXPECT_TRUE(engine.ok());
  Engine e = std::move(engine).ValueOrDie();
  MiningConfig& mining = e.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  return e;
}

TEST(EngineTest, ExplainRequiresMinedPatterns) {
  Engine engine = DblpEngine(1000);
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String("AX"), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(engine.has_patterns());
  EXPECT_TRUE(engine.Explain(*q).status().IsInvalidArgument());
  EXPECT_EQ(engine.RenderPatterns(), "(no patterns mined)\n");
}

TEST(EngineTest, UnknownMinerRejected) {
  Engine engine = DblpEngine(1000);
  EXPECT_TRUE(engine.MinePatterns("NOT-A-MINER").IsNotFound());
}

TEST(EngineTest, FullPipelineFindsPlantedCounterbalances) {
  Engine engine = DblpEngine();
  ASSERT_TRUE(engine.MinePatterns("ARP-MINE").ok());
  EXPECT_TRUE(engine.has_patterns());
  EXPECT_GT(engine.patterns().size(), 0u);
  EXPECT_GT(engine.mining_profile().total_ns, 0);

  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->result_value, 1.0);

  auto result = engine.Explain(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->explanations.empty());

  // The planted ICDE 2007 spike must be in the top-10.
  bool found = false;
  for (const Explanation& e : result->explanations) {
    std::string rendered = e.ToString(engine.schema());
    if (rendered.find("ICDE") != std::string::npos &&
        rendered.find("2007") != std::string::npos &&
        rendered.find(kDblpPlantedAuthor) != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << engine.RenderExplanations(result->explanations);

  // Rendering produces the paper-style ranked table.
  std::string table = engine.RenderExplanations(result->explanations);
  EXPECT_NE(table.find("Rank"), std::string::npos);
  EXPECT_NE(table.find("score"), std::string::npos);

  // Baseline works on the same question and stays within Q(R).
  auto baseline = engine.ExplainBaseline(*q);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->explanations.empty());
}

TEST(EngineTest, AllFourMinersWorkThroughTheEngine) {
  Engine engine = DblpEngine(1200);
  engine.mining_config().max_pattern_size = 2;
  size_t expected = 0;
  for (const char* miner : {"NAIVE", "CUBE", "SHARE-GRP", "ARP-MINE"}) {
    ASSERT_TRUE(engine.MinePatterns(miner).ok()) << miner;
    if (expected == 0) expected = engine.patterns().size();
    EXPECT_EQ(engine.patterns().size(), expected) << miner;
  }
}

TEST(EngineTest, SetPatternsSupportsTruncatedSets) {
  Engine engine = DblpEngine();
  ASSERT_TRUE(engine.MinePatterns().ok());
  const int64_t all_locals = engine.patterns().NumLocalPatterns();
  ASSERT_GT(all_locals, 10);

  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());

  PatternSet truncated = engine.patterns().Truncated(all_locals / 2);
  engine.SetPatterns(truncated);
  EXPECT_EQ(engine.patterns().NumLocalPatterns(), all_locals / 2);
  auto result = engine.Explain(*q);
  ASSERT_TRUE(result.ok());
}

TEST(EngineTest, CsvRoundTrip) {
  DblpOptions options;
  options.num_rows = 500;
  auto table = GenerateDblp(options);
  ASSERT_TRUE(table.ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "cape_integration.csv").string();
  ASSERT_TRUE(WriteCsvFile(**table, path).ok());

  auto engine = Engine::FromCsvFile(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->table()->num_rows(), 500);
  EXPECT_EQ(engine->schema().GetFieldIndex("venue"), 3);
  std::remove(path.c_str());

  EXPECT_TRUE(Engine::FromCsvFile("/no/such/file.csv").status().IsIOError());
  EXPECT_TRUE(Engine::FromTable(nullptr).status().IsInvalidArgument());
}

TEST(CrimeIntegrationTest, BatteryQuestionFindsPlantedScenario) {
  CrimeOptions options;
  options.num_rows = 12000;
  auto table = GenerateCrime(options);
  ASSERT_TRUE(table.ok());
  auto engine_result = Engine::FromTable(std::move(table).ValueOrDie());
  ASSERT_TRUE(engine_result.ok());
  Engine engine = std::move(engine_result).ValueOrDie();

  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.15;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 5;
  mining.agg_functions = {AggFunc::kCount};
  ASSERT_TRUE(engine.MinePatterns().ok());
  ASSERT_GT(engine.patterns().size(), 0u);

  // phi1 = why is the number of Battery crimes in area 26 in 2011 low?
  auto dip = FilterEquals(*engine.table(), {{0, Value::String("Battery")},
                                            {1, Value::Int64(26)},
                                            {2, Value::Int64(2011)}});
  ASSERT_TRUE(dip.ok());
  ASSERT_GT((*dip)->num_rows(), 0);
  auto q = engine.MakeQuestion({"primary_type", "community", "year"},
                               {Value::String("Battery"), Value::Int64(26),
                                Value::Int64(2011)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  auto result = engine.Explain(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty())
      << "mined patterns:\n" << engine.RenderPatterns();

  // The 2012 Battery spike in area 26 (planted, Table 5 shape) must appear.
  bool found_2012_spike = false;
  for (const Explanation& e : result->explanations) {
    std::string rendered = e.ToString(engine.schema());
    if (rendered.find("2012") != std::string::npos &&
        rendered.find("community=26") != std::string::npos) {
      found_2012_spike = true;
    }
  }
  EXPECT_TRUE(found_2012_spike) << engine.RenderExplanations(result->explanations);
}

TEST(GroundTruthIntegrationTest, CapeRecoversPlantedCounterbalances) {
  CrimeOptions options;
  options.num_rows = 15000;
  options.num_communities = 8;
  options.num_types = 5;
  options.plant_scenario = false;
  auto base = GenerateCrime(options);
  ASSERT_TRUE(base.ok());

  GroundTruthOptions gt_options;
  gt_options.group_by = {"primary_type", "community", "year"};
  gt_options.num_questions = 4;
  gt_options.counterbalances_per_question = 3;
  gt_options.min_cell_rows = 10;
  auto injected = InjectGroundTruth(**base, gt_options);
  ASSERT_TRUE(injected.ok()) << injected.status().ToString();

  auto engine_result = Engine::FromTable(injected->table);
  ASSERT_TRUE(engine_result.ok());
  Engine engine = std::move(engine_result).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.1;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 3;
  mining.agg_functions = {AggFunc::kCount};
  ASSERT_TRUE(engine.MinePatterns().ok());

  std::vector<std::vector<Explanation>> per_case;
  for (const GroundTruthCase& c : injected->cases) {
    auto result = engine.Explain(c.question);
    ASSERT_TRUE(result.ok());
    per_case.push_back(result->explanations);
  }
  const double precision = GroundTruthPrecision(injected->cases, per_case, 10);
  // With moderate thresholds CAPE must recover a meaningful share of the
  // planted counterbalances (Figure 7 reports ~0.2-0.6 in its sweet spot).
  EXPECT_GT(precision, 0.05) << "precision=" << precision;
}

}  // namespace
}  // namespace cape
