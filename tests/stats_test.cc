#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/regression.h"

namespace cape {
namespace {

TEST(DistributionsTest, GammaPAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(DistributionsTest, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(2.0, 1e6), 1.0, 1e-12);
  EXPECT_TRUE(std::isnan(RegularizedGammaP(-1.0, 1.0)));
}

TEST(DistributionsTest, ChiSquareKnownValues) {
  // Chi-square with 1 dof: CDF(x) = erf(sqrt(x/2)).
  EXPECT_NEAR(ChiSquareCdf(1.0, 1.0), 0.6826894921, 1e-8);
  // Chi-square with 2 dof is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquareCdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(ChiSquareSf(2.0, 2.0), std::exp(-1.0), 1e-10);
  // Median of chi-square(k) is approximately k(1-2/(9k))^3.
  const double median5 = 5.0 * std::pow(1.0 - 2.0 / 45.0, 3);
  EXPECT_NEAR(ChiSquareCdf(median5, 5.0), 0.5, 0.01);
}

TEST(DistributionsTest, ChiSquareSfMonotonicallyDecreasing) {
  double prev = 1.0;
  for (double x = 0.0; x < 50.0; x += 0.5) {
    double sf = ChiSquareSf(x, 9.0);
    EXPECT_LE(sf, prev + 1e-12);
    prev = sf;
  }
}

TEST(DescriptiveTest, RunningStats) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(DescriptiveTest, FreeFunctions) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(ConstantRegressionTest, ExactFitHasGofOne) {
  auto model = ConstantRegression::Fit({4.0, 4.0, 4.0});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->beta(), 4.0);
  EXPECT_DOUBLE_EQ((*model)->goodness_of_fit(), 1.0);
  EXPECT_DOUBLE_EQ((*model)->Predict({}), 4.0);
  EXPECT_EQ((*model)->num_samples(), 3u);
}

TEST(ConstantRegressionTest, SinglePointIsPerfect) {
  auto model = ConstantRegression::Fit({7.0});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->goodness_of_fit(), 1.0);
}

TEST(ConstantRegressionTest, EmptyInputRejected) {
  EXPECT_TRUE(ConstantRegression::Fit({}).status().IsInvalidArgument());
}

TEST(ConstantRegressionTest, PaperRunningExample) {
  // Table 2's AX SIGKDD counts around the 2007 dip: 4, 1, 4.
  auto model = ConstantRegression::Fit({4.0, 1.0, 4.0});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->beta(), 3.0);
  // Pearson stat = (1 + 4 + 1)/3 = 2, dof 2 -> p = exp(-1) ~ 0.368.
  EXPECT_NEAR((*model)->goodness_of_fit(), std::exp(-1.0), 1e-9);
}

TEST(ConstantRegressionTest, DispersedDataGetsLowGof) {
  auto model = ConstantRegression::Fit({1.0, 30.0, 2.0, 40.0, 1.0, 35.0});
  ASSERT_TRUE(model.ok());
  EXPECT_LT((*model)->goodness_of_fit(), 0.01);
}

TEST(ConstantRegressionTest, NegativeMeanUsesFallback) {
  auto model = ConstantRegression::Fit({-4.0, -5.0, -6.0});
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->goodness_of_fit(), 0.0);
  EXPECT_LT((*model)->goodness_of_fit(), 1.0);
  auto exact = ConstantRegression::Fit({-4.0, -4.0});
  EXPECT_DOUBLE_EQ((*exact)->goodness_of_fit(), 1.0);
}

TEST(LinearRegressionTest, ExactLine) {
  std::vector<std::vector<double>> X = {{1}, {2}, {3}, {4}};
  auto model = LinearRegression::Fit(X, {5.0, 7.0, 9.0, 11.0});  // y = 3 + 2x
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR((*model)->coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR((*model)->coefficients()[1], 2.0, 1e-6);
  EXPECT_DOUBLE_EQ((*model)->goodness_of_fit(), 1.0);
  EXPECT_NEAR((*model)->Predict({10}), 23.0, 1e-5);
}

TEST(LinearRegressionTest, MultiPredictor) {
  // y = 1 + 2a - b over a small grid.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (double a = 0; a < 4; ++a) {
    for (double b = 0; b < 3; ++b) {
      X.push_back({a, b});
      y.push_back(1 + 2 * a - b);
    }
  }
  auto model = LinearRegression::Fit(X, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR((*model)->coefficients()[0], 1.0, 1e-6);
  EXPECT_NEAR((*model)->coefficients()[1], 2.0, 1e-6);
  EXPECT_NEAR((*model)->coefficients()[2], -1.0, 1e-6);
  EXPECT_DOUBLE_EQ((*model)->goodness_of_fit(), 1.0);
}

TEST(LinearRegressionTest, ConstantResponseOnDegenerateDesign) {
  // Duplicate x values with equal y: exact fit despite singular design.
  std::vector<std::vector<double>> X = {{1}, {1}, {1}};
  auto model = LinearRegression::Fit(X, {2.0, 2.0, 2.0});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->goodness_of_fit(), 1.0);
  EXPECT_NEAR((*model)->Predict({1}), 2.0, 1e-6);
}

TEST(LinearRegressionTest, NoiseGivesIntermediateR2) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> noise(0.0, 2.0);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    X.push_back({static_cast<double>(i)});
    y.push_back(0.5 * i + noise(rng));
  }
  auto model = LinearRegression::Fit(X, y);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->goodness_of_fit(), 0.9);  // strong signal
  EXPECT_LT((*model)->goodness_of_fit(), 1.0);
}

TEST(LinearRegressionTest, InputValidation) {
  EXPECT_TRUE(LinearRegression::Fit({}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(LinearRegression::Fit({{1}}, {1.0, 2.0}).status().IsInvalidArgument());
  EXPECT_TRUE(LinearRegression::Fit({{1}, {1, 2}}, {1.0, 2.0}).status().IsInvalidArgument());
}

TEST(FitRegressionTest, Dispatch) {
  auto c = FitRegression(ModelType::kConst, {}, {3.0, 3.0});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->type(), ModelType::kConst);
  auto l = FitRegression(ModelType::kLinear, {{1}, {2}}, {1.0, 2.0});
  ASSERT_TRUE(l.ok());
  EXPECT_EQ((*l)->type(), ModelType::kLinear);
  EXPECT_EQ(std::string(ModelTypeToString(ModelType::kConst)), "Const");
  EXPECT_EQ(std::string(ModelTypeToString(ModelType::kLinear)), "Lin");
}

/// Property sweep: for Poisson-like data at any scale, GoF of the constant
/// model is in (0, 1]; an exact-fit dataset always yields exactly 1; adding
/// a large outlier strictly decreases GoF.
class ConstGofProperty : public ::testing::TestWithParam<double> {};

TEST_P(ConstGofProperty, OutlierDecreasesGof) {
  const double mean = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(mean * 100));
  std::poisson_distribution<int> pois(mean);
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) y.push_back(static_cast<double>(pois(rng)));
  auto base = ConstantRegression::Fit(y);
  ASSERT_TRUE(base.ok());
  const double base_gof = (*base)->goodness_of_fit();
  EXPECT_GE(base_gof, 0.0);
  EXPECT_LE(base_gof, 1.0);

  y.push_back(mean * 6 + 10);  // gross outlier
  auto spiked = ConstantRegression::Fit(y);
  ASSERT_TRUE(spiked.ok());
  EXPECT_LT((*spiked)->goodness_of_fit(), base_gof + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, ConstGofProperty,
                         ::testing::Values(2.0, 5.0, 10.0, 25.0, 50.0));

/// Property sweep: R² is invariant under affine transformations of x.
class R2InvarianceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(R2InvarianceProperty, AffineXInvariance) {
  std::mt19937_64 rng(GetParam());
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<std::vector<double>> X1;
  std::vector<std::vector<double>> X2;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    double x = static_cast<double>(i);
    X1.push_back({x});
    X2.push_back({3.0 * x - 17.0});
    y.push_back(2.0 * x + noise(rng));
  }
  auto m1 = LinearRegression::Fit(X1, y);
  auto m2 = LinearRegression::Fit(X2, y);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_NEAR((*m1)->goodness_of_fit(), (*m2)->goodness_of_fit(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, R2InvarianceProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cape
