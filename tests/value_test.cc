#include <gtest/gtest.h>

#include <vector>

#include "relational/value.h"

namespace cape {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int64(3).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(3.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::Int64(3).int64_value(), 3);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).double_value(), 3.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
}

TEST(ValueTest, AsDoubleCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int64(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Null().AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::String("7").AsDouble(), 0.0);  // no string parsing
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(-12).ToString(), "-12");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("SIGKDD").ToString(), "SIGKDD");
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int64(2), Value::Double(2.0));
  EXPECT_NE(Value::Int64(2), Value::Double(2.5));
  EXPECT_EQ(Value::Int64(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null(), Value::Int64(0));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, NumericLessThanString) {
  EXPECT_LT(Value::Int64(999), Value::String("0"));
  EXPECT_LT(Value::Double(1.0), Value::String("a"));
}

TEST(ValueTest, StringOrderingIsLexicographic) {
  EXPECT_LT(Value::String("ICDE"), Value::String("SIGKDD"));
  EXPECT_EQ(Value::String("VLDB"), Value::String("VLDB"));
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^62 and 2^62+1 are indistinguishable as doubles but distinct as int64.
  int64_t big = int64_t{1} << 62;
  EXPECT_LT(Value::Int64(big), Value::Int64(big + 1));
  EXPECT_NE(Value::Int64(big), Value::Int64(big + 1));
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Value::Double(-0.0), Value::Double(0.0));
  EXPECT_EQ(Value::Double(-0.0).Hash(), Value::Double(0.0).Hash());
}

// Property: Compare defines a total preorder consistent with operator==.
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

std::vector<Value> SampleValues() {
  return {Value::Null(),        Value::Int64(-5),    Value::Int64(0),
          Value::Int64(7),      Value::Double(-5.0), Value::Double(3.25),
          Value::Double(7.0),   Value::String(""),   Value::String("ICDE"),
          Value::String("VLDB")};
}

TEST(ValueOrderPropertyTest, AntisymmetryAndConsistency) {
  auto values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      const int ab = a.Compare(b);
      const int ba = b.Compare(a);
      EXPECT_EQ(ab == 0, ba == 0);
      if (ab < 0) {
        EXPECT_GT(ba, 0);
      }
      if (ab > 0) {
        EXPECT_LT(ba, 0);
      }
      EXPECT_EQ(a == b, ab == 0);
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash());
      }
    }
  }
}

TEST(ValueOrderPropertyTest, Transitivity) {
  auto values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      for (const Value& c : values) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0) << a.ToString() << " " << b.ToString() << " "
                                     << c.ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace cape
