#include <gtest/gtest.h>

#include <map>
#include <random>

#include "relational/operators.h"
#include "relational/table.h"

namespace cape {
namespace {

/// The running-example publications of Figure 1.
TablePtr FigureOneTable() {
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"pubid", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  auto add = [&](const char* a, const char* p, int y, const char* v) {
    EXPECT_TRUE(table
                    ->AppendRow({Value::String(a), Value::String(p), Value::Int64(y),
                                 Value::String(v)})
                    .ok());
  };
  add("AX", "P1", 2004, "SIGKDD");
  add("AX", "P2", 2004, "SIGKDD");
  add("AX", "P3", 2005, "SIGKDD");
  add("AX", "P4", 2005, "SIGKDD");
  add("AX", "P5", 2005, "ICDE");
  add("AY", "P2", 2004, "SIGKDD");
  add("AY", "P6", 2004, "ICDE");
  add("AY", "P7", 2004, "ICDM");
  add("AY", "P8", 2005, "ICDE");
  add("AZ", "P9", 2004, "SIGMOD");
  return table;
}

TEST(GroupByTest, CountPerAuthorYear) {
  auto table = FigureOneTable();
  auto result = GroupByAggregate(*table, std::vector<std::string>{"author", "year"},
                                 {AggregateSpec::CountStar("cnt")});
  ASSERT_TRUE(result.ok());
  const Table& out = **result;
  EXPECT_EQ(out.num_rows(), 5);  // (AX,2004) (AX,2005) (AY,2004) (AY,2005) (AZ,2004)
  std::map<std::pair<std::string, int64_t>, int64_t> counts;
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    counts[{out.GetValue(r, 0).string_value(), out.GetValue(r, 1).int64_value()}] =
        out.GetValue(r, 2).int64_value();
  }
  EXPECT_EQ((counts[{"AX", 2004}]), 2);
  EXPECT_EQ((counts[{"AX", 2005}]), 3);
  EXPECT_EQ((counts[{"AY", 2004}]), 3);
  EXPECT_EQ((counts[{"AY", 2005}]), 1);
  EXPECT_EQ((counts[{"AZ", 2004}]), 1);
}

TEST(GroupByTest, EmptyGroupColsGivesGlobalAggregate) {
  auto table = FigureOneTable();
  auto result =
      GroupByAggregate(*table, std::vector<int>{}, {AggregateSpec::CountStar("cnt")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 1);
  EXPECT_EQ((*result)->GetValue(0, 0), Value::Int64(10));
}

TEST(GroupByTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  auto empty = MakeEmptyTable({Field{"x", DataType::kInt64, false}});
  auto result =
      GroupByAggregate(*empty, std::vector<int>{}, {AggregateSpec::CountStar("cnt")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 1);
  EXPECT_EQ((*result)->GetValue(0, 0), Value::Int64(0));
}

TablePtr NumbersTable() {
  auto table = MakeEmptyTable({Field{"k", DataType::kString, false},
                               Field{"v", DataType::kInt64, true},
                               Field{"w", DataType::kDouble, true}});
  auto add = [&](const char* k, Value v, Value w) {
    EXPECT_TRUE(table->AppendRow({Value::String(k), std::move(v), std::move(w)}).ok());
  };
  add("a", Value::Int64(1), Value::Double(0.5));
  add("a", Value::Int64(3), Value::Null());
  add("a", Value::Null(), Value::Double(1.5));
  add("b", Value::Int64(10), Value::Double(2.0));
  add("b", Value::Null(), Value::Null());
  return table;
}

TEST(GroupByTest, SumAvgMinMaxWithNulls) {
  auto table = NumbersTable();
  auto result = GroupByAggregate(
      *table, {"k"},
      {AggregateSpec::CountStar("n"), AggregateSpec{AggFunc::kCount, 1, "nv"},
       AggregateSpec::Sum(1, "sv"), AggregateSpec::Avg(1, "av"),
       AggregateSpec::Min(1, "minv"), AggregateSpec::Max(1, "maxv"),
       AggregateSpec::Sum(2, "sw")});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& out = **result;
  ASSERT_EQ(out.num_rows(), 2);
  // Group "a" first (first-seen order).
  EXPECT_EQ(out.GetValue(0, 0), Value::String("a"));
  EXPECT_EQ(out.GetValue(0, 1), Value::Int64(3));   // count(*)
  EXPECT_EQ(out.GetValue(0, 2), Value::Int64(2));   // count(v): nulls excluded
  EXPECT_EQ(out.GetValue(0, 3), Value::Int64(4));   // sum(v) int64
  EXPECT_EQ(out.GetValue(0, 4), Value::Double(2.0));  // avg(v)
  EXPECT_EQ(out.GetValue(0, 5), Value::Int64(1));   // min
  EXPECT_EQ(out.GetValue(0, 6), Value::Int64(3));   // max
  EXPECT_EQ(out.GetValue(0, 7), Value::Double(2.0));  // sum(w) double
}

TEST(GroupByTest, AllNullSumIsNull) {
  auto table = MakeEmptyTable({Field{"k", DataType::kString, false},
                               Field{"v", DataType::kInt64, true}});
  ASSERT_TRUE(table->AppendRow({Value::String("a"), Value::Null()}).ok());
  auto result = GroupByAggregate(*table, std::vector<std::string>{"k"}, {AggregateSpec::Sum(1, "s")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)->GetValue(0, 1).is_null());
}

TEST(GroupByTest, NullGroupKeysFormTheirOwnGroup) {
  auto table = MakeEmptyTable({Field{"k", DataType::kString, true}});
  ASSERT_TRUE(table->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(table->AppendRow({Value::String("x")}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Null()}).ok());
  auto result = GroupByAggregate(*table, std::vector<std::string>{"k"}, {AggregateSpec::CountStar("n")});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 2);
  EXPECT_TRUE((*result)->GetValue(0, 0).is_null());
  EXPECT_EQ((*result)->GetValue(0, 1), Value::Int64(2));
}

TEST(GroupByTest, SumOverStringColumnIsTypeError) {
  auto table = FigureOneTable();
  auto result = GroupByAggregate(*table, std::vector<std::string>{"author"}, {AggregateSpec::Sum(3, "s")});
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(GroupByTest, BadColumnIndexRejected) {
  auto table = FigureOneTable();
  EXPECT_TRUE(GroupByAggregate(*table, std::vector<int>{99},
                               {AggregateSpec::CountStar("n")})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GroupByAggregate(*table, std::vector<std::string>{"nope"}, {AggregateSpec::CountStar("n")})
                  .status()
                  .IsNotFound());
}

TEST(FilterTest, PredicateAndEquality) {
  auto table = FigureOneTable();
  auto by_pred = Filter(*table, [&](int64_t row) {
    return table->GetValue(row, 2) == Value::Int64(2004);
  });
  ASSERT_TRUE(by_pred.ok());
  EXPECT_EQ((*by_pred)->num_rows(), 6);

  auto by_eq = FilterEquals(*table, {{0, Value::String("AX")}, {2, Value::Int64(2005)}});
  ASSERT_TRUE(by_eq.ok());
  EXPECT_EQ((*by_eq)->num_rows(), 3);
}

TEST(FilterTest, NullMatchesNullInFilterEquals) {
  auto table = MakeEmptyTable({Field{"k", DataType::kString, true}});
  ASSERT_TRUE(table->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(table->AppendRow({Value::String("x")}).ok());
  auto result = FilterEquals(*table, {{0, Value::Null()}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 1);
}

TEST(ProjectTest, SelectsAndReorders) {
  auto table = FigureOneTable();
  auto result = Project(*table, {2, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema()->field(0).name, "year");
  EXPECT_EQ((*result)->schema()->field(1).name, "author");
  EXPECT_EQ((*result)->GetValue(0, 0), Value::Int64(2004));
  EXPECT_EQ((*result)->num_rows(), table->num_rows());
}

TEST(ProjectDistinctTest, MatchesPaperFragments) {
  auto table = FigureOneTable();
  auto result = ProjectDistinct(*table, {0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 3);  // frag(Pub, P1) = {AX, AY, AZ}
}

TEST(SortTest, MultiKeyStable) {
  auto table = FigureOneTable();
  auto result = SortTable(*table, {SortKey{0, true}, SortKey{2, false}});
  ASSERT_TRUE(result.ok());
  const Table& out = **result;
  // First rows: AX sorted by year descending.
  EXPECT_EQ(out.GetValue(0, 0), Value::String("AX"));
  EXPECT_EQ(out.GetValue(0, 2), Value::Int64(2005));
  EXPECT_EQ(out.GetValue(4, 2), Value::Int64(2004));
  // Stability: equal keys keep original relative order (P3 before P4).
  EXPECT_EQ(out.GetValue(0, 1), Value::String("P3"));
  EXPECT_EQ(out.GetValue(1, 1), Value::String("P4"));
}

TEST(SortTest, NullsFirstAscending) {
  auto table = MakeEmptyTable({Field{"v", DataType::kInt64, true}});
  ASSERT_TRUE(table->AppendRow({Value::Int64(5)}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Null()}).ok());
  auto result = SortTable(*table, {SortKey{0, true}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)->GetValue(0, 0).is_null());
}

TEST(CubeTest, GroupingIdAndSubsetBand) {
  auto table = FigureOneTable();
  CubeOptions options;
  options.min_group_size = 1;
  options.max_group_size = 2;
  auto result = Cube(*table, {0, 2, 3}, {AggregateSpec::CountStar("cnt")}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& out = **result;
  // Schema: author, year, venue, cnt, grouping_id.
  EXPECT_EQ(out.num_columns(), 5);
  // No grouping of size 0 or 3 was emitted.
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    int64_t gid = out.GetValue(r, 4).int64_value();
    int kept = 3 - __builtin_popcountll(static_cast<uint64_t>(gid));
    EXPECT_GE(kept, 1);
    EXPECT_LE(kept, 2);
  }
}

TEST(CubeTest, AvgRejected) {
  auto table = NumbersTable();
  auto result = Cube(*table, {0}, {AggregateSpec::Avg(1, "a")});
  EXPECT_TRUE(result.status().IsNotImplemented());
}

/// Property: every CUBE grouping equals the corresponding direct GROUP BY.
class CubeEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CubeEquivalenceProperty, CubeMatchesDirectGroupBy) {
  // Random table with 3 group columns and 1 numeric column.
  std::mt19937_64 rng(GetParam());
  auto table = MakeEmptyTable({Field{"a", DataType::kInt64, false},
                               Field{"b", DataType::kString, false},
                               Field{"c", DataType::kInt64, false},
                               Field{"x", DataType::kInt64, true}});
  const char* bs[] = {"p", "q", "r"};
  for (int i = 0; i < 200; ++i) {
    Row row{Value::Int64(static_cast<int64_t>(rng() % 4)), Value::String(bs[rng() % 3]),
            Value::Int64(static_cast<int64_t>(rng() % 5)),
            (rng() % 10 == 0) ? Value::Null()
                              : Value::Int64(static_cast<int64_t>(rng() % 100))};
    ASSERT_TRUE(table->AppendRow(row).ok());
  }
  std::vector<AggregateSpec> aggs = {AggregateSpec::CountStar("cnt"),
                                     AggregateSpec::Sum(3, "sx"),
                                     AggregateSpec::Min(3, "mn"),
                                     AggregateSpec::Max(3, "mx")};
  auto cube = Cube(*table, {0, 1, 2}, aggs);
  ASSERT_TRUE(cube.ok());

  for (uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    auto direct = GroupByAggregate(*table, subset, aggs);
    ASSERT_TRUE(direct.ok());
    const int64_t wanted_gid = static_cast<int64_t>(~mask & 7u);
    // Collect cube rows for this grouping keyed by group values.
    std::map<std::string, Row> cube_rows;
    const Table& c = **cube;
    // Cube schema: a, b, c, cnt, sx, mn, mx, grouping_id.
    for (int64_t r = 0; r < c.num_rows(); ++r) {
      if (c.GetValue(r, 7) != Value::Int64(wanted_gid)) continue;
      std::string key;
      for (int s : subset) key += c.GetValue(r, s).ToString() + "|";
      Row aggs_row;
      for (int a = 0; a < 4; ++a) aggs_row.push_back(c.GetValue(r, 3 + a));
      cube_rows[key] = aggs_row;
    }
    const Table& d = **direct;
    ASSERT_EQ(static_cast<int64_t>(cube_rows.size()), d.num_rows()) << "mask=" << mask;
    for (int64_t r = 0; r < d.num_rows(); ++r) {
      std::string key;
      for (size_t s = 0; s < subset.size(); ++s) {
        key += d.GetValue(r, static_cast<int>(s)).ToString() + "|";
      }
      ASSERT_TRUE(cube_rows.count(key)) << "mask=" << mask << " key=" << key;
      const Row& expected = cube_rows[key];
      for (size_t a = 0; a < 4; ++a) {
        EXPECT_EQ(expected[a], d.GetValue(r, static_cast<int>(subset.size() + a)))
            << "mask=" << mask << " agg=" << a;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeEquivalenceProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace cape
