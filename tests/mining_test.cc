#include <gtest/gtest.h>

#include <map>
#include <random>

#include "pattern/mining.h"
#include "pattern/pattern_set.h"
#include "relational/table.h"

namespace cape {
namespace {

/// The running-example publications of Figure 1.
TablePtr FigureOneTable() {
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"pubid", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  auto add = [&](const char* a, const char* p, int y, const char* v) {
    EXPECT_TRUE(table
                    ->AppendRow({Value::String(a), Value::String(p), Value::Int64(y),
                                 Value::String(v)})
                    .ok());
  };
  add("AX", "P1", 2004, "SIGKDD");
  add("AX", "P2", 2004, "SIGKDD");
  add("AX", "P3", 2005, "SIGKDD");
  add("AX", "P4", 2005, "SIGKDD");
  add("AX", "P5", 2005, "ICDE");
  add("AY", "P2", 2004, "SIGKDD");
  add("AY", "P6", 2004, "ICDE");
  add("AY", "P7", 2004, "ICDM");
  add("AY", "P8", 2005, "ICDE");
  add("AZ", "P9", 2004, "SIGMOD");
  return table;
}

MiningConfig FigureOneConfig() {
  MiningConfig config;
  config.max_pattern_size = 2;
  config.local_gof_threshold = 0.2;   // theta (Example 2)
  config.local_support_threshold = 2;  // delta (Figure 1)
  config.global_confidence_threshold = 0.5;  // lambda (Section 2.3)
  config.global_support_threshold = 2;       // Delta (Section 2.3)
  config.agg_functions = {AggFunc::kCount};
  return config;
}

Pattern PatternP1() {  // [author] : year ~Const~> count(*)
  return Pattern{AttrSet::Single(0), AttrSet::Single(2), AggFunc::kCount,
                 Pattern::kCountStar, ModelType::kConst};
}

TEST(MiningRunningExampleTest, P1HoldsGloballyAsInSection23) {
  auto table = FigureOneTable();
  auto result = MakeArpMiner()->Mine(*table, FigureOneConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GlobalPattern* p1 = result->patterns.Find(PatternP1());
  ASSERT_NE(p1, nullptr) << "P1 = [author] : year ~Const~> count(*) must hold globally";

  // frag(Pub, P1) = {AX, AY, AZ}; AZ lacks support (1 distinct year < delta).
  EXPECT_EQ(p1->num_fragments, 3);
  EXPECT_EQ(p1->num_supported, 2);
  EXPECT_EQ(p1->num_holding, 2);
  EXPECT_DOUBLE_EQ(p1->global_confidence, 1.0);

  // Example 2: g_{P1,AX} predicts 2.5 papers/year, g_{P1,AY} predicts 2.
  const LocalPattern* ax = p1->FindLocal({Value::String("AX")});
  ASSERT_NE(ax, nullptr);
  EXPECT_DOUBLE_EQ(ax->model->Predict({2004}), 2.5);
  EXPECT_EQ(ax->support, 2);
  const LocalPattern* ay = p1->FindLocal({Value::String("AY")});
  ASSERT_NE(ay, nullptr);
  EXPECT_DOUBLE_EQ(ay->model->Predict({2005}), 2.0);
  EXPECT_EQ(p1->FindLocal({Value::String("AZ")}), nullptr);

  // Deviations recorded for pruning: AX's counts 2 and 3 vs beta 2.5.
  EXPECT_DOUBLE_EQ(ax->max_positive_dev, 0.5);
  EXPECT_DOUBLE_EQ(ax->min_negative_dev, -0.5);
  EXPECT_DOUBLE_EQ(p1->max_positive_dev, 1.0);   // AY 2004: 3 vs 2
  EXPECT_DOUBLE_EQ(p1->min_negative_dev, -1.0);  // AY 2005: 1 vs 2
}

TEST(MiningRunningExampleTest, RaisingGlobalSupportKillsP1) {
  auto table = FigureOneTable();
  MiningConfig config = FigureOneConfig();
  config.global_support_threshold = 3;  // only 2 fragments can hold
  auto result = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->patterns.Find(PatternP1()), nullptr);
}

TEST(MiningRunningExampleTest, RaisingLocalSupportKillsP1) {
  auto table = FigureOneTable();
  MiningConfig config = FigureOneConfig();
  config.local_support_threshold = 3;  // no author has 3 distinct years
  auto result = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->patterns.Find(PatternP1()), nullptr);
}

TEST(MiningRunningExampleTest, RaisingThetaKillsNoisyFragments) {
  auto table = FigureOneTable();
  MiningConfig config = FigureOneConfig();
  // AY's fit (counts 3,1 vs beta 2) has p ~ 0.317; theta above that leaves
  // only AX and the pattern misses the Delta = 2 bar.
  config.local_gof_threshold = 0.5;
  auto result = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->patterns.Find(PatternP1()), nullptr);
}

TEST(MiningRunningExampleTest, NonNumericPredictorsOnlyWhenAllowed) {
  auto table = FigureOneTable();
  MiningConfig config = FigureOneConfig();
  auto restricted = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(restricted.ok());
  for (const GlobalPattern& gp : restricted->patterns.patterns()) {
    for (int v : gp.pattern.predictor_attrs.ToIndices()) {
      EXPECT_TRUE(IsNumericType(table->schema()->field(v).type))
          << gp.pattern.ToString(*table->schema());
    }
  }
  config.require_numeric_predictors = false;
  auto full = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full->patterns.size(), restricted->patterns.size());
}

TEST(MiningRunningExampleTest, ExcludedAttrsNeverAppear) {
  auto table = FigureOneTable();
  MiningConfig config = FigureOneConfig();
  config.excluded_attrs = {"pubid"};
  auto result = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(result.ok());
  for (const GlobalPattern& gp : result->patterns.patterns()) {
    EXPECT_FALSE(gp.pattern.GroupAttrs().Contains(1));
    EXPECT_NE(gp.pattern.agg_attr, 1);
  }
}

TEST(MiningProfileTest, CountersArePopulated) {
  auto table = FigureOneTable();
  auto result = MakeShareGrpMiner()->Mine(*table, FigureOneConfig());
  ASSERT_TRUE(result.ok());
  const MiningProfile& p = result->profile;
  EXPECT_GT(p.num_candidates, 0);
  EXPECT_GT(p.num_queries, 0);
  EXPECT_GT(p.num_sorts, 0);
  EXPECT_GT(p.num_local_fits, 0);
  EXPECT_GT(p.total_ns, 0);
  EXPECT_GE(p.other_ns(), 0);
}

TEST(MiningTest, ArpMineSharesSortOrders) {
  // On the same workload ARP-MINE must run no more sort queries than
  // SHARE-GRP (it reuses prefixes; Section 4.1 "Reusing sort orders").
  auto table = FigureOneTable();
  MiningConfig config = FigureOneConfig();
  config.max_pattern_size = 3;
  config.require_numeric_predictors = false;  // more splits -> more sharing
  auto share = MakeShareGrpMiner()->Mine(*table, config);
  auto arp = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(share.ok());
  ASSERT_TRUE(arp.ok());
  EXPECT_LE(arp->profile.num_sorts, share->profile.num_sorts);
  EXPECT_GT(arp->profile.num_sorts, 0);
}

TEST(MakeMinerByNameTest, AllNamesResolve) {
  for (const char* name : {"NAIVE", "CUBE", "SHARE-GRP", "ARP-MINE"}) {
    auto miner = MakeMinerByName(name);
    ASSERT_TRUE(miner.ok()) << name;
    EXPECT_EQ((*miner)->name(), name);
  }
  EXPECT_TRUE(MakeMinerByName("BOGUS").status().IsNotFound());
}

/// Canonical, comparable form of a mining result.
struct CanonicalPattern {
  std::string pattern;
  int64_t fragments;
  int64_t supported;
  int64_t holding;
  std::vector<std::pair<std::string, int64_t>> locals;  // fragment key, support
};

std::vector<CanonicalPattern> Canonicalize(const PatternSet& set, const Schema& schema) {
  std::vector<CanonicalPattern> out;
  for (const GlobalPattern& gp : set.patterns()) {
    CanonicalPattern c;
    c.pattern = gp.pattern.ToString(schema);
    c.fragments = gp.num_fragments;
    c.supported = gp.num_supported;
    c.holding = gp.num_holding;
    for (const LocalPattern& local : gp.locals) {
      std::string key;
      for (const Value& v : local.fragment) key += v.ToString() + "|";
      c.locals.emplace_back(key, local.support);
    }
    std::sort(c.locals.begin(), c.locals.end());
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const CanonicalPattern& a, const CanonicalPattern& b) {
    return a.pattern < b.pattern;
  });
  return out;
}

void ExpectEquivalent(const MiningResult& a, const MiningResult& b, const Schema& schema) {
  auto ca = Canonicalize(a.patterns, schema);
  auto cb = Canonicalize(b.patterns, schema);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].pattern, cb[i].pattern);
    EXPECT_EQ(ca[i].fragments, cb[i].fragments) << ca[i].pattern;
    EXPECT_EQ(ca[i].supported, cb[i].supported) << ca[i].pattern;
    EXPECT_EQ(ca[i].holding, cb[i].holding) << ca[i].pattern;
    EXPECT_EQ(ca[i].locals, cb[i].locals) << ca[i].pattern;
  }
  // Models must agree too (up to floating-point accumulation order).
  for (const GlobalPattern& gp : a.patterns.patterns()) {
    const GlobalPattern* other = b.patterns.Find(gp.pattern);
    ASSERT_NE(other, nullptr);
    for (const LocalPattern& local : gp.locals) {
      const LocalPattern* other_local = other->FindLocal(local.fragment);
      ASSERT_NE(other_local, nullptr);
      EXPECT_NEAR(local.model->goodness_of_fit(), other_local->model->goodness_of_fit(),
                  1e-9);
      EXPECT_NEAR(local.model->Predict({0.0}), other_local->model->Predict({0.0}), 1e-9);
      EXPECT_NEAR(local.max_positive_dev, other_local->max_positive_dev, 1e-9);
      EXPECT_NEAR(local.min_negative_dev, other_local->min_negative_dev, 1e-9);
    }
  }
}

TablePtr RandomTable(uint64_t seed, int64_t rows) {
  std::mt19937_64 rng(seed);
  auto table = MakeEmptyTable({Field{"a", DataType::kInt64, false},
                               Field{"b", DataType::kString, false},
                               Field{"y", DataType::kInt64, false},
                               Field{"v", DataType::kInt64, true}});
  const char* bs[] = {"p", "q", "r"};
  for (int64_t i = 0; i < rows; ++i) {
    Row row{Value::Int64(static_cast<int64_t>(rng() % 4)), Value::String(bs[rng() % 3]),
            Value::Int64(static_cast<int64_t>(2000 + rng() % 6)),
            (rng() % 12 == 0) ? Value::Null()
                              : Value::Int64(static_cast<int64_t>(rng() % 20))};
    EXPECT_TRUE(table->AppendRow(row).ok());
  }
  return table;
}

/// Property: all four miners compute the same globally-holding pattern set.
class MinerEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinerEquivalenceProperty, AllMinersAgree) {
  auto table = RandomTable(GetParam(), 250);
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.1;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount, AggFunc::kSum};

  auto naive = MakeNaiveMiner()->Mine(*table, config);
  auto cube = MakeCubeMiner()->Mine(*table, config);
  auto share = MakeShareGrpMiner()->Mine(*table, config);
  auto arp = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(cube.ok());
  ASSERT_TRUE(share.ok());
  ASSERT_TRUE(arp.ok());
  ASSERT_GT(arp->patterns.size(), 0u) << "degenerate test: no patterns held";

  const Schema& schema = *table->schema();
  ExpectEquivalent(*naive, *cube, schema);
  ExpectEquivalent(*naive, *share, schema);
  ExpectEquivalent(*naive, *arp, schema);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerEquivalenceProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

/// Property: SHARE-GRP's worker-pool mode produces the identical result for
/// any thread count (attribute sets are disjoint work units).
class ParallelMiningProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMiningProperty, ParallelEqualsSequential) {
  auto table = RandomTable(1234, 400);
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.1;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount, AggFunc::kSum};

  auto sequential = MakeShareGrpMiner()->Mine(*table, config);
  ASSERT_TRUE(sequential.ok());
  ASSERT_GT(sequential->patterns.size(), 0u);

  config.num_threads = GetParam();
  auto parallel = MakeShareGrpMiner()->Mine(*table, config);
  ASSERT_TRUE(parallel.ok());
  ExpectEquivalent(*sequential, *parallel, *table->schema());
  // Work counters are thread-count independent.
  EXPECT_EQ(sequential->profile.num_queries, parallel->profile.num_queries);
  EXPECT_EQ(sequential->profile.num_sorts, parallel->profile.num_sorts);
  EXPECT_EQ(sequential->profile.num_local_fits, parallel->profile.num_local_fits);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelMiningProperty,
                         ::testing::Values(2, 4, 16));

/// Table with a planted FD a -> d (d = a / 2).
TablePtr FdTable(uint64_t seed, int64_t rows) {
  std::mt19937_64 rng(seed);
  auto table = MakeEmptyTable({Field{"a", DataType::kInt64, false},
                               Field{"d", DataType::kInt64, false},
                               Field{"y", DataType::kInt64, false}});
  for (int64_t i = 0; i < rows; ++i) {
    int64_t a = static_cast<int64_t>(rng() % 8);
    Row row{Value::Int64(a), Value::Int64(a / 2),
            Value::Int64(static_cast<int64_t>(2000 + rng() % 5))};
    EXPECT_TRUE(table->AppendRow(row).ok());
  }
  return table;
}

TEST(FdOptimizationTest, DetectsFdsAndSkipsRedundantPatterns) {
  auto table = FdTable(5, 400);
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.0;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.1;
  config.global_support_threshold = 1;
  config.agg_functions = {AggFunc::kCount};

  config.use_fd_optimizations = true;
  auto with_fd = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(with_fd.ok());
  // a -> d must have been discovered from group cardinalities.
  EXPECT_TRUE(with_fd->fds.Implies(AttrSet::Single(0), 1));
  EXPECT_GT(with_fd->profile.num_candidates_skipped_fd, 0);

  // The augmented pattern [a, d] : y is redundant (Appendix D) and skipped.
  Pattern augmented{AttrSet::FromIndices({0, 1}), AttrSet::Single(2), AggFunc::kCount,
                    Pattern::kCountStar, ModelType::kConst};
  EXPECT_EQ(with_fd->patterns.Find(augmented), nullptr);

  config.use_fd_optimizations = false;
  auto without_fd = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(without_fd.ok());
  EXPECT_NE(without_fd->patterns.Find(augmented), nullptr);

  // FD skipping removes only patterns that are redundant: every pattern
  // mined with the optimization is also mined without it.
  for (const GlobalPattern& gp : with_fd->patterns.patterns()) {
    EXPECT_NE(without_fd->patterns.Find(gp.pattern), nullptr)
        << gp.pattern.ToString(*table->schema());
  }
  EXPECT_LT(with_fd->patterns.size(), without_fd->patterns.size());
}

TEST(FdOptimizationTest, InitialFdsAreHonored) {
  auto table = FdTable(6, 200);
  MiningConfig config;
  config.max_pattern_size = 2;
  config.local_gof_threshold = 0.0;
  config.local_support_threshold = 2;
  config.global_confidence_threshold = 0.1;
  config.global_support_threshold = 1;
  config.agg_functions = {AggFunc::kCount};
  config.use_fd_optimizations = true;
  config.initial_fds.Add(AttrSet::Single(0), 1);  // provided by the "catalog"

  auto result = MakeArpMiner()->Mine(*table, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.Implies(AttrSet::Single(0), 1));
}

}  // namespace
}  // namespace cape
