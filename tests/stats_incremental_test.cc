// Property/metamorphic tests for the mergeable accumulators behind
// incremental pattern maintenance (DESIGN.md §16): RunningStats::Merge
// (Chan et al.'s parallel Welford fold) and RegressionMoments (plain moment
// sums with closed-form constant/linear readouts). The maintainer's
// correctness story leans on these being associative, order-independent, and
// numerically indistinguishable from the batch formulas — so those are
// exactly the properties pinned here, on adversarial inputs: near-constant
// streams, huge magnitude spreads, and null/NaN-adjacent mixes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/descriptive.h"
#include "stats/regression.h"

namespace cape {
namespace {

// ---------------------------------------------------------------------------
// Deterministic adversarial streams (no <random>: reproducibility across
// libstdc++ versions is part of the byte-identity story).

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// Values within ~1e-9 of a large base: catastrophic cancellation territory
/// for the naive sum-of-squares variance.
std::vector<double> NearConstantStream(size_t n, uint64_t seed) {
  std::vector<double> xs;
  xs.reserve(n);
  uint64_t state = seed;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back(1.0e9 + UnitUniform(&state) * 1.0e-3);
  }
  return xs;
}

/// Magnitudes spanning ~1e-8 .. 1e8 with mixed signs.
std::vector<double> HugeSpreadStream(size_t n, uint64_t seed) {
  std::vector<double> xs;
  xs.reserve(n);
  uint64_t state = seed;
  for (size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, UnitUniform(&state) * 16.0 - 8.0);
    xs.push_back((SplitMix64(&state) & 1) ? mag : -mag);
  }
  return xs;
}

/// The null-handling convention under test: the production fold (the
/// maintainer, EvaluateSplit) skips nulls *before* the accumulator ever sees
/// a value, so "null mixes" here means sparse streams — every third value
/// dropped — and the property is that merging the kept values in any
/// grouping agrees with the batch pass over the kept values.
std::vector<double> SparseStream(size_t n, uint64_t seed) {
  std::vector<double> xs;
  uint64_t state = seed;
  for (size_t i = 0; i < n; ++i) {
    const double v = UnitUniform(&state) * 100.0 - 50.0;
    if (i % 3 == 2) continue;  // the "null" slots
    xs.push_back(v);
  }
  return xs;
}

// Batch references computed in long double to act as ground truth.
struct BatchMoments {
  long double mean = 0.0L;
  long double m2 = 0.0L;  // sum of squared deviations from the mean
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

BatchMoments BatchReference(const std::vector<double>& xs) {
  BatchMoments b;
  if (xs.empty()) return b;
  long double sum = 0.0L;
  for (double x : xs) {
    sum += x;
    if (x < b.min) b.min = x;
    if (x > b.max) b.max = x;
  }
  b.mean = sum / static_cast<long double>(xs.size());
  for (double x : xs) {
    const long double d = static_cast<long double>(x) - b.mean;
    b.m2 += d * d;
  }
  return b;
}

/// Relative-error bound used throughout: Welford and Chan's merge are both
/// backward-stable, so everything should agree with the long-double batch
/// pass to a small multiple of double epsilon per element folded.
void ExpectClose(double got, long double want, double n, const char* what) {
  const double scale = std::max(std::abs(static_cast<double>(want)), 1.0);
  const double bound = 64.0 * n * std::numeric_limits<double>::epsilon() * scale;
  EXPECT_NEAR(got, static_cast<double>(want), bound) << what;
}

RunningStats FoldAll(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.Add(x);
  return s;
}

/// Splits xs into `pieces` contiguous chunks, folds each into its own
/// accumulator, and merges left-to-right.
RunningStats ChunkedMerge(const std::vector<double>& xs, size_t pieces) {
  RunningStats merged;
  const size_t chunk = xs.size() / pieces + 1;
  for (size_t begin = 0; begin < xs.size(); begin += chunk) {
    RunningStats part;
    const size_t end = std::min(xs.size(), begin + chunk);
    for (size_t i = begin; i < end; ++i) part.Add(xs[i]);
    merged.Merge(part);
  }
  return merged;
}

void ExpectSameStats(const RunningStats& a, const RunningStats& b, double n) {
  EXPECT_EQ(a.count(), b.count());
  ExpectClose(a.mean(), b.mean(), n, "mean");
  ExpectClose(a.variance(), b.variance(), n, "variance");
  EXPECT_EQ(a.min(), b.min());  // min/max are exact under any grouping
  EXPECT_EQ(a.max(), b.max());
}

// ---------------------------------------------------------------------------
// RunningStats::Merge

TEST(StatsIncrementalTest, MergeMatchesBatchOnAdversarialStreams) {
  const std::vector<std::vector<double>> streams = {
      NearConstantStream(4096, 7),
      HugeSpreadStream(4096, 21),
      SparseStream(4096, 42),
  };
  for (const auto& xs : streams) {
    const BatchMoments want = BatchReference(xs);
    const double n = static_cast<double>(xs.size());
    for (size_t pieces : {1u, 2u, 3u, 17u, 512u}) {
      const RunningStats merged = ChunkedMerge(xs, pieces);
      ASSERT_EQ(merged.count(), xs.size());
      ExpectClose(merged.mean(), want.mean, n, "mean");
      ExpectClose(merged.variance(), want.m2 / static_cast<long double>(xs.size()), n,
                  "variance");
      EXPECT_EQ(merged.min(), want.min);
      EXPECT_EQ(merged.max(), want.max);
    }
  }
}

TEST(StatsIncrementalTest, MergeIsAssociative) {
  const std::vector<double> xs = HugeSpreadStream(3000, 99);
  RunningStats a = FoldAll({xs.begin(), xs.begin() + 1000});
  RunningStats b = FoldAll({xs.begin() + 1000, xs.begin() + 2000});
  RunningStats c = FoldAll({xs.begin() + 2000, xs.end()});

  // (a + b) + c
  RunningStats left = a;
  left.Merge(b);
  left.Merge(c);
  // a + (b + c)
  RunningStats bc = b;
  bc.Merge(c);
  RunningStats right = a;
  right.Merge(bc);

  ExpectSameStats(left, right, static_cast<double>(xs.size()));
}

TEST(StatsIncrementalTest, MergeIsOrderIndependent) {
  const std::vector<double> xs = NearConstantStream(3000, 1337);
  RunningStats a = FoldAll({xs.begin(), xs.begin() + 1000});
  RunningStats b = FoldAll({xs.begin() + 1000, xs.begin() + 2000});
  RunningStats c = FoldAll({xs.begin() + 2000, xs.end()});

  RunningStats abc = a;
  abc.Merge(b);
  abc.Merge(c);
  RunningStats cba = c;
  cba.Merge(b);
  cba.Merge(a);

  ExpectSameStats(abc, cba, static_cast<double>(xs.size()));
}

TEST(StatsIncrementalTest, MergeIdentityAndAbsorption) {
  const std::vector<double> xs = SparseStream(500, 2026);
  const RunningStats folded = FoldAll(xs);

  // Empty is a two-sided identity — bit-exact, not just close.
  RunningStats left_identity;
  left_identity.Merge(folded);
  EXPECT_EQ(left_identity.mean(), folded.mean());
  EXPECT_EQ(left_identity.variance(), folded.variance());
  EXPECT_EQ(left_identity.count(), folded.count());

  RunningStats right_identity = folded;
  right_identity.Merge(RunningStats());
  EXPECT_EQ(right_identity.mean(), folded.mean());
  EXPECT_EQ(right_identity.variance(), folded.variance());
  EXPECT_EQ(right_identity.count(), folded.count());
}

TEST(StatsIncrementalTest, SingletonMergesEqualSequentialAdds) {
  // Folding every element through a singleton accumulator and merging is the
  // degenerate "batch of one" schedule — the same shape a 1-row append
  // produces in the maintainer.
  const std::vector<double> xs = HugeSpreadStream(800, 4242);
  const RunningStats sequential = FoldAll(xs);
  RunningStats merged;
  for (double x : xs) {
    RunningStats one;
    one.Add(x);
    merged.Merge(one);
  }
  ExpectSameStats(merged, sequential, static_cast<double>(xs.size()));
}

TEST(StatsIncrementalTest, NearConstantVarianceStaysNonNegativeAndTiny) {
  // The classic failure of naive sum-of-squares: variance of ~1e-3-wide
  // noise around 1e9 comes out negative or ~1e2. Welford + Chan must keep it
  // non-negative and at the right scale under any merge schedule.
  const std::vector<double> xs = NearConstantStream(4096, 7);
  for (size_t pieces : {1u, 8u, 64u}) {
    const RunningStats s = ChunkedMerge(xs, pieces);
    EXPECT_GE(s.variance(), 0.0);
    EXPECT_LT(s.variance(), 1.0e-5);
  }
}

// ---------------------------------------------------------------------------
// RegressionMoments

TEST(StatsIncrementalTest, RegressionMomentsMergeIsAssociative) {
  // Plain sums: re-associating the merge order only re-associates double
  // additions, so any grouping agrees to a few ulps (bit-exactness is not
  // promised — (a+b)+c and a+(b+c) legitimately differ in the last bit).
  uint64_t state = 7;
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 600; ++i) {
    const double x = UnitUniform(&state) * 20.0 - 10.0;
    pts.push_back({x, 3.0 - 0.5 * x + UnitUniform(&state) * 0.01});
  }
  RegressionMoments a, b, c;
  for (int i = 0; i < 200; ++i) a.Add(pts[i].first, pts[i].second);
  for (int i = 200; i < 400; ++i) b.Add(pts[i].first, pts[i].second);
  for (int i = 400; i < 600; ++i) c.Add(pts[i].first, pts[i].second);

  RegressionMoments left = a;
  left.Merge(b);
  left.Merge(c);
  RegressionMoments bc = b;
  bc.Merge(c);
  RegressionMoments right = a;
  right.Merge(bc);

  EXPECT_EQ(left.n, right.n);
  ExpectClose(left.sx, right.sx, 600.0, "sx");
  ExpectClose(left.sy, right.sy, 600.0, "sy");
  ExpectClose(left.sxx, right.sxx, 600.0, "sxx");
  ExpectClose(left.syy, right.syy, 600.0, "syy");
  ExpectClose(left.sxy, right.sxy, 600.0, "sxy");
}

TEST(StatsIncrementalTest, ConstBetaAndGofMatchConstantRegression) {
  // The moment-form constant model must reproduce ConstantRegression::Fit —
  // the production gof gate — on benign and adversarial ys alike.
  const std::vector<std::vector<double>> streams = {
      {5.0, 5.0, 5.0, 5.0},                 // zero variance → gof 1
      {2.0, 4.0, 6.0, 8.0, 10.0},           // positive beta, chi-square path
      {-1.0, 2.0, -3.0, 4.0},               // beta near zero → RMSE fallback
      {0.5},                                // n < 2 → gof 1
      NearConstantStream(256, 11),          // cancellation stress
      SparseStream(256, 13),
  };
  for (const auto& ys : streams) {
    RegressionMoments m;
    for (double y : ys) m.Add(0.0, y);
    auto fitted = ConstantRegression::Fit(ys);
    ASSERT_TRUE(fitted.ok());
    const double n = static_cast<double>(ys.size());
    ExpectClose(m.ConstBeta(), (*fitted)->Predict({}), n, "beta");
    ExpectClose(m.ConstGof(), (*fitted)->goodness_of_fit(), n * n, "gof");
  }
}

TEST(StatsIncrementalTest, FitLineMatchesLinearRegressionSinglePredictor) {
  uint64_t state = 99;
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  RegressionMoments m;
  for (int i = 0; i < 400; ++i) {
    const double x = UnitUniform(&state) * 8.0;
    const double noise = UnitUniform(&state) * 0.2 - 0.1;
    X.push_back({x});
    y.push_back(1.5 + 2.25 * x + noise);
    m.Add(x, y.back());
  }
  auto fitted = LinearRegression::Fit(X, y);
  ASSERT_TRUE(fitted.ok());
  auto line = m.FitLine();
  ASSERT_TRUE(line.ok());
  ExpectClose(line->intercept, (*fitted)->coefficients()[0], 400.0 * 400.0, "intercept");
  ExpectClose(line->slope, (*fitted)->coefficients()[1], 400.0 * 400.0, "slope");
}

TEST(StatsIncrementalTest, FitLineDegenerateAndEmptyCases) {
  RegressionMoments empty;
  EXPECT_FALSE(empty.FitLine().ok());

  // Zero x-variance: slope 0, intercept = mean(y), matching the least-norm
  // convention documented on FitLine.
  RegressionMoments degenerate;
  degenerate.Add(2.0, 1.0);
  degenerate.Add(2.0, 3.0);
  degenerate.Add(2.0, 5.0);
  auto line = degenerate.FitLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->slope, 0.0);
  EXPECT_DOUBLE_EQ(line->intercept, 3.0);
}

TEST(StatsIncrementalTest, MergedMomentsGiveSameFitAsBatch) {
  // The maintainer's usage shape: per-batch moment accumulators merged, then
  // read out. The merged fit must agree with the all-at-once fit.
  uint64_t state = 4242;
  RegressionMoments batch;
  RegressionMoments merged;
  RegressionMoments chunk;
  int in_chunk = 0;
  for (int i = 0; i < 1000; ++i) {
    const double x = UnitUniform(&state) * 1.0e6 - 5.0e5;  // huge spread
    const double yv = -7.0 + 1.0e-3 * x + UnitUniform(&state);
    batch.Add(x, yv);
    chunk.Add(x, yv);
    if (++in_chunk == 37) {  // uneven batch boundary
      merged.Merge(chunk);
      chunk = RegressionMoments();
      in_chunk = 0;
    }
  }
  merged.Merge(chunk);

  auto batch_line = batch.FitLine();
  auto merged_line = merged.FitLine();
  ASSERT_TRUE(batch_line.ok());
  ASSERT_TRUE(merged_line.ok());
  // Sums are added in a different association, so allow rounding slack.
  ExpectClose(merged_line->intercept, batch_line->intercept, 1000.0, "intercept");
  ExpectClose(merged_line->slope, batch_line->slope, 1000.0, "slope");
  ExpectClose(merged.ConstBeta(), batch.ConstBeta(), 1000.0, "beta");
}

}  // namespace
}  // namespace cape
