#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

#include "common/logging.h"
#include "pattern/pattern_set.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace cape {
namespace {

// ------------------------------------------------ GroupKeyEncoder fuzz ---

/// Property: for random rows, encoded keys are equal iff the projections
/// are value-equal (the invariant every hash aggregation relies on).
class GroupKeyEncoderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupKeyEncoderFuzz, KeysEqualIffProjectionsEqual) {
  std::mt19937_64 rng(GetParam());
  auto table = MakeEmptyTable({Field{"i", DataType::kInt64, true},
                               Field{"d", DataType::kDouble, true},
                               Field{"s", DataType::kString, true}});
  // Small domains so collisions-by-equality actually happen; include the
  // adversarial string pair ("ab","c") vs ("a","bc") via the s column by
  // letting strings share prefixes.
  const char* strings[] = {"", "a", "ab", "abc", "b", "bc"};
  for (int r = 0; r < 500; ++r) {
    Row row;
    row.push_back(rng() % 5 == 0 ? Value::Null()
                                 : Value::Int64(static_cast<int64_t>(rng() % 4) - 1));
    row.push_back(rng() % 5 == 0 ? Value::Null()
                                 : Value::Double(static_cast<double>(rng() % 3) * 0.5));
    row.push_back(rng() % 5 == 0 ? Value::Null() : Value::String(strings[rng() % 6]));
    ASSERT_TRUE(table->AppendRow(row).ok());
  }

  const std::vector<int> cols = {0, 2, 1};
  GroupKeyEncoder encoder(*table, cols);
  std::vector<std::string> keys(static_cast<size_t>(table->num_rows()));
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    encoder.EncodeRow(r, &keys[static_cast<size_t>(r)]);
  }
  for (int64_t a = 0; a < table->num_rows(); a += 7) {
    for (int64_t b = a; b < table->num_rows(); b += 11) {
      const bool rows_equal =
          table->GetRowProjection(a, cols) == table->GetRowProjection(b, cols);
      const bool keys_equal =
          keys[static_cast<size_t>(a)] == keys[static_cast<size_t>(b)];
      EXPECT_EQ(rows_equal, keys_equal) << "rows " << a << " and " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupKeyEncoderFuzz, ::testing::Values(3, 17, 71));

TEST(GroupKeyEncoderTest, StringBoundariesDoNotCollide) {
  // ("ab", "c") must not encode equal to ("a", "bc").
  auto table = MakeEmptyTable({Field{"x", DataType::kString, false},
                               Field{"y", DataType::kString, false}});
  ASSERT_TRUE(table->AppendRow({Value::String("ab"), Value::String("c")}).ok());
  ASSERT_TRUE(table->AppendRow({Value::String("a"), Value::String("bc")}).ok());
  GroupKeyEncoder encoder(*table, {0, 1});
  std::string k0;
  std::string k1;
  encoder.EncodeRow(0, &k0);
  encoder.EncodeRow(1, &k1);
  EXPECT_NE(k0, k1);
}

// ---------------------------------------------------- EncodeRowKey fuzz ---

TEST(EncodeRowKeyFuzz, KeysEqualIffRowsEqual) {
  std::vector<Row> rows = {
      {},
      {Value::Null()},
      {Value::Null(), Value::Null()},
      {Value::Int64(0)},
      {Value::Double(0.0)},   // == Int64(0) per Value semantics
      {Value::Double(-0.0)},  // == Double(0.0)
      {Value::Int64(1)},
      {Value::String("")},
      {Value::String("0")},
      {Value::String("ab"), Value::String("c")},
      {Value::String("a"), Value::String("bc")},
      {Value::Int64(2), Value::String("x")},
      {Value::String("x"), Value::Int64(2)},
  };
  for (const Row& a : rows) {
    for (const Row& b : rows) {
      EXPECT_EQ(a == b, EncodeRowKey(a) == EncodeRowKey(b));
    }
  }
}

// -------------------------------------------------------------- logging ---

TEST(LoggingTest, LevelGatingAndRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Statements below the level are cheap no-ops; above, they emit to
  // stderr. Both must compile and run without crashing.
  CAPE_LOG(Debug) << "invisible " << 42;
  CAPE_LOG(Info) << "invisible";
  CAPE_LOG(Error) << "visible error from LoggingTest (expected in output)";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CAPE_CHECK(1 + 1 == 2) << "never evaluated";
  CAPE_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ CAPE_CHECK(false) << "boom"; }, "Check failed: false");
}

}  // namespace
}  // namespace cape
