// PatternCache (DESIGN.md §11): LRU under a byte budget, keyed by
// (table fingerprint, mining-config digest), with disk persistence. The
// cache-safety rules — truncated results never cached, data mutation misses
// via fingerprint — are covered here at the Engine level; the concurrent
// warm-lookup determinism lives in determinism_test.cc.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/pattern_cache.h"
#include "datagen/dblp.h"
#include "pattern/pattern_io.h"

namespace cape {
namespace {

Engine MakeEngine(TablePtr table) {
  Engine engine = std::move(Engine::FromTable(std::move(table))).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  return engine;
}

TablePtr MakeDblp(uint64_t seed = 5) {
  DblpOptions options;
  options.num_rows = 2000;
  options.seed = seed;
  return std::move(GenerateDblp(options)).ValueOrDie();
}

std::shared_ptr<const PatternSet> MinePatternsFor(TablePtr table) {
  Engine engine = MakeEngine(std::move(table));
  EXPECT_TRUE(engine.MinePatterns().ok());
  return engine.shared_patterns();
}

TEST(PatternCacheTest, LookupMissThenHit) {
  PatternCache cache;
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  auto table = MakeDblp();
  auto patterns = MinePatternsFor(table);
  cache.Insert(1, 2, patterns, table->schema());
  EXPECT_EQ(cache.Lookup(1, 2).get(), patterns.get());
  EXPECT_EQ(cache.Lookup(1, 3), nullptr);  // same table, other config
  EXPECT_EQ(cache.Lookup(9, 2), nullptr);  // other table, same config
  const PatternCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes_used, 0u);
}

TEST(PatternCacheTest, LruEvictionUnderByteBudget) {
  auto table = MakeDblp();
  auto patterns = MinePatternsFor(table);
  const uint64_t entry_bytes = EstimatePatternSetBytes(*patterns);
  ASSERT_GT(entry_bytes, 0u);

  // Budget for two entries; inserting a third evicts the least recent.
  PatternCache cache(2 * entry_bytes);
  cache.Insert(1, 0, patterns, table->schema());
  cache.Insert(2, 0, patterns, table->schema());
  ASSERT_NE(cache.Lookup(1, 0), nullptr);  // touch 1: entry 2 becomes LRU
  const int64_t evicted = cache.Insert(3, 0, patterns, table->schema());
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);  // the LRU entry is gone
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);

  // A single entry over budget is still retained (never drop the newest).
  PatternCache tiny(1);
  tiny.Insert(1, 0, patterns, table->schema());
  EXPECT_NE(tiny.Lookup(1, 0), nullptr);
}

TEST(PatternCacheTest, SaveAndLoadDirectoryRoundTrip) {
  auto table = MakeDblp();
  auto patterns = MinePatternsFor(table);
  const uint64_t fingerprint = table->Fingerprint();

  PatternCache cache;
  cache.Insert(fingerprint, 77, patterns, table->schema());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cape_cache_test_dir").string();
  ASSERT_TRUE(cache.SaveToDirectory(dir).ok());

  PatternCache restored;
  auto loaded = restored.LoadFromDirectory(dir, *table->schema(), fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 1);
  auto entry = restored.Lookup(fingerprint, 77);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(SerializePatternSet(*entry, *table->schema()),
            SerializePatternSet(*patterns, *table->schema()));

  // A store for a different fingerprint is left on disk but not loaded.
  PatternCache other;
  auto none = other.LoadFromDirectory(dir, *table->schema(), fingerprint + 1);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0);

  // A corrupt store is skipped, never fatal.
  for (const auto& dirent : std::filesystem::directory_iterator(dir)) {
    std::ofstream f(dirent.path(), std::ios::binary | std::ios::app);
    f << "corruption";
  }
  PatternCache after_corruption;
  auto skipped = after_corruption.LoadFromDirectory(dir, *table->schema(), fingerprint);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(*skipped, 0);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(PatternCacheTest, EngineMissThenHitServesIdenticalPatterns) {
  auto table = MakeDblp();
  PatternCache cache;

  Engine cold = MakeEngine(table);
  cold.set_pattern_cache(&cache);
  ASSERT_TRUE(cold.MinePatterns().ok());
  EXPECT_EQ(cold.run_stats().cache_misses, 1);
  EXPECT_EQ(cold.run_stats().cache_hits, 0);
  EXPECT_GT(cold.run_stats().mine_ns, 0);
  const std::string expected = SerializePatternSet(cold.patterns(), cold.schema());

  Engine warm = MakeEngine(table);
  warm.set_pattern_cache(&cache);
  ASSERT_TRUE(warm.MinePatterns().ok());
  EXPECT_EQ(warm.run_stats().cache_hits, 1);
  EXPECT_EQ(warm.run_stats().cache_misses, 0);
  EXPECT_EQ(warm.run_stats().mine_ns, 0);  // zero mining work
  EXPECT_EQ(warm.run_stats().patterns_mined, cold.run_stats().patterns_mined);
  EXPECT_EQ(SerializePatternSet(warm.patterns(), warm.schema()), expected);
  // The hit shares the cold run's set — no copy, same object.
  EXPECT_EQ(warm.shared_patterns().get(), cold.shared_patterns().get());
}

TEST(PatternCacheTest, ConfigChangeMissesViaDigest) {
  auto table = MakeDblp();
  PatternCache cache;

  Engine first = MakeEngine(table);
  first.set_pattern_cache(&cache);
  ASSERT_TRUE(first.MinePatterns().ok());

  // A result-affecting knob changes the digest -> miss.
  Engine second = MakeEngine(table);
  second.set_pattern_cache(&cache);
  second.mining_config().global_support_threshold += 1;
  ASSERT_TRUE(second.MinePatterns().ok());
  EXPECT_EQ(second.run_stats().cache_hits, 0);
  EXPECT_EQ(second.run_stats().cache_misses, 1);

  // Performance knobs (threads, deadline) keep the digest -> hit.
  Engine third = MakeEngine(table);
  third.set_pattern_cache(&cache);
  third.mining_config().num_threads = 4;
  third.mining_config().deadline_ms = 60000;
  ASSERT_TRUE(third.MinePatterns().ok());
  EXPECT_EQ(third.run_stats().cache_hits, 1);
  EXPECT_EQ(third.run_stats().mine_ns, 0);
}

TEST(PatternCacheTest, MutatedTableMissesViaFingerprint) {
  auto table = MakeDblp();
  PatternCache cache;

  Engine first = MakeEngine(table);
  first.set_pattern_cache(&cache);
  ASSERT_TRUE(first.MinePatterns().ok());
  EXPECT_EQ(first.run_stats().cache_misses, 1);

  // Mutate the relation in place (the engines share the TablePtr): the
  // fingerprint changes, so the cached patterns must not be served.
  ASSERT_TRUE(table
                  ->AppendRow({Value::String("new author"), Value::String("p999999"),
                               Value::Int64(2019), Value::String("SIGMOD")})
                  .ok());
  Engine second = MakeEngine(table);
  second.set_pattern_cache(&cache);
  ASSERT_TRUE(second.MinePatterns().ok());
  EXPECT_EQ(second.run_stats().cache_hits, 0);
  EXPECT_EQ(second.run_stats().cache_misses, 1);
  EXPECT_GT(second.run_stats().mine_ns, 0);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(PatternCacheTest, TruncatedMiningIsNeverCached) {
  auto table = MakeDblp();
  PatternCache cache;

  // A pre-cancelled token stops mining immediately: the run returns
  // truncated (a subset — here empty) and must not populate the cache.
  Engine engine = MakeEngine(table);
  engine.set_pattern_cache(&cache);
  CancellationSource source;
  engine.mining_config().cancel_token = source.token();
  source.RequestCancel();
  ASSERT_TRUE(engine.MinePatterns().ok());
  EXPECT_TRUE(engine.run_stats().mine_truncated);
  EXPECT_EQ(cache.stats().entries, 0) << "truncated result was cached";

  // The next engine with the same key must mine for real and get the full
  // set, not a cached truncation.
  Engine full = MakeEngine(table);
  full.set_pattern_cache(&cache);
  ASSERT_TRUE(full.MinePatterns().ok());
  EXPECT_FALSE(full.run_stats().mine_truncated);
  EXPECT_EQ(full.run_stats().cache_hits, 0);
  EXPECT_GT(full.run_stats().patterns_mined, 0);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(PatternCacheTest, LoadPatternsWarmsTheCache) {
  auto table = MakeDblp();
  const std::string path =
      (std::filesystem::temp_directory_path() / "cape_cache_warm.arpb").string();

  PatternCache cache;
  Engine offline = MakeEngine(table);
  offline.set_pattern_cache(&cache);
  ASSERT_TRUE(offline.MinePatterns().ok());
  ASSERT_TRUE(offline.SavePatternsBinary(path).ok());

  // Fresh cache, fresh engine: loading the binary store re-warms the cache
  // (the store records the mining-config digest), so MinePatterns hits.
  PatternCache restored;
  Engine online = MakeEngine(table);
  online.set_pattern_cache(&restored);
  ASSERT_TRUE(online.LoadPatterns(path).ok());
  EXPECT_EQ(restored.stats().entries, 1);
  ASSERT_TRUE(online.MinePatterns().ok());
  EXPECT_EQ(online.run_stats().cache_hits, 1);
  EXPECT_EQ(online.run_stats().mine_ns, 0);
  std::remove(path.c_str());
}

TEST(PatternCacheTest, FingerprintIsContentSensitive) {
  auto a = MakeDblp(5);
  auto b = MakeDblp(5);
  auto c = MakeDblp(6);
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());  // same content, same print
  EXPECT_NE(a->Fingerprint(), c->Fingerprint());  // different seed
  ASSERT_TRUE(b->AppendRow({Value::String("x"), Value::String("p1"), Value::Int64(2000),
                            Value::String("y")})
                  .ok());
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());  // appended row
}

}  // namespace
}  // namespace cape
