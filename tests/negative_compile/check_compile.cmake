# Negative-compile check driver (run via `cmake -P` from a ctest entry).
#
# Compiles SOURCE twice with COMPILER:
#   1. control: as-is                      — must COMPILE (proves the harness
#      itself is sound: headers found, flags valid, fixed code accepted);
#   2. violation: with -DCAPE_NC_VIOLATION — must FAIL (proves the check
#      under test actually rejects the seeded bug).
#
# Without the control compile, a broken include path or bad flag would make
# the violation compile "fail" and the test silently pass for the wrong
# reason.
#
# Expected -D definitions: COMPILER, SOURCE, INCLUDE_DIR, FLAGS (one string,
# space-separated).

foreach(var COMPILER SOURCE INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_compile.cmake: missing -D${var}=...")
  endif()
endforeach()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only ${flag_list} -I${INCLUDE_DIR} ${SOURCE}
  RESULT_VARIABLE control_rc
  OUTPUT_VARIABLE control_out
  ERROR_VARIABLE control_err)
if(NOT control_rc EQUAL 0)
  message(FATAL_ERROR
    "control compile of ${SOURCE} failed (the harness is broken, not the "
    "check):\n${control_out}${control_err}")
endif()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only -DCAPE_NC_VIOLATION ${flag_list}
          -I${INCLUDE_DIR} ${SOURCE}
  RESULT_VARIABLE violation_rc
  OUTPUT_VARIABLE violation_out
  ERROR_VARIABLE violation_err)
if(violation_rc EQUAL 0)
  message(FATAL_ERROR
    "seeded violation in ${SOURCE} COMPILED under '${FLAGS}' — the check it "
    "exercises is not enforcing anything")
endif()

message(STATUS "ok: ${SOURCE} control compiles, violation rejected")
