// Negative-compile fixture: a silently dropped Status / Result<T> must not
// build. Compiled twice by check_compile.cmake with -Werror=unused-result:
// once as-is (control — must compile, including the CAPE_IGNORE_STATUS
// documented-discard path) and once with -DCAPE_NC_VIOLATION (must fail,
// proving [[nodiscard]] on Status and Result<T> is enforced).

#include "common/result.h"
#include "common/status.h"

namespace {

cape::Status MightFail() { return cape::Status::IOError("injected"); }

cape::Result<int> MightProduce() { return 42; }

}  // namespace

int main() {
#ifdef CAPE_NC_VIOLATION
  MightFail();     // dropped Status — must be a build error
  MightProduce();  // dropped Result<T> — must be a build error
  return 0;
#else
  // Checked consumption compiles...
  cape::Status st = MightFail();
  if (!st.ok()) return 1;
  cape::Result<int> r = MightProduce();
  if (!r.ok()) return 1;
  // ...and so does an explicit, documented discard.
  CAPE_IGNORE_STATUS(MightFail());
  return *r == 42 ? 0 : 1;
#endif
}
