// Negative-compile fixture: the BufferManager pin/unpin discipline. Frame
// bookkeeping (the pin table, the clock hand) is CAPE_GUARDED_BY(mu_) and
// only touchable through CAPE_REQUIRES(mu_) helpers — the shape of
// storage/buffer_manager.h's Pin/Unpin/ReleaseFrameLocked split. Compiled
// twice by check_compile.cmake with -Wthread-safety -Werror (Clang only):
// once as-is (control — the correctly locked Unpin must compile) and once
// with -DCAPE_NC_VIOLATION, where Unpin calls the locked helper after
// dropping mu_ — racing Pin's clock sweep — and must not build.

#include <cstdint>
#include <vector>

#include "common/mutex.h"

namespace {

class PinCache {
 public:
  uint64_t Pin(int64_t page) CAPE_EXCLUDES(mu_) {
    cape::MutexLock lock(mu_);
    AcquireFrameLocked(page);
    return static_cast<uint64_t>(page);
  }

  void Unpin(uint64_t cookie) CAPE_EXCLUDES(mu_) {
#ifdef CAPE_NC_VIOLATION
    ReleaseFrameLocked(static_cast<size_t>(cookie));  // unlocked — must not build
#else
    cape::MutexLock lock(mu_);
    ReleaseFrameLocked(static_cast<size_t>(cookie));
#endif
  }

 private:
  void AcquireFrameLocked(int64_t page) CAPE_REQUIRES(mu_) { pins_.push_back(page); }

  void ReleaseFrameLocked(size_t idx) CAPE_REQUIRES(mu_) {
    if (idx < pins_.size()) pins_[idx] = -1;
  }

  cape::Mutex mu_;
  std::vector<int64_t> pins_ CAPE_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  PinCache cache;
  const uint64_t cookie = cache.Pin(0);
  cache.Unpin(cookie);
  return 0;
}
