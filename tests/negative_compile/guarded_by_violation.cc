// Negative-compile fixture: accessing a CAPE_GUARDED_BY field without
// holding its Mutex must not build under Clang's thread-safety analysis.
// Compiled twice by check_compile.cmake with -Wthread-safety -Werror (Clang
// only): once as-is (control — the correctly locked version must compile)
// and once with -DCAPE_NC_VIOLATION (the unguarded read must fail).

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    cape::MutexLock lock(mu_);
    ++value_;
  }

  int Read() {
#ifdef CAPE_NC_VIOLATION
    return value_;  // unguarded read of a GUARDED_BY field — must not build
#else
    cape::MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  cape::Mutex mu_;
  int value_ CAPE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read() == 1 ? 0 : 1;
}
