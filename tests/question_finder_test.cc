#include <gtest/gtest.h>

#include "explain/question_finder.h"
#include "pattern/mining.h"
#include "relational/table.h"

namespace cape {
namespace {

/// Stores with steady monthly counts; S1 spikes in month 5, S2 dips in
/// month 9; S3 is clean.
TablePtr ShopTable() {
  auto table = MakeEmptyTable({Field{"store", DataType::kString, false},
                               Field{"month", DataType::kInt64, false}});
  auto add_n = [&](const char* store, int month, int n) {
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(table->AppendRow({Value::String(store), Value::Int64(month)}).ok());
    }
  };
  for (int month = 1; month <= 12; ++month) {
    add_n("S1", month, month == 5 ? 14 : 6);
    add_n("S2", month, month == 9 ? 2 : 7);
    add_n("S3", month, 5);
  }
  return table;
}

MiningConfig ShopMiningConfig() {
  MiningConfig config;
  config.max_pattern_size = 2;
  config.local_gof_threshold = 0.05;
  config.local_support_threshold = 4;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 2;
  config.agg_functions = {AggFunc::kCount};
  return config;
}

TEST(QuestionFinderTest, SurfacesPlantedOutliersWithDirections) {
  auto table = ShopTable();
  auto mined = MakeArpMiner()->Mine(*table, ShopMiningConfig());
  ASSERT_TRUE(mined.ok());
  ASSERT_GT(mined->patterns.size(), 0u);

  QuestionFinderOptions options;
  options.top_k = 5;
  options.min_outlierness = 0.3;
  auto questions = FindCandidateQuestions(table, mined->patterns, options);
  ASSERT_TRUE(questions.ok()) << questions.status().ToString();
  ASSERT_GE(questions->size(), 2u);

  // Ranked by outlierness, descending.
  for (size_t i = 1; i < questions->size(); ++i) {
    EXPECT_GE((*questions)[i - 1].outlierness, (*questions)[i].outlierness);
  }

  bool found_spike = false;
  bool found_dip = false;
  for (const CandidateQuestion& cq : *questions) {
    EXPECT_GE(cq.outlierness, 0.3);
    if (cq.question.group_values == Row{Value::String("S1"), Value::Int64(5)}) {
      found_spike = true;
      EXPECT_EQ(cq.question.dir, Direction::kHigh);
      EXPECT_GT(cq.deviation, 0.0);
      EXPECT_EQ(cq.question.result_value, 14.0);
    }
    if (cq.question.group_values == Row{Value::String("S2"), Value::Int64(9)}) {
      found_dip = true;
      EXPECT_EQ(cq.question.dir, Direction::kLow);
      EXPECT_LT(cq.deviation, 0.0);
    }
  }
  EXPECT_TRUE(found_spike);
  EXPECT_TRUE(found_dip);
}

TEST(QuestionFinderTest, ThresholdFiltersMildDeviations) {
  auto table = ShopTable();
  auto mined = MakeArpMiner()->Mine(*table, ShopMiningConfig());
  ASSERT_TRUE(mined.ok());
  QuestionFinderOptions options;
  options.min_outlierness = 10.0;  // nothing is that extreme
  auto questions = FindCandidateQuestions(table, mined->patterns, options);
  ASSERT_TRUE(questions.ok());
  EXPECT_TRUE(questions->empty());
}

TEST(QuestionFinderTest, TopKCapsAndValidatesQuestions) {
  auto table = ShopTable();
  auto mined = MakeArpMiner()->Mine(*table, ShopMiningConfig());
  ASSERT_TRUE(mined.ok());
  QuestionFinderOptions options;
  options.top_k = 1;
  options.min_outlierness = 0.2;
  auto questions = FindCandidateQuestions(table, mined->patterns, options);
  ASSERT_TRUE(questions.ok());
  ASSERT_EQ(questions->size(), 1u);
  // The returned question is fully validated and immediately usable.
  const UserQuestion& q = (*questions)[0].question;
  EXPECT_GT(q.result_value, 0.0);
  EXPECT_FALSE(q.group_values.empty());
  auto provenance = q.Provenance();
  ASSERT_TRUE(provenance.ok());
  EXPECT_EQ((*provenance)->num_rows(), static_cast<int64_t>(q.result_value));
}

TEST(QuestionFinderTest, EmptyPatternsAndNullTable) {
  auto table = ShopTable();
  auto none = FindCandidateQuestions(table, PatternSet(), {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_TRUE(FindCandidateQuestions(nullptr, PatternSet(), {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cape
