#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace cape {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

Result<int> Divide(int a, int b) {
  if (b == 0) return Status::InvalidArgument("division by zero");
  return a / b;
}

Result<int> UseAssignOrReturn(int a, int b) {
  CAPE_ASSIGN_OR_RETURN(int q, Divide(a, b));
  return q + 1;
}

Status UseReturnIfError(int b) {
  CAPE_RETURN_IF_ERROR(Divide(10, b).status());
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*UseAssignOrReturn(10, 2), 6);
  EXPECT_TRUE(UseAssignOrReturn(10, 0).status().IsInvalidArgument());
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(2).ok());
  EXPECT_TRUE(UseReturnIfError(0).IsInvalidArgument());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"a", "", "bc", "d"};
  EXPECT_EQ(SplitString(JoinStrings(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x y  "), "x y");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLowerAscii("SIGKDD-2019"), "sigkdd-2019");
  EXPECT_TRUE(StartsWith("pattern_set.h", "pattern"));
  EXPECT_FALSE(StartsWith("x", "xyz"));
  EXPECT_TRUE(EndsWith("table.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "table.cc"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("  -7 "), -7);
  EXPECT_TRUE(ParseInt64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("12x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("9999999999999999999999").status().IsOutOfRange());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_TRUE(ParseDouble("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("1.2.3").status().IsInvalidArgument());
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -3.25, 0.1, 1e-9, 123456789.123, -2.5e17}) {
    EXPECT_DOUBLE_EQ(*ParseDouble(FormatDouble(v)), v) << v;
  }
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 3.14159), "3.14");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(watch.ElapsedNanos(), 0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(StopwatchTest, ScopedTimerAccumulates) {
  int64_t acc = 0;
  {
    ScopedTimer t(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(acc, 0);
  int64_t first = acc;
  {
    ScopedTimer t(&acc);
  }
  EXPECT_GE(acc, first);
}

TEST(HashTest, CombineIsOrderSensitive) {
  size_t a = HashCombine(HashValue(1), HashValue(2));
  size_t b = HashCombine(HashValue(2), HashValue(1));
  EXPECT_NE(a, b);
}

TEST(HashTest, BytesHashMatchesForEqualContent) {
  std::string x = "hello";
  std::string y = "hello";
  EXPECT_EQ(HashBytes(x.data(), x.size()), HashBytes(y.data(), y.size()));
  EXPECT_NE(HashBytes(x.data(), x.size()), HashBytes(x.data(), x.size() - 1));
}

}  // namespace
}  // namespace cape
