#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/crime.h"
#include "datagen/dblp.h"
#include "pattern/pattern_io.h"

namespace cape {
namespace {

/// End-to-end determinism: the whole pipeline — generation, mining with any
/// algorithm, explanation — is a pure function of its seeds and inputs.
/// This is what makes the benchmark tables reproducible and the pattern
/// files diffable.

Engine MakeEngine(uint64_t seed) {
  DblpOptions options;
  options.num_rows = 4000;
  options.seed = seed;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  Engine engine = std::move(Engine::FromTable(std::move(table).ValueOrDie())).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  return engine;
}

TEST(DeterminismTest, MiningIsBitReproducible) {
  for (const char* miner : {"CUBE", "SHARE-GRP", "ARP-MINE"}) {
    Engine a = MakeEngine(5);
    Engine b = MakeEngine(5);
    ASSERT_TRUE(a.MinePatterns(miner).ok());
    ASSERT_TRUE(b.MinePatterns(miner).ok());
    EXPECT_EQ(SerializePatternSet(a.patterns(), a.schema()),
              SerializePatternSet(b.patterns(), b.schema()))
        << miner;
  }
}

TEST(DeterminismTest, ExplanationsAreReproducible) {
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  auto first = engine.Explain(*q);
  auto second = engine.Explain(*q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->explanations.size(), second->explanations.size());
  for (size_t i = 0; i < first->explanations.size(); ++i) {
    EXPECT_DOUBLE_EQ(first->explanations[i].score, second->explanations[i].score);
    EXPECT_EQ(first->explanations[i].tuple_values, second->explanations[i].tuple_values);
    EXPECT_EQ(first->explanations[i].relevant_pattern,
              second->explanations[i].relevant_pattern);
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentData) {
  DblpOptions a;
  a.num_rows = 1000;
  a.seed = 1;
  DblpOptions b = a;
  b.seed = 2;
  auto ta = GenerateDblp(a);
  auto tb = GenerateDblp(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  bool any_difference = false;
  for (int64_t row = 0; row < (*ta)->num_rows() && !any_difference; ++row) {
    if ((*ta)->GetRow(row) != (*tb)->GetRow(row)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DeterminismTest, CrimeGeneratorSeedSensitivity) {
  CrimeOptions a;
  a.num_rows = 800;
  a.seed = 1;
  CrimeOptions b = a;
  b.seed = 99;
  auto ta = GenerateCrime(a);
  auto tb = GenerateCrime(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  bool any_difference = false;
  for (int64_t row = 0; row < (*ta)->num_rows() && !any_difference; ++row) {
    if ((*ta)->GetRow(row) != (*tb)->GetRow(row)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace cape
