#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "core/engine.h"
#include "core/pattern_cache.h"
#include "datagen/crime.h"
#include "datagen/dblp.h"
#include "pattern/pattern_io.h"
#include "relational/kernels.h"
#include "relational/operators.h"

namespace cape {
namespace {

/// End-to-end determinism: the whole pipeline — generation, mining with any
/// algorithm, explanation — is a pure function of its seeds and inputs.
/// This is what makes the benchmark tables reproducible and the pattern
/// files diffable.

Engine MakeEngine(uint64_t seed) {
  DblpOptions options;
  options.num_rows = 4000;
  options.seed = seed;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  Engine engine = std::move(Engine::FromTable(std::move(table).ValueOrDie())).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  return engine;
}

TEST(DeterminismTest, MiningIsBitReproducible) {
  for (const char* miner : {"CUBE", "SHARE-GRP", "ARP-MINE"}) {
    Engine a = MakeEngine(5);
    Engine b = MakeEngine(5);
    ASSERT_TRUE(a.MinePatterns(miner).ok());
    ASSERT_TRUE(b.MinePatterns(miner).ok());
    EXPECT_EQ(SerializePatternSet(a.patterns(), a.schema()),
              SerializePatternSet(b.patterns(), b.schema()))
        << miner;
  }
}

TEST(DeterminismTest, ExplanationsAreReproducible) {
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  auto first = engine.Explain(*q);
  auto second = engine.Explain(*q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->explanations.size(), second->explanations.size());
  for (size_t i = 0; i < first->explanations.size(); ++i) {
    EXPECT_DOUBLE_EQ(first->explanations[i].score, second->explanations[i].score);
    EXPECT_EQ(first->explanations[i].tuple_values, second->explanations[i].tuple_values);
    EXPECT_EQ(first->explanations[i].relevant_pattern,
              second->explanations[i].relevant_pattern);
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentData) {
  DblpOptions a;
  a.num_rows = 1000;
  a.seed = 1;
  DblpOptions b = a;
  b.seed = 2;
  auto ta = GenerateDblp(a);
  auto tb = GenerateDblp(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  bool any_difference = false;
  for (int64_t row = 0; row < (*ta)->num_rows() && !any_difference; ++row) {
    if ((*ta)->GetRow(row) != (*tb)->GetRow(row)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DeterminismTest, CrimeGeneratorSeedSensitivity) {
  CrimeOptions a;
  a.num_rows = 800;
  a.seed = 1;
  CrimeOptions b = a;
  b.seed = 99;
  auto ta = GenerateCrime(a);
  auto tb = GenerateCrime(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  bool any_difference = false;
  for (int64_t row = 0; row < (*ta)->num_rows() && !any_difference; ++row) {
    if ((*ta)->GetRow(row) != (*tb)->GetRow(row)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

/// Parallel equivalence: the thread count is a pure performance knob.
/// Mining partitions attribute sets (and, for ARP-MINE, per-level phases)
/// across the shared pool; explanation partitions (P, P') scoring units with
/// a shared monotone pruning floor. Both must produce bit-identical output
/// at any thread count (DESIGN.md §9).

std::string ExplanationKey(const Explanation& e) {
  std::string key = std::to_string(e.tuple_attrs.bits());
  for (const Value& v : e.tuple_values) {
    key.push_back('|');
    key += v.ToString();
  }
  return key;
}

TEST(ParallelEquivalenceTest, MiningIsIdenticalAcrossThreadCounts) {
  for (const char* miner : {"SHARE-GRP", "ARP-MINE"}) {
    Engine reference = MakeEngine(5);
    reference.mining_config().num_threads = 1;
    ASSERT_TRUE(reference.MinePatterns(miner).ok());
    const std::string expected =
        SerializePatternSet(reference.patterns(), reference.schema());
    for (int threads : {2, 4, 8}) {
      Engine engine = MakeEngine(5);
      engine.mining_config().num_threads = threads;
      ASSERT_TRUE(engine.MinePatterns(miner).ok());
      EXPECT_EQ(SerializePatternSet(engine.patterns(), engine.schema()), expected)
          << miner << " with " << threads << " threads";
    }
  }
}

TEST(ParallelEquivalenceTest, ArpMineFdOptimizationsIdenticalAcrossThreadCounts) {
  // The FD-skip decisions depend on which FDs are visible when a split is
  // considered; the level-phased design freezes them per level, so the
  // skipped set — and hence the mined patterns — must not vary with threads.
  Engine reference = MakeEngine(5);
  reference.mining_config().use_fd_optimizations = true;
  reference.mining_config().num_threads = 1;
  ASSERT_TRUE(reference.MinePatterns("ARP-MINE").ok());
  const std::string expected =
      SerializePatternSet(reference.patterns(), reference.schema());
  const int64_t skipped = reference.run_stats().mine_candidates_skipped_fd;
  for (int threads : {2, 4, 8}) {
    Engine engine = MakeEngine(5);
    engine.mining_config().use_fd_optimizations = true;
    engine.mining_config().num_threads = threads;
    ASSERT_TRUE(engine.MinePatterns("ARP-MINE").ok());
    EXPECT_EQ(SerializePatternSet(engine.patterns(), engine.schema()), expected)
        << threads << " threads";
    EXPECT_EQ(engine.run_stats().mine_candidates_skipped_fd, skipped)
        << threads << " threads";
  }
}

TEST(ParallelEquivalenceTest, ExplainTopKIdenticalAcrossThreadCounts) {
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  for (bool optimized : {false, true}) {
    engine.explain_config().num_threads = 1;
    auto reference = engine.Explain(*q, optimized);
    ASSERT_TRUE(reference.ok());
    ASSERT_FALSE(reference->explanations.empty());
    for (int threads : {2, 4, 8}) {
      engine.explain_config().num_threads = threads;
      auto result = engine.Explain(*q, optimized);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->explanations.size(), reference->explanations.size())
          << threads << " threads, optimized=" << optimized;
      for (size_t i = 0; i < result->explanations.size(); ++i) {
        const Explanation& got = result->explanations[i];
        const Explanation& want = reference->explanations[i];
        // Bit-exact, not approximate: the parallel run must score the same
        // candidates with the same floating-point operations.
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.tuple_values, want.tuple_values);
        EXPECT_EQ(got.relevant_pattern, want.relevant_pattern);
        EXPECT_EQ(got.refinement_pattern, want.refinement_pattern);
        EXPECT_EQ(got.deviation, want.deviation);
        EXPECT_EQ(got.distance, want.distance);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, CancelledSessionStaysByteIdenticalAcrossThreadCounts) {
  // A cancelled request must be invisible afterwards: whatever partial
  // memoization the aborted run left in a session, the next (uncancelled)
  // answer from that session is byte-identical to the single-threaded
  // one-shot reference — at every thread count.
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  engine.explain_config().num_threads = 1;
  auto reference = engine.Explain(*q);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->explanations.empty());

  for (int threads : {1, 2, 4}) {
    auto session = engine.MakeExplainSession();
    ASSERT_TRUE(session.ok());
    session->config().num_threads = threads;
    CancellationSource source;
    source.RequestCancel();
    session->config().cancel_token = source.token();
    auto interrupted = session->Explain(*q);
    ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
    EXPECT_TRUE(interrupted->partial) << threads << " threads";
    EXPECT_EQ(interrupted->stop_reason, StopReason::kCancelled) << threads << " threads";

    session->config().cancel_token = CancellationToken();
    auto resumed = session->Explain(*q);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_FALSE(resumed->partial) << threads << " threads";
    ASSERT_EQ(resumed->explanations.size(), reference->explanations.size())
        << threads << " threads";
    for (size_t i = 0; i < resumed->explanations.size(); ++i) {
      const Explanation& got = resumed->explanations[i];
      const Explanation& want = reference->explanations[i];
      EXPECT_EQ(got.score, want.score) << threads << " threads";
      EXPECT_EQ(got.tuple_values, want.tuple_values) << threads << " threads";
      EXPECT_EQ(got.relevant_pattern, want.relevant_pattern) << threads << " threads";
      EXPECT_EQ(got.refinement_pattern, want.refinement_pattern) << threads << " threads";
      EXPECT_EQ(got.deviation, want.deviation) << threads << " threads";
      EXPECT_EQ(got.distance, want.distance) << threads << " threads";
    }
  }
}

TEST(ParallelEquivalenceTest, TruncatedParallelExplainIsSubsetOfUntimed) {
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());

  // Untimed reference with an effectively unbounded k: the pool never
  // fills, nothing is pruned, so it holds the best score of *every*
  // deduplicated candidate tuple.
  engine.explain_config().top_k = 100000;
  engine.explain_config().num_threads = 1;
  auto untimed = engine.Explain(*q);
  ASSERT_TRUE(untimed.ok());
  ASSERT_FALSE(untimed->partial);
  std::map<std::string, double> best_scores;
  for (const Explanation& e : untimed->explanations) {
    best_scores.emplace(ExplanationKey(e), e.score);
  }

  // Deadline-truncated parallel runs: whatever survives must be a fully
  // scored candidate the untimed run also saw, with an untimed best score
  // at least as high (the truncated run saw a subset of each tuple's
  // candidates).
  engine.explain_config().top_k = 10;
  engine.explain_config().num_threads = 4;
  for (int64_t deadline_ms : {1, 3, 10}) {
    engine.explain_config().deadline_ms = deadline_ms;
    auto result = engine.Explain(*q);
    ASSERT_TRUE(result.ok());
    for (const Explanation& e : result->explanations) {
      auto it = best_scores.find(ExplanationKey(e));
      ASSERT_NE(it, best_scores.end()) << "tuple absent from untimed run";
      EXPECT_GE(it->second, e.score);
    }
  }
}

/// Dictionary-kernel equivalence: the dictionary-code kernels (DESIGN.md
/// §10) are a pure representation change. Mining and explanation output must
/// be byte-identical to the legacy string-comparison path at every thread
/// count — the legacy path *is* the pre-encoding engine, kept behind the
/// process-wide switch exactly so this fixture can pin the equivalence.

class DictionaryVsLegacyTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = DictionaryKernelsEnabled(); }
  void TearDown() override { SetDictionaryKernelsEnabled(saved_); }

 private:
  bool saved_ = true;
};

TEST_F(DictionaryVsLegacyTest, MiningIsByteIdenticalAcrossThreadCounts) {
  for (const char* miner : {"CUBE", "SHARE-GRP", "ARP-MINE"}) {
    SetDictionaryKernelsEnabled(false);
    Engine legacy = MakeEngine(5);
    legacy.mining_config().num_threads = 1;
    ASSERT_TRUE(legacy.MinePatterns(miner).ok());
    const std::string expected = SerializePatternSet(legacy.patterns(), legacy.schema());

    SetDictionaryKernelsEnabled(true);
    for (int threads : {1, 2, 4, 8}) {
      Engine engine = MakeEngine(5);
      engine.mining_config().num_threads = threads;
      ASSERT_TRUE(engine.MinePatterns(miner).ok());
      EXPECT_EQ(SerializePatternSet(engine.patterns(), engine.schema()), expected)
          << miner << " with dictionary kernels, " << threads << " threads";
    }
  }
}

TEST_F(DictionaryVsLegacyTest, ExplanationsAreByteIdenticalAcrossThreadCounts) {
  SetDictionaryKernelsEnabled(false);
  Engine legacy = MakeEngine(5);
  ASSERT_TRUE(legacy.MinePatterns().ok());
  auto lq = legacy.MakeQuestion({"author", "venue", "year"},
                                {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                 Value::Int64(2007)},
                                AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(lq.ok());
  legacy.explain_config().num_threads = 1;
  auto reference = legacy.Explain(*lq);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->explanations.empty());

  SetDictionaryKernelsEnabled(true);
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  for (bool optimized : {false, true}) {
    legacy.explain_config().num_threads = 1;
    SetDictionaryKernelsEnabled(false);
    auto want_result = legacy.Explain(*lq, optimized);
    SetDictionaryKernelsEnabled(true);
    ASSERT_TRUE(want_result.ok());
    for (int threads : {1, 2, 4, 8}) {
      engine.explain_config().num_threads = threads;
      auto got_result = engine.Explain(*q, optimized);
      ASSERT_TRUE(got_result.ok());
      ASSERT_EQ(got_result->explanations.size(), want_result->explanations.size())
          << threads << " threads, optimized=" << optimized;
      for (size_t i = 0; i < got_result->explanations.size(); ++i) {
        const Explanation& got = got_result->explanations[i];
        const Explanation& want = want_result->explanations[i];
        // Bit-exact: the code kernels must score the same candidates with
        // the same floating-point operations as the legacy path.
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.tuple_values, want.tuple_values);
        EXPECT_EQ(got.relevant_pattern, want.relevant_pattern);
        EXPECT_EQ(got.refinement_pattern, want.refinement_pattern);
        EXPECT_EQ(got.deviation, want.deviation);
        EXPECT_EQ(got.distance, want.distance);
      }
    }
  }
}

/// Vectorized-kernel equivalence (DESIGN.md §14): the block/morsel kernels
/// are a pure execution-strategy change. Mining with every algorithm and
/// explanation with both generators must be byte-identical to the
/// row-at-a-time legacy path at every thread count — the legacy path is kept
/// behind SetVectorizedKernelsEnabled exactly so this fixture can pin the
/// equivalence.

class VectorizedVsLegacyTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = VectorizedKernelsEnabled(); }
  void TearDown() override { SetVectorizedKernelsEnabled(saved_); }

 private:
  bool saved_ = true;
};

TEST_F(VectorizedVsLegacyTest, MiningIsByteIdenticalAcrossThreadCounts) {
  for (const char* miner : {"CUBE", "SHARE-GRP", "ARP-MINE"}) {
    SetVectorizedKernelsEnabled(false);
    Engine legacy = MakeEngine(5);
    legacy.mining_config().num_threads = 1;
    ASSERT_TRUE(legacy.MinePatterns(miner).ok());
    const std::string expected = SerializePatternSet(legacy.patterns(), legacy.schema());

    SetVectorizedKernelsEnabled(true);
    for (int threads : {1, 2, 4, 8}) {
      Engine engine = MakeEngine(5);
      engine.mining_config().num_threads = threads;
      ASSERT_TRUE(engine.MinePatterns(miner).ok());
      EXPECT_EQ(SerializePatternSet(engine.patterns(), engine.schema()), expected)
          << miner << " with vectorized kernels, " << threads << " threads";
    }
  }
}

TEST_F(VectorizedVsLegacyTest, ExplanationsAreByteIdenticalAcrossThreadCounts) {
  SetVectorizedKernelsEnabled(false);
  Engine legacy = MakeEngine(5);
  ASSERT_TRUE(legacy.MinePatterns().ok());
  auto lq = legacy.MakeQuestion({"author", "venue", "year"},
                                {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                 Value::Int64(2007)},
                                AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(lq.ok());
  legacy.explain_config().num_threads = 1;
  auto reference = legacy.Explain(*lq);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->explanations.empty());

  SetVectorizedKernelsEnabled(true);
  Engine engine = MakeEngine(5);
  ASSERT_TRUE(engine.MinePatterns().ok());
  auto q = engine.MakeQuestion({"author", "venue", "year"},
                               {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
                                Value::Int64(2007)},
                               AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  for (bool optimized : {false, true}) {
    SetVectorizedKernelsEnabled(false);
    legacy.explain_config().num_threads = 1;
    auto want_result = legacy.Explain(*lq, optimized);
    SetVectorizedKernelsEnabled(true);
    ASSERT_TRUE(want_result.ok());
    for (int threads : {1, 2, 4, 8}) {
      engine.explain_config().num_threads = threads;
      auto got_result = engine.Explain(*q, optimized);
      ASSERT_TRUE(got_result.ok());
      ASSERT_EQ(got_result->explanations.size(), want_result->explanations.size())
          << threads << " threads, optimized=" << optimized;
      for (size_t i = 0; i < got_result->explanations.size(); ++i) {
        const Explanation& got = got_result->explanations[i];
        const Explanation& want = want_result->explanations[i];
        // Bit-exact: the block kernels must score the same candidates with
        // the same floating-point operations as the row-at-a-time path.
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.tuple_values, want.tuple_values);
        EXPECT_EQ(got.relevant_pattern, want.relevant_pattern);
        EXPECT_EQ(got.refinement_pattern, want.refinement_pattern);
        EXPECT_EQ(got.deviation, want.deviation);
        EXPECT_EQ(got.distance, want.distance);
      }
    }
  }
}

/// Serving-cache determinism: many threads hitting one warm PatternCache
/// concurrently (each with its own Engine, as in a serving fleet) must all
/// get the cached set with zero mining work and produce byte-identical
/// top-k explanations — the cache hands out one shared immutable
/// PatternSet, so concurrency can only change timing, never results.
TEST(ParallelEquivalenceTest, ConcurrentWarmCacheLookupsAreByteIdentical) {
  PatternCache cache;
  Engine reference = MakeEngine(5);
  reference.set_pattern_cache(&cache);
  ASSERT_TRUE(reference.MinePatterns().ok());
  ASSERT_EQ(reference.run_stats().cache_misses, 1);
  auto q = reference.MakeQuestion({"author", "venue", "year"},
                                  {Value::String(kDblpPlantedAuthor),
                                   Value::String("SIGKDD"), Value::Int64(2007)},
                                  AggFunc::kCount, "*", Direction::kLow);
  ASSERT_TRUE(q.ok());
  auto expected = reference.Explain(*q);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->explanations.empty());

  for (const int num_threads : {2, 4, 8}) {
    std::vector<ExplainResult> results(static_cast<size_t>(num_threads));
    std::vector<int> failures(static_cast<size_t>(num_threads), 0);
    std::vector<std::thread> workers;
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        Engine engine = MakeEngine(5);
        engine.set_pattern_cache(&cache);
        if (!engine.MinePatterns().ok() || engine.run_stats().cache_hits != 1 ||
            engine.run_stats().mine_ns != 0) {
          failures[static_cast<size_t>(t)] = 1;
          return;
        }
        auto question = engine.MakeQuestion(
            {"author", "venue", "year"},
            {Value::String(kDblpPlantedAuthor), Value::String("SIGKDD"),
             Value::Int64(2007)},
            AggFunc::kCount, "*", Direction::kLow);
        if (!question.ok()) {
          failures[static_cast<size_t>(t)] = 2;
          return;
        }
        auto result = engine.Explain(*question);
        if (!result.ok()) {
          failures[static_cast<size_t>(t)] = 3;
          return;
        }
        results[static_cast<size_t>(t)] = *std::move(result);
      });
    }
    for (std::thread& w : workers) w.join();

    for (int t = 0; t < num_threads; ++t) {
      ASSERT_EQ(failures[static_cast<size_t>(t)], 0)
          << "thread " << t << " of " << num_threads << " failed";
      const ExplainResult& got = results[static_cast<size_t>(t)];
      ASSERT_EQ(got.explanations.size(), expected->explanations.size())
          << "thread " << t << " of " << num_threads;
      for (size_t i = 0; i < got.explanations.size(); ++i) {
        const Explanation& g = got.explanations[i];
        const Explanation& w = expected->explanations[i];
        EXPECT_EQ(g.score, w.score) << "thread " << t;
        EXPECT_EQ(g.tuple_values, w.tuple_values) << "thread " << t;
        EXPECT_EQ(g.relevant_pattern, w.relevant_pattern) << "thread " << t;
        EXPECT_EQ(g.refinement_pattern, w.refinement_pattern) << "thread " << t;
      }
    }
    // Every thread hit; the sole miss was the reference's cold mine.
    EXPECT_EQ(cache.stats().misses, 1);
  }
}

TEST(ParallelEquivalenceTest, TruncatedParallelMiningIsSubsetOfUntimed) {
  Engine untimed = MakeEngine(5);
  ASSERT_TRUE(untimed.MinePatterns("ARP-MINE").ok());

  for (int64_t deadline_ms : {1, 5}) {
    Engine engine = MakeEngine(5);
    engine.mining_config().num_threads = 4;
    engine.mining_config().deadline_ms = deadline_ms;
    ASSERT_TRUE(engine.MinePatterns("ARP-MINE").ok());
    for (const GlobalPattern& gp : engine.patterns().patterns()) {
      EXPECT_NE(untimed.patterns().Find(gp.pattern), nullptr)
          << gp.pattern.ToString(engine.schema());
    }
  }
}

}  // namespace
}  // namespace cape
