// PatternMaintainer unit tests (DESIGN.md §16): the incremental maintenance
// core in isolation, plus its engine integration (AppendAndRemine) and the
// sampled first-pass miner. The broad byte-identity oracle across seeds,
// schedules, storage toggles, and thread counts lives in
// random_equivalence_test; these tests pin the contracts that suite assumes —
// transactional Absorb, reusability after stop/fault, unsupported-config
// rejection, and the approximate-mode markers.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "pattern/incremental.h"
#include "pattern/mining.h"
#include "pattern/pattern_io.h"
#include "storage/heap_file.h"
#include "storage/paged_table.h"

namespace cape {
namespace {

MiningConfig TestConfig() {
  MiningConfig config;
  config.max_pattern_size = 3;
  config.local_gof_threshold = 0.2;
  config.local_support_threshold = 3;
  config.global_confidence_threshold = 0.3;
  config.global_support_threshold = 5;
  config.agg_functions = {AggFunc::kCount, AggFunc::kSum};
  config.excluded_attrs = {"pubid"};
  return config;
}

TablePtr MakeTable(int64_t rows) {
  DblpOptions options;
  options.num_rows = rows;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  return *table;
}

/// From-scratch reference: what any miner produces on `table` right now.
std::string Scratch(const Table& table, const MiningConfig& config) {
  auto result = MakeArpMiner()->Mine(table, config);
  EXPECT_TRUE(result.ok());
  return SerializePatternSet(result->patterns, *table.schema());
}

std::string Finalized(const PatternMaintainer& maintainer, const Table& table) {
  return SerializePatternSet(maintainer.Finalize(), *table.schema());
}

TEST(IncrementalTest, BuildMatchesScratchMine) {
  TablePtr table = MakeTable(2000);
  const MiningConfig config = TestConfig();
  auto maintainer = PatternMaintainer::Build(table, config);
  ASSERT_TRUE(maintainer.ok()) << maintainer.status().ToString();
  EXPECT_EQ((*maintainer)->rows_folded(), table->num_rows());
  EXPECT_EQ(Finalized(**maintainer, *table), Scratch(*table, config));
  EXPECT_EQ((*maintainer)->config_digest(), MiningConfigDigest(config));
}

TEST(IncrementalTest, AbsorbFoldsDeltaAndMatchesScratch) {
  TablePtr table = MakeTable(2000);
  TablePtr donor = MakeTable(2200);  // superset: rows 2000..2199 are the delta
  const MiningConfig config = TestConfig();
  auto maintainer = PatternMaintainer::Build(table, config);
  ASSERT_TRUE(maintainer.ok());

  for (int64_t r = 2000; r < 2200; ++r) {
    ASSERT_TRUE(table->AppendRow(donor->GetRow(r)).ok());
  }
  ASSERT_TRUE((*maintainer)->Absorb().ok());
  EXPECT_EQ((*maintainer)->rows_folded(), 2200);
  EXPECT_EQ(Finalized(**maintainer, *table), Scratch(*table, config));

  const MaintenanceStats& stats = (*maintainer)->stats();
  EXPECT_EQ(stats.batches_absorbed, 2);  // the Build fold plus this one
  EXPECT_EQ(stats.rows_absorbed, 2200);
  EXPECT_GT(stats.groups_touched, 0);
  EXPECT_GT(stats.fragments_refit, 0);
  EXPECT_GT(stats.candidates_revalidated, 0);
}

TEST(IncrementalTest, AbsorbIsNoOpWhenTableUnchanged) {
  TablePtr table = MakeTable(1000);
  const MiningConfig config = TestConfig();
  auto maintainer = PatternMaintainer::Build(table, config);
  ASSERT_TRUE(maintainer.ok());
  const MaintenanceStats& stats = (*maintainer)->stats();
  const int64_t batches = stats.batches_absorbed;
  ASSERT_TRUE((*maintainer)->Absorb().ok());
  EXPECT_EQ(stats.batches_absorbed, batches);  // nothing to fold, nothing counted
  EXPECT_EQ((*maintainer)->rows_folded(), 1000);
}

TEST(IncrementalTest, ColumnStatsTrackEveryNumericColumn) {
  TablePtr table = MakeTable(1500);
  auto maintainer = PatternMaintainer::Build(table, TestConfig());
  ASSERT_TRUE(maintainer.ok());
  const MaintenanceStats& stats = (*maintainer)->stats();
  ASSERT_EQ(static_cast<int>(stats.column_stats.size()), table->num_columns());
  for (int c = 0; c < table->num_columns(); ++c) {
    if (table->schema()->field(c).type == DataType::kString) {
      EXPECT_EQ(stats.column_stats[static_cast<size_t>(c)].count(), 0u);
    } else {
      // Non-null numeric values folded; dblp generates these fully non-null.
      EXPECT_EQ(stats.column_stats[static_cast<size_t>(c)].count(),
                static_cast<size_t>(table->num_rows()));
    }
  }
}

TEST(IncrementalTest, CancelledAbsorbLeavesMaintainerReusable) {
  TablePtr table = MakeTable(2000);
  TablePtr donor = MakeTable(2100);
  const MiningConfig config = TestConfig();
  auto maintainer = PatternMaintainer::Build(table, config);
  ASSERT_TRUE(maintainer.ok());
  const std::string before = Finalized(**maintainer, *table);

  for (int64_t r = 2000; r < 2100; ++r) {
    ASSERT_TRUE(table->AppendRow(donor->GetRow(r)).ok());
  }

  // A pre-cancelled token stops the pass mid-maintenance; the transaction
  // must roll back completely: fold point unchanged, Finalize untouched.
  CancellationSource source;
  source.RequestCancel();
  StopToken stop(Deadline::Infinite(), source.token(), /*check_stride=*/1);
  Status st = (*maintainer)->Absorb(&stop);
  ASSERT_TRUE(st.IsStop()) << st.ToString();
  EXPECT_EQ((*maintainer)->rows_folded(), 2000);
  EXPECT_EQ(Finalized(**maintainer, *table), before);

  // Reusable: the next unstopped pass catches up and matches scratch.
  ASSERT_TRUE((*maintainer)->Absorb().ok());
  EXPECT_EQ((*maintainer)->rows_folded(), 2100);
  EXPECT_EQ(Finalized(**maintainer, *table), Scratch(*table, config));
}

TEST(IncrementalTest, MergeFailpointRollsBackAndMaintainerStaysValid) {
  TablePtr table = MakeTable(2000);
  TablePtr donor = MakeTable(2100);
  const MiningConfig config = TestConfig();
  auto maintainer = PatternMaintainer::Build(table, config);
  ASSERT_TRUE(maintainer.ok());
  const std::string before = Finalized(**maintainer, *table);

  for (int64_t r = 2000; r < 2100; ++r) {
    ASSERT_TRUE(table->AppendRow(donor->GetRow(r)).ok());
  }
  {
    failpoint::ScopedFailpoint fp("incremental.merge");
    Status st = (*maintainer)->Absorb();
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    EXPECT_EQ((*maintainer)->rows_folded(), 2000);
    EXPECT_EQ(Finalized(**maintainer, *table), before);
  }
  // Disarmed: same maintainer completes the same delta, byte-identical to
  // scratch — the fault never leaks partial state into the result.
  ASSERT_TRUE((*maintainer)->Absorb().ok());
  EXPECT_EQ(Finalized(**maintainer, *table), Scratch(*table, config));
}

TEST(IncrementalTest, UnsupportedConfigsRejectedAtBuild) {
  TablePtr table = MakeTable(500);

  MiningConfig fd = TestConfig();
  fd.use_fd_optimizations = true;
  EXPECT_TRUE(PatternMaintainer::Build(table, fd).status().IsNotImplemented());

  MiningConfig approx = TestConfig();
  approx.approx_sample_rows = 100;
  EXPECT_TRUE(PatternMaintainer::Build(table, approx).status().IsNotImplemented());

  EXPECT_TRUE(
      PatternMaintainer::Build(nullptr, TestConfig()).status().IsInvalidArgument());
}

TEST(IncrementalTest, PagedTablesRejectedAtBuild) {
  TablePtr table = MakeTable(500);
  const std::string path = ::testing::TempDir() + "cape_incremental_paged.cape";
  ASSERT_TRUE(WriteTableToHeapFile(*table, path).ok());
  auto paged = OpenPagedTable(path, /*budget_bytes=*/1 << 20);
  ASSERT_TRUE(paged.ok());
  EXPECT_TRUE(PatternMaintainer::Build(*paged, TestConfig()).status().IsNotImplemented());
}

TEST(IncrementalTest, NaNInEligibleDoubleAttrRejected) {
  auto schema = Schema::Make({Field{"g", DataType::kString, false},
                              Field{"m", DataType::kDouble, true}});
  auto table = std::make_shared<Table>(schema);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value::String("g" + std::to_string(i % 4)),
                          Value::Double(static_cast<double>(i))})
            .ok());
  }
  MiningConfig config;
  config.max_pattern_size = 2;
  config.agg_functions = {AggFunc::kCount};

  // NaN present at Build: rejected outright (fragment identity would not be
  // byte-stable — NaN breaks the Value-ordering equivalence).
  ASSERT_TRUE(table->AppendRow({Value::String("g0"),
                                Value::Double(std::nan(""))}).ok());
  EXPECT_TRUE(PatternMaintainer::Build(table, config).status().IsNotImplemented());

  // NaN arriving in a delta: the established maintainer refuses the batch
  // and stays at its previous fold point.
  auto clean = std::make_shared<Table>(schema);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        clean->AppendRow({Value::String("g" + std::to_string(i % 4)),
                          Value::Double(static_cast<double>(i))})
            .ok());
  }
  auto maintainer = PatternMaintainer::Build(clean, config);
  ASSERT_TRUE(maintainer.ok()) << maintainer.status().ToString();
  ASSERT_TRUE(clean->AppendRow({Value::String("g0"),
                                Value::Double(std::nan(""))}).ok());
  EXPECT_TRUE((*maintainer)->Absorb().IsNotImplemented());
  EXPECT_EQ((*maintainer)->rows_folded(), 20);
}

// ---------------------------------------------------------------------------
// Engine integration: AppendAndRemine.

TEST(IncrementalTest, EngineAppendAndRemineMatchesScratch) {
  TablePtr donor = MakeTable(2200);
  auto engine = Engine::FromTable(MakeTable(2000));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());

  std::vector<Row> delta;
  for (int64_t r = 2000; r < 2200; ++r) delta.push_back(donor->GetRow(r));
  ASSERT_TRUE(engine->AppendAndRemine(delta).ok());

  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()),
            Scratch(*engine->table(), engine->mining_config()));
  const RunStats stats = engine->run_stats();
  EXPECT_EQ(stats.maint_appends, 1);
  EXPECT_EQ(stats.maint_rows_appended, 200);
  EXPECT_EQ(stats.maint_full_remines, 0);
  EXPECT_GT(stats.maint_patterns_revalidated, 0);
}

TEST(IncrementalTest, EngineAppendRejectsInvalidRowsAtomically) {
  auto engine = Engine::FromTable(MakeTable(1000));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  const std::string before =
      SerializePatternSet(engine->patterns(), engine->schema());

  // Second row has the wrong arity: nothing may be appended, patterns stay.
  std::vector<Row> bad = {engine->table()->GetRow(0), Row{Value::Int64(1)}};
  EXPECT_FALSE(engine->AppendAndRemine(bad).ok());
  EXPECT_EQ(engine->table()->num_rows(), 1000);
  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()), before);
  EXPECT_EQ(engine->run_stats().maint_appends, 0);
}

TEST(IncrementalTest, EngineCancelledMaintenanceSurfacesStopThenCatchesUp) {
  TablePtr donor = MakeTable(2100);
  auto engine = Engine::FromTable(MakeTable(2000));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  const std::string stale = SerializePatternSet(engine->patterns(), engine->schema());

  std::vector<Row> delta;
  for (int64_t r = 2000; r < 2100; ++r) delta.push_back(donor->GetRow(r));

  CancellationSource source;
  source.RequestCancel();
  engine->mining_config().cancel_token = source.token();
  Status st = engine->AppendAndRemine(delta);
  ASSERT_TRUE(st.IsStop()) << st.ToString();
  // Rows are in; the pattern set is stale but intact.
  EXPECT_EQ(engine->table()->num_rows(), 2100);
  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()), stale);

  // Next (unstopped) maintenance pass catches up on the backlog plus the new
  // delta and is byte-identical to scratch again.
  engine->mining_config().cancel_token = CancellationToken();
  ASSERT_TRUE(engine->AppendAndRemine({donor->GetRow(0)}).ok());
  EXPECT_EQ(engine->table()->num_rows(), 2101);
  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()),
            Scratch(*engine->table(), engine->mining_config()));
  EXPECT_EQ(engine->run_stats().maint_full_remines, 0);
}

TEST(IncrementalTest, EngineConfigChangeRebuildsMaintainer) {
  TablePtr donor = MakeTable(2100);
  auto engine = Engine::FromTable(MakeTable(2000));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  ASSERT_TRUE(engine->AppendAndRemine({donor->GetRow(2000)}).ok());

  // A changed mining config invalidates the maintained state; the next
  // append must still land exactly on scratch under the new config.
  engine->mining_config().local_gof_threshold = 0.4;
  ASSERT_TRUE(engine->AppendAndRemine({donor->GetRow(2001)}).ok());
  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()),
            Scratch(*engine->table(), engine->mining_config()));
}

// ---------------------------------------------------------------------------
// Sampled (approximate) first-pass mining.

TEST(IncrementalTest, SampledMiningIsDeterministicAndMarked) {
  auto engine = Engine::FromTable(MakeTable(3000));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  engine->mining_config().approx_sample_rows = 500;
  engine->mining_config().approx_seed = 17;

  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  const MiningProfile& profile = engine->mining_profile();
  EXPECT_TRUE(profile.approximate);
  EXPECT_EQ(profile.approx_rows_sampled, 500);
  EXPECT_EQ(profile.approx_rows_total, 3000);
  EXPECT_GT(profile.approx_support_epsilon, 0.0);
  EXPECT_GT(profile.approx_quality_epsilon, 0.0);
  const std::string first = SerializePatternSet(engine->patterns(), engine->schema());

  // Same (content, seed) → the same sample → the same pattern set.
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()), first);
}

TEST(IncrementalTest, SampleCoveringWholeTableIsExact) {
  auto engine = Engine::FromTable(MakeTable(1000));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  const std::string exact = SerializePatternSet(engine->patterns(), engine->schema());

  // approx_sample_rows >= num_rows: exact in, exact out — no sampling, no
  // approximate marker.
  engine->mining_config().approx_sample_rows = 1000;
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  EXPECT_FALSE(engine->mining_profile().approximate);
  EXPECT_EQ(SerializePatternSet(engine->patterns(), engine->schema()), exact);
}

TEST(IncrementalTest, SampledMiningBypassesServingCache) {
  auto engine = Engine::FromTable(MakeTable(1500));
  ASSERT_TRUE(engine.ok());
  engine->mining_config() = TestConfig();
  engine->mining_config().approx_sample_rows = 300;
  PatternCache cache(/*byte_budget=*/1ull << 26);
  engine->set_pattern_cache(&cache);
  ASSERT_TRUE(engine->MinePatterns("ARP-MINE").ok());
  // Never admitted, never looked up: approximate sets must not be served as
  // exact answers to a later identical-config request.
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0);
  engine->set_pattern_cache(nullptr);
}

}  // namespace
}  // namespace cape
