#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace cape {
namespace {

// ---------------------------------------------------------------- lexer ---

TEST(LexerTest, KeywordsIdentifiersAndCaseFolding) {
  auto tokens = Tokenize("SELECT Author, COUNT(*) FROM Pub");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "author");  // bare identifiers fold to lowercase
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_TRUE(t[3].IsKeyword("COUNT"));
  EXPECT_TRUE(t[4].IsSymbol("("));
  EXPECT_TRUE(t[5].IsSymbol("*"));
  EXPECT_TRUE(t[6].IsSymbol(")"));
  EXPECT_TRUE(t[7].IsKeyword("FROM"));
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, QuotedIdentifiersKeepCase) {
  auto tokens = Tokenize("\"Author Name\" \"with\"\"quote\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Author Name");
  EXPECT_EQ((*tokens)[1].text, "with\"quote");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("'SIGKDD' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "SIGKDD");
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 -7 3.5 1e3 -2.5E-1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -7);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, -0.25);
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("= != <> <= >= < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "=");
  EXPECT_EQ((*tokens)[1].text, "!=");
  EXPECT_EQ((*tokens)[2].text, "!=");  // <> normalizes to !=
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[4].text, ">=");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

// --------------------------------------------------------------- parser ---

TEST(ParserTest, FullSelect) {
  auto query = ParseSelect(
      "SELECT author, venue, count(*) AS pubcnt FROM pub "
      "WHERE year >= 2005 AND venue = 'SIGKDD' "
      "GROUP BY author, venue ORDER BY pubcnt DESC LIMIT 10;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->items.size(), 3u);
  EXPECT_FALSE(query->items[0].is_aggregate);
  EXPECT_TRUE(query->items[2].is_aggregate);
  EXPECT_EQ(query->items[2].alias, "pubcnt");
  EXPECT_EQ(query->items[2].DefaultName(), "pubcnt");
  EXPECT_EQ(query->table, "pub");
  ASSERT_EQ(query->where.size(), 2u);
  EXPECT_EQ(query->where[0].op, WherePredicate::Op::kGe);
  EXPECT_EQ(query->where[0].literal, Value::Int64(2005));
  EXPECT_EQ(query->where[1].literal, Value::String("SIGKDD"));
  EXPECT_EQ(query->group_by, (std::vector<std::string>{"author", "venue"}));
  EXPECT_EQ(*query->order_by, "pubcnt");
  EXPECT_FALSE(query->order_ascending);
  EXPECT_EQ(*query->limit, 10);
}

TEST(ParserTest, MinimalSelect) {
  auto query = ParseSelect("select * from t");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->items.size(), 1u);
  EXPECT_EQ(query->items[0].column, "*");
  EXPECT_TRUE(query->where.empty());
  EXPECT_TRUE(query->group_by.empty());
}

TEST(ParserTest, DefaultAggregateNames) {
  auto query = ParseSelect("SELECT count(*), sum(score) FROM t");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->items[0].DefaultName(), "count_star");
  EXPECT_EQ(query->items[1].DefaultName(), "sum_score");
}

TEST(ParserTest, SelectErrors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT count(a) FROM t").ok());   // only count(*)
  EXPECT_FALSE(ParseSelect("SELECT sum(*) FROM t").ok());     // sum needs a column
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra").ok());    // trailing input
  EXPECT_FALSE(ParseSelect("EXPLAIN WHY count(*) IS LOW FOR a=1 FROM t").ok());
}

TEST(ParserTest, ExplainWhyCommand) {
  auto command = ParseExplainWhy(
      "EXPLAIN WHY count(*) IS LOW FOR author = 'AX', venue = 'SIGKDD', year = 2007 "
      "FROM pub TOP 5;");
  ASSERT_TRUE(command.ok()) << command.status().ToString();
  EXPECT_EQ(command->agg, AggFunc::kCount);
  EXPECT_EQ(command->agg_column, "*");
  EXPECT_EQ(command->direction, Direction::kLow);
  EXPECT_EQ(command->group_by,
            (std::vector<std::string>{"author", "venue", "year"}));
  EXPECT_EQ(command->group_values[2], Value::Int64(2007));
  EXPECT_EQ(command->table, "pub");
  EXPECT_EQ(*command->top_k, 5);
}

TEST(ParserTest, WhyWithoutExplainKeyword) {
  auto command = ParseExplainWhy("WHY sum(amount) IS HIGH FOR region = 'EU' FROM sales");
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command->agg, AggFunc::kSum);
  EXPECT_EQ(command->agg_column, "amount");
  EXPECT_EQ(command->direction, Direction::kHigh);
  EXPECT_FALSE(command->top_k.has_value());
}

TEST(ParserTest, ExplainWhyErrors) {
  EXPECT_FALSE(ParseExplainWhy("EXPLAIN WHY count(*) IS SIDEWAYS FOR a=1 FROM t").ok());
  EXPECT_FALSE(ParseExplainWhy("EXPLAIN WHY avg(x) IS LOW FOR a=1 FROM t").ok());
  EXPECT_FALSE(ParseExplainWhy("EXPLAIN WHY count(*) IS LOW FROM t").ok());
  EXPECT_FALSE(ParseExplainWhy("EXPLAIN WHY count(*) IS LOW FOR a=1 FROM t TOP 0").ok());
  EXPECT_FALSE(ParseExplainWhy("SELECT a FROM t").ok());
}

// ------------------------------------------------------------- executor ---

Catalog MakeCatalog() {
  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false},
                               Field{"cites", DataType::kInt64, true}});
  auto add = [&](const char* a, int y, const char* v, Value c) {
    EXPECT_TRUE(table
                    ->AppendRow({Value::String(a), Value::Int64(y), Value::String(v),
                                 std::move(c)})
                    .ok());
  };
  add("AX", 2006, "SIGKDD", Value::Int64(10));
  add("AX", 2006, "SIGKDD", Value::Int64(20));
  add("AX", 2007, "SIGKDD", Value::Int64(5));
  add("AX", 2007, "ICDE", Value::Int64(8));
  add("AY", 2006, "ICDE", Value::Null());
  add("AY", 2007, "ICDE", Value::Int64(2));
  Catalog catalog;
  catalog.RegisterOrReplaceTable("pub", table);
  return catalog;
}

TEST(ExecutorTest, GroupedAggregation) {
  Catalog catalog = MakeCatalog();
  auto query = ParseSelect(
      "SELECT author, count(*) AS n, sum(cites) AS c FROM pub GROUP BY author "
      "ORDER BY author");
  ASSERT_TRUE(query.ok());
  auto result = ExecuteSelect(catalog, *query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = **result;
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema()->field(0).name, "author");
  EXPECT_EQ(t.schema()->field(1).name, "n");
  EXPECT_EQ(t.GetValue(0, 0), Value::String("AX"));
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(4));
  EXPECT_EQ(t.GetValue(0, 2), Value::Int64(43));
  EXPECT_EQ(t.GetValue(1, 1), Value::Int64(2));
  EXPECT_EQ(t.GetValue(1, 2), Value::Int64(2));  // NULL cites ignored
}

TEST(ExecutorTest, WhereAndLimit) {
  Catalog catalog = MakeCatalog();
  auto query = ParseSelect(
      "SELECT venue, count(*) AS n FROM pub WHERE year = 2006 AND cites >= 10 "
      "GROUP BY venue LIMIT 1");
  ASSERT_TRUE(query.ok());
  auto result = ExecuteSelect(catalog, *query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 1);
  EXPECT_EQ((*result)->GetValue(0, 0), Value::String("SIGKDD"));
  EXPECT_EQ((*result)->GetValue(0, 1), Value::Int64(2));
}

TEST(ExecutorTest, GlobalAggregate) {
  Catalog catalog = MakeCatalog();
  auto query = ParseSelect("SELECT count(*), min(cites), max(cites) FROM pub");
  ASSERT_TRUE(query.ok());
  auto result = ExecuteSelect(catalog, *query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 1);
  EXPECT_EQ((*result)->GetValue(0, 0), Value::Int64(6));
  EXPECT_EQ((*result)->GetValue(0, 1), Value::Int64(2));
  EXPECT_EQ((*result)->GetValue(0, 2), Value::Int64(20));
}

TEST(ExecutorTest, PlainProjectionAndStar) {
  Catalog catalog = MakeCatalog();
  auto star = ExecuteSelect(catalog, *ParseSelect("SELECT * FROM pub"));
  ASSERT_TRUE(star.ok());
  EXPECT_EQ((*star)->num_rows(), 6);
  EXPECT_EQ((*star)->num_columns(), 4);

  auto proj = ExecuteSelect(
      catalog, *ParseSelect("SELECT venue AS v, author FROM pub ORDER BY v LIMIT 3"));
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ((*proj)->num_columns(), 2);
  EXPECT_EQ((*proj)->schema()->field(0).name, "v");
  EXPECT_EQ((*proj)->GetValue(0, 0), Value::String("ICDE"));
}

TEST(ExecutorTest, NullComparisonsAreNotTrue) {
  Catalog catalog = MakeCatalog();
  auto lt = ExecuteSelect(catalog, *ParseSelect("SELECT * FROM pub WHERE cites < 100"));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ((*lt)->num_rows(), 5);  // the NULL-cites row is excluded
  auto ne = ExecuteSelect(catalog, *ParseSelect("SELECT * FROM pub WHERE cites != 5"));
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ((*ne)->num_rows(), 4);
}

TEST(ExecutorTest, Errors) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(ExecuteSelect(catalog, *ParseSelect("SELECT * FROM nope"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteSelect(catalog, *ParseSelect("SELECT bogus FROM pub"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteSelect(catalog,
                            *ParseSelect("SELECT author, count(*) FROM pub GROUP BY year"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteSelect(catalog, *ParseSelect("SELECT *, count(*) FROM pub GROUP BY year"))
                  .status()
                  .IsInvalidArgument());
}

TEST(ExecutorTest, BuildQuestionFromExplainWhy) {
  Catalog catalog = MakeCatalog();
  auto command = ParseExplainWhy(
      "EXPLAIN WHY count(*) IS LOW FOR author='AX', venue='SIGKDD', year=2007 FROM pub");
  ASSERT_TRUE(command.ok());
  auto question = BuildQuestion(catalog, *command);
  ASSERT_TRUE(question.ok()) << question.status().ToString();
  EXPECT_EQ(question->result_value, 1.0);
  EXPECT_EQ(question->dir, Direction::kLow);

  auto missing = ParseExplainWhy(
      "EXPLAIN WHY count(*) IS LOW FOR author='NOBODY' FROM pub");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(BuildQuestion(catalog, *missing).status().IsNotFound());
}

}  // namespace
}  // namespace cape
