// Chaos and concurrency stress for the serving stack (DESIGN.md §13). The
// core protocol guarantee under test: every submitted request reaches
// exactly one terminal response — answer, truncated answer, or structured
// rejection — even with failpoints firing probabilistically inside the
// explanation pipeline, tight deadlines, and malformed input mixed into a
// concurrent storm. A second test pins byte-determinism of concurrent
// answers, and a third exercises shutdown racing a live storm.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/mutex.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cape::server {
namespace {

Engine MakeServingEngine() {
  DblpOptions options;
  options.num_rows = 2000;
  options.seed = 5;
  auto table = GenerateDblp(options);
  EXPECT_TRUE(table.ok());
  Engine engine = std::move(Engine::FromTable(std::move(table).ValueOrDie())).ValueOrDie();
  MiningConfig& mining = engine.mining_config();
  mining.max_pattern_size = 3;
  mining.local_gof_threshold = 0.2;
  mining.local_support_threshold = 3;
  mining.global_confidence_threshold = 0.3;
  mining.global_support_threshold = 10;
  mining.agg_functions = {AggFunc::kCount};
  mining.excluded_attrs = {"pubid"};
  EXPECT_TRUE(engine.MinePatterns().ok());
  return engine;
}

std::string PlantedExplainLine(const std::string& header) {
  std::string line = header;
  if (!line.empty()) line += " ";
  line += "EXPLAIN WHY count(*) IS LOW FOR author = '";
  line += kDblpPlantedAuthor;
  line += "', venue = 'SIGKDD', year = 2007 FROM pub";
  return line;
}

struct Collector {
  Mutex mu;
  CondVar cv;
  std::vector<Response> responses CAPE_GUARDED_BY(mu);

  RequestScheduler::ResponseCallback Callback() {
    return [this](const Response& response) {
      MutexLock lock(mu);
      responses.push_back(response);
      cv.NotifyAll();
    };
  }
  std::vector<Response> WaitFor(size_t n) CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    while (responses.size() < n) cv.Wait(mu);
    return responses;
  }
};

/// Disarms every failpoint on scope exit, whatever assertions fired.
struct FailpointCleanup {
  ~FailpointCleanup() { failpoint::DeactivateAll(); }
};

TEST(ServerStressTest, ChaosStormEndsEveryRequestInExactlyOneOutcome) {
  FailpointCleanup cleanup;
  Engine engine = MakeServingEngine();

  ServerOptions options;
  options.num_workers = 4;
  options.scheduler.admission.max_in_system = 4096;
  options.scheduler.default_deadline_ms = 30000;
  options.scheduler.degrade_queue_depth = 32;
  ServerHarness harness(&engine, options);

  // Chaos mode: the explanation pipeline's aggregation and drill-down scans
  // each fail ~1% of the time, exactly as CAPE_FAILPOINTS would arm them.
  ASSERT_TRUE(failpoint::ActivateFromSpec("explain.norm=io%0.01").ok());
  ASSERT_TRUE(failpoint::ActivateFromSpec("explain.refine=io%0.01").ok());

  const int kRequests = 400;
  Collector collector;
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = "id=" + std::to_string(i + 1);
    std::string line;
    switch (i % 5) {
      case 0:
      case 1:
        line = PlantedExplainLine("[" + id + " top_k=5]");
        break;
      case 2:  // tight deadline: answered, truncated, or shed — never lost
        line = PlantedExplainLine("[" + id + " deadline_ms=1]");
        break;
      case 3:
        line = "[" + id + "] ping";
        break;
      default:  // malformed: structured parse error, never a dropped request
        line = "[" + id + " wat=1] ping";
        break;
    }
    harness.CallAsync(line, collector.Callback());
  }

  const std::vector<Response> responses = collector.WaitFor(kRequests);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));

  // Exactly one terminal response per request. Well-formed requests echo
  // their unique id; parse rejections echo id 0 (the header never applied),
  // so the malformed fifth all land there.
  std::map<int64_t, int> by_id;
  std::map<Outcome, int> by_outcome;
  for (const Response& r : responses) {
    ++by_id[r.id];
    ++by_outcome[r.outcome];
    if (r.outcome == Outcome::kError) {
      EXPECT_FALSE(r.error.empty());
    }
  }
  const int malformed = kRequests / 5;
  EXPECT_EQ(by_id[0], malformed);
  EXPECT_EQ(by_id.size(), static_cast<size_t>(kRequests - malformed + 1));
  for (const auto& [id, count] : by_id) {
    if (id == 0) continue;
    EXPECT_EQ(count, 1) << "request " << id << " answered " << count << " times";
  }
  // The malformed fifth never reached the scheduler, so its bookkeeping
  // (idle now) must balance: submitted == sum of terminal outcomes.
  const RequestScheduler::Stats stats = harness.scheduler().stats();
  EXPECT_EQ(stats.submitted, stats.ok + stats.degraded + stats.truncated + stats.shed +
                                 stats.overloaded + stats.retry_after + stats.errors);
  EXPECT_GE(by_outcome[Outcome::kError], kRequests / 5);  // the malformed ones
  EXPECT_GT(by_outcome[Outcome::kOk] + by_outcome[Outcome::kDegraded] +
                by_outcome[Outcome::kTruncated],
            0);

  failpoint::DeactivateAll();

  // Chaos is gone: full-service answers for the planted question are
  // byte-identical to a fresh, quiet call.
  const Response reference = harness.Call(PlantedExplainLine("[id=9999 top_k=5]"));
  ASSERT_EQ(reference.outcome, Outcome::kOk) << reference.error;
  for (const Response& r : responses) {
    // ids are 1-based: id % 5 in {1, 2} are the full-service explains.
    if (r.outcome == Outcome::kOk && (r.id % 5 == 1 || r.id % 5 == 2)) {
      EXPECT_EQ(r.payload_json, reference.payload_json)
          << "request " << r.id << " diverged";
    }
  }
}

TEST(ServerStressTest, ConcurrentAnswersAreByteIdentical) {
  Engine engine = MakeServingEngine();
  ServerOptions options;
  options.num_workers = 4;
  options.scheduler.admission.max_in_system = 4096;
  options.scheduler.default_deadline_ms = 30000;
  ServerHarness harness(&engine, options);

  const std::string line = PlantedExplainLine("[top_k=5]");
  const Response reference = harness.Call(line);
  ASSERT_EQ(reference.outcome, Outcome::kOk) << reference.error;
  ASSERT_FALSE(reference.payload_json.empty());

  const int kRequests = 64;
  Collector collector;
  for (int i = 0; i < kRequests; ++i) harness.CallAsync(line, collector.Callback());
  const std::vector<Response> responses = collector.WaitFor(kRequests);
  for (const Response& r : responses) {
    ASSERT_EQ(r.outcome, Outcome::kOk) << r.error;
    // Many sessions, many workers, one answer: the memoized γ tables only
    // skip recomputation, never change bytes (DESIGN.md §11).
    EXPECT_EQ(r.payload_json, reference.payload_json);
  }
}

TEST(ServerStressTest, ShutdownDuringStormLosesNoRequest) {
  Engine engine = MakeServingEngine();
  ServerOptions options;
  options.num_workers = 2;
  options.scheduler.admission.max_in_system = 4096;
  options.scheduler.default_deadline_ms = 30000;
  ServerHarness harness(&engine, options);

  const int kRequests = 100;
  Collector collector;
  for (int i = 0; i < kRequests; ++i) {
    harness.CallAsync(i % 2 == 0 ? PlantedExplainLine("[top_k=3]") : "ping",
                      collector.Callback());
  }
  // Shutdown races the storm: in-flight requests drain to terminal
  // responses; none are dropped, none crash.
  harness.Shutdown();
  const std::vector<Response> responses = collector.WaitFor(kRequests);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (const Response& r : responses) {
    EXPECT_TRUE(IsAnswer(r.outcome) || r.outcome == Outcome::kShed ||
                r.outcome == Outcome::kOverloaded)
        << OutcomeToString(r.outcome) << ": " << r.error;
  }
  EXPECT_EQ(harness.Call("ping").outcome, Outcome::kOverloaded);
}

}  // namespace
}  // namespace cape::server
