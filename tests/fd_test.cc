#include <gtest/gtest.h>

#include "fd/attr_set.h"
#include "fd/fd_detector.h"
#include "fd/fd_set.h"
#include "relational/table.h"

namespace cape {
namespace {

TEST(AttrSetTest, BasicOperations) {
  AttrSet s = AttrSet::FromIndices({0, 3, 5});
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.ToIndices(), (std::vector<int>{0, 3, 5}));
  EXPECT_EQ(s.ToString(), "{0,3,5}");

  s.Remove(3);
  EXPECT_EQ(s, AttrSet::FromIndices({0, 5}));
  s.Add(63);
  EXPECT_TRUE(s.Contains(63));
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a = AttrSet::FromIndices({0, 1, 2});
  AttrSet b = AttrSet::FromIndices({2, 3});
  EXPECT_EQ(a.Union(b), AttrSet::FromIndices({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttrSet::FromIndices({2}));
  EXPECT_EQ(a.Difference(b), AttrSet::FromIndices({0, 1}));
  EXPECT_EQ(a.Without(1), AttrSet::FromIndices({0, 2}));
  EXPECT_TRUE(a.ContainsAll(AttrSet::FromIndices({0, 2})));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttrSet::FromIndices({4})));
  EXPECT_EQ(AttrSet::Single(4), AttrSet::FromIndices({4}));
}

TEST(FdSetTest, ClosureWithChains) {
  // 0 -> 1, 1 -> 2, {2,3} -> 4
  FdSet fds;
  fds.Add(AttrSet::Single(0), 1);
  fds.Add(AttrSet::Single(1), 2);
  fds.Add(AttrSet::FromIndices({2, 3}), 4);
  EXPECT_EQ(fds.Closure(AttrSet::Single(0)), AttrSet::FromIndices({0, 1, 2}));
  EXPECT_EQ(fds.Closure(AttrSet::FromIndices({0, 3})),
            AttrSet::FromIndices({0, 1, 2, 3, 4}));
  EXPECT_TRUE(fds.Implies(AttrSet::FromIndices({0, 3}), 4));
  EXPECT_FALSE(fds.Implies(AttrSet::Single(3), 4));
}

TEST(FdSetTest, TrivialAndDuplicateFdsIgnored) {
  FdSet fds;
  fds.Add(AttrSet::FromIndices({0, 1}), 1);  // trivial: rhs in lhs
  EXPECT_EQ(fds.size(), 0u);
  fds.Add(AttrSet::Single(0), 1);
  fds.Add(AttrSet::Single(0), 1);  // duplicate
  EXPECT_EQ(fds.size(), 1u);
}

TEST(FdSetTest, Minimality) {
  FdSet fds;
  fds.Add(AttrSet::Single(0), 1);  // 0 -> 1
  // {0, 1} is not minimal: 1 is implied by {0}.
  EXPECT_FALSE(fds.IsMinimal(AttrSet::FromIndices({0, 1})));
  EXPECT_TRUE(fds.IsMinimal(AttrSet::FromIndices({0, 2})));
  EXPECT_TRUE(fds.IsMinimal(AttrSet::Single(0)));
  EXPECT_TRUE(FdSet().IsMinimal(AttrSet::FromIndices({0, 1, 2})));
}

TEST(FdSetTest, ImpliesAll) {
  FdSet fds;
  fds.Add(AttrSet::Single(0), 1);
  fds.Add(AttrSet::Single(0), 2);
  EXPECT_TRUE(fds.ImpliesAll(AttrSet::Single(0), AttrSet::FromIndices({1, 2})));
  EXPECT_FALSE(fds.ImpliesAll(AttrSet::Single(0), AttrSet::FromIndices({1, 3})));
}

TEST(FdSetTest, ToStringRendering) {
  FdSet fds;
  fds.Add(AttrSet::FromIndices({0, 1}), 2);
  EXPECT_EQ(fds.ToString(), "{0,1}->2");
}

/// Table with beat -> community -> district (planted hierarchy).
TablePtr HierarchyTable() {
  auto table = MakeEmptyTable({Field{"beat", DataType::kInt64, false},
                               Field{"community", DataType::kInt64, false},
                               Field{"district", DataType::kInt64, false},
                               Field{"year", DataType::kInt64, false}});
  for (int beat = 0; beat < 40; ++beat) {
    const int community = beat / 4;
    const int district = community / 2;
    for (int year = 2001; year <= 2004; ++year) {
      EXPECT_TRUE(table
                      ->AppendRow({Value::Int64(beat), Value::Int64(community),
                                   Value::Int64(district), Value::Int64(year)})
                      .ok());
    }
  }
  return table;
}

TEST(FdDetectorTest, CountGroups) {
  auto table = HierarchyTable();
  EXPECT_EQ(*FdDetector::CountGroups(*table, AttrSet::Single(0)), 40);
  EXPECT_EQ(*FdDetector::CountGroups(*table, AttrSet::Single(1)), 10);
  EXPECT_EQ(*FdDetector::CountGroups(*table, AttrSet::FromIndices({0, 1})), 40);
  EXPECT_EQ(*FdDetector::CountGroups(*table, AttrSet::FromIndices({1, 3})), 40);
}

TEST(FdDetectorTest, DetectsHierarchyFds) {
  auto table = HierarchyTable();
  FdSet fds;
  FdDetector detector(&fds);
  // Seed singleton cardinalities, then record pairs as the miner would.
  for (int a = 0; a < 4; ++a) {
    detector.RecordGroupSize(AttrSet::Single(a),
                             *FdDetector::CountGroups(*table, AttrSet::Single(a)));
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      AttrSet g = AttrSet::FromIndices({a, b});
      detector.RecordGroupSize(g, *FdDetector::CountGroups(*table, g));
      detector.DetectFdsFor(g);
    }
  }
  // beat -> community, beat -> district, community -> district.
  EXPECT_TRUE(fds.Implies(AttrSet::Single(0), 1));
  EXPECT_TRUE(fds.Implies(AttrSet::Single(0), 2));
  EXPECT_TRUE(fds.Implies(AttrSet::Single(1), 2));
  // year determines nothing; nothing determines year.
  EXPECT_FALSE(fds.Implies(AttrSet::Single(3), 0));
  EXPECT_FALSE(fds.Implies(AttrSet::FromIndices({0, 1, 2}), 3));
}

TEST(FdDetectorTest, UnknownSizesAreHandled) {
  FdSet fds;
  FdDetector detector(&fds);
  EXPECT_EQ(detector.GetGroupSize(AttrSet::Single(0)), -1);
  EXPECT_FALSE(detector.HasGroupSize(AttrSet::Single(0)));
  EXPECT_EQ(detector.DetectFdsFor(AttrSet::FromIndices({0, 1})), 0);
  detector.RecordGroupSize(AttrSet::Single(0), 5);
  EXPECT_TRUE(detector.HasGroupSize(AttrSet::Single(0)));
  EXPECT_EQ(detector.GetGroupSize(AttrSet::Single(0)), 5);
}

}  // namespace
}  // namespace cape
