#include "server/protocol.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace cape::server {

namespace {

/// Applies one `key=value` header pair to `request`.
Status ApplyHeaderPair(std::string_view key, std::string_view value, Request* request) {
  if (key == "id") {
    CAPE_ASSIGN_OR_RETURN(request->id, ParseInt64(value));
    return Status::OK();
  }
  if (key == "tenant") {
    if (value.empty()) return Status::InvalidArgument("empty tenant in request header");
    request->tenant = std::string(value);
    return Status::OK();
  }
  if (key == "deadline_ms") {
    CAPE_ASSIGN_OR_RETURN(request->deadline_ms, ParseInt64(value));
    if (request->deadline_ms < 0) {
      return Status::InvalidArgument("deadline_ms must be >= 0");
    }
    return Status::OK();
  }
  if (key == "top_k") {
    CAPE_ASSIGN_OR_RETURN(request->top_k, ParseInt64(value));
    if (request->top_k < 0) return Status::InvalidArgument("top_k must be >= 0");
    return Status::OK();
  }
  return Status::InvalidArgument("unknown request header key '" + std::string(key) + "'");
}

}  // namespace

Result<Request> ParseRequestLine(const std::string& line) {
  Request request;
  std::string_view rest = TrimWhitespace(line);
  if (!rest.empty() && rest.front() == '[') {
    const size_t close = rest.find(']');
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unterminated request header: missing ']'");
    }
    const std::string_view header = rest.substr(1, close - 1);
    for (const std::string& pair : SplitString(header, ' ')) {
      const std::string_view trimmed = TrimWhitespace(pair);
      if (trimmed.empty()) continue;
      const size_t eq = trimmed.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("request header entry '" + std::string(trimmed) +
                                       "' is not key=value");
      }
      CAPE_RETURN_IF_ERROR(
          ApplyHeaderPair(trimmed.substr(0, eq), trimmed.substr(eq + 1), &request));
    }
    rest = TrimWhitespace(rest.substr(close + 1));
  }
  if (rest.empty()) return Status::InvalidArgument("empty statement");
  request.statement = std::string(rest);
  return request;
}

const char* OutcomeToString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kTruncated:
      return "truncated";
    case Outcome::kShed:
      return "shed";
    case Outcome::kOverloaded:
      return "overloaded";
    case Outcome::kRetryAfter:
      return "retry_after";
    case Outcome::kError:
      return "error";
  }
  return "error";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ValueToJson(const Value& value) {
  if (value.is_null()) return "null";
  switch (value.type()) {
    case DataType::kInt64:
      return std::to_string(value.int64_value());
    case DataType::kDouble:
      return FormatDouble(value.double_value());
    case DataType::kString: {
      // Built by append rather than operator+ chains: GCC 12's -Wrestrict
      // false-positives on `"..." + temporary + "..."` (PR105651).
      std::string out = "\"";
      out += JsonEscape(value.string_value());
      out += '"';
      return out;
    }
  }
  return "null";
}

std::string RenderResponse(const Response& response) {
  std::string out = "{\"id\":" + std::to_string(response.id) + ",\"outcome\":\"" +
                    OutcomeToString(response.outcome) + "\"";
  if (response.outcome == Outcome::kError) {
    out += ",\"error\":\"" + JsonEscape(response.error) + "\"";
  }
  if (response.retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":" + std::to_string(response.retry_after_ms);
  }
  out += ",\"elapsed_ms\":" + std::to_string(response.elapsed_ms);
  if (!response.payload_json.empty()) {
    out += ",\"result\":" + response.payload_json;
  }
  return out + "}";
}

std::string ExplanationsToJson(const std::vector<Explanation>& explanations,
                               const Schema& schema) {
  std::string out = "[";
  bool first_expl = true;
  for (const Explanation& e : explanations) {
    if (!first_expl) out += ",";
    first_expl = false;
    out += "{\"tuple\":{";
    const std::vector<int> attrs = e.tuple_attrs.ToIndices();
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ",";
      out += '"';
      out += JsonEscape(schema.field(attrs[i]).name);
      out += "\":";
      out += ValueToJson(e.tuple_values[i]);
    }
    out += "},\"agg_value\":" + FormatDouble(e.agg_value);
    out += ",\"predicted\":" + FormatDouble(e.predicted);
    out += ",\"deviation\":" + FormatDouble(e.deviation);
    out += ",\"distance\":" + FormatDouble(e.distance);
    out += ",\"score\":" + FormatDouble(e.score) + "}";
  }
  return out + "]";
}

std::string TableToJson(const Table& table, int64_t max_rows) {
  const Schema& schema = *table.schema();
  std::string out = "{\"columns\":[";
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += ",";
    out += '"';
    out += JsonEscape(schema.field(c).name);
    out += '"';
  }
  const int64_t rows = table.num_rows() < max_rows ? table.num_rows() : max_rows;
  out += "],\"rows\":[";
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      out += ValueToJson(table.GetValue(r, c));
    }
    out += "]";
  }
  out += "],\"num_rows\":" + std::to_string(table.num_rows());
  if (rows < table.num_rows()) out += ",\"rows_elided\":true";
  return out + "}";
}

}  // namespace cape::server
