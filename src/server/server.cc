#include "server/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/string_util.h"

namespace cape::server {

Catalog MakeServingCatalog(const Engine& engine, const std::string& table_name) {
  Catalog catalog;
  catalog.RegisterOrReplaceTable(table_name, engine.table());
  return catalog;
}

// ---------------------------------------------------------------------------
// ServerHarness

ServerHarness::ServerHarness(const Engine* engine, ServerOptions options)
    : pool_(options.num_workers < 1 ? 1 : options.num_workers),
      scheduler_(std::make_unique<RequestScheduler>(
          engine, MakeServingCatalog(*engine, options.table_name), &pool_,
          options.scheduler, options.mutable_engine)) {}

ServerHarness::~ServerHarness() { Shutdown(); }

void ServerHarness::Shutdown() { scheduler_->Shutdown(); }

void ServerHarness::CallAsync(const std::string& line,
                              RequestScheduler::ResponseCallback done) {
  Result<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    Response response;
    response.outcome = Outcome::kError;
    response.error = parsed.status().message();
    done(response);
    return;
  }
  scheduler_->Submit(std::move(*parsed), std::move(done));
}

Response ServerHarness::Call(const std::string& line) {
  struct Latch {
    Mutex mu;
    CondVar cv;
    bool done CAPE_GUARDED_BY(mu) = false;
    Response response CAPE_GUARDED_BY(mu);
  };
  auto latch = std::make_shared<Latch>();
  CallAsync(line, [latch](const Response& response) {
    MutexLock lock(latch->mu);
    latch->response = response;
    latch->done = true;
    latch->cv.NotifyAll();
  });
  MutexLock lock(latch->mu);
  while (!latch->done) latch->cv.Wait(latch->mu);
  return latch->response;
}

// ---------------------------------------------------------------------------
// CapeServer

/// One TCP client. The read buffer is only touched by the IO task; fd and
/// closed are shared with serving workers writing responses, so writes and
/// closes are serialized by `mu` — a response raced by a disconnect is
/// dropped, never written to a reused descriptor.
struct CapeServer::Connection {
  Mutex mu;
  int fd CAPE_GUARDED_BY(mu) = -1;
  bool closed CAPE_GUARDED_BY(mu) = false;
  std::string read_buffer;  // IO task only

  void Close() CAPE_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (!closed) {
      closed = true;
      ::close(fd);
    }
  }
};

CapeServer::CapeServer(const Engine* engine, ServerOptions options)
    : options_(std::move(options)),
      // +1: the IO loop permanently occupies one worker.
      pool_((options_.num_workers < 1 ? 1 : options_.num_workers) + 1),
      scheduler_(std::make_unique<RequestScheduler>(
          engine, MakeServingCatalog(*engine, options_.table_name), &pool_,
          options_.scheduler, options_.mutable_engine)) {}

CapeServer::~CapeServer() { Stop(); }

Status CapeServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind/listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe(): " + std::string(strerror(errno)));
  }

  {
    MutexLock lock(io_mu_);
    io_running_ = true;
  }
  started_ = true;
  pool_.Submit([this] { IoLoop(); });
  return Status::OK();
}

void CapeServer::ProcessBuffered(const std::shared_ptr<Connection>& conn) {
  size_t newline;
  while ((newline = conn->read_buffer.find('\n')) != std::string::npos) {
    std::string line = conn->read_buffer.substr(0, newline);
    conn->read_buffer.erase(0, newline + 1);
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    if (ToLowerAscii(trimmed) == "quit") {
      conn->Close();
      return;
    }
    Result<Request> parsed = ParseRequestLine(line);
    if (!parsed.ok()) {
      Response response;
      response.outcome = Outcome::kError;
      response.error = parsed.status().message();
      WriteResponse(conn, response);
      continue;
    }
    scheduler_->Submit(std::move(*parsed), [conn](const Response& response) {
      WriteResponse(conn, response);
    });
  }
}

void CapeServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                               const Response& response) {
  const std::string line = RenderResponse(response) + "\n";
  MutexLock lock(conn->mu);
  if (conn->closed) return;  // client went away first; the response is dropped
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(conn->fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn->closed = true;
      ::close(conn->fd);
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void CapeServer::IoLoop() {
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    // Compact out connections the client or a failed write closed.
    std::vector<std::shared_ptr<Connection>> live;
    for (const auto& conn : connections) {
      MutexLock lock(conn->mu);
      if (conn->closed) continue;
      fds.push_back(pollfd{conn->fd, POLLIN, 0});
      live.push_back(conn);
    }
    connections = std::move(live);

    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/-1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      // One read after POLLIN cannot block and drains enough to re-arm.
      char drain[64];
      const ssize_t ignored = ::read(wake_pipe_[0], drain, sizeof(drain));
      (void)ignored;
      continue;  // re-check stop_requested_
    }
    if ((fds[1].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        auto conn = std::make_shared<Connection>();
        {
          MutexLock lock(conn->mu);
          conn->fd = client;
        }
        connections.push_back(std::move(conn));
      }
    }
    for (size_t i = 2; i < fds.size(); ++i) {
      const auto& conn = connections[i - 2];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(fds[i].fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        conn->Close();
        continue;
      }
      conn->read_buffer.append(buf, static_cast<size_t>(n));
      ProcessBuffered(conn);
    }
  }
  // Leave connections open: Stop() drains the scheduler first so in-flight
  // responses still reach their clients, then closes every descriptor.
  for (const auto& conn : connections) {
    MutexLock lock(io_mu_);
    draining_connections_.push_back(conn);
  }
  MutexLock lock(io_mu_);
  io_running_ = false;
  io_done_cv_.NotifyAll();
}

void CapeServer::Stop() {
  if (!started_) {
    scheduler_->Shutdown();
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  const ssize_t ignored = ::write(wake_pipe_[1], "x", 1);
  (void)ignored;
  {
    MutexLock lock(io_mu_);
    while (io_running_) io_done_cv_.Wait(io_mu_);
  }
  // Drain: every admitted request reaches its terminal response and is
  // written to its (still open) connection.
  scheduler_->Shutdown();
  std::vector<std::shared_ptr<Connection>> to_close;
  {
    MutexLock lock(io_mu_);
    to_close.swap(draining_connections_);
  }
  for (const auto& conn : to_close) conn->Close();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  started_ = false;
}

}  // namespace cape::server
