#include "server/scheduler.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/string_util.h"
#include "relational/csv.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace cape::server {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Deadline::Clock::now().time_since_epoch())
      .count();
}

std::string SchedulerStatsJson(const RequestScheduler::Stats& s) {
  std::string out = "{";
  out += "\"submitted\":" + std::to_string(s.submitted);
  out += ",\"ok\":" + std::to_string(s.ok);
  out += ",\"degraded\":" + std::to_string(s.degraded);
  out += ",\"truncated\":" + std::to_string(s.truncated);
  out += ",\"shed\":" + std::to_string(s.shed);
  out += ",\"overloaded\":" + std::to_string(s.overloaded);
  out += ",\"retry_after\":" + std::to_string(s.retry_after);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += ",\"peak_queued\":" + std::to_string(s.peak_queued);
  return out + "}";
}

std::string EngineStatsJson(const RunStats& s) {
  std::string out = "{";
  out += "\"serve_requests\":" + std::to_string(s.serve_requests);
  out += ",\"serve_rejected\":" + std::to_string(s.serve_rejected);
  out += ",\"serve_shed\":" + std::to_string(s.serve_shed);
  out += ",\"serve_deadline_truncated\":" + std::to_string(s.serve_deadline_truncated);
  out += ",\"patterns_mined\":" + std::to_string(s.patterns_mined);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  out += ",\"page_hits\":" + std::to_string(s.page_hits);
  out += ",\"page_misses\":" + std::to_string(s.page_misses);
  out += ",\"page_evictions\":" + std::to_string(s.page_evictions);
  out += ",\"page_bytes_pinned\":" + std::to_string(s.page_bytes_pinned);
  out += ",\"maint_appends\":" + std::to_string(s.maint_appends);
  out += ",\"maint_rows_appended\":" + std::to_string(s.maint_rows_appended);
  out += ",\"maint_patterns_revalidated\":" + std::to_string(s.maint_patterns_revalidated);
  out += ",\"maint_patterns_retained\":" + std::to_string(s.maint_patterns_retained);
  out += ",\"maint_full_remines\":" + std::to_string(s.maint_full_remines);
  return out + "}";
}

/// True when the trimmed statement starts with the APPEND verb ("append"
/// alone or followed by whitespace; the remainder is the CSV payload).
bool IsAppendStatement(std::string_view statement) {
  std::string_view s = TrimWhitespace(statement);
  if (s.size() < 6) return false;
  static constexpr std::string_view kVerb = "append";
  for (size_t i = 0; i < kVerb.size(); ++i) {
    const char c = s[i];
    const char lower = c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
    if (lower != kVerb[i]) return false;
  }
  return s.size() == 6 || s[6] == ' ' || s[6] == '\t' || s[6] == '\n' || s[6] == '\r';
}

}  // namespace

RequestScheduler::RequestScheduler(const Engine* engine, Catalog catalog, ThreadPool* pool,
                                   SchedulerConfig config, Engine* mutable_engine)
    : engine_(engine),
      mutable_engine_(mutable_engine),
      catalog_(std::move(catalog)),
      pool_(pool),
      config_(config),
      admission_(config.admission) {
  MutexLock lock(mu_);
  max_sessions_ =
      config_.num_sessions > 0 ? config_.num_sessions : pool_->num_threads() + 1;
}

RequestScheduler::~RequestScheduler() { Shutdown(); }

void RequestScheduler::Submit(Request request, ResponseCallback done) {
  const int64_t now_ns = NowNanos();
  Response rejection;
  rejection.id = request.id;
  {
    MutexLock lock(mu_);
    ++stats_.submitted;
    if (!draining_) {
      const AdmissionDecision decision = admission_.Admit(request.tenant, now_ns);
      if (decision.kind == AdmissionDecision::Kind::kAdmit) {
        Pending pending;
        pending.deadline_budget_ms =
            request.deadline_ms > 0
                ? (request.deadline_ms < config_.max_deadline_ms ? request.deadline_ms
                                                                 : config_.max_deadline_ms)
                : config_.default_deadline_ms;
        pending.deadline = Deadline::AfterMillis(pending.deadline_budget_ms);
        pending.enqueue_ns = now_ns;
        pending.request = std::move(request);
        pending.done = std::move(done);
        queue_.push_back(std::move(pending));
        ++inflight_;
        if (static_cast<int64_t>(queue_.size()) > stats_.peak_queued) {
          stats_.peak_queued = static_cast<int64_t>(queue_.size());
        }
        pool_->Submit([this] { RunOne(); });
        return;
      }
      rejection.outcome = decision.kind == AdmissionDecision::Kind::kRetryAfter
                              ? Outcome::kRetryAfter
                              : Outcome::kOverloaded;
      if (decision.kind == AdmissionDecision::Kind::kRetryAfter) {
        rejection.retry_after_ms = decision.retry_after_ms;
      }
    } else {
      // Draining: reject instead of queueing work that would outlive the
      // server. OVERLOADED tells well-behaved clients to back off.
      rejection.outcome = Outcome::kOverloaded;
    }
    if (rejection.outcome == Outcome::kRetryAfter) {
      ++stats_.retry_after;
    } else {
      ++stats_.overloaded;
    }
  }
  engine_->RecordServeCounters(/*requests=*/0, /*rejected=*/1, /*shed=*/0,
                               /*deadline_truncated=*/0);
  done(rejection);
}

std::unique_ptr<ExplainSession> RequestScheduler::AcquireSession() {
  MutexLock lock(mu_);
  while (free_sessions_.empty() && sessions_outstanding_ >= max_sessions_) {
    session_cv_.Wait(mu_);
  }
  ++sessions_outstanding_;
  if (!free_sessions_.empty()) {
    std::unique_ptr<ExplainSession> session = std::move(free_sessions_.back());
    free_sessions_.pop_back();
    return session;
  }
  Result<ExplainSession> fresh = engine_->MakeExplainSession();
  if (!fresh.ok()) {
    // Only possible when the engine has no patterns — a setup error surfaced
    // per-request as a structured kError by Execute.
    --sessions_outstanding_;
    session_cv_.NotifyOne();
    return nullptr;
  }
  return std::make_unique<ExplainSession>(std::move(fresh).ValueOrDie());
}

void RequestScheduler::ReleaseSession(std::unique_ptr<ExplainSession> session) {
  MutexLock lock(mu_);
  --sessions_outstanding_;
  if (session != nullptr) free_sessions_.push_back(std::move(session));
  session_cv_.NotifyOne();
}

void RequestScheduler::RunOne() {
  Pending pending;
  std::function<void()> hook;
  bool degraded = false;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return;  // defensive: one task is submitted per entry
    pending = std::move(queue_.front());
    queue_.pop_front();
    hook = execution_hook_;
    degraded = config_.degrade_queue_depth > 0 &&
               static_cast<int>(queue_.size()) >= config_.degrade_queue_depth;
  }

  // Overload shedding: work whose deadline already passed while queued is
  // answered with a structured rejection instead of burning a worker on a
  // result nobody is waiting for.
  if (pending.deadline.Expired()) {
    Response response;
    response.id = pending.request.id;
    response.outcome = Outcome::kShed;
    Finish(&pending, std::move(response));
    return;
  }

  if (hook) hook();

  if (IsAppendStatement(pending.request.statement)) {
    AcquireWriteGate();
    Response response = ExecuteAppend(pending);
    if (response.outcome == Outcome::kOk) {
      // The append replaced the engine's pattern set; pooled sessions hold a
      // snapshot of the old one. Drop them so later requests explain against
      // the upgraded patterns. (No session is outstanding: sessions are only
      // held under the read gate, which the write gate excludes.)
      MutexLock lock(mu_);
      free_sessions_.clear();
    }
    ReleaseWriteGate();
    Finish(&pending, std::move(response));
    return;
  }

  AcquireReadGate();
  std::unique_ptr<ExplainSession> session = AcquireSession();
  Response response = Execute(pending, session.get(), degraded);
  ReleaseSession(std::move(session));
  ReleaseReadGate();
  Finish(&pending, std::move(response));
}

void RequestScheduler::AcquireReadGate() {
  MutexLock lock(mu_);
  while (writer_active_ || writers_waiting_ > 0) gate_cv_.Wait(mu_);
  ++active_readers_;
}

void RequestScheduler::ReleaseReadGate() {
  MutexLock lock(mu_);
  if (--active_readers_ == 0) gate_cv_.NotifyAll();
}

void RequestScheduler::AcquireWriteGate() {
  MutexLock lock(mu_);
  ++writers_waiting_;
  while (writer_active_ || active_readers_ > 0) gate_cv_.Wait(mu_);
  --writers_waiting_;
  writer_active_ = true;
}

void RequestScheduler::ReleaseWriteGate() {
  MutexLock lock(mu_);
  writer_active_ = false;
  gate_cv_.NotifyAll();
}

Response RequestScheduler::ExecuteAppend(const Pending& pending) {
  Response response;
  response.id = pending.request.id;
  try {
    if (mutable_engine_ == nullptr) {
      response.outcome = Outcome::kError;
      response.error = "APPEND rejected: server is read-only";
      return response;
    }
    std::string_view rest = TrimWhitespace(pending.request.statement);
    rest.remove_prefix(6);  // the verb; IsAppendStatement vetted it
    std::string payload(TrimWhitespace(rest));
    if (payload.empty()) {
      response.outcome = Outcome::kError;
      response.error = "APPEND requires CSV rows after the verb";
      return response;
    }
    // Wire format: one statement line, ';' separates rows. Parse against the
    // engine schema (no header, no inference) so a malformed row rejects the
    // whole batch before anything is appended.
    for (char& c : payload) {
      if (c == ';') c = '\n';
    }
    CsvReadOptions options;
    options.has_header = false;
    options.schema = std::make_shared<Schema>(*mutable_engine_->table()->schema());
    Result<TablePtr> parsed = ReadCsvString(payload, options);
    if (!parsed.ok()) {
      response.outcome = Outcome::kError;
      response.error = parsed.status().message();
      return response;
    }
    const TablePtr& delta = *parsed;
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(delta->num_rows()));
    for (int64_t r = 0; r < delta->num_rows(); ++r) rows.push_back(delta->GetRow(r));

    const Status status = mutable_engine_->AppendAndRemine(rows);
    if (status.IsStop()) {
      // Rows are in, maintenance was cut short: the pattern set is stale but
      // intact, and the next append (or mine) catches up. Surface that as a
      // truncated success, mirroring deadline-truncated explains.
      response.outcome = Outcome::kTruncated;
      response.payload_json = "{\"rows_appended\":" + std::to_string(rows.size()) +
                              ",\"patterns_stale\":true}";
      return response;
    }
    if (!status.ok()) {
      response.outcome = Outcome::kError;
      response.error = status.message();
      return response;
    }
    const RunStats stats = mutable_engine_->run_stats();
    std::string out = "{";
    out += "\"rows_appended\":" + std::to_string(rows.size());
    out += ",\"total_rows\":" + std::to_string(mutable_engine_->table()->num_rows());
    out += ",\"patterns\":" + std::to_string(stats.patterns_mined);
    out += ",\"maint_appends\":" + std::to_string(stats.maint_appends);
    out += ",\"maint_patterns_revalidated\":" +
           std::to_string(stats.maint_patterns_revalidated);
    out += ",\"maint_patterns_retained\":" + std::to_string(stats.maint_patterns_retained);
    out += ",\"maint_full_remines\":" + std::to_string(stats.maint_full_remines);
    out += "}";
    response.outcome = Outcome::kOk;
    response.payload_json = std::move(out);
    return response;
  } catch (const std::exception& e) {
    response.outcome = Outcome::kError;
    response.error = std::string("unexpected exception: ") + e.what();
    return response;
  } catch (...) {
    response.outcome = Outcome::kError;
    response.error = "unexpected non-standard exception";
    return response;
  }
}

Response RequestScheduler::Execute(const Pending& pending, ExplainSession* session,
                                   bool degraded) {
  Response response;
  response.id = pending.request.id;
  // The zero-crash guarantee for serving threads: anything an execution path
  // throws (ParallelFor converts worker exceptions to Status, but the
  // serving layer defends in depth) becomes a structured error response.
  try {
    const std::string verb = ToLowerAscii(TrimWhitespace(pending.request.statement));
    if (verb == "ping" || verb == "ping;") {
      response.outcome = Outcome::kOk;
      response.payload_json = "\"pong\"";
      return response;
    }
    if (verb == "stats" || verb == "stats;") {
      response.outcome = Outcome::kOk;
      response.payload_json = "{\"engine\":" + EngineStatsJson(engine_->run_stats()) +
                              ",\"scheduler\":" + SchedulerStatsJson(stats()) + "}";
      return response;
    }

    Result<Statement> parsed = ParseStatement(pending.request.statement);
    if (!parsed.ok()) {
      response.outcome = Outcome::kError;
      response.error = parsed.status().message();
      return response;
    }

    if (const auto* cmd = std::get_if<ExplainWhyCommand>(&*parsed)) {
      if (session == nullptr) {
        response.outcome = Outcome::kError;
        response.error = "engine has no mined patterns";
        return response;
      }
      Result<UserQuestion> question = BuildQuestion(catalog_, *cmd);
      if (!question.ok()) {
        response.outcome = Outcome::kError;
        response.error = question.status().message();
        return response;
      }
      int top_k = pending.request.top_k > 0 ? static_cast<int>(pending.request.top_k)
                  : cmd->top_k.has_value()  ? static_cast<int>(*cmd->top_k)
                                            : config_.top_k;
      const bool capped = degraded && top_k > config_.degraded_top_k;
      if (capped) top_k = config_.degraded_top_k;

      const int64_t remaining_ms = pending.deadline.RemainingNanos() / 1000000;
      ExplainConfig& session_config = session->config();
      session_config.top_k = top_k;
      session_config.deadline_ms = remaining_ms > 1 ? remaining_ms : 1;
      session_config.cancel_token = CancellationToken();
      session_config.num_threads = 1;  // concurrency comes from many requests

      Result<ExplainResult> result = session->Explain(*question);
      if (!result.ok()) {
        response.outcome = Outcome::kError;
        response.error = result.status().message();
        return response;
      }
      response.payload_json =
          ExplanationsToJson(result->explanations, *engine_->table()->schema());
      response.outcome = result->partial ? Outcome::kTruncated
                         : capped        ? Outcome::kDegraded
                                         : Outcome::kOk;
      return response;
    }

    const auto& query = std::get<SelectQuery>(*parsed);
    StopToken stop(pending.deadline);
    Result<TablePtr> table = ExecuteSelect(catalog_, query, &stop);
    if (!table.ok()) {
      response.outcome = Outcome::kError;
      response.error = table.status().message();
      return response;
    }
    response.outcome = degraded ? Outcome::kDegraded : Outcome::kOk;
    response.payload_json = TableToJson(**table);
    return response;
  } catch (const std::exception& e) {
    response.outcome = Outcome::kError;
    response.error = std::string("unexpected exception: ") + e.what();
    return response;
  } catch (...) {
    response.outcome = Outcome::kError;
    response.error = "unexpected non-standard exception";
    return response;
  }
}

void RequestScheduler::CountOutcome(Outcome outcome) {
  MutexLock lock(mu_);
  switch (outcome) {
    case Outcome::kOk:
      ++stats_.ok;
      break;
    case Outcome::kDegraded:
      ++stats_.degraded;
      break;
    case Outcome::kTruncated:
      ++stats_.truncated;
      break;
    case Outcome::kShed:
      ++stats_.shed;
      break;
    case Outcome::kOverloaded:
      ++stats_.overloaded;
      break;
    case Outcome::kRetryAfter:
      ++stats_.retry_after;
      break;
    case Outcome::kError:
      ++stats_.errors;
      break;
  }
}

void RequestScheduler::Finish(Pending* pending, Response response) {
  const int64_t now_ns = NowNanos();
  response.elapsed_ms = (now_ns - pending->enqueue_ns) / 1000000;
  CountOutcome(response.outcome);
  engine_->RecordServeCounters(
      /*requests=*/1, /*rejected=*/0,
      /*shed=*/response.outcome == Outcome::kShed ? 1 : 0,
      /*deadline_truncated=*/response.outcome == Outcome::kTruncated ? 1 : 0);
  // Post-paid debit: the request's wall occupancy and response bytes.
  admission_.Release(pending->request.tenant, now_ns,
                     static_cast<double>(now_ns - pending->enqueue_ns) / 1e6,
                     static_cast<int64_t>(response.payload_json.size()));
  pending->done(response);
  MutexLock lock(mu_);
  if (--inflight_ == 0) drain_cv_.NotifyAll();
}

void RequestScheduler::Shutdown() {
  MutexLock lock(mu_);
  draining_ = true;
  while (inflight_ > 0) drain_cv_.Wait(mu_);
}

RequestScheduler::Stats RequestScheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

int RequestScheduler::queue_depth() const {
  MutexLock lock(mu_);
  return static_cast<int>(queue_.size());
}

void RequestScheduler::SetExecutionHookForTest(std::function<void()> hook) {
  MutexLock lock(mu_);
  execution_hook_ = std::move(hook);
}

}  // namespace cape::server
