#ifndef CAPE_SERVER_PROTOCOL_H_
#define CAPE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "explain/explanation.h"
#include "relational/table.h"

/// Wire protocol of the CAPE explanation server (DESIGN.md §13): one request
/// per line, one single-line JSON object per response, over any byte stream
/// (TCP in CapeServer, an in-process call in ServerHarness). Line protocols
/// keep the server scriptable with nothing fancier than netcat:
///
///   $ nc localhost 7077
///   [id=1 tenant=alice deadline_ms=250 top_k=3] EXPLAIN WHY count(*) IS LOW
///       FOR author = 'AX', venue = 'SIGKDD', year = 2007 FROM pub
///   {"id":1,"outcome":"ok","elapsed_ms":12,"result":[...]}
///
/// The bracketed header is optional and every key in it is optional;
/// requests without an id echo id 0. Statements are the SQL layer's
/// grammar (EXPLAIN WHY / SELECT) plus the server verbs STATS and PING.

namespace cape::server {

/// A parsed request line: routing header + statement text.
struct Request {
  int64_t id = 0;             // echoed verbatim in the response
  std::string tenant = "default";
  int64_t deadline_ms = 0;    // 0 = server default
  int64_t top_k = 0;          // 0 = statement / engine default
  std::string statement;      // text after the header, unparsed
};

/// Parses `[k=v ...] statement`. InvalidArgument on unknown header keys,
/// malformed values, or an empty statement — admission must never queue a
/// request it cannot at least route.
Result<Request> ParseRequestLine(const std::string& line);

/// Every terminal state of a request. The protocol guarantee (and the chaos
/// harness's core assertion) is that each submitted request ends in exactly
/// one of these: an answer (kOk, kDegraded), a truncated answer
/// (kTruncated), or a structured rejection (kShed, kOverloaded, kRetryAfter,
/// kError).
enum class Outcome : int {
  kOk = 0,         // full answer
  kDegraded = 1,   // answer computed under a degradation tier (reduced top-k)
  kTruncated = 2,  // deadline hit mid-execution; best results so far
  kShed = 3,       // admitted, but the deadline expired before execution
  kOverloaded = 4, // rejected at admission: global queue full
  kRetryAfter = 5, // rejected at admission: tenant budget exhausted
  kError = 6,      // parse/validation/execution error (structured, not a crash)
};

const char* OutcomeToString(Outcome outcome);

/// True when the outcome carries (possibly truncated) results.
inline bool IsAnswer(Outcome outcome) {
  return outcome == Outcome::kOk || outcome == Outcome::kDegraded ||
         outcome == Outcome::kTruncated;
}

/// A response ready for serialization. `payload_json` is a pre-rendered
/// JSON value (array or object) injected verbatim as the "result" field.
struct Response {
  int64_t id = 0;
  Outcome outcome = Outcome::kError;
  std::string error;           // human-readable, only when outcome == kError
  int64_t retry_after_ms = -1; // >= 0 only when outcome == kRetryAfter
  int64_t elapsed_ms = 0;      // queue + execution wall time
  std::string payload_json;    // empty = no "result" field
};

/// Single-line JSON rendering (no trailing newline).
std::string RenderResponse(const Response& response);

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Renders a Value as a JSON scalar (null / number / escaped string).
std::string ValueToJson(const Value& value);

/// Payload builders.
std::string ExplanationsToJson(const std::vector<Explanation>& explanations,
                               const Schema& schema);
std::string TableToJson(const Table& table, int64_t max_rows = 1000);

}  // namespace cape::server

#endif  // CAPE_SERVER_PROTOCOL_H_
