#ifndef CAPE_SERVER_SCHEDULER_H_
#define CAPE_SERVER_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "relational/catalog.h"
#include "server/admission.h"
#include "server/protocol.h"

/// The serving core (DESIGN.md §13): turns parsed Requests into Responses
/// on a shared ThreadPool, with admission control in front, per-request
/// deadlines through the engine's cooperative-stop plumbing, a degradation
/// tier under pressure, and drain-based shutdown behind.
///
/// The invariant everything here defends: every Submit() ends in exactly one
/// callback invocation, whatever happens in between — rejection, shedding,
/// deadline truncation, execution error, injected fault, or shutdown.

namespace cape::server {

struct SchedulerConfig {
  AdmissionConfig admission;

  /// Deadline applied when the request does not carry one; requests may ask
  /// for less but are clamped to max_deadline_ms.
  int64_t default_deadline_ms = 2000;
  int64_t max_deadline_ms = 60000;

  /// top_k when neither the request header nor the statement names one.
  int top_k = 10;

  /// Degradation tier: once the backlog reaches this depth, requests are
  /// answered with top_k capped to `degraded_top_k` (outcome "degraded") —
  /// cheaper answers drain the queue faster than full ones. <= 0 disables.
  int degrade_queue_depth = 0;
  int degraded_top_k = 3;

  /// Pooled ExplainSessions (each memoizes γ agg tables across the requests
  /// it serves; one is held per executing request). <= 0 sizes to the pool's
  /// worker count + 1.
  int num_sessions = 0;
};

class RequestScheduler {
 public:
  /// Cumulative terminal-outcome counters; `submitted` equals the sum of the
  /// outcome counters once the scheduler is idle.
  struct Stats {
    int64_t submitted = 0;
    int64_t ok = 0;
    int64_t degraded = 0;
    int64_t truncated = 0;
    int64_t shed = 0;
    int64_t overloaded = 0;
    int64_t retry_after = 0;
    int64_t errors = 0;
    int64_t peak_queued = 0;
  };

  using ResponseCallback = std::function<void(const Response&)>;

  /// `engine` must have patterns mined/loaded and stay immutable (only its
  /// const, re-entrant surface is used); `catalog` names the tables SQL
  /// statements may reference; `pool` runs the requests. Neither engine nor
  /// pool is owned; both must outlive the scheduler.
  ///
  /// `mutable_engine`, when non-null, must point at the same engine and
  /// enables the APPEND verb ("APPEND <csv-rows>", ';' separating rows):
  /// rows are appended and patterns incrementally re-mined via
  /// Engine::AppendAndRemine. Appends run under a write-preferring gate that
  /// excludes every concurrent Execute (the engine's mutating surface is not
  /// re-entrant); readers admitted after the append observe the grown table
  /// and the upgraded pattern set. A null mutable_engine keeps the server
  /// read-only: APPEND answers with a structured error.
  RequestScheduler(const Engine* engine, Catalog catalog, ThreadPool* pool,
                   SchedulerConfig config, Engine* mutable_engine = nullptr);

  /// Drains (Shutdown) before destruction.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Never blocks. Either rejects synchronously (callback runs on the
  /// calling thread before Submit returns) or enqueues, in which case the
  /// callback runs exactly once later on a pool worker. Callbacks must be
  /// thread-safe against other responses and must not block for long — they
  /// run on serving threads.
  void Submit(Request request, ResponseCallback done) CAPE_EXCLUDES(mu_);

  /// Stops admitting (new Submits reject OVERLOADED), waits for every
  /// in-flight request to reach its terminal callback, and returns.
  /// Idempotent. Must not be called from a pool worker.
  void Shutdown() CAPE_EXCLUDES(mu_);

  Stats stats() const CAPE_EXCLUDES(mu_);
  int queue_depth() const CAPE_EXCLUDES(mu_);

  /// Test hook, run on the worker just before a request executes (after the
  /// shed check). Lets tests hold requests in the executing state to fill
  /// the queue deterministically. Not for production use.
  void SetExecutionHookForTest(std::function<void()> hook) CAPE_EXCLUDES(mu_);

 private:
  struct Pending {
    Request request;
    ResponseCallback done;
    Deadline deadline;
    int64_t enqueue_ns = 0;
    int64_t deadline_budget_ms = 0;
  };

  /// Pops and fully serves one queued request (pool task body).
  void RunOne() CAPE_EXCLUDES(mu_);

  /// Executes the statement of `pending` on `session`; returns the terminal
  /// response (never throws; all errors become Outcome::kError).
  Response Execute(const Pending& pending, ExplainSession* session, bool degraded);

  /// Serves one APPEND statement (caller holds the write gate). Parses the
  /// CSV payload against the engine schema, appends all-or-nothing, and
  /// re-mines incrementally. kOk carries the maintenance counters; a
  /// deadline/cancel stop maps to kTruncated (rows appended, patterns stale
  /// until the next successful maintenance pass).
  Response ExecuteAppend(const Pending& pending);

  /// Reader/writer gate between Execute (shared) and ExecuteAppend
  /// (exclusive). Write-preferring: a waiting append blocks new readers so a
  /// steady SELECT stream cannot starve it. Sessions are only held while the
  /// read side is held, so a writer never waits on a parked session.
  void AcquireReadGate() CAPE_EXCLUDES(mu_);
  void ReleaseReadGate() CAPE_EXCLUDES(mu_);
  void AcquireWriteGate() CAPE_EXCLUDES(mu_);
  void ReleaseWriteGate() CAPE_EXCLUDES(mu_);

  /// Delivers `response`, debits admission, bumps counters. The single
  /// terminal path for admitted requests.
  void Finish(Pending* pending, Response response) CAPE_EXCLUDES(mu_);

  void CountOutcome(Outcome outcome) CAPE_EXCLUDES(mu_);

  std::unique_ptr<ExplainSession> AcquireSession() CAPE_EXCLUDES(mu_);
  void ReleaseSession(std::unique_ptr<ExplainSession> session) CAPE_EXCLUDES(mu_);

  const Engine* const engine_;
  Engine* const mutable_engine_;
  const Catalog catalog_;
  ThreadPool* const pool_;
  const SchedulerConfig config_;
  AdmissionController admission_;

  mutable Mutex mu_;
  CondVar drain_cv_;
  CondVar session_cv_;
  CondVar gate_cv_;
  int active_readers_ CAPE_GUARDED_BY(mu_) = 0;
  int writers_waiting_ CAPE_GUARDED_BY(mu_) = 0;
  bool writer_active_ CAPE_GUARDED_BY(mu_) = false;
  std::deque<Pending> queue_ CAPE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<ExplainSession>> free_sessions_ CAPE_GUARDED_BY(mu_);
  int sessions_outstanding_ CAPE_GUARDED_BY(mu_) = 0;
  int max_sessions_ CAPE_GUARDED_BY(mu_) = 0;
  int inflight_ CAPE_GUARDED_BY(mu_) = 0;
  bool draining_ CAPE_GUARDED_BY(mu_) = false;
  Stats stats_ CAPE_GUARDED_BY(mu_);
  std::function<void()> execution_hook_ CAPE_GUARDED_BY(mu_);
};

}  // namespace cape::server

#endif  // CAPE_SERVER_SCHEDULER_H_
