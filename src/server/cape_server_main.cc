// The `cape_server` binary: a TCP explanation server over a relation loaded
// from CSV (or the synthetic DBLP dataset when no CSV is given). Quickstart:
//
//   $ cape_server --port 7077 --rows 5000
//   cape_server: mined 412 patterns over 5000 rows; listening on 127.0.0.1:7077
//   $ printf '[id=1 deadline_ms=500 top_k=3] EXPLAIN WHY count(*) IS LOW
//       FOR author = "AX", venue = "SIGKDD", year = 2007 FROM pub\n' | nc 127.0.0.1 7077
//   {"id":1,"outcome":"ok","elapsed_ms":9,"result":[...]}
//
// The server reads stdin; EOF or a "quit" line triggers graceful shutdown
// (drain in-flight requests, then close connections).

#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "server/server.h"

namespace {

struct Options {
  std::string csv_path;
  std::string table_name = "pub";
  int port = 7077;
  int64_t rows = 5000;
  int workers = 4;
  bool writable = false;
};

int Fail(const std::string& message) {
  std::cerr << "cape_server: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Fail("--csv needs a path");
      options.csv_path = v;
    } else if (arg == "--table") {
      const char* v = next();
      if (v == nullptr) return Fail("--table needs a name");
      options.table_name = v;
    } else if (arg == "--port" || arg == "--rows" || arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Fail(arg + " needs a value");
      auto parsed = cape::ParseInt64(v);
      if (!parsed.ok()) return Fail(arg + ": " + parsed.status().ToString());
      if (arg == "--port") {
        options.port = static_cast<int>(*parsed);
      } else if (arg == "--rows") {
        options.rows = *parsed;
      } else {
        options.workers = static_cast<int>(*parsed);
      }
    } else if (arg == "--writable") {
      options.writable = true;
    } else {
      return Fail(
          "unknown flag '" + arg +
          "' (flags: --csv PATH --table NAME --port N --rows N --workers N --writable)");
    }
  }

  cape::Result<cape::Engine> engine_result = [&]() -> cape::Result<cape::Engine> {
    if (!options.csv_path.empty()) {
      return cape::Engine::FromCsvFile(options.csv_path);
    }
    cape::DblpOptions dblp;
    dblp.num_rows = options.rows;
    CAPE_ASSIGN_OR_RETURN(cape::TablePtr table, cape::GenerateDblp(dblp));
    return cape::Engine::FromTable(std::move(table));
  }();
  if (!engine_result.ok()) return Fail(engine_result.status().ToString());
  cape::Engine engine = std::move(engine_result).ValueOrDie();

  if (options.csv_path.empty()) {
    // DBLP-like publication counts are small; use the thresholds the paper
    // recommends for that regime (as examples/quickstart.cpp does).
    cape::MiningConfig& mining = engine.mining_config();
    mining.max_pattern_size = 3;
    mining.local_gof_threshold = 0.2;
    mining.local_support_threshold = 3;
    mining.global_confidence_threshold = 0.3;
    mining.global_support_threshold = 10;
    mining.agg_functions = {cape::AggFunc::kCount};
    mining.excluded_attrs = {"pubid"};
  }
  cape::Status mined = engine.MinePatterns();
  if (!mined.ok()) return Fail(mined.ToString());

  cape::server::ServerOptions server_options;
  server_options.table_name = options.table_name;
  server_options.port = options.port;
  server_options.num_workers = options.workers;
  // --writable enables the APPEND verb; the default stays read-only so a
  // plain serving deployment cannot be mutated over the wire.
  if (options.writable) server_options.mutable_engine = &engine;
  cape::server::CapeServer server(&engine, server_options);
  cape::Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::cout << "cape_server: mined " << engine.patterns().size() << " patterns over "
            << engine.table()->num_rows() << " rows; listening on 127.0.0.1:"
            << server.port() << "\n"
            << "cape_server: EOF or 'quit' on stdin shuts down gracefully\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    if (std::string(cape::TrimWhitespace(line)) == "quit") break;
  }
  std::cout << "cape_server: draining...\n";
  server.Stop();
  std::cout << "cape_server: done\n";
  return 0;
}
