#include "server/admission.h"

#include <algorithm>

namespace cape::server {

namespace {
constexpr double kNanosPerSecond = 1e9;
constexpr double kMillisPerSecond = 1e3;
}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config) : config_(config) {}

void AdmissionController::RefillLocked(TenantState* tenant, int64_t now_ns) const {
  if (!tenant->initialized) {
    // A cold tenant starts with a full burst of both budgets.
    tenant->time_tokens_ms = config_.tenant_time_ms_per_sec * config_.burst_seconds;
    tenant->byte_tokens = config_.tenant_bytes_per_sec * config_.burst_seconds;
    tenant->last_refill_ns = now_ns;
    tenant->initialized = true;
    return;
  }
  const double elapsed_sec =
      static_cast<double>(now_ns - tenant->last_refill_ns) / kNanosPerSecond;
  if (elapsed_sec <= 0) return;
  tenant->last_refill_ns = now_ns;
  tenant->time_tokens_ms =
      std::min(tenant->time_tokens_ms + config_.tenant_time_ms_per_sec * elapsed_sec,
               config_.tenant_time_ms_per_sec * config_.burst_seconds);
  tenant->byte_tokens =
      std::min(tenant->byte_tokens + config_.tenant_bytes_per_sec * elapsed_sec,
               config_.tenant_bytes_per_sec * config_.burst_seconds);
}

AdmissionDecision AdmissionController::Admit(const std::string& tenant, int64_t now_ns) {
  MutexLock lock(mu_);
  if (in_system_ >= config_.max_in_system) {
    return AdmissionDecision{AdmissionDecision::Kind::kOverloaded, 0};
  }
  TenantState& state = tenants_[tenant];
  RefillLocked(&state, now_ns);
  if (config_.per_tenant_max_in_system > 0 &&
      state.in_system >= config_.per_tenant_max_in_system) {
    return AdmissionDecision{AdmissionDecision::Kind::kOverloaded, 0};
  }
  // Budget gates: a request is admitted while the bucket is non-negative —
  // overdraft from the previous debit is what makes admission cost-blind.
  // The retry hint is the time for the deepest deficit to refill to zero.
  double wait_sec = 0.0;
  if (config_.tenant_time_ms_per_sec > 0 && state.time_tokens_ms < 0) {
    wait_sec = std::max(wait_sec, -state.time_tokens_ms / config_.tenant_time_ms_per_sec);
  }
  if (config_.tenant_bytes_per_sec > 0 && state.byte_tokens < 0) {
    wait_sec = std::max(wait_sec, -state.byte_tokens / config_.tenant_bytes_per_sec);
  }
  if (wait_sec > 0) {
    const int64_t hint_ms = static_cast<int64_t>(wait_sec * kMillisPerSecond) + 1;
    return AdmissionDecision{AdmissionDecision::Kind::kRetryAfter, hint_ms};
  }
  ++in_system_;
  ++state.in_system;
  return AdmissionDecision{AdmissionDecision::Kind::kAdmit, 0};
}

void AdmissionController::Release(const std::string& tenant, int64_t now_ns,
                                  double time_spent_ms, int64_t bytes_out) {
  MutexLock lock(mu_);
  if (in_system_ > 0) --in_system_;
  TenantState& state = tenants_[tenant];
  RefillLocked(&state, now_ns);
  if (state.in_system > 0) --state.in_system;
  if (config_.tenant_time_ms_per_sec > 0) state.time_tokens_ms -= time_spent_ms;
  if (config_.tenant_bytes_per_sec > 0) {
    state.byte_tokens -= static_cast<double>(bytes_out);
  }
}

int AdmissionController::in_system() const {
  MutexLock lock(mu_);
  return in_system_;
}

}  // namespace cape::server
