#ifndef CAPE_SERVER_SERVER_H_
#define CAPE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "relational/catalog.h"
#include "server/protocol.h"
#include "server/scheduler.h"

/// The two front ends over RequestScheduler (DESIGN.md §13):
///
///  - ServerHarness: in-process, no sockets. Tests and the chaos bench talk
///    to the full serving stack (admission -> queue -> pool -> session ->
///    response) through plain function calls, so every robustness property
///    is testable without port allocation or socket flakiness.
///  - CapeServer: the TCP line-protocol server (`cape_server` binary). One
///    poll()-driven IO task multiplexes all connections; responses are
///    written by serving workers under a per-connection lock.

namespace cape::server {

struct ServerOptions {
  /// Name the engine's relation is registered under for SQL statements.
  std::string table_name = "pub";
  /// Serving workers (the harness/server owns its pool so scheduler traffic
  /// never competes with an unrelated Global() user's ParallelFor).
  int num_workers = 4;
  SchedulerConfig scheduler;
  /// TCP only: port to bind (0 = ephemeral, see CapeServer::port()).
  int port = 0;
  /// When set (must alias the ctor's engine), enables the APPEND verb:
  /// "APPEND <csv>;<csv>..." appends rows and incrementally re-mines,
  /// serialized against all concurrent reads by the scheduler's write gate.
  /// Null keeps the server read-only (APPEND returns a structured error).
  Engine* mutable_engine = nullptr;
};

/// In-process serving stack. The engine must have patterns mined/loaded;
/// only its const (re-entrant) surface is used.
class ServerHarness {
 public:
  ServerHarness(const Engine* engine, ServerOptions options);
  ~ServerHarness();

  ServerHarness(const ServerHarness&) = delete;
  ServerHarness& operator=(const ServerHarness&) = delete;

  /// Parses and serves one request line, blocking until its terminal
  /// response. Parse failures return an Outcome::kError response directly.
  Response Call(const std::string& line);

  /// Fire-and-forget form for concurrent load: `done` runs exactly once on
  /// a serving thread (or synchronously on rejection).
  void CallAsync(const std::string& line, RequestScheduler::ResponseCallback done);

  /// Rejects new requests, completes in-flight ones, and returns.
  void Shutdown();

  RequestScheduler& scheduler() { return *scheduler_; }

 private:
  ThreadPool pool_;
  std::unique_ptr<RequestScheduler> scheduler_;
};

/// TCP line-protocol server. Start() binds and spawns the IO loop as a pool
/// task; Stop() (or destruction) closes the listener, drains the scheduler,
/// and completes in-flight responses before closing connections.
class CapeServer {
 public:
  CapeServer(const Engine* engine, ServerOptions options);
  ~CapeServer();

  CapeServer(const CapeServer&) = delete;
  CapeServer& operator=(const CapeServer&) = delete;

  /// Binds, listens, and starts serving. IOError on bind/listen failure.
  Status Start();

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Graceful shutdown: stop accepting, drain, close. Idempotent.
  void Stop();

  RequestScheduler& scheduler() { return *scheduler_; }

 private:
  struct Connection;

  /// The poll() loop; runs as one long-lived pool task until Stop().
  void IoLoop();
  /// Consumes complete lines from `conn`'s read buffer, submitting each.
  void ProcessBuffered(const std::shared_ptr<Connection>& conn);
  /// Serializes and writes `response` on `conn` (worker thread, locked).
  static void WriteResponse(const std::shared_ptr<Connection>& conn,
                            const Response& response);

  const ServerOptions options_;
  ThreadPool pool_;
  std::unique_ptr<RequestScheduler> scheduler_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  Mutex io_mu_;
  CondVar io_done_cv_;
  bool io_running_ CAPE_GUARDED_BY(io_mu_) = false;
  /// Connections the IO loop handed over at exit, closed by Stop() after
  /// the scheduler drained.
  std::vector<std::shared_ptr<Connection>> draining_connections_ CAPE_GUARDED_BY(io_mu_);
};

/// Builds the single-table catalog both front ends register.
Catalog MakeServingCatalog(const Engine& engine, const std::string& table_name);

}  // namespace cape::server

#endif  // CAPE_SERVER_SERVER_H_
