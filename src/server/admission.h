#ifndef CAPE_SERVER_ADMISSION_H_
#define CAPE_SERVER_ADMISSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"

/// Admission control for the explanation server (DESIGN.md §13): every
/// request passes through here before it may queue. Two independent gates:
///
///  1. A global bound on requests in the system (queued + executing). When
///     full the request is rejected OVERLOADED — the bounded queue is what
///     keeps latency finite under any offered load.
///  2. Per-tenant token buckets over execution-time milliseconds and
///     response bytes. Budgets are post-paid: a request is admitted against
///     the current balance and its actual cost is debited on completion, so
///     a bucket can go into overdraft by at most one request — in exchange
///     admission never needs to predict a request's cost. An exhausted
///     bucket rejects RETRY_AFTER with the refill time as a hint.
///
/// All decisions take a caller-supplied monotonic timestamp so tests can
/// drive time explicitly.

namespace cape::server {

struct AdmissionConfig {
  /// Global cap on requests in the system (queued + executing).
  int max_in_system = 256;
  /// Per-tenant cap on requests in the system; <= 0 disables the gate.
  int per_tenant_max_in_system = 0;
  /// Per-tenant budgets, refilled continuously; <= 0 disables that bucket.
  double tenant_time_ms_per_sec = 0.0;
  double tenant_bytes_per_sec = 0.0;
  /// Bucket capacity = rate * burst_seconds (the burst a cold tenant may
  /// spend instantly).
  double burst_seconds = 2.0;
};

struct AdmissionDecision {
  enum class Kind : int { kAdmit = 0, kOverloaded = 1, kRetryAfter = 2 };
  Kind kind = Kind::kAdmit;
  /// For kRetryAfter: milliseconds until the limiting bucket is positive.
  int64_t retry_after_ms = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Decides admission for one request of `tenant` at monotonic time
  /// `now_ns`. On kAdmit the request occupies a system slot until Release().
  AdmissionDecision Admit(const std::string& tenant, int64_t now_ns) CAPE_EXCLUDES(mu_);

  /// Releases the slot taken by an admitted request and debits its actual
  /// cost against the tenant's buckets (post-paid; may overdraft). Must be
  /// called exactly once per kAdmit, with any outcome.
  void Release(const std::string& tenant, int64_t now_ns, double time_spent_ms,
               int64_t bytes_out) CAPE_EXCLUDES(mu_);

  /// Requests currently in the system (admitted, not yet released).
  int in_system() const CAPE_EXCLUDES(mu_);

 private:
  struct TenantState {
    double time_tokens_ms = 0.0;
    double byte_tokens = 0.0;
    int64_t last_refill_ns = 0;
    int in_system = 0;
    bool initialized = false;
  };

  /// Refills both buckets for elapsed time since the last refill.
  void RefillLocked(TenantState* tenant, int64_t now_ns) const CAPE_REQUIRES(mu_);

  const AdmissionConfig config_;
  mutable Mutex mu_;
  int in_system_ CAPE_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, TenantState> tenants_ CAPE_GUARDED_BY(mu_);
};

}  // namespace cape::server

#endif  // CAPE_SERVER_ADMISSION_H_
