#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace cape {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "AND",  "AS",    "ORDER",
      "ASC",    "DESC",  "LIMIT", "COUNT", "SUM",   "AVG",  "MIN",   "MAX",
      "EXPLAIN", "WHY",  "IS",    "LOW",   "HIGH",  "FOR",  "TOP",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;

    if (IsIdentStart(c)) {
      size_t begin = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      const std::string word = sql.substr(begin, i - begin);
      const std::string upper = ToUpperAscii(word);
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = ToLowerAscii(word);
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '"') {  // quoted identifier, "" escapes a quote
      ++i;
      std::string ident;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '"') {
          if (i + 1 < n && sql[i + 1] == '"') {
            ident.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        ident.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated quoted identifier at offset " +
                                       std::to_string(token.position));
      }
      token.type = TokenType::kIdentifier;
      token.text = std::move(ident);
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {  // string literal, '' escapes a quote
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t begin = i;
      if (c == '-') ++i;
      bool has_dot = false;
      bool has_exp = false;
      while (i < n) {
        const char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !has_exp && i + 1 < n) {
          has_exp = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      const std::string number = sql.substr(begin, i - begin);
      if (has_dot || has_exp) {
        CAPE_ASSIGN_OR_RETURN(token.double_value, ParseDouble(number));
        token.type = TokenType::kDouble;
      } else {
        CAPE_ASSIGN_OR_RETURN(token.int_value, ParseInt64(number));
        token.type = TokenType::kInteger;
      }
      token.text = number;
      tokens.push_back(std::move(token));
      continue;
    }

    // Multi-char operators first.
    auto starts_with = [&](const char* op) {
      return sql.compare(i, std::char_traits<char>::length(op), op) == 0;
    };
    const char* two_char_ops[] = {"<=", ">=", "!=", "<>"};
    bool matched = false;
    for (const char* op : two_char_ops) {
      if (starts_with(op)) {
        token.type = TokenType::kSymbol;
        token.text = (std::string(op) == "<>") ? "!=" : op;
        i += 2;
        tokens.push_back(std::move(token));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    if (std::string("(),;*=<>").find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }

    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cape
