#include "sql/parser.h"

#include "common/macros.h"
#include "sql/lexer.h"

namespace cape {

namespace {

/// Recursive-descent cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (Peek().IsKeyword("SELECT")) {
      CAPE_ASSIGN_OR_RETURN(SelectQuery q, ParseSelect());
      CAPE_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(q));
    }
    if (Peek().IsKeyword("EXPLAIN") || Peek().IsKeyword("WHY")) {
      CAPE_ASSIGN_OR_RETURN(ExplainWhyCommand c, ParseExplainWhy());
      CAPE_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(c));
    }
    return Error("expected SELECT or EXPLAIN WHY");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(const char* keyword_or_symbol) {
    if (Peek().IsKeyword(keyword_or_symbol) || Peek().IsSymbol(keyword_or_symbol)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().position) + ": " + message +
                                   (Peek().text.empty() ? "" : " (near '" + Peek().text + "')"));
  }

  Status Expect(const char* keyword_or_symbol) {
    if (!Accept(keyword_or_symbol)) {
      return Error(std::string("expected '") + keyword_or_symbol + "'");
    }
    return Status::OK();
  }

  Status ExpectEnd() {
    Accept(";");
    if (Peek().type != TokenType::kEnd) return Error("trailing input after statement");
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<Value> ExpectLiteral() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kString:
        Advance();
        return Value::String(token.text);
      case TokenType::kInteger:
        Advance();
        return Value::Int64(token.int_value);
      case TokenType::kDouble:
        Advance();
        return Value::Double(token.double_value);
      default:
        return Error("expected a literal");
    }
  }

  static bool AggKeyword(const Token& token, AggFunc* out) {
    if (token.IsKeyword("COUNT")) *out = AggFunc::kCount;
    else if (token.IsKeyword("SUM")) *out = AggFunc::kSum;
    else if (token.IsKeyword("AVG")) *out = AggFunc::kAvg;
    else if (token.IsKeyword("MIN")) *out = AggFunc::kMin;
    else if (token.IsKeyword("MAX")) *out = AggFunc::kMax;
    else return false;
    return true;
  }

  /// agg ( column | * )
  Result<std::pair<AggFunc, std::string>> ParseAggregateCall() {
    AggFunc agg;
    if (!AggKeyword(Peek(), &agg)) return Error("expected an aggregate function");
    Advance();
    CAPE_RETURN_IF_ERROR(Expect("("));
    std::string column;
    if (Accept("*")) {
      column = "*";
    } else {
      CAPE_ASSIGN_OR_RETURN(column, ExpectIdentifier("a column name"));
    }
    CAPE_RETURN_IF_ERROR(Expect(")"));
    if (agg == AggFunc::kCount && column != "*") {
      return Error("only count(*) is supported (count over a column is not)");
    }
    if (agg != AggFunc::kCount && column == "*") {
      return Error("only count may aggregate '*'");
    }
    return std::make_pair(agg, column);
  }

  Result<SelectQuery> ParseSelect() {
    SelectQuery query;
    CAPE_RETURN_IF_ERROR(Expect("SELECT"));

    // Select list.
    while (true) {
      SelectItem item;
      AggFunc agg;
      if (AggKeyword(Peek(), &agg)) {
        CAPE_ASSIGN_OR_RETURN(auto call, ParseAggregateCall());
        item.is_aggregate = true;
        item.agg = call.first;
        item.column = call.second;
      } else if (Accept("*")) {
        item.column = "*";
      } else {
        CAPE_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("a column name"));
      }
      if (Accept("AS")) {
        CAPE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("an alias"));
      }
      query.items.push_back(std::move(item));
      if (!Accept(",")) break;
    }

    CAPE_RETURN_IF_ERROR(Expect("FROM"));
    CAPE_ASSIGN_OR_RETURN(query.table, ExpectIdentifier("a table name"));

    if (Accept("WHERE")) {
      do {
        WherePredicate pred;
        CAPE_ASSIGN_OR_RETURN(pred.column, ExpectIdentifier("a column name"));
        if (Accept("=")) pred.op = WherePredicate::Op::kEq;
        else if (Accept("!=")) pred.op = WherePredicate::Op::kNe;
        else if (Accept("<=")) pred.op = WherePredicate::Op::kLe;
        else if (Accept(">=")) pred.op = WherePredicate::Op::kGe;
        else if (Accept("<")) pred.op = WherePredicate::Op::kLt;
        else if (Accept(">")) pred.op = WherePredicate::Op::kGt;
        else return Error("expected a comparison operator");
        CAPE_ASSIGN_OR_RETURN(pred.literal, ExpectLiteral());
        query.where.push_back(std::move(pred));
      } while (Accept("AND"));
    }

    if (Accept("GROUP")) {
      CAPE_RETURN_IF_ERROR(Expect("BY"));
      do {
        CAPE_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("a column name"));
        query.group_by.push_back(std::move(column));
      } while (Accept(","));
    }

    if (Accept("ORDER")) {
      CAPE_RETURN_IF_ERROR(Expect("BY"));
      CAPE_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("a column name"));
      query.order_by = std::move(column);
      if (Accept("DESC")) query.order_ascending = false;
      else Accept("ASC");
    }

    if (Accept("LIMIT")) {
      if (Peek().type != TokenType::kInteger) return Error("expected an integer limit");
      query.limit = Advance().int_value;
      if (*query.limit < 0) return Error("LIMIT must be non-negative");
    }
    return query;
  }

  Result<ExplainWhyCommand> ParseExplainWhy() {
    ExplainWhyCommand command;
    Accept("EXPLAIN");
    CAPE_RETURN_IF_ERROR(Expect("WHY"));

    CAPE_ASSIGN_OR_RETURN(auto call, ParseAggregateCall());
    command.agg = call.first;
    command.agg_column = call.second;
    if (command.agg == AggFunc::kAvg) {
      return Error("avg is not a valid ARP aggregate (Definition 2)");
    }

    CAPE_RETURN_IF_ERROR(Expect("IS"));
    if (Accept("LOW")) command.direction = Direction::kLow;
    else if (Accept("HIGH")) command.direction = Direction::kHigh;
    else return Error("expected LOW or HIGH");

    CAPE_RETURN_IF_ERROR(Expect("FOR"));
    do {
      CAPE_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("a column name"));
      CAPE_RETURN_IF_ERROR(Expect("="));
      CAPE_ASSIGN_OR_RETURN(Value literal, ExpectLiteral());
      command.group_by.push_back(std::move(column));
      command.group_values.push_back(std::move(literal));
    } while (Accept(","));

    CAPE_RETURN_IF_ERROR(Expect("FROM"));
    CAPE_ASSIGN_OR_RETURN(command.table, ExpectIdentifier("a table name"));

    if (Accept("TOP")) {
      if (Peek().type != TokenType::kInteger) return Error("expected an integer after TOP");
      command.top_k = Advance().int_value;
      if (*command.top_k <= 0) return Error("TOP must be positive");
    }
    return command;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string SelectItem::DefaultName() const {
  if (!alias.empty()) return alias;
  if (!is_aggregate) return column;
  std::string name = AggFuncToString(agg);
  name += "_";
  name += (column == "*") ? "star" : column;
  return name;
}

Result<Statement> ParseStatement(const std::string& sql) {
  CAPE_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectQuery> ParseSelect(const std::string& sql) {
  CAPE_ASSIGN_OR_RETURN(Statement statement, ParseStatement(sql));
  if (auto* query = std::get_if<SelectQuery>(&statement)) return std::move(*query);
  return Status::InvalidArgument("statement is not a SELECT");
}

Result<ExplainWhyCommand> ParseExplainWhy(const std::string& sql) {
  CAPE_ASSIGN_OR_RETURN(Statement statement, ParseStatement(sql));
  if (auto* command = std::get_if<ExplainWhyCommand>(&statement)) {
    return std::move(*command);
  }
  return Status::InvalidArgument("statement is not an EXPLAIN WHY command");
}

}  // namespace cape
