#ifndef CAPE_SQL_PARSER_H_
#define CAPE_SQL_PARSER_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "explain/user_question.h"
#include "relational/operators.h"
#include "relational/value.h"

namespace cape {

/// One item of a SELECT list: a plain column or agg(column|*), optionally
/// AS-aliased.
struct SelectItem {
  bool is_aggregate = false;
  AggFunc agg = AggFunc::kCount;
  /// Column name ("*" together with is_aggregate means count(*); plain "*"
  /// with !is_aggregate means SELECT *).
  std::string column;
  std::string alias;  // empty = default name

  std::string DefaultName() const;
};

/// WHERE predicate: column OP literal.
struct WherePredicate {
  enum class Op : int { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string column;
  Op op = Op::kEq;
  Value literal;
};

/// An aggregate SELECT statement:
///   SELECT items FROM table [WHERE p AND ...] [GROUP BY cols]
///   [ORDER BY col [ASC|DESC]] [LIMIT n]
struct SelectQuery {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<WherePredicate> where;  // conjunctive
  std::vector<std::string> group_by;
  std::optional<std::string> order_by;
  bool order_ascending = true;
  std::optional<int64_t> limit;
};

/// The CAPE explanation command (the paper's user question, Definition 1):
///   EXPLAIN WHY agg(A|*) IS LOW|HIGH
///   FOR col = literal (, col = literal)* FROM table [TOP k]
/// The FOR clause simultaneously fixes the question's group-by attributes G
/// and the tuple t[G].
struct ExplainWhyCommand {
  AggFunc agg = AggFunc::kCount;
  std::string agg_column;  // "*" for count(*)
  Direction direction = Direction::kLow;
  std::vector<std::string> group_by;
  std::vector<Value> group_values;
  std::string table;
  std::optional<int64_t> top_k;
};

using Statement = std::variant<SelectQuery, ExplainWhyCommand>;

/// Parses one statement (optionally `;`-terminated).
Result<Statement> ParseStatement(const std::string& sql);

/// Convenience: parse expecting a SELECT (InvalidArgument otherwise).
Result<SelectQuery> ParseSelect(const std::string& sql);

/// Convenience: parse expecting EXPLAIN WHY (InvalidArgument otherwise).
Result<ExplainWhyCommand> ParseExplainWhy(const std::string& sql);

}  // namespace cape

#endif  // CAPE_SQL_PARSER_H_
