#ifndef CAPE_SQL_EXECUTOR_H_
#define CAPE_SQL_EXECUTOR_H_

#include "common/cancellation.h"
#include "common/result.h"
#include "explain/explainer.h"
#include "relational/catalog.h"
#include "sql/parser.h"

namespace cape {

/// Evaluates a parsed SELECT against a catalog using the engine operators
/// (selection -> aggregation/projection -> sort -> limit). Supported shape:
/// conjunctive comparison predicates, optional GROUP BY with any mix of
/// group columns and aggregates, SELECT * / plain projections without
/// grouping, ORDER BY one output column, LIMIT. When `stop` fires mid-query
/// the stop Status (kDeadlineExceeded/kCancelled) is returned.
Result<TablePtr> ExecuteSelect(const Catalog& catalog, const SelectQuery& query,
                               StopToken* stop = nullptr);

/// Builds the Definition-1 user question described by an EXPLAIN WHY
/// command (resolving the table via the catalog and validating that the
/// tuple is a query answer).
Result<UserQuestion> BuildQuestion(const Catalog& catalog, const ExplainWhyCommand& command);

}  // namespace cape

#endif  // CAPE_SQL_EXECUTOR_H_
