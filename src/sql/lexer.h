#ifndef CAPE_SQL_LEXER_H_
#define CAPE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace cape {

enum class TokenType : int {
  kIdentifier = 0,  // bare or "quoted"
  kString = 1,      // '...'
  kInteger = 2,
  kDouble = 3,
  kSymbol = 4,   // ( ) , ; * = != < <= > >=
  kKeyword = 5,  // SELECT FROM WHERE ... (uppercased in `text`)
  kEnd = 6,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;          // identifier/symbol/keyword spelling
  int64_t int_value = 0;     // kInteger
  double double_value = 0;   // kDouble
  size_t position = 0;       // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL statement. Keywords are case-insensitive and uppercased;
/// bare identifiers are lowercased (SQL folding); quoted identifiers keep
/// their exact spelling. String literals use single quotes with '' escaping.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace cape

#endif  // CAPE_SQL_LEXER_H_
