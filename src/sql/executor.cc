#include "sql/executor.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/macros.h"

namespace cape {

namespace {

Result<TablePtr> ApplyWhere(TablePtr table, const std::vector<WherePredicate>& where,
                            StopToken* stop) {
  if (where.empty()) return table;
  struct Bound {
    int column;
    WherePredicate::Op op;
    Value literal;
  };
  std::vector<Bound> bounds;
  for (const WherePredicate& pred : where) {
    CAPE_ASSIGN_OR_RETURN(int column, table->schema()->GetFieldIndexChecked(pred.column));
    bounds.push_back(Bound{column, pred.op, pred.literal});
  }
  return Filter(*table, [table, bounds](int64_t row) {
    for (const Bound& b : bounds) {
      const Value v = table->GetValue(row, b.column);
      // SQL three-valued logic: comparisons with NULL are not true (except
      // our '=' which treats NULL = NULL as a match, mirroring FilterEquals).
      const int cmp = v.Compare(b.literal);
      bool ok = false;
      switch (b.op) {
        case WherePredicate::Op::kEq:
          ok = cmp == 0;
          break;
        case WherePredicate::Op::kNe:
          ok = cmp != 0 && !v.is_null();
          break;
        case WherePredicate::Op::kLt:
          ok = cmp < 0 && !v.is_null();
          break;
        case WherePredicate::Op::kLe:
          ok = cmp <= 0 && !v.is_null();
          break;
        case WherePredicate::Op::kGt:
          ok = cmp > 0 && !v.is_null();
          break;
        case WherePredicate::Op::kGe:
          ok = cmp >= 0 && !v.is_null();
          break;
      }
      if (!ok) return false;
    }
    return true;
  }, stop);
}

Result<AggregateSpec> ToAggregateSpec(const Table& table, const SelectItem& item) {
  AggregateSpec spec;
  spec.func = item.agg;
  spec.output_name = item.DefaultName();
  if (item.column == "*") {
    spec.input_col = AggregateSpec::kCountStar;
  } else {
    CAPE_ASSIGN_OR_RETURN(spec.input_col, table.schema()->GetFieldIndexChecked(item.column));
  }
  return spec;
}

}  // namespace

Result<TablePtr> ExecuteSelect(const Catalog& catalog, const SelectQuery& query,
                               StopToken* stop) {
  CAPE_FAILPOINT("sql.execute");
  CAPE_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(query.table));
  CAPE_ASSIGN_OR_RETURN(table, ApplyWhere(table, query.where, stop));

  const bool has_aggregates =
      std::any_of(query.items.begin(), query.items.end(),
                  [](const SelectItem& item) { return item.is_aggregate; });

  TablePtr result;
  if (has_aggregates || !query.group_by.empty()) {
    // Grouped (or global) aggregation: every non-aggregate item must be a
    // group-by column.
    std::vector<int> group_cols;
    for (const std::string& name : query.group_by) {
      CAPE_ASSIGN_OR_RETURN(int idx, table->schema()->GetFieldIndexChecked(name));
      group_cols.push_back(idx);
    }
    std::vector<AggregateSpec> specs;
    std::vector<SelectItem> output_order = query.items;
    for (const SelectItem& item : query.items) {
      if (item.is_aggregate) {
        CAPE_ASSIGN_OR_RETURN(AggregateSpec spec, ToAggregateSpec(*table, item));
        specs.push_back(std::move(spec));
        continue;
      }
      if (item.column == "*") {
        return Status::InvalidArgument("SELECT * cannot be combined with GROUP BY");
      }
      if (std::find(query.group_by.begin(), query.group_by.end(), item.column) ==
          query.group_by.end()) {
        return Status::InvalidArgument("column '" + item.column +
                                       "' must appear in GROUP BY or inside an aggregate");
      }
    }
    CAPE_ASSIGN_OR_RETURN(TablePtr grouped,
                          GroupByAggregate(*table, group_cols, specs, stop));
    // Reorder/duplicate output columns to match the select list. In
    // `grouped`, group column i sits at position of group_by order; the
    // j-th aggregate at group_cols.size() + j.
    std::vector<int> projection;
    size_t agg_index = 0;
    for (const SelectItem& item : query.items) {
      if (item.is_aggregate) {
        projection.push_back(static_cast<int>(group_cols.size() + agg_index));
        ++agg_index;
      } else {
        const auto it =
            std::find(query.group_by.begin(), query.group_by.end(), item.column);
        projection.push_back(static_cast<int>(it - query.group_by.begin()));
      }
    }
    CAPE_ASSIGN_OR_RETURN(result, Project(*grouped, projection, stop));
    // Apply aliases for group columns (aggregates already carry their name).
    std::vector<Field> fields;
    for (size_t i = 0; i < query.items.size(); ++i) {
      Field f = result->schema()->field(static_cast<int>(i));
      f.name = query.items[i].DefaultName();
      fields.push_back(std::move(f));
    }
    auto renamed = std::make_shared<Table>(Schema::Make(std::move(fields)));
    renamed->Reserve(result->num_rows());
    for (int64_t row = 0; row < result->num_rows(); ++row) {
      CAPE_RETURN_IF_ERROR(renamed->AppendRow(result->GetRow(row)));
    }
    result = renamed;
  } else {
    // Plain projection.
    if (query.items.size() == 1 && query.items[0].column == "*") {
      result = table;
    } else {
      std::vector<int> projection;
      std::vector<Field> fields;
      for (const SelectItem& item : query.items) {
        if (item.column == "*") {
          return Status::InvalidArgument("'*' must be the only select item");
        }
        CAPE_ASSIGN_OR_RETURN(int idx, table->schema()->GetFieldIndexChecked(item.column));
        projection.push_back(idx);
      }
      CAPE_ASSIGN_OR_RETURN(result, Project(*table, projection, stop));
      if (std::any_of(query.items.begin(), query.items.end(),
                      [](const SelectItem& i) { return !i.alias.empty(); })) {
        std::vector<Field> renamed_fields;
        for (size_t i = 0; i < query.items.size(); ++i) {
          Field f = result->schema()->field(static_cast<int>(i));
          f.name = query.items[i].DefaultName();
          renamed_fields.push_back(std::move(f));
        }
        auto renamed = std::make_shared<Table>(Schema::Make(std::move(renamed_fields)));
        renamed->Reserve(result->num_rows());
        for (int64_t row = 0; row < result->num_rows(); ++row) {
          CAPE_RETURN_IF_ERROR(renamed->AppendRow(result->GetRow(row)));
        }
        result = renamed;
      }
    }
  }

  if (query.order_by.has_value()) {
    CAPE_ASSIGN_OR_RETURN(int idx, result->schema()->GetFieldIndexChecked(*query.order_by));
    CAPE_ASSIGN_OR_RETURN(
        result, SortTable(*result, {SortKey{idx, query.order_ascending}}, stop));
  }
  if (query.limit.has_value() && *query.limit < result->num_rows()) {
    auto limited = std::make_shared<Table>(result->schema());
    limited->Reserve(*query.limit);
    for (int64_t row = 0; row < *query.limit; ++row) {
      CAPE_RETURN_IF_ERROR(limited->AppendRow(result->GetRow(row)));
    }
    result = limited;
  }
  return result;
}

Result<UserQuestion> BuildQuestion(const Catalog& catalog,
                                   const ExplainWhyCommand& command) {
  CAPE_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(command.table));
  const std::string agg_attr = command.agg_column == "*" ? "" : command.agg_column;
  return MakeUserQuestion(table, command.group_by, command.group_values, command.agg,
                          agg_attr.empty() ? "*" : agg_attr, command.direction);
}

}  // namespace cape
