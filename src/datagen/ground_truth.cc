#include "datagen/ground_truth.h"

#include <algorithm>
#include <random>
#include <unordered_map>

#include "common/macros.h"
#include "pattern/pattern_set.h"
#include "relational/operators.h"

namespace cape {

namespace {

struct CellAction {
  // Number of rows of this cell to keep (dent) — or -1 for "keep all".
  int64_t keep = -1;
  // Extra duplicate copies to distribute across the cell's rows (spike).
  int64_t extra = 0;
  int64_t rows = 0;  // original row count (for distributing `extra`)
};

}  // namespace

Result<GroundTruthData> InjectGroundTruth(const Table& base,
                                          const GroundTruthOptions& options) {
  if (options.group_by.size() < 2) {
    return Status::InvalidArgument(
        "ground truth injection needs >= 2 group-by attributes (partition + predictor)");
  }
  // Resolve attributes; partition = all but the predictor (the last name).
  std::vector<int> g_attrs;
  for (const std::string& name : options.group_by) {
    CAPE_ASSIGN_OR_RETURN(int idx, base.schema()->GetFieldIndexChecked(name));
    g_attrs.push_back(idx);
  }
  CAPE_ASSIGN_OR_RETURN(int predictor_attr,
                        base.schema()->GetFieldIndexChecked(options.group_by.back()));
  std::vector<int> g_sorted = g_attrs;
  std::sort(g_sorted.begin(), g_sorted.end());
  const AttrSet g_set = AttrSet::FromIndices(g_attrs);
  const int predictor_pos = static_cast<int>(
      std::lower_bound(g_sorted.begin(), g_sorted.end(), predictor_attr) - g_sorted.begin());

  // Cell inventory: one row per (G) group with its count.
  CAPE_ASSIGN_OR_RETURN(TablePtr cells,
                        GroupByAggregate(base, g_sorted, {AggregateSpec::CountStar("cnt")}));
  const int count_col = static_cast<int>(g_sorted.size());

  // Fragment -> eligible cell row indices (count >= min_cell_rows), plus a
  // full-cell index for sibling lookups and per-partition-attribute value
  // pools.
  std::unordered_map<std::string, std::vector<int64_t>> fragments;
  std::unordered_map<std::string, int64_t> cell_index;  // full G key -> cells row
  std::vector<int> fragment_cols;
  for (size_t i = 0; i < g_sorted.size(); ++i) {
    if (static_cast<int>(i) != predictor_pos) fragment_cols.push_back(static_cast<int>(i));
  }
  std::vector<std::vector<Value>> partition_values(fragment_cols.size());
  for (int64_t row = 0; row < cells->num_rows(); ++row) {
    std::vector<int> all_cols(g_sorted.size());
    for (size_t i = 0; i < g_sorted.size(); ++i) all_cols[i] = static_cast<int>(i);
    cell_index[EncodeRowKey(cells->GetRowProjection(row, all_cols))] = row;
    if (cells->column(count_col).GetInt64(row) < options.min_cell_rows) continue;
    fragments[EncodeRowKey(cells->GetRowProjection(row, fragment_cols))].push_back(row);
    for (size_t i = 0; i < fragment_cols.size(); ++i) {
      partition_values[i].push_back(cells->GetValue(row, fragment_cols[i]));
    }
  }
  for (auto& pool : partition_values) {
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }

  // Deterministically pick fragments with enough eligible cells.
  std::vector<std::string> fragment_keys;
  for (const auto& [key, rows] : fragments) {
    if (static_cast<int>(rows.size()) >= options.counterbalances_per_question + 1) {
      fragment_keys.push_back(key);
    }
  }
  std::sort(fragment_keys.begin(), fragment_keys.end());
  std::mt19937_64 rng(options.seed);
  std::shuffle(fragment_keys.begin(), fragment_keys.end(), rng);
  if (static_cast<int>(fragment_keys.size()) < options.num_questions) {
    return Status::InvalidArgument(
        "not enough eligible fragments for the requested number of questions (" +
        std::to_string(fragment_keys.size()) + " < " +
        std::to_string(options.num_questions) + ")");
  }
  fragment_keys.resize(static_cast<size_t>(options.num_questions));

  // Plan dents and spikes.
  struct PlannedCase {
    Row question_values;  // G values, ascending attribute order
    std::vector<PlantedCounterbalance> counterbalances;
  };
  std::vector<PlannedCase> planned;
  std::unordered_map<std::string, CellAction> actions;  // key over full G values
  std::vector<int> all_g_cols(g_sorted.size());
  for (size_t i = 0; i < g_sorted.size(); ++i) all_g_cols[i] = static_cast<int>(i);

  for (const std::string& frag_key : fragment_keys) {
    std::vector<int64_t> cell_rows = fragments[frag_key];
    std::shuffle(cell_rows.begin(), cell_rows.end(), rng);
    PlannedCase pc;

    // The dented (outlier) cell.
    const int64_t dent_row = cell_rows[0];
    pc.question_values = cells->GetRowProjection(dent_row, all_g_cols);
    const int64_t dent_count = cells->column(count_col).GetInt64(dent_row);
    CellAction dent;
    dent.rows = dent_count;
    dent.keep = std::max<int64_t>(
        1, dent_count - static_cast<int64_t>(options.dent_fraction *
                                             static_cast<double>(dent_count)));
    actions[EncodeRowKey(pc.question_values)] = dent;

    // Spikes one cell, records the counterbalance; false when the cell does
    // not exist, is too small, or was already planted on.
    auto plant_spike = [&](const Row& target_values) {
      const std::string key = EncodeRowKey(target_values);
      auto it = cell_index.find(key);
      if (it == cell_index.end()) return false;
      const int64_t cb_count = cells->column(count_col).GetInt64(it->second);
      if (cb_count < options.min_cell_rows) return false;
      if (actions.count(key) > 0) return false;
      CellAction spike;
      spike.rows = cb_count;
      spike.extra = std::max<int64_t>(
          1, static_cast<int64_t>((options.spike_factor - 1.0) *
                                  static_cast<double>(cb_count)));
      actions[key] = spike;
      PlantedCounterbalance cb;
      cb.attrs = g_set;
      cb.values = target_values;
      pc.counterbalances.push_back(std::move(cb));
      return true;
    };

    int planted_count = 0;
    // The first two counterbalances share the outlier's fragment at other
    // predictor values (the classic "he published elsewhere that year"
    // case); the remaining ones live in *sibling* fragments — same values
    // as the dent except a different predictor value and one changed
    // partition attribute — whose local fits stay healthy apart from the
    // spike itself.
    for (size_t j = 1; j < cell_rows.size() && planted_count < 2 &&
                       planted_count < options.counterbalances_per_question;
         ++j) {
      if (plant_spike(cells->GetRowProjection(cell_rows[j], all_g_cols))) {
        ++planted_count;
      }
    }
    for (int attempt = 0;
         attempt < 200 && planted_count < options.counterbalances_per_question;
         ++attempt) {
      Row target = pc.question_values;
      // Another predictor value observed in the dented fragment.
      const int64_t donor = cell_rows[1 + attempt % (cell_rows.size() - 1)];
      target[static_cast<size_t>(predictor_pos)] = cells->GetValue(donor, predictor_pos);
      // One partition attribute moves to a sibling value.
      const size_t which = attempt % fragment_cols.size();
      const auto& pool = partition_values[which];
      if (pool.size() < 2) continue;
      const Value sibling = pool[rng() % pool.size()];
      const int target_pos = fragment_cols[which];
      if (sibling == target[static_cast<size_t>(target_pos)]) continue;
      target[static_cast<size_t>(target_pos)] = sibling;
      if (plant_spike(target)) ++planted_count;
    }
    // Fallback: same-fragment counterbalances at other predictor values.
    for (size_t j = 1;
         j < cell_rows.size() && planted_count < options.counterbalances_per_question;
         ++j) {
      if (plant_spike(cells->GetRowProjection(cell_rows[j], all_g_cols))) {
        ++planted_count;
      }
    }
    if (planted_count == 0) continue;  // nothing plantable; skip this fragment
    planned.push_back(std::move(pc));
  }

  // Materialize the modified table in one pass.
  auto modified = std::make_shared<Table>(base.schema());
  modified->Reserve(base.num_rows());
  std::unordered_map<std::string, int64_t> seen;  // per-cell row counter
  std::string key;
  for (int64_t row = 0; row < base.num_rows(); ++row) {
    key = EncodeRowKey(base.GetRowProjection(row, g_sorted));
    auto it = actions.find(key);
    if (it == actions.end()) {
      CAPE_RETURN_IF_ERROR(modified->AppendRow(base.GetRow(row)));
      continue;
    }
    const CellAction& action = it->second;
    const int64_t index = seen[key]++;
    if (action.keep >= 0) {  // dent: keep only the first `keep` rows
      if (index < action.keep) CAPE_RETURN_IF_ERROR(modified->AppendRow(base.GetRow(row)));
      continue;
    }
    // Spike: emit the row plus its share of the extra copies.
    Row r = base.GetRow(row);
    int64_t copies = 1 + action.extra / action.rows +
                     (index < action.extra % action.rows ? 1 : 0);
    for (int64_t c = 0; c < copies; ++c) CAPE_RETURN_IF_ERROR(modified->AppendRow(r));
  }

  // Build the user questions against the modified table.
  GroundTruthData out;
  out.table = modified;
  std::vector<std::string> sorted_names;
  for (int attr : g_sorted) sorted_names.push_back(base.schema()->field(attr).name);
  for (PlannedCase& pc : planned) {
    CAPE_ASSIGN_OR_RETURN(
        UserQuestion q,
        MakeUserQuestion(modified, sorted_names,
                         std::vector<Value>(pc.question_values.begin(),
                                            pc.question_values.end()),
                         AggFunc::kCount, "*", Direction::kLow));
    GroundTruthCase gt;
    gt.question = std::move(q);
    gt.counterbalances = std::move(pc.counterbalances);
    out.cases.push_back(std::move(gt));
  }
  return out;
}

double GroundTruthPrecision(const std::vector<GroundTruthCase>& cases,
                            const std::vector<std::vector<Explanation>>& explanations_per_case,
                            int top_k) {
  if (cases.empty() || top_k <= 0) return 0.0;
  int64_t matched = 0;
  for (size_t c = 0; c < cases.size() && c < explanations_per_case.size(); ++c) {
    const auto& explanations = explanations_per_case[c];
    const int64_t limit = std::min<int64_t>(top_k, static_cast<int64_t>(explanations.size()));
    for (int64_t e = 0; e < limit; ++e) {
      const Explanation& expl = explanations[static_cast<size_t>(e)];
      for (const PlantedCounterbalance& cb : cases[c].counterbalances) {
        if (!expl.tuple_attrs.ContainsAll(cb.attrs)) continue;
        // Compare the explanation's projection onto cb.attrs.
        const std::vector<int> cb_attrs = cb.attrs.ToIndices();
        const std::vector<int> e_attrs = expl.tuple_attrs.ToIndices();
        bool equal = true;
        size_t cb_i = 0;
        for (size_t i = 0; i < e_attrs.size() && cb_i < cb_attrs.size(); ++i) {
          if (e_attrs[i] != cb_attrs[cb_i]) continue;
          if (expl.tuple_values[i] != cb.values[cb_i]) {
            equal = false;
            break;
          }
          ++cb_i;
        }
        if (equal && cb_i == cb_attrs.size()) {
          ++matched;
          break;  // one match per explanation slot
        }
      }
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(cases.size() * static_cast<size_t>(top_k));
}

}  // namespace cape
