#include "datagen/crime.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "common/macros.h"

namespace cape {

namespace {

const char* const kCrimeTypes[] = {
    "Battery",         "Theft",           "Narcotics",      "Assault",
    "Burglary",        "Robbery",         "Criminal Damage", "Motor Vehicle Theft",
    "Deceptive Practice", "Weapons",      "Prostitution",   "Trespass",
    "Public Peace",    "Homicide",        "Arson",          "Gambling",
    "Kidnapping",      "Stalking",        "Obscenity",      "Intimidation",
};
constexpr int kNumCrimeTypes = static_cast<int>(sizeof(kCrimeTypes) / sizeof(kCrimeTypes[0]));

const char* const kLocations[] = {
    "Street",     "Residence", "Apartment", "Sidewalk",  "Garage",   "Alley",
    "Park",       "School",    "Store",     "Restaurant", "Bank",    "CTA bus",
    "CTA train",  "Parking lot", "Gas station", "Church", "Hospital", "Office",
    "Warehouse",  "Vacant lot", "Hotel",    "Bar",       "Library",  "Stadium",
    "Airport",    "Bridge",    "Riverbank", "Cemetery",  "Club",     "Dock",
    "Factory",    "Farm",      "Forest",    "Garden",    "Gym",      "Harbor",
    "Jail",       "Market",    "Museum",    "Plaza",
};
constexpr int kNumLocations = static_cast<int>(sizeof(kLocations) / sizeof(kLocations[0]));

}  // namespace

Status GenerateCrimeRows(const CrimeOptions& options, std::vector<Field>* fields,
                         const std::function<Status(const Row&)>& sink) {
  if (options.num_rows <= 0) return Status::InvalidArgument("num_rows must be positive");
  if (options.num_attrs < 4 || options.num_attrs > 11) {
    return Status::InvalidArgument("num_attrs must be in [4, 11]");
  }
  if (options.num_types < 1 || options.num_types > kNumCrimeTypes) {
    return Status::InvalidArgument("num_types must be in [1, " +
                                   std::to_string(kNumCrimeTypes) + "]");
  }
  if (options.num_communities < 1) {
    return Status::InvalidArgument("num_communities must be positive");
  }
  if (options.year_min > options.year_max) {
    return Status::InvalidArgument("year_min must be <= year_max");
  }

  const std::vector<Field> all_fields = {
      Field{"primary_type", DataType::kString, false},
      Field{"community", DataType::kInt64, false},
      Field{"year", DataType::kInt64, false},
      Field{"month", DataType::kInt64, false},
      Field{"district", DataType::kInt64, false},
      Field{"location_desc", DataType::kString, false},
      Field{"arrest", DataType::kString, false},
      Field{"beat", DataType::kInt64, false},
      Field{"ward", DataType::kInt64, false},
      Field{"week", DataType::kInt64, false},
      Field{"block", DataType::kString, false},
  };
  fields->assign(all_fields.begin(), all_fields.begin() + options.num_attrs);

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const int num_years = options.year_max - options.year_min + 1;

  // Popularity skew over types and communities; per-community linear trend
  // over years (some rising, some falling) plus mild seasonality.
  std::vector<double> type_weight(static_cast<size_t>(options.num_types));
  for (int t = 0; t < options.num_types; ++t) {
    type_weight[static_cast<size_t>(t)] = 1.0 / (1.0 + t);
  }
  std::vector<double> community_weight(static_cast<size_t>(options.num_communities));
  std::vector<double> community_trend(static_cast<size_t>(options.num_communities));
  for (int c = 0; c < options.num_communities; ++c) {
    community_weight[static_cast<size_t>(c)] = 0.3 + unit(rng);
    community_trend[static_cast<size_t>(c)] =
        options.year_trend ? -0.04 + 0.08 * unit(rng) : 0.0;  // per-year slope
  }
  std::discrete_distribution<int> type_dist(type_weight.begin(), type_weight.end());
  std::discrete_distribution<int> community_dist(community_weight.begin(),
                                                 community_weight.end());

  // Planted scenario rows are emitted with fixed counts; the sampled stream
  // fills the remainder.
  struct Planted {
    const char* type;
    int community;
    int year;
    int count;
  };
  std::vector<Planted> planted;
  if (options.plant_scenario && options.num_communities >= 26 &&
      options.year_min <= 2010 && options.year_max >= 2012) {
    // A steady per-year floor for the scenario cells keeps each fragment's
    // Pearson chi-square within noise while the dip/spikes remain clear
    // outliers relative to the fragment mean (see DESIGN.md): Battery/26
    // dips in 2011 and spikes in 2012; Battery/25 spikes in 2011; Assault/26
    // spikes in 2011.
    auto plant_series = [&](const char* type, int community, int base,
                            std::initializer_list<std::pair<int, int>> overrides) {
      for (int year = options.year_min; year <= options.year_max; ++year) {
        int count = base;
        for (const auto& [y, c] : overrides) {
          if (y == year) count = c;
        }
        planted.push_back(Planted{type, community, year, count});
      }
    };
    plant_series("Battery", 26, 12, {{2010, 15}, {2011, 6}, {2012, 20}});
    plant_series("Battery", 25, 13, {{2011, 22}});
    plant_series("Assault", 26, 8, {{2011, 14}});
  }

  int64_t emitted = 0;
  auto emit_row = [&](int type_index, int community, int year, int month) {
    Row row;
    row.reserve(static_cast<size_t>(options.num_attrs));
    row.push_back(Value::String(kCrimeTypes[type_index]));
    row.push_back(Value::Int64(community));
    row.push_back(Value::Int64(year));
    row.push_back(Value::Int64(month));
    if (options.num_attrs > 4) row.push_back(Value::Int64((community - 1) / 4 + 1));
    if (options.num_attrs > 5) {
      row.push_back(Value::String(kLocations[rng() % kNumLocations]));
    }
    if (options.num_attrs > 6) row.push_back(Value::String(unit(rng) < 0.25 ? "true" : "false"));
    if (options.num_attrs > 7) {
      row.push_back(Value::Int64(community * 10 + static_cast<int>(rng() % 10)));
    }
    if (options.num_attrs > 8) row.push_back(Value::Int64((community - 1) / 2 + 1));
    if (options.num_attrs > 9) {
      row.push_back(Value::Int64((month - 1) * 4 + 1 + static_cast<int>(rng() % 4)));
    }
    if (options.num_attrs > 10) {
      row.push_back(Value::String("BLK-" + std::to_string(community) + "-" +
                                  std::to_string(rng() % 2000)));
    }
    CAPE_RETURN_IF_ERROR(sink(row));
    ++emitted;
    return Status::OK();
  };

  std::uniform_int_distribution<int> month_dist(1, 12);
  for (const Planted& p : planted) {
    int type_index = 0;
    for (int t = 0; t < kNumCrimeTypes; ++t) {
      if (std::string(kCrimeTypes[t]) == p.type) {
        type_index = t;
        break;
      }
    }
    for (int i = 0; i < p.count && emitted < options.num_rows; ++i) {
      CAPE_RETURN_IF_ERROR(emit_row(type_index, p.community, p.year, month_dist(rng)));
    }
  }

  while (emitted < options.num_rows) {
    const int type_index = type_dist(rng);
    const int community = community_dist(rng) + 1;
    // Year from the community's linear trend.
    std::vector<double> year_weights(static_cast<size_t>(num_years));
    const double slope = community_trend[static_cast<size_t>(community - 1)];
    for (int y = 0; y < num_years; ++y) {
      year_weights[static_cast<size_t>(y)] = std::max(0.05, 1.0 + slope * y);
    }
    std::discrete_distribution<int> year_dist(year_weights.begin(), year_weights.end());
    const int year = options.year_min + year_dist(rng);
    // Mild seasonality: summer months slightly more likely.
    const int month = 1 + static_cast<int>((unit(rng) < 0.6 ? rng() % 12 : 4 + rng() % 5));
    CAPE_RETURN_IF_ERROR(
        emit_row(type_index, community, year, std::min(12, std::max(1, month))));
  }

  return Status::OK();
}

Result<TablePtr> GenerateCrime(const CrimeOptions& options) {
  std::vector<Field> fields;
  TablePtr table;
  CAPE_RETURN_IF_ERROR(GenerateCrimeRows(
      options, &fields,
      [&](const Row& row) -> Status {
        if (table == nullptr) {
          // Deferred so the schema from GenerateCrimeRows is the one source
          // of truth (it validates options before emitting anything).
          table = std::make_shared<Table>(Schema::Make(fields));
          table->Reserve(options.num_rows);
        }
        return table->AppendRow(row);
      }));
  if (table == nullptr) return Status::Internal("crime generator emitted no rows");
  CAPE_RETURN_IF_ERROR(table->Validate());
  return table;
}

Status GenerateCrimeToHeapFile(const CrimeOptions& options, const std::string& path,
                               int64_t rows_per_page) {
  std::vector<Field> fields;
  std::unique_ptr<HeapFileWriter> writer;
  CAPE_RETURN_IF_ERROR(GenerateCrimeRows(
      options, &fields,
      [&](const Row& row) -> Status {
        if (writer == nullptr) {
          CAPE_ASSIGN_OR_RETURN(
              writer, HeapFileWriter::Create(path, Schema::Make(fields), rows_per_page));
        }
        return writer->Append(row);
      }));
  if (writer == nullptr) return Status::Internal("crime generator emitted no rows");
  return writer->Finish();
}

}  // namespace cape
