#ifndef CAPE_DATAGEN_GROUND_TRUTH_H_
#define CAPE_DATAGEN_GROUND_TRUTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "explain/explanation.h"
#include "explain/user_question.h"
#include "relational/table.h"

namespace cape {

/// A planted counterbalance: the cell (partition values, predictor value)
/// whose aggregate was pushed in the direction opposite to the outlier.
struct PlantedCounterbalance {
  AttrSet attrs;  // partition ∪ predictor attributes
  Row values;     // ascending attribute order
};

/// One ground-truth test case: a user question about a planted outlier plus
/// the counterbalances that were planted with it.
struct GroundTruthCase {
  UserQuestion question;
  std::vector<PlantedCounterbalance> counterbalances;
};

/// Knobs of the Section 5.3 ground-truth construction.
struct GroundTruthOptions {
  /// Names of the question's group-by attributes G. The last one is the
  /// predictor the outlier/counterbalances vary over (year in the paper);
  /// the others form the partition.
  std::vector<std::string> group_by;
  int num_questions = 10;
  int counterbalances_per_question = 5;
  /// Fraction of a cell's rows removed to create a `low` outlier.
  double dent_fraction = 0.5;
  /// Multiplier applied to a counterbalance cell's rows (by duplication).
  /// Kept moderate so the counterbalance fragments still pass the local
  /// goodness-of-fit test at the theta values Figure 7 sweeps.
  double spike_factor = 1.7;
  /// Minimum rows a cell must have to be dent/spike eligible.
  int64_t min_cell_rows = 8;
  uint64_t seed = 17;
};

/// Output of the injection: the modified table plus the planted cases.
struct GroundTruthData {
  TablePtr table;
  std::vector<GroundTruthCase> cases;
};

/// Implements the Section 5.3 methodology: picks fragments with enough
/// support, removes tuples from one predictor cell (creating a `low`
/// outlier), and duplicates tuples in counterbalance cells "for different
/// values of the partition and predictor attributes" — i.e. in *sibling*
/// fragments that differ from the outlier's fragment in one partition
/// attribute, at different predictor values. Spiking siblings (rather than
/// the dented fragment itself) keeps every counterbalance fragment's local
/// goodness-of-fit healthy, so the planted explanations stay reachable for
/// moderate theta; cells sharing the dented fragment would fail Definition
/// 7's condition (3) as soon as theta filters outlier-laden fragments.
/// Builds the corresponding `low` user questions against the modified table.
Result<GroundTruthData> InjectGroundTruth(const Table& base, const GroundTruthOptions& options);

/// Fraction of explanation slots (cases × top-k) occupied by planted
/// counterbalances — the precision measure of Figure 7. An explanation
/// matches a counterbalance when its tuple covers the counterbalance's
/// attributes with equal values.
double GroundTruthPrecision(const std::vector<GroundTruthCase>& cases,
                            const std::vector<std::vector<Explanation>>& explanations_per_case,
                            int top_k);

}  // namespace cape

#endif  // CAPE_DATAGEN_GROUND_TRUTH_H_
