#include "datagen/dblp.h"

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/macros.h"

namespace cape {

namespace {

const char* const kVenuePool[] = {
    "SIGKDD", "ICDE",  "VLDB",  "ICDM",  "SIGMOD", "TKDE",  "CIKM",  "WSDM", "EDBT",
    "ICDT",   "WWW",   "SDM",   "PKDD",  "DASFAA", "PODS",  "SSDBM", "TODS", "VLDBJ",
    "KAIS",   "DMKD",  "JMLR",  "ICML",  "NIPS",   "AAAI",  "IJCAI", "ACL",  "EMNLP",
};
constexpr int kVenuePoolSize = static_cast<int>(sizeof(kVenuePool) / sizeof(kVenuePool[0]));

/// Venue "communities": authors publish mostly within one community, which
/// is what makes venue-affinity patterns (and the ICDE-vs-SIGKDD story of
/// Example 1) possible.
int VenueCommunity(int venue_index) { return venue_index % 3; }

/// Per-(venue, year) publication counts of the planted running-example
/// author. Baselines with explicit overrides engineered so that:
///  - phi0 = (SIGKDD 2007 = 1, low) is counterbalanced by ICDE 2007/2006 and
///    ICDM 2007/2008 spikes plus a mild year-2010 spike (Table 3 shape);
///  - (SIGKDD 2012 = 6, high) is counterbalanced by low TKDE/SIGMOD 2012 and
///    a low 2013 total (Table 4 shape).
std::map<std::pair<std::string, int>, int> PlantedAuthorCounts() {
  const int kYearBegin = 2004;
  const int kYearEnd = 2013;  // inclusive
  const std::vector<std::pair<std::string, int>> baselines = {
      {"SIGKDD", 4}, {"ICDE", 4}, {"VLDB", 4}, {"ICDM", 3}, {"SIGMOD", 2}, {"TKDE", 2}};
  std::map<std::pair<std::string, int>, int> counts;
  for (const auto& [venue, base] : baselines) {
    for (int year = kYearBegin; year <= kYearEnd; ++year) counts[{venue, year}] = base;
  }
  // AX's SIGKDD counts are deliberately dispersed (Pearson p ≈ 0.17 < θ)
  // so the pattern [author,venue]:year does NOT hold locally on
  // (AX, SIGKDD): the questions below are about genuine outliers, and
  // same-venue neighbor years cannot appear as trivial counterbalances —
  // matching the absence of such rows in the paper's Tables 3 and 4.
  const int sigkdd_series[] = {5, 2, 6, 1, 7, 3, 5, 2, 9, 4};  // 2004..2013
  for (int year = kYearBegin; year <= kYearEnd; ++year) {
    counts[{"SIGKDD", year}] = sigkdd_series[year - kYearBegin];
  }
  // phi0 = (SIGKDD 2007 = 1, low) counterbalances.
  counts[{"ICDE", 2007}] = 10;
  counts[{"ICDE", 2006}] = 8;
  counts[{"ICDM", 2007}] = 5;
  counts[{"ICDM", 2008}] = 5;
  counts[{"VLDB", 2008}] = 1;
  counts[{"SIGMOD", 2008}] = 4;
  counts[{"TKDE", 2006}] = 4;
  // Mild 2010 spike (coarser-schema explanation, rank ~last in Table 3).
  counts[{"ICDE", 2010}] = 5;
  counts[{"SIGMOD", 2010}] = 3;
  counts[{"TKDE", 2010}] = 3;
  // Table 4 scenario: SIGKDD 2012 = 9 high, counterbalanced by low venue
  // counts in 2012/2013 and a low 2013 total.
  counts[{"TKDE", 2012}] = 1;
  counts[{"SIGMOD", 2012}] = 1;
  counts[{"SIGMOD", 2013}] = 1;
  counts[{"VLDB", 2013}] = 3;
  counts[{"ICDM", 2013}] = 3;
  return counts;
}

}  // namespace

Result<TablePtr> GenerateDblp(const DblpOptions& options) {
  if (options.num_rows <= 0) return Status::InvalidArgument("num_rows must be positive");
  if (options.num_venues < 1 || options.num_venues > kVenuePoolSize) {
    return Status::InvalidArgument("num_venues must be in [1, " +
                                   std::to_string(kVenuePoolSize) + "]");
  }
  if (options.year_min > options.year_max) {
    return Status::InvalidArgument("year_min must be <= year_max");
  }

  auto table = MakeEmptyTable({Field{"author", DataType::kString, false},
                               Field{"pubid", DataType::kString, false},
                               Field{"year", DataType::kInt64, false},
                               Field{"venue", DataType::kString, false}});
  table->Reserve(options.num_rows);

  std::mt19937_64 rng(options.seed);
  int64_t pub_counter = 0;
  auto append = [&](const std::string& author, int year, const std::string& venue) {
    Row row{Value::String(author), Value::String("P" + std::to_string(pub_counter++)),
            Value::Int64(year), Value::String(venue)};
    return table->AppendRow(row);
  };

  // Planted running-example author first so it survives row-count capping.
  if (options.plant_running_example) {
    for (const auto& [venue_year, count] : PlantedAuthorCounts()) {
      for (int i = 0; i < count; ++i) {
        CAPE_RETURN_IF_ERROR(append(kDblpPlantedAuthor, venue_year.second, venue_year.first));
      }
    }
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> venue_pick(0, options.num_venues - 1);

  for (int a = 0; table->num_rows() < options.num_rows; ++a) {
    const std::string author = "A" + std::to_string(1000 + a);
    // Zipf-ish productivity: a few prolific authors, a long tail.
    const double popularity = 1.0 / (1.0 + a % options.num_authors * 0.05);
    const double base_rate = 0.8 + 8.0 * popularity * unit(rng);
    const bool linear = unit(rng) < options.linear_author_fraction;
    const double growth = linear ? (0.15 + 0.35 * unit(rng)) : 0.0;

    // Venue affinity: a home community plus a favored venue within it.
    const int community = static_cast<int>(rng() % 3);
    const int favorite = venue_pick(rng);

    // Authors are active over the whole year range so venue-year totals are
    // stationary (the paper's premise that "SIGKDD accepts about the same
    // number of papers every year" — pattern P3 — holds on the data).
    const int career_begin = options.year_min;
    const int career_end = options.year_max;
    for (int year = career_begin; year <= career_end && table->num_rows() < options.num_rows;
         ++year) {
      const double rate = base_rate * (1.0 + growth * (year - career_begin));
      std::poisson_distribution<int> pubs(rate);
      const int n = pubs(rng);
      for (int i = 0; i < n && table->num_rows() < options.num_rows; ++i) {
        int venue_index;
        const double roll = unit(rng);
        if (roll < 0.45) {
          venue_index = favorite;
        } else if (roll < 0.85) {
          // Within the home community.
          do {
            venue_index = venue_pick(rng);
          } while (options.num_venues > 3 && VenueCommunity(venue_index) != community);
        } else {
          venue_index = venue_pick(rng);
        }
        CAPE_RETURN_IF_ERROR(append(author, year, kVenuePool[venue_index]));
      }
    }
  }

  CAPE_RETURN_IF_ERROR(table->Validate());
  return table;
}

}  // namespace cape
