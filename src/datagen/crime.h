#ifndef CAPE_DATAGEN_CRIME_H_
#define CAPE_DATAGEN_CRIME_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"
#include "storage/heap_file.h"

namespace cape {

/// Synthetic stand-in for the preprocessed Chicago Crime dataset of
/// Section 5 (4-11 discrete attributes, domain sizes 2..~59k, planted
/// attribute hierarchies that yield real functional dependencies).
///
/// Attribute order (the first `num_attrs` are emitted; the first four are
/// always present):
///   0 primary_type   string, ~20 values
///   1 community      int64, 1..num_communities
///   2 year           int64, year_min..year_max
///   3 month          int64, 1..12
///   4 district       int64   (FD: community -> district)
///   5 location_desc  string, ~40 values
///   6 arrest         string  {true,false}
///   7 beat           int64   (FDs: beat -> community -> district)
///   8 ward           int64   (FD: community -> ward)
///   9 week           int64   (FD: week -> month; weeks 1..48)
///  10 block          string, large domain (near-unique blocks per community)
struct CrimeOptions {
  int64_t num_rows = 10000;
  int num_attrs = 7;  // 4..11
  int num_types = 15;
  int num_communities = 30;
  int year_min = 2001;
  int year_max = 2017;

  /// Per-community linear year trends (some areas rising, some falling).
  /// Disable for stationary per-year counts (pure Poisson fragments), which
  /// the Figure 7 ground-truth experiment uses.
  bool year_trend = true;

  /// Plants the Appendix A.1 scenario: crimes of type "Battery" in
  /// community 26 dip in 2011 and spike in 2012, with a matching Battery
  /// spike in the adjacent community 25 in 2011 (Table 5 shape).
  bool plant_scenario = true;

  uint64_t seed = 7;
};

/// Generates the crime table with `options.num_attrs` columns.
Result<TablePtr> GenerateCrime(const CrimeOptions& options);

/// Streaming core shared by GenerateCrime and GenerateCrimeToHeapFile:
/// emits the schema into *fields and every generated row into `sink`, in a
/// deterministic order/RNG sequence that depends only on `options` — the
/// two callers therefore produce identical row streams, which is what
/// makes a heap file written here byte-compatible (same dictionaries, same
/// fingerprintable content) with the in-memory table.
Status GenerateCrimeRows(const CrimeOptions& options, std::vector<Field>* fields,
                         const std::function<Status(const Row&)>& sink);

/// Streams the crime table straight into a heap file at `path` without ever
/// materializing it: memory stays O(one page) regardless of num_rows, so
/// this is how the out-of-core bench builds tables larger than its budget
/// (and potentially larger than RAM).
Status GenerateCrimeToHeapFile(const CrimeOptions& options, const std::string& path,
                               int64_t rows_per_page = kDefaultRowsPerPage);

}  // namespace cape

#endif  // CAPE_DATAGEN_CRIME_H_
