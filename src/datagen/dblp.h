#ifndef CAPE_DATAGEN_DBLP_H_
#define CAPE_DATAGEN_DBLP_H_

#include <cstdint>

#include "common/result.h"
#include "relational/table.h"

namespace cape {

/// Synthetic stand-in for the DBLP bibliography extract used in Section 5
/// (Pub(author, pubid, year, venue)). See DESIGN.md §4: the generator
/// reproduces the statistical structure mining/explanation costs depend on
/// (row count, author popularity skew, per-author venue affinity, per-author
/// yearly trends) rather than real names.
struct DblpOptions {
  /// Exact number of rows to generate.
  int64_t num_rows = 10000;

  int num_authors = 300;
  int num_venues = 18;
  int year_min = 2001;
  int year_max = 2016;

  /// Fraction of authors whose yearly output grows linearly (the rest are
  /// roughly constant) — gives both Const and Lin patterns support.
  double linear_author_fraction = 0.3;

  /// Plants the running-example author "AX" (Example 1 / Tables 2-4): steady
  /// per-venue counts with a SIGKDD dip in 2007 counterbalanced by ICDE/ICDM
  /// spikes, a mild 2010 spike at the year level, a SIGKDD 2012 spike
  /// counterbalanced by low 2012/2013 venue counts.
  bool plant_running_example = true;

  uint64_t seed = 42;
};

/// Generates the Pub(author, pubid, year, venue) table.
Result<TablePtr> GenerateDblp(const DblpOptions& options);

/// The planted author name used when plant_running_example is set.
inline constexpr const char* kDblpPlantedAuthor = "AX";

}  // namespace cape

#endif  // CAPE_DATAGEN_DBLP_H_
