#include "pattern/pattern_io.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace cape {

namespace {

constexpr const char* kHeader = "CAPE_PATTERNS v1";

// The binary store writes native fixed-width values; the format is defined
// as little-endian, which every supported target is.
static_assert(std::endian::native == std::endian::little,
              "binary pattern store assumes a little-endian target");

/// Percent-escapes characters that would break the line/space structure.
std::string EscapeToken(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      out += StringFormat("%%%02X", c);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

Result<std::string> UnescapeToken(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) return Status::InvalidArgument("truncated %-escape");
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(escaped[i + 1]);
    const int lo = hex(escaped[i + 2]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("invalid %-escape");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::string ValueToken(const Value& v) {
  if (v.is_null()) return "n:";
  switch (v.type()) {
    case DataType::kInt64:
      return "i:" + std::to_string(v.int64_value());
    case DataType::kDouble:
      return "d:" + FormatDouble(v.double_value());
    case DataType::kString:
      return "s:" + EscapeToken(v.string_value());
  }
  return "n:";
}

Result<Value> ParseValueToken(const std::string& token) {
  if (token.size() < 2 || token[1] != ':') {
    return Status::InvalidArgument("malformed value token '" + token + "'");
  }
  const std::string payload = token.substr(2);
  switch (token[0]) {
    case 'n':
      return Value::Null();
    case 'i': {
      CAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(payload));
      return Value::Int64(v);
    }
    case 'd': {
      CAPE_ASSIGN_OR_RETURN(double v, ParseDouble(payload));
      return Value::Double(v);
    }
    case 's': {
      CAPE_ASSIGN_OR_RETURN(std::string s, UnescapeToken(payload));
      return Value::String(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown value tag '" + token + "'");
  }
}

/// Tokenizer over one line (space-separated, tokens themselves escaped).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  /// Next non-empty line split into tokens; NotFound at end of input.
  Result<std::vector<std::string>> NextLine() {
    std::string line;
    while (std::getline(stream_, line)) {
      ++line_number_;
      if (line.empty()) continue;
      std::vector<std::string> tokens;
      std::istringstream tokenizer(line);
      std::string token;
      while (tokenizer >> token) tokens.push_back(token);
      if (!tokens.empty()) return tokens;
    }
    return Status::NotFound("end of pattern file");
  }

  int line_number() const { return line_number_; }

 private:
  std::istringstream stream_;
  int line_number_ = 0;
};

Status ExpectTokens(const std::vector<std::string>& tokens, const char* tag,
                    size_t min_count) {
  if (tokens.empty() || tokens[0] != tag || tokens.size() < min_count) {
    return Status::InvalidArgument(std::string("expected '") + tag + "' record, got '" +
                                   JoinStrings(tokens, " ") + "'");
  }
  return Status::OK();
}

/// Attribute-mask helper shared by both parsers: every attribute reference
/// in a file must fit the relation the patterns are loaded against.
uint64_t SchemaAttrMask(const Schema& schema) {
  return schema.num_fields() >= 64 ? ~uint64_t{0}
                                   : ((uint64_t{1} << schema.num_fields()) - 1);
}

/// Header fields of one global-pattern record as raw integers, before any
/// enum cast — filled by the text tokenizer or the binary reader and turned
/// into a validated GlobalPattern by MakeValidatedPattern, so the two
/// formats enforce identical invariants.
struct RawPatternHeader {
  uint64_t f_bits = 0;
  uint64_t v_bits = 0;
  int64_t agg = 0;
  int64_t agg_attr = 0;
  int64_t model = 0;
  int64_t num_fragments = 0;
  int64_t num_supported = 0;
  int64_t num_holding = 0;
  double max_positive_dev = 0.0;
  double min_negative_dev = 0.0;
  int64_t local_count = 0;
};

Result<GlobalPattern> MakeValidatedPattern(const RawPatternHeader& raw,
                                           const Schema& schema, int64_t pi) {
  const uint64_t attr_mask = SchemaAttrMask(schema);
  if ((raw.f_bits & ~attr_mask) != 0 || (raw.v_bits & ~attr_mask) != 0) {
    return Status::InvalidArgument(
        "pattern record " + std::to_string(pi) +
        " references attributes outside the relation's " +
        std::to_string(schema.num_fields()) + " fields");
  }
  GlobalPattern gp;
  gp.pattern.partition_attrs = AttrSet(raw.f_bits);
  gp.pattern.predictor_attrs = AttrSet(raw.v_bits);
  if (raw.agg < static_cast<int64_t>(AggFunc::kCount) ||
      raw.agg > static_cast<int64_t>(AggFunc::kMax)) {
    return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                   " has unknown aggregate function id " +
                                   std::to_string(raw.agg));
  }
  gp.pattern.agg = static_cast<AggFunc>(raw.agg);
  if (raw.agg_attr != Pattern::kCountStar &&
      (raw.agg_attr < 0 || raw.agg_attr >= schema.num_fields())) {
    return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                   " has aggregate attribute " +
                                   std::to_string(raw.agg_attr) +
                                   " outside the relation's fields");
  }
  gp.pattern.agg_attr = static_cast<int>(raw.agg_attr);
  if (raw.model < static_cast<int64_t>(ModelType::kConst) ||
      raw.model > static_cast<int64_t>(ModelType::kLinear)) {
    return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                   " has unknown model type id " +
                                   std::to_string(raw.model));
  }
  gp.pattern.model = static_cast<ModelType>(raw.model);
  gp.num_fragments = raw.num_fragments;
  gp.num_supported = raw.num_supported;
  gp.num_holding = raw.num_holding;
  if (gp.num_fragments < 0 || gp.num_supported < 0 || gp.num_holding < 0) {
    return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                   " has negative fragment counters");
  }
  gp.max_positive_dev = raw.max_positive_dev;
  gp.min_negative_dev = raw.min_negative_dev;
  if (raw.local_count < 0) {
    return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                   " has negative local-pattern count");
  }
  if (!gp.pattern.IsWellFormed()) {
    return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                   " is not well-formed");
  }
  gp.global_confidence =
      gp.num_supported > 0
          ? static_cast<double>(gp.num_holding) / static_cast<double>(gp.num_supported)
          : 0.0;
  return gp;
}

}  // namespace

std::string SerializePatternSet(const PatternSet& patterns, const Schema& schema) {
  std::string out = kHeader;
  out += "\n";
  out += "schema " + std::to_string(schema.num_fields()) + "\n";
  for (int i = 0; i < schema.num_fields(); ++i) {
    out += StringFormat("field %s %s\n", EscapeToken(schema.field(i).name).c_str(),
                        DataTypeToString(schema.field(i).type));
  }
  out += "patterns " + std::to_string(patterns.size()) + "\n";
  for (const GlobalPattern& gp : patterns.patterns()) {
    const Pattern& p = gp.pattern;
    out += StringFormat(
        "pattern %llu %llu %d %d %d %lld %lld %lld %s %s %zu\n",
        static_cast<unsigned long long>(p.partition_attrs.bits()),
        static_cast<unsigned long long>(p.predictor_attrs.bits()),
        static_cast<int>(p.agg), p.agg_attr, static_cast<int>(p.model),
        static_cast<long long>(gp.num_fragments), static_cast<long long>(gp.num_supported),
        static_cast<long long>(gp.num_holding), FormatDouble(gp.max_positive_dev).c_str(),
        FormatDouble(gp.min_negative_dev).c_str(), gp.locals.size());
    for (const LocalPattern& local : gp.locals) {
      out += StringFormat("local %lld %s %s", static_cast<long long>(local.support),
                          FormatDouble(local.max_positive_dev).c_str(),
                          FormatDouble(local.min_negative_dev).c_str());
      for (const Value& v : local.fragment) out += " " + ValueToken(v);
      out += "\n";
      if (local.model->type() == ModelType::kConst) {
        const auto* model = static_cast<const ConstantRegression*>(local.model.get());
        out += StringFormat("model const %s %s %zu\n", FormatDouble(model->beta()).c_str(),
                            FormatDouble(model->goodness_of_fit()).c_str(),
                            model->num_samples());
      } else {
        const auto* model = static_cast<const LinearRegression*>(local.model.get());
        out += StringFormat("model linear %zu", model->coefficients().size());
        for (double c : model->coefficients()) out += " " + FormatDouble(c);
        out += StringFormat(" %s %zu\n", FormatDouble(model->goodness_of_fit()).c_str(),
                            model->num_samples());
      }
    }
  }
  return out;
}

Result<PatternSet> DeserializePatternSet(const std::string& text, const Schema& schema) {
  LineReader reader(text);

  CAPE_ASSIGN_OR_RETURN(auto header, reader.NextLine());
  if (JoinStrings(header, " ") != kHeader) {
    return Status::InvalidArgument("not a CAPE pattern file (bad header)");
  }

  CAPE_ASSIGN_OR_RETURN(auto schema_line, reader.NextLine());
  CAPE_RETURN_IF_ERROR(ExpectTokens(schema_line, "schema", 2));
  CAPE_ASSIGN_OR_RETURN(int64_t field_count, ParseInt64(schema_line[1]));
  if (field_count != schema.num_fields()) {
    return Status::InvalidArgument(
        "pattern file was mined against a schema with " + std::to_string(field_count) +
        " fields; current relation has " + std::to_string(schema.num_fields()));
  }
  for (int i = 0; i < field_count; ++i) {
    CAPE_ASSIGN_OR_RETURN(auto field_line, reader.NextLine());
    CAPE_RETURN_IF_ERROR(ExpectTokens(field_line, "field", 3));
    CAPE_ASSIGN_OR_RETURN(std::string name, UnescapeToken(field_line[1]));
    if (name != schema.field(i).name ||
        field_line[2] != DataTypeToString(schema.field(i).type)) {
      return Status::InvalidArgument("pattern file field " + std::to_string(i) + " is '" +
                                     name + " " + field_line[2] +
                                     "', relation has '" + schema.field(i).name + " " +
                                     DataTypeToString(schema.field(i).type) + "'");
    }
  }

  CAPE_ASSIGN_OR_RETURN(auto count_line, reader.NextLine());
  CAPE_RETURN_IF_ERROR(ExpectTokens(count_line, "patterns", 2));
  CAPE_ASSIGN_OR_RETURN(int64_t pattern_count, ParseInt64(count_line[1]));
  if (pattern_count < 0) {
    return Status::InvalidArgument("negative pattern count " +
                                   std::to_string(pattern_count));
  }

  PatternSet out;
  for (int64_t pi = 0; pi < pattern_count; ++pi) {
    CAPE_ASSIGN_OR_RETURN(auto line, reader.NextLine());
    CAPE_RETURN_IF_ERROR(ExpectTokens(line, "pattern", 12));
    RawPatternHeader raw;
    CAPE_ASSIGN_OR_RETURN(int64_t f_bits, ParseInt64(line[1]));
    CAPE_ASSIGN_OR_RETURN(int64_t v_bits, ParseInt64(line[2]));
    raw.f_bits = static_cast<uint64_t>(f_bits);
    raw.v_bits = static_cast<uint64_t>(v_bits);
    CAPE_ASSIGN_OR_RETURN(raw.agg, ParseInt64(line[3]));
    CAPE_ASSIGN_OR_RETURN(raw.agg_attr, ParseInt64(line[4]));
    CAPE_ASSIGN_OR_RETURN(raw.model, ParseInt64(line[5]));
    CAPE_ASSIGN_OR_RETURN(raw.num_fragments, ParseInt64(line[6]));
    CAPE_ASSIGN_OR_RETURN(raw.num_supported, ParseInt64(line[7]));
    CAPE_ASSIGN_OR_RETURN(raw.num_holding, ParseInt64(line[8]));
    CAPE_ASSIGN_OR_RETURN(raw.max_positive_dev, ParseDouble(line[9]));
    CAPE_ASSIGN_OR_RETURN(raw.min_negative_dev, ParseDouble(line[10]));
    CAPE_ASSIGN_OR_RETURN(raw.local_count, ParseInt64(line[11]));
    CAPE_ASSIGN_OR_RETURN(GlobalPattern gp, MakeValidatedPattern(raw, schema, pi));

    const int expected_fragment_arity = gp.pattern.partition_attrs.size();
    for (int64_t li = 0; li < raw.local_count; ++li) {
      CAPE_ASSIGN_OR_RETURN(auto local_line, reader.NextLine());
      CAPE_RETURN_IF_ERROR(ExpectTokens(local_line, "local", 4));
      LocalPattern local;
      CAPE_ASSIGN_OR_RETURN(local.support, ParseInt64(local_line[1]));
      CAPE_ASSIGN_OR_RETURN(local.max_positive_dev, ParseDouble(local_line[2]));
      CAPE_ASSIGN_OR_RETURN(local.min_negative_dev, ParseDouble(local_line[3]));
      for (size_t t = 4; t < local_line.size(); ++t) {
        CAPE_ASSIGN_OR_RETURN(Value v, ParseValueToken(local_line[t]));
        local.fragment.push_back(std::move(v));
      }
      if (static_cast<int>(local.fragment.size()) != expected_fragment_arity) {
        return Status::InvalidArgument("local record has fragment arity " +
                                       std::to_string(local.fragment.size()) +
                                       ", pattern expects " +
                                       std::to_string(expected_fragment_arity));
      }

      CAPE_ASSIGN_OR_RETURN(auto model_line, reader.NextLine());
      CAPE_RETURN_IF_ERROR(ExpectTokens(model_line, "model", 2));
      if (model_line[1] == "const") {
        CAPE_RETURN_IF_ERROR(ExpectTokens(model_line, "model", 5));
        CAPE_ASSIGN_OR_RETURN(double beta, ParseDouble(model_line[2]));
        CAPE_ASSIGN_OR_RETURN(double gof, ParseDouble(model_line[3]));
        CAPE_ASSIGN_OR_RETURN(int64_t n, ParseInt64(model_line[4]));
        local.model = ConstantRegression::FromParams(beta, gof, static_cast<size_t>(n));
      } else if (model_line[1] == "linear") {
        CAPE_RETURN_IF_ERROR(ExpectTokens(model_line, "model", 5));
        CAPE_ASSIGN_OR_RETURN(int64_t coef_count, ParseInt64(model_line[2]));
        if (static_cast<int64_t>(model_line.size()) != 3 + coef_count + 2) {
          return Status::InvalidArgument("malformed linear model record");
        }
        std::vector<double> coefs;
        for (int64_t c = 0; c < coef_count; ++c) {
          CAPE_ASSIGN_OR_RETURN(double coef, ParseDouble(model_line[3 + c]));
          coefs.push_back(coef);
        }
        CAPE_ASSIGN_OR_RETURN(double gof, ParseDouble(model_line[3 + coef_count]));
        CAPE_ASSIGN_OR_RETURN(int64_t n, ParseInt64(model_line[4 + coef_count]));
        local.model =
            LinearRegression::FromParams(std::move(coefs), gof, static_cast<size_t>(n));
      } else {
        return Status::InvalidArgument("unknown model kind '" + model_line[1] + "'");
      }
      gp.locals.push_back(std::move(local));
    }
    out.Add(std::move(gp));
  }
  return out;
}

namespace {

constexpr char kBinaryMagic[8] = {'C', 'A', 'P', 'E', 'A', 'R', 'P', 'B'};

// Value tags of the binary codec (one byte per fragment value).
enum class ValueTag : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

// Model-record kinds.
enum class ModelTag : uint8_t { kConst = 0, kLinear = 1 };

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}
void AppendU8(std::string* out, uint8_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendI64(std::string* out, int64_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendF64(std::string* out, double v) { AppendRaw(out, &v, sizeof(v)); }
void AppendLenString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  AppendRaw(out, s.data(), s.size());
}

void AppendBinaryValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    AppendU8(out, static_cast<uint8_t>(ValueTag::kNull));
    return;
  }
  switch (v.type()) {
    case DataType::kInt64:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kInt64));
      AppendI64(out, v.int64_value());
      return;
    case DataType::kDouble:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kDouble));
      AppendF64(out, v.double_value());
      return;
    case DataType::kString:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kString));
      AppendLenString(out, v.string_value());
      return;
  }
  AppendU8(out, static_cast<uint8_t>(ValueTag::kNull));
}

/// Bounds-checked cursor over the store's payload. Every read either
/// succeeds in full or returns InvalidArgument without advancing past the
/// end — corrupt length fields can never cause an out-of-bounds access.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status Read(void* out, size_t len) {
    if (len > remaining()) {
      return Status::InvalidArgument("truncated pattern store (unexpected end of input)");
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Result<uint8_t> ReadU8() { return ReadAs<uint8_t>(); }
  Result<uint32_t> ReadU32() { return ReadAs<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadAs<uint64_t>(); }
  Result<int64_t> ReadI64() { return ReadAs<int64_t>(); }
  Result<double> ReadF64() { return ReadAs<double>(); }

  Result<std::string> ReadLenString() {
    CAPE_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (len > remaining()) {
      return Status::InvalidArgument("truncated pattern store (string length " +
                                     std::to_string(len) + " exceeds remaining bytes)");
    }
    std::string s(data_.data() + pos_, len);
    pos_ += len;
    return s;
  }

  Result<Value> ReadValue() {
    CAPE_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
    switch (static_cast<ValueTag>(tag)) {
      case ValueTag::kNull:
        return Value::Null();
      case ValueTag::kInt64: {
        CAPE_ASSIGN_OR_RETURN(int64_t v, ReadI64());
        return Value::Int64(v);
      }
      case ValueTag::kDouble: {
        CAPE_ASSIGN_OR_RETURN(double v, ReadF64());
        return Value::Double(v);
      }
      case ValueTag::kString: {
        CAPE_ASSIGN_OR_RETURN(std::string s, ReadLenString());
        return Value::String(std::move(s));
      }
    }
    return Status::InvalidArgument("unknown value tag " + std::to_string(tag) +
                                   " in pattern store");
  }

 private:
  template <typename T>
  Result<T> ReadAs() {
    T v{};  // zero-init: Read() fills it, but GCC can't see through the memcpy
    CAPE_RETURN_IF_ERROR(Read(&v, sizeof(T)));
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializePatternSetBinary(const PatternSet& patterns, const Schema& schema,
                                      uint64_t mining_config_digest) {
  std::string out;
  AppendRaw(&out, kBinaryMagic, sizeof(kBinaryMagic));
  AppendU32(&out, kPatternStoreFormatVersion);
  AppendU64(&out, schema.Digest());
  AppendU64(&out, mining_config_digest);
  AppendU32(&out, static_cast<uint32_t>(schema.num_fields()));
  for (int i = 0; i < schema.num_fields(); ++i) {
    AppendLenString(&out, schema.field(i).name);
    AppendU8(&out, static_cast<uint8_t>(schema.field(i).type));
  }
  AppendU64(&out, patterns.size());
  for (const GlobalPattern& gp : patterns.patterns()) {
    const Pattern& p = gp.pattern;
    AppendU64(&out, p.partition_attrs.bits());
    AppendU64(&out, p.predictor_attrs.bits());
    AppendU8(&out, static_cast<uint8_t>(p.agg));
    AppendI64(&out, p.agg_attr);
    AppendU8(&out, static_cast<uint8_t>(p.model));
    AppendI64(&out, gp.num_fragments);
    AppendI64(&out, gp.num_supported);
    AppendI64(&out, gp.num_holding);
    AppendF64(&out, gp.max_positive_dev);
    AppendF64(&out, gp.min_negative_dev);
    AppendU64(&out, gp.locals.size());
    for (const LocalPattern& local : gp.locals) {
      AppendI64(&out, local.support);
      AppendF64(&out, local.max_positive_dev);
      AppendF64(&out, local.min_negative_dev);
      for (const Value& v : local.fragment) AppendBinaryValue(&out, v);
      if (local.model->type() == ModelType::kConst) {
        const auto* model = static_cast<const ConstantRegression*>(local.model.get());
        AppendU8(&out, static_cast<uint8_t>(ModelTag::kConst));
        AppendF64(&out, model->beta());
        AppendF64(&out, model->goodness_of_fit());
        AppendU64(&out, model->num_samples());
      } else {
        const auto* model = static_cast<const LinearRegression*>(local.model.get());
        AppendU8(&out, static_cast<uint8_t>(ModelTag::kLinear));
        AppendU32(&out, static_cast<uint32_t>(model->coefficients().size()));
        for (double c : model->coefficients()) AppendF64(&out, c);
        AppendF64(&out, model->goodness_of_fit());
        AppendU64(&out, model->num_samples());
      }
    }
  }
  Fnv64 checksum;
  checksum.Update(out.data(), out.size());
  AppendU64(&out, checksum.digest());
  return out;
}

bool LooksLikeBinaryPatternStore(std::string_view bytes) {
  return bytes.size() >= sizeof(kBinaryMagic) &&
         std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) == 0;
}

Result<PatternSet> DeserializePatternSetBinary(std::string_view bytes, const Schema& schema,
                                               PatternStoreMeta* meta) {
  if (!LooksLikeBinaryPatternStore(bytes)) {
    return Status::InvalidArgument("not a CAPE binary pattern store (bad magic)");
  }
  if (bytes.size() < sizeof(kBinaryMagic) + sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated pattern store (shorter than header)");
  }
  // The whole store is covered by the trailing checksum; verifying it first
  // turns any corruption or truncation into one clean error before a single
  // field is interpreted.
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  Fnv64 checksum;
  checksum.Update(bytes.data(), payload_size);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_size, sizeof(stored_checksum));
  if (checksum.digest() != stored_checksum) {
    return Status::InvalidArgument(
        "pattern store checksum mismatch (corrupt or truncated file)");
  }

  ByteReader reader(bytes.substr(sizeof(kBinaryMagic), payload_size - sizeof(kBinaryMagic)));
  CAPE_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kPatternStoreFormatVersion) {
    return Status::InvalidArgument("unsupported pattern store format version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kPatternStoreFormatVersion) + ")");
  }
  CAPE_ASSIGN_OR_RETURN(uint64_t schema_digest, reader.ReadU64());
  CAPE_ASSIGN_OR_RETURN(uint64_t config_digest, reader.ReadU64());
  if (meta != nullptr) {
    meta->format_version = version;
    meta->schema_digest = schema_digest;
    meta->mining_config_digest = config_digest;
  }

  // Field-by-field comparison before the digest check so mismatches name the
  // offending field instead of reporting an opaque digest difference.
  CAPE_ASSIGN_OR_RETURN(uint32_t field_count, reader.ReadU32());
  if (static_cast<int64_t>(field_count) != schema.num_fields()) {
    return Status::InvalidArgument(
        "pattern store was mined against a schema with " + std::to_string(field_count) +
        " fields; current relation has " + std::to_string(schema.num_fields()));
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    CAPE_ASSIGN_OR_RETURN(std::string name, reader.ReadLenString());
    CAPE_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
    if (name != schema.field(i).name ||
        type != static_cast<uint8_t>(schema.field(i).type)) {
      return Status::InvalidArgument(
          "pattern store field " + std::to_string(i) + " is '" + name +
          "', relation has '" + schema.field(i).name + " " +
          DataTypeToString(schema.field(i).type) + "'");
    }
  }
  if (schema_digest != schema.Digest()) {
    return Status::InvalidArgument(
        "pattern store schema digest does not match the current relation");
  }

  CAPE_ASSIGN_OR_RETURN(uint64_t pattern_count, reader.ReadU64());
  PatternSet out;
  for (uint64_t pi = 0; pi < pattern_count; ++pi) {
    RawPatternHeader raw;
    CAPE_ASSIGN_OR_RETURN(raw.f_bits, reader.ReadU64());
    CAPE_ASSIGN_OR_RETURN(raw.v_bits, reader.ReadU64());
    CAPE_ASSIGN_OR_RETURN(uint8_t agg, reader.ReadU8());
    raw.agg = agg;
    CAPE_ASSIGN_OR_RETURN(raw.agg_attr, reader.ReadI64());
    CAPE_ASSIGN_OR_RETURN(uint8_t model, reader.ReadU8());
    raw.model = model;
    CAPE_ASSIGN_OR_RETURN(raw.num_fragments, reader.ReadI64());
    CAPE_ASSIGN_OR_RETURN(raw.num_supported, reader.ReadI64());
    CAPE_ASSIGN_OR_RETURN(raw.num_holding, reader.ReadI64());
    CAPE_ASSIGN_OR_RETURN(raw.max_positive_dev, reader.ReadF64());
    CAPE_ASSIGN_OR_RETURN(raw.min_negative_dev, reader.ReadF64());
    CAPE_ASSIGN_OR_RETURN(uint64_t local_count, reader.ReadU64());
    if (local_count > reader.remaining()) {
      // Each local record is > 1 byte, so a count beyond the remaining byte
      // count is corrupt regardless of content (prevents absurd loop bounds).
      return Status::InvalidArgument("pattern store local-pattern count " +
                                     std::to_string(local_count) +
                                     " exceeds remaining input");
    }
    raw.local_count = static_cast<int64_t>(local_count);
    CAPE_ASSIGN_OR_RETURN(GlobalPattern gp,
                          MakeValidatedPattern(raw, schema, static_cast<int64_t>(pi)));

    const int expected_fragment_arity = gp.pattern.partition_attrs.size();
    for (uint64_t li = 0; li < local_count; ++li) {
      LocalPattern local;
      CAPE_ASSIGN_OR_RETURN(local.support, reader.ReadI64());
      CAPE_ASSIGN_OR_RETURN(local.max_positive_dev, reader.ReadF64());
      CAPE_ASSIGN_OR_RETURN(local.min_negative_dev, reader.ReadF64());
      local.fragment.reserve(static_cast<size_t>(expected_fragment_arity));
      for (int f = 0; f < expected_fragment_arity; ++f) {
        CAPE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
        local.fragment.push_back(std::move(v));
      }
      CAPE_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
      if (static_cast<ModelTag>(kind) == ModelTag::kConst) {
        CAPE_ASSIGN_OR_RETURN(double beta, reader.ReadF64());
        CAPE_ASSIGN_OR_RETURN(double gof, reader.ReadF64());
        CAPE_ASSIGN_OR_RETURN(uint64_t n, reader.ReadU64());
        local.model = ConstantRegression::FromParams(beta, gof, static_cast<size_t>(n));
      } else if (static_cast<ModelTag>(kind) == ModelTag::kLinear) {
        CAPE_ASSIGN_OR_RETURN(uint32_t coef_count, reader.ReadU32());
        if (coef_count > reader.remaining() / sizeof(double)) {
          return Status::InvalidArgument("pattern store coefficient count " +
                                         std::to_string(coef_count) +
                                         " exceeds remaining input");
        }
        std::vector<double> coefs;
        coefs.reserve(coef_count);
        for (uint32_t c = 0; c < coef_count; ++c) {
          CAPE_ASSIGN_OR_RETURN(double coef, reader.ReadF64());
          coefs.push_back(coef);
        }
        CAPE_ASSIGN_OR_RETURN(double gof, reader.ReadF64());
        CAPE_ASSIGN_OR_RETURN(uint64_t n, reader.ReadU64());
        local.model =
            LinearRegression::FromParams(std::move(coefs), gof, static_cast<size_t>(n));
      } else {
        return Status::InvalidArgument("unknown model kind " + std::to_string(kind) +
                                       " in pattern store");
      }
      gp.locals.push_back(std::move(local));
    }
    out.Add(std::move(gp));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("pattern store has " +
                                   std::to_string(reader.remaining()) +
                                   " trailing bytes after the last pattern");
  }
  return out;
}

Status SavePatternSet(const PatternSet& patterns, const Schema& schema,
                      const std::string& path) {
  CAPE_FAILPOINT("pattern_io.save");
  std::ofstream file(path);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for writing");
  file << SerializePatternSet(patterns, schema);
  if (!file.good()) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

Result<PatternSet> LoadPatternSet(const std::string& path, const Schema& schema,
                                  PatternStoreMeta* meta) {
  CAPE_FAILPOINT("pattern_io.load");
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string bytes = std::move(buffer).str();
  // Format sniffing: binary stores are self-identifying via the magic, so
  // both the offline (text, diffable) and serving (binary) artifacts load
  // through the same entry point.
  if (LooksLikeBinaryPatternStore(bytes)) {
    return DeserializePatternSetBinary(bytes, schema, meta);
  }
  return DeserializePatternSet(bytes, schema);
}

Status SavePatternSetBinary(const PatternSet& patterns, const Schema& schema,
                            const std::string& path, uint64_t mining_config_digest) {
  CAPE_FAILPOINT("pattern_io.save");
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for writing");
  const std::string bytes = SerializePatternSetBinary(patterns, schema, mining_config_digest);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file.good()) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

Result<PatternSet> LoadPatternSetBinary(const std::string& path, const Schema& schema,
                                        PatternStoreMeta* meta) {
  CAPE_FAILPOINT("pattern_io.load");
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializePatternSetBinary(std::move(buffer).str(), schema, meta);
}

}  // namespace cape
