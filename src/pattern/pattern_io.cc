#include "pattern/pattern_io.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace cape {

namespace {

constexpr const char* kHeader = "CAPE_PATTERNS v1";

/// Percent-escapes characters that would break the line/space structure.
std::string EscapeToken(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      out += StringFormat("%%%02X", c);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

Result<std::string> UnescapeToken(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) return Status::InvalidArgument("truncated %-escape");
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(escaped[i + 1]);
    const int lo = hex(escaped[i + 2]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("invalid %-escape");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::string ValueToken(const Value& v) {
  if (v.is_null()) return "n:";
  switch (v.type()) {
    case DataType::kInt64:
      return "i:" + std::to_string(v.int64_value());
    case DataType::kDouble:
      return "d:" + FormatDouble(v.double_value());
    case DataType::kString:
      return "s:" + EscapeToken(v.string_value());
  }
  return "n:";
}

Result<Value> ParseValueToken(const std::string& token) {
  if (token.size() < 2 || token[1] != ':') {
    return Status::InvalidArgument("malformed value token '" + token + "'");
  }
  const std::string payload = token.substr(2);
  switch (token[0]) {
    case 'n':
      return Value::Null();
    case 'i': {
      CAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(payload));
      return Value::Int64(v);
    }
    case 'd': {
      CAPE_ASSIGN_OR_RETURN(double v, ParseDouble(payload));
      return Value::Double(v);
    }
    case 's': {
      CAPE_ASSIGN_OR_RETURN(std::string s, UnescapeToken(payload));
      return Value::String(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown value tag '" + token + "'");
  }
}

/// Tokenizer over one line (space-separated, tokens themselves escaped).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  /// Next non-empty line split into tokens; NotFound at end of input.
  Result<std::vector<std::string>> NextLine() {
    std::string line;
    while (std::getline(stream_, line)) {
      ++line_number_;
      if (line.empty()) continue;
      std::vector<std::string> tokens;
      std::istringstream tokenizer(line);
      std::string token;
      while (tokenizer >> token) tokens.push_back(token);
      if (!tokens.empty()) return tokens;
    }
    return Status::NotFound("end of pattern file");
  }

  int line_number() const { return line_number_; }

 private:
  std::istringstream stream_;
  int line_number_ = 0;
};

Status ExpectTokens(const std::vector<std::string>& tokens, const char* tag,
                    size_t min_count) {
  if (tokens.empty() || tokens[0] != tag || tokens.size() < min_count) {
    return Status::InvalidArgument(std::string("expected '") + tag + "' record, got '" +
                                   JoinStrings(tokens, " ") + "'");
  }
  return Status::OK();
}

}  // namespace

std::string SerializePatternSet(const PatternSet& patterns, const Schema& schema) {
  std::string out = kHeader;
  out += "\n";
  out += "schema " + std::to_string(schema.num_fields()) + "\n";
  for (int i = 0; i < schema.num_fields(); ++i) {
    out += StringFormat("field %s %s\n", EscapeToken(schema.field(i).name).c_str(),
                        DataTypeToString(schema.field(i).type));
  }
  out += "patterns " + std::to_string(patterns.size()) + "\n";
  for (const GlobalPattern& gp : patterns.patterns()) {
    const Pattern& p = gp.pattern;
    out += StringFormat(
        "pattern %llu %llu %d %d %d %lld %lld %lld %s %s %zu\n",
        static_cast<unsigned long long>(p.partition_attrs.bits()),
        static_cast<unsigned long long>(p.predictor_attrs.bits()),
        static_cast<int>(p.agg), p.agg_attr, static_cast<int>(p.model),
        static_cast<long long>(gp.num_fragments), static_cast<long long>(gp.num_supported),
        static_cast<long long>(gp.num_holding), FormatDouble(gp.max_positive_dev).c_str(),
        FormatDouble(gp.min_negative_dev).c_str(), gp.locals.size());
    for (const LocalPattern& local : gp.locals) {
      out += StringFormat("local %lld %s %s", static_cast<long long>(local.support),
                          FormatDouble(local.max_positive_dev).c_str(),
                          FormatDouble(local.min_negative_dev).c_str());
      for (const Value& v : local.fragment) out += " " + ValueToken(v);
      out += "\n";
      if (local.model->type() == ModelType::kConst) {
        const auto* model = static_cast<const ConstantRegression*>(local.model.get());
        out += StringFormat("model const %s %s %zu\n", FormatDouble(model->beta()).c_str(),
                            FormatDouble(model->goodness_of_fit()).c_str(),
                            model->num_samples());
      } else {
        const auto* model = static_cast<const LinearRegression*>(local.model.get());
        out += StringFormat("model linear %zu", model->coefficients().size());
        for (double c : model->coefficients()) out += " " + FormatDouble(c);
        out += StringFormat(" %s %zu\n", FormatDouble(model->goodness_of_fit()).c_str(),
                            model->num_samples());
      }
    }
  }
  return out;
}

Result<PatternSet> DeserializePatternSet(const std::string& text, const Schema& schema) {
  LineReader reader(text);

  CAPE_ASSIGN_OR_RETURN(auto header, reader.NextLine());
  if (JoinStrings(header, " ") != kHeader) {
    return Status::InvalidArgument("not a CAPE pattern file (bad header)");
  }

  CAPE_ASSIGN_OR_RETURN(auto schema_line, reader.NextLine());
  CAPE_RETURN_IF_ERROR(ExpectTokens(schema_line, "schema", 2));
  CAPE_ASSIGN_OR_RETURN(int64_t field_count, ParseInt64(schema_line[1]));
  if (field_count != schema.num_fields()) {
    return Status::InvalidArgument(
        "pattern file was mined against a schema with " + std::to_string(field_count) +
        " fields; current relation has " + std::to_string(schema.num_fields()));
  }
  for (int i = 0; i < field_count; ++i) {
    CAPE_ASSIGN_OR_RETURN(auto field_line, reader.NextLine());
    CAPE_RETURN_IF_ERROR(ExpectTokens(field_line, "field", 3));
    CAPE_ASSIGN_OR_RETURN(std::string name, UnescapeToken(field_line[1]));
    if (name != schema.field(i).name ||
        field_line[2] != DataTypeToString(schema.field(i).type)) {
      return Status::InvalidArgument("pattern file field " + std::to_string(i) + " is '" +
                                     name + " " + field_line[2] +
                                     "', relation has '" + schema.field(i).name + " " +
                                     DataTypeToString(schema.field(i).type) + "'");
    }
  }

  CAPE_ASSIGN_OR_RETURN(auto count_line, reader.NextLine());
  CAPE_RETURN_IF_ERROR(ExpectTokens(count_line, "patterns", 2));
  CAPE_ASSIGN_OR_RETURN(int64_t pattern_count, ParseInt64(count_line[1]));
  if (pattern_count < 0) {
    return Status::InvalidArgument("negative pattern count " +
                                   std::to_string(pattern_count));
  }

  // Every attribute reference in the file must fit the relation the
  // patterns are being loaded against.
  const uint64_t attr_mask =
      schema.num_fields() >= 64 ? ~uint64_t{0}
                                : ((uint64_t{1} << schema.num_fields()) - 1);

  PatternSet out;
  for (int64_t pi = 0; pi < pattern_count; ++pi) {
    CAPE_ASSIGN_OR_RETURN(auto line, reader.NextLine());
    CAPE_RETURN_IF_ERROR(ExpectTokens(line, "pattern", 12));
    GlobalPattern gp;
    CAPE_ASSIGN_OR_RETURN(int64_t f_bits, ParseInt64(line[1]));
    CAPE_ASSIGN_OR_RETURN(int64_t v_bits, ParseInt64(line[2]));
    if ((static_cast<uint64_t>(f_bits) & ~attr_mask) != 0 ||
        (static_cast<uint64_t>(v_bits) & ~attr_mask) != 0) {
      return Status::InvalidArgument(
          "pattern record " + std::to_string(pi) +
          " references attributes outside the relation's " +
          std::to_string(schema.num_fields()) + " fields");
    }
    gp.pattern.partition_attrs = AttrSet(static_cast<uint64_t>(f_bits));
    gp.pattern.predictor_attrs = AttrSet(static_cast<uint64_t>(v_bits));
    CAPE_ASSIGN_OR_RETURN(int64_t agg, ParseInt64(line[3]));
    if (agg < static_cast<int64_t>(AggFunc::kCount) ||
        agg > static_cast<int64_t>(AggFunc::kMax)) {
      return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                     " has unknown aggregate function id " +
                                     std::to_string(agg));
    }
    gp.pattern.agg = static_cast<AggFunc>(agg);
    CAPE_ASSIGN_OR_RETURN(int64_t agg_attr, ParseInt64(line[4]));
    if (agg_attr != Pattern::kCountStar &&
        (agg_attr < 0 || agg_attr >= schema.num_fields())) {
      return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                     " has aggregate attribute " +
                                     std::to_string(agg_attr) +
                                     " outside the relation's fields");
    }
    gp.pattern.agg_attr = static_cast<int>(agg_attr);
    CAPE_ASSIGN_OR_RETURN(int64_t model, ParseInt64(line[5]));
    if (model < static_cast<int64_t>(ModelType::kConst) ||
        model > static_cast<int64_t>(ModelType::kLinear)) {
      return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                     " has unknown model type id " + std::to_string(model));
    }
    gp.pattern.model = static_cast<ModelType>(model);
    CAPE_ASSIGN_OR_RETURN(gp.num_fragments, ParseInt64(line[6]));
    CAPE_ASSIGN_OR_RETURN(gp.num_supported, ParseInt64(line[7]));
    CAPE_ASSIGN_OR_RETURN(gp.num_holding, ParseInt64(line[8]));
    if (gp.num_fragments < 0 || gp.num_supported < 0 || gp.num_holding < 0) {
      return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                     " has negative fragment counters");
    }
    CAPE_ASSIGN_OR_RETURN(gp.max_positive_dev, ParseDouble(line[9]));
    CAPE_ASSIGN_OR_RETURN(gp.min_negative_dev, ParseDouble(line[10]));
    CAPE_ASSIGN_OR_RETURN(int64_t local_count, ParseInt64(line[11]));
    if (local_count < 0) {
      return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                     " has negative local-pattern count");
    }
    if (!gp.pattern.IsWellFormed()) {
      return Status::InvalidArgument("pattern record " + std::to_string(pi) +
                                     " is not well-formed");
    }
    gp.global_confidence =
        gp.num_supported > 0
            ? static_cast<double>(gp.num_holding) / static_cast<double>(gp.num_supported)
            : 0.0;

    const int expected_fragment_arity = gp.pattern.partition_attrs.size();
    for (int64_t li = 0; li < local_count; ++li) {
      CAPE_ASSIGN_OR_RETURN(auto local_line, reader.NextLine());
      CAPE_RETURN_IF_ERROR(ExpectTokens(local_line, "local", 4));
      LocalPattern local;
      CAPE_ASSIGN_OR_RETURN(local.support, ParseInt64(local_line[1]));
      CAPE_ASSIGN_OR_RETURN(local.max_positive_dev, ParseDouble(local_line[2]));
      CAPE_ASSIGN_OR_RETURN(local.min_negative_dev, ParseDouble(local_line[3]));
      for (size_t t = 4; t < local_line.size(); ++t) {
        CAPE_ASSIGN_OR_RETURN(Value v, ParseValueToken(local_line[t]));
        local.fragment.push_back(std::move(v));
      }
      if (static_cast<int>(local.fragment.size()) != expected_fragment_arity) {
        return Status::InvalidArgument("local record has fragment arity " +
                                       std::to_string(local.fragment.size()) +
                                       ", pattern expects " +
                                       std::to_string(expected_fragment_arity));
      }

      CAPE_ASSIGN_OR_RETURN(auto model_line, reader.NextLine());
      CAPE_RETURN_IF_ERROR(ExpectTokens(model_line, "model", 2));
      if (model_line[1] == "const") {
        CAPE_RETURN_IF_ERROR(ExpectTokens(model_line, "model", 5));
        CAPE_ASSIGN_OR_RETURN(double beta, ParseDouble(model_line[2]));
        CAPE_ASSIGN_OR_RETURN(double gof, ParseDouble(model_line[3]));
        CAPE_ASSIGN_OR_RETURN(int64_t n, ParseInt64(model_line[4]));
        local.model = ConstantRegression::FromParams(beta, gof, static_cast<size_t>(n));
      } else if (model_line[1] == "linear") {
        CAPE_RETURN_IF_ERROR(ExpectTokens(model_line, "model", 5));
        CAPE_ASSIGN_OR_RETURN(int64_t coef_count, ParseInt64(model_line[2]));
        if (static_cast<int64_t>(model_line.size()) != 3 + coef_count + 2) {
          return Status::InvalidArgument("malformed linear model record");
        }
        std::vector<double> coefs;
        for (int64_t c = 0; c < coef_count; ++c) {
          CAPE_ASSIGN_OR_RETURN(double coef, ParseDouble(model_line[3 + c]));
          coefs.push_back(coef);
        }
        CAPE_ASSIGN_OR_RETURN(double gof, ParseDouble(model_line[3 + coef_count]));
        CAPE_ASSIGN_OR_RETURN(int64_t n, ParseInt64(model_line[4 + coef_count]));
        local.model =
            LinearRegression::FromParams(std::move(coefs), gof, static_cast<size_t>(n));
      } else {
        return Status::InvalidArgument("unknown model kind '" + model_line[1] + "'");
      }
      gp.locals.push_back(std::move(local));
    }
    out.Add(std::move(gp));
  }
  return out;
}

Status SavePatternSet(const PatternSet& patterns, const Schema& schema,
                      const std::string& path) {
  CAPE_FAILPOINT("pattern_io.save");
  std::ofstream file(path);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for writing");
  file << SerializePatternSet(patterns, schema);
  if (!file.good()) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

Result<PatternSet> LoadPatternSet(const std::string& path, const Schema& schema) {
  CAPE_FAILPOINT("pattern_io.load");
  std::ifstream file(path);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializePatternSet(buffer.str(), schema);
}

}  // namespace cape
