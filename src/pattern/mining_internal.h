#ifndef CAPE_PATTERN_MINING_INTERNAL_H_
#define CAPE_PATTERN_MINING_INTERNAL_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "pattern/mining.h"
#include "pattern/pattern.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace cape::mining_internal {

/// Per-candidate accumulator across fragments.
struct CandidateStats {
  Pattern pattern;
  int64_t num_fragments = 0;
  int64_t num_supported = 0;
  int64_t num_holding = 0;
  double max_positive_dev = 0.0;
  double min_negative_dev = 0.0;
  std::vector<LocalPattern> locals;
};

using CandidateMap = std::unordered_map<Pattern, CandidateStats, PatternHasher>;

/// Attributes eligible for F/V/A: everything except excluded names.
AttrSet AllowedAttrs(const Schema& schema, const MiningConfig& config);

/// All G ⊆ allowed with 2 <= |G| <= psi, ordered by (size, bits).
/// InvalidArgument when more than 30 attributes are eligible (the subset
/// enumeration would overflow; exclude attributes or narrow the relation).
Result<std::vector<AttrSet>> EnumerateGroupSets(const Schema& schema,
                                                const MiningConfig& config);

/// (agg, A) combinations valid for attribute set G: (count, *) plus
/// (sum|min|max, A) for each allowed numeric A outside G.
std::vector<std::pair<AggFunc, int>> EnumerateAggCandidates(const Table& table, AttrSet g,
                                                            const MiningConfig& config);

/// Aggregate specs computing every EnumerateAggCandidates combo over the
/// *whole* allowed attribute set (used by the CUBE miner which shares one
/// query). Returns specs plus, for each, the (agg, attr) it computes.
struct SharedAggSpecs {
  std::vector<AggregateSpec> specs;
  std::vector<std::pair<AggFunc, int>> meaning;  // parallel to specs
};
SharedAggSpecs BuildSharedAggSpecs(const Table& table, AttrSet candidate_attrs,
                                   const MiningConfig& config);

/// One aggregate column inside an aggregated data table.
struct AggColumnRef {
  AggFunc agg = AggFunc::kCount;
  int agg_attr = Pattern::kCountStar;
  int col_in_data = -1;
};

/// Evaluates every (agg, model) candidate for the split (F, V) with one
/// scan of `data`, which must be the aggregation of R on G = F ∪ V, sorted
/// so that rows with equal F values are consecutive.
///
/// `f_cols`/`v_cols` give the positions of F/V inside `data` in ascending
/// R-attribute order (fragment rows and model features use that order so
/// all miners produce identical PatternSets).
///
/// The split's contribution is staged locally and merged into `candidates`
/// only on completion; when `stop` fires mid-scan the stop Status is
/// returned and `candidates` is left untouched, so truncated mining runs
/// never contain partially-evaluated candidates.
Status EvaluateSplit(const Table& data, const std::vector<int>& f_cols,
                     const std::vector<int>& v_cols, bool v_all_numeric, AttrSet f_attrs,
                     AttrSet v_attrs, const std::vector<AggColumnRef>& agg_cols,
                     const MiningConfig& config, MiningProfile* profile,
                     CandidateMap* candidates, StopToken* stop = nullptr);

/// Fits one (pattern, fragment) combination on prepared regression data and
/// folds the outcome into the candidate map: bumps fragment/support/holding
/// counters, fits the model (timed into profile->regression_ns), and stores
/// a LocalPattern when the pattern holds locally (Definition 3). `X` and `y`
/// must exclude NULL aggregate rows; `support` is the full |Q_{P,f}(R)|.
void FitFragmentCandidate(const Row& fragment, const std::vector<std::vector<double>>& X,
                          const std::vector<double>& y, int64_t support, ModelType model,
                          const Pattern& pattern, const MiningConfig& config,
                          MiningProfile* profile, CandidateMap* candidates);

/// Converts accumulated candidate stats into the set of globally-holding
/// patterns (Definition 4), deterministically ordered.
PatternSet FinalizePatterns(CandidateMap candidates, const MiningConfig& config);

/// True when every attribute in `attrs` has a numeric column type.
bool AllNumeric(const Table& table, AttrSet attrs);

/// Whether the (F, V) split with predictor set `v_attrs` may produce
/// candidates under `config` (the require_numeric_predictors gate).
inline bool SplitAllowed(const Table& table, AttrSet v_attrs, const MiningConfig& config) {
  return !config.require_numeric_predictors || AllNumeric(table, v_attrs);
}

}  // namespace cape::mining_internal

#endif  // CAPE_PATTERN_MINING_INTERNAL_H_
