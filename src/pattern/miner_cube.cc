#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"

namespace cape {

namespace {

using mining_internal::AggColumnRef;
using mining_internal::CandidateMap;

/// CUBE miner (Section 4.1, "Using the CUBE BY operator"): a single CUBE
/// query materializes the aggregated data for every admissible G_P; each
/// candidate then needs only a selection (on grouping_id) and a sort over
/// the materialized result.
class CubeMiner final : public PatternMiner {
 public:
  std::string name() const override { return "CUBE"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    MiningResult result;
    result.fds = config.initial_fds;
    MiningProfile& profile = result.profile;
    Stopwatch total;
    StopToken stop = config.MakeStopToken();
    CandidateMap candidates;

    const AttrSet allowed = mining_internal::AllowedAttrs(*table.schema(), config);
    const std::vector<int> cube_attrs = allowed.ToIndices();
    const int n = static_cast<int>(cube_attrs.size());
    // Position of attribute a within the cube's column list.
    std::vector<int> attr_to_pos(static_cast<size_t>(table.num_columns()), -1);
    for (int i = 0; i < n; ++i) attr_to_pos[static_cast<size_t>(cube_attrs[i])] = i;

    CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                          mining_internal::EnumerateGroupSets(*table.schema(), config));

    // One cube query computes every (agg, A) combination for every G_P with
    // |G_P| <= psi. (sum(A) is materialized even for groupings containing A;
    // those columns are simply never read.)
    const auto shared = mining_internal::BuildSharedAggSpecs(table, allowed, config);
    if (shared.specs.empty()) {
      result.patterns = PatternSet();
      profile.total_ns = total.ElapsedNanos();
      return result;
    }
    TablePtr cube;
    {
      ScopedTimer timer(&profile.query_ns);
      profile.num_queries += 1;
      CubeOptions options;
      options.min_group_size = 2;
      options.max_group_size = config.max_pattern_size;
      options.add_grouping_id = true;
      CAPE_FAILPOINT("mining.cube.group");
      auto cube_result = Cube(table, cube_attrs, shared.specs, options, &stop);
      if (!cube_result.ok()) {
        if (cube_result.status().IsStop()) {
          // A deadline hit while materializing the cube means no candidate
          // was evaluated at all: report an empty truncated result.
          result.truncated = true;
          result.stop_reason = stop.reason();
          result.patterns = PatternSet();
          profile.total_ns = total.ElapsedNanos();
          return result;
        }
        return cube_result.status();
      }
      cube = std::move(cube_result).ValueOrDie();
    }
    const int grouping_id_col = cube->num_columns() - 1;

    for (AttrSet g : group_sets) {
      if (result.truncated) break;
      const std::vector<int> g_attrs = g.ToIndices();
      const int gs = static_cast<int>(g_attrs.size());

      // grouping_id of the grouping that keeps exactly the attributes in G.
      int64_t wanted_gid = 0;
      for (int i = 0; i < n; ++i) {
        if (!g.Contains(cube_attrs[static_cast<size_t>(i)])) {
          wanted_gid |= int64_t{1} << i;
        }
      }
      TablePtr data;
      {
        ScopedTimer timer(&profile.query_ns);
        profile.num_queries += 1;
        auto filtered = Filter(*cube, [&](int64_t row) {
          return cube->column(grouping_id_col).GetInt64(row) == wanted_gid;
        }, &stop);
        if (!filtered.ok()) {
          if (filtered.status().IsStop()) {
            result.truncated = true;
            result.stop_reason = stop.reason();
            break;
          }
          return filtered.status();
        }
        data = std::move(filtered).ValueOrDie();
      }

      // Aggregate columns usable for this G: A outside G.
      std::vector<AggColumnRef> agg_cols;
      for (size_t s = 0; s < shared.meaning.size(); ++s) {
        const auto& [agg, agg_attr] = shared.meaning[s];
        if (agg_attr != Pattern::kCountStar && g.Contains(agg_attr)) continue;
        agg_cols.push_back(AggColumnRef{agg, agg_attr, n + static_cast<int>(s)});
      }
      if (agg_cols.empty()) continue;

      for (uint32_t mask = 1; mask + 1 < (1u << gs); ++mask) {
        AttrSet f_attrs;
        AttrSet v_attrs;
        std::vector<int> f_cols;
        std::vector<int> v_cols;
        for (int i = 0; i < gs; ++i) {
          const int attr = g_attrs[static_cast<size_t>(i)];
          if (mask & (1u << i)) {
            f_attrs.Add(attr);
            f_cols.push_back(attr_to_pos[static_cast<size_t>(attr)]);
          } else {
            v_attrs.Add(attr);
            v_cols.push_back(attr_to_pos[static_cast<size_t>(attr)]);
          }
        }
        if (!mining_internal::SplitAllowed(table, v_attrs, config)) continue;
        Status st = EvaluateCubeSplit(*data, f_cols, v_cols, f_attrs, v_attrs, agg_cols,
                                      table, config, &profile, &candidates, &stop);
        if (st.IsStop()) {
          result.truncated = true;
          result.stop_reason = stop.reason();
          break;
        }
        CAPE_RETURN_IF_ERROR(st);
      }
    }

    result.patterns = mining_internal::FinalizePatterns(std::move(candidates), config);
    profile.total_ns = total.ElapsedNanos();
    return result;
  }

 private:
  /// Sort + fit-scan for one (F, V) split; a stop Status leaves `candidates`
  /// untouched (EvaluateSplit stages its contribution internally).
  static Status EvaluateCubeSplit(const Table& data, const std::vector<int>& f_cols,
                                  const std::vector<int>& v_cols, AttrSet f_attrs,
                                  AttrSet v_attrs, const std::vector<AggColumnRef>& agg_cols,
                                  const Table& table, const MiningConfig& config,
                                  MiningProfile* profile, CandidateMap* candidates,
                                  StopToken* stop) {
    TablePtr sorted;
    {
      ScopedTimer timer(&profile->query_ns);
      profile->num_sorts += 1;
      CAPE_FAILPOINT("mining.sort");
      std::vector<SortKey> keys;
      for (int c : f_cols) keys.push_back(SortKey{c, true});
      for (int c : v_cols) keys.push_back(SortKey{c, true});
      CAPE_ASSIGN_OR_RETURN(sorted, SortTable(data, keys, stop));
    }
    const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
    return mining_internal::EvaluateSplit(*sorted, f_cols, v_cols, v_numeric, f_attrs,
                                          v_attrs, agg_cols, config, profile, candidates,
                                          stop);
  }
};

}  // namespace

std::unique_ptr<PatternMiner> MakeCubeMiner() { return std::make_unique<CubeMiner>(); }

}  // namespace cape
