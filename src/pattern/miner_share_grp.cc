#include <algorithm>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"

namespace cape {

namespace {

using mining_internal::AggColumnRef;
using mining_internal::CandidateMap;

/// SHARE-GRP (Section 4.1, "One query per F ∪ V"): one aggregation query per
/// attribute set G computing every agg(A) combination at once, then one sort
/// query per (F, V) split of G. Attribute sets are independent, so they are
/// partitioned across the shared ThreadPool (MiningConfig::num_threads
/// workers); the per-G candidate patterns are disjoint and the merged result
/// is identical to the sequential one at any thread count.
class ShareGrpMiner final : public PatternMiner {
 public:
  std::string name() const override { return "SHARE-GRP"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    MiningResult result;
    result.fds = config.initial_fds;
    MiningProfile& profile = result.profile;
    Stopwatch total;

    CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                          mining_internal::EnumerateGroupSets(*table.schema(), config));

    ThreadPool& pool = ThreadPool::Global();
    ThreadPool::ParallelForOptions opts;
    opts.max_workers = std::max(config.num_threads, 1);
    opts.grain = 1;  // one attribute set per claim — G work units are coarse
    opts.stop = config.MakeStopToken();
    const int workers = pool.PlannedWorkers(static_cast<int64_t>(group_sets.size()), opts);

    std::vector<CandidateMap> worker_candidates(static_cast<size_t>(workers));
    std::vector<MiningProfile> worker_profiles(static_cast<size_t>(workers));

    Status st = pool.ParallelFor(
        static_cast<int64_t>(group_sets.size()), opts,
        [&](int worker, int64_t begin, int64_t end, StopToken* stop) -> Status {
          MiningProfile& prof = worker_profiles[static_cast<size_t>(worker)];
          ScopedTimer cpu(&prof.cpu_ns);
          for (int64_t i = begin; i < end; ++i) {
            CAPE_RETURN_IF_ERROR(ProcessGroupSet(
                table, group_sets[static_cast<size_t>(i)], config, &prof,
                &worker_candidates[static_cast<size_t>(worker)], stop));
          }
          return Status::OK();
        });
    if (!st.ok()) {
      if (!st.IsStop()) return st;
      result.truncated = true;
      result.stop_reason = StopReasonFromStatus(st);
    }

    CandidateMap candidates;
    for (size_t w = 0; w < worker_candidates.size(); ++w) {
      // Candidate keys are disjoint across G sets, hence across workers.
      // Each worker map holds only fully-evaluated splits, so a truncated
      // merge is still an exact subset of the untimed result.
      for (auto& [pattern, stats] : worker_candidates[w]) {
        candidates.emplace(pattern, std::move(stats));
      }
      profile.regression_ns += worker_profiles[w].regression_ns;
      profile.query_ns += worker_profiles[w].query_ns;
      profile.cpu_ns += worker_profiles[w].cpu_ns;
      profile.num_candidates += worker_profiles[w].num_candidates;
      profile.num_local_fits += worker_profiles[w].num_local_fits;
      profile.num_queries += worker_profiles[w].num_queries;
      profile.num_sorts += worker_profiles[w].num_sorts;
      profile.num_rows_scanned += worker_profiles[w].num_rows_scanned;
    }

    result.patterns = mining_internal::FinalizePatterns(std::move(candidates), config);
    profile.total_ns = total.ElapsedNanos();
    return result;
  }

 private:
  /// All mining work for one attribute set G: one shared aggregation query,
  /// then one sort + one fit-scan per (F, V) split. A stop Status may leave
  /// already-completed splits of G in `candidates` (they are final); the
  /// in-flight split is discarded by EvaluateSplit's staging.
  static Status ProcessGroupSet(const Table& table, AttrSet g, const MiningConfig& config,
                                MiningProfile* profile, CandidateMap* candidates,
                                StopToken* stop) {
    const std::vector<int> g_attrs = g.ToIndices();
    const int gs = static_cast<int>(g_attrs.size());

    const auto agg_candidates = mining_internal::EnumerateAggCandidates(table, g, config);
    if (agg_candidates.empty()) return Status::OK();
    std::vector<AggregateSpec> specs;
    std::vector<AggColumnRef> agg_cols;
    specs.reserve(agg_candidates.size());
    for (size_t i = 0; i < agg_candidates.size(); ++i) {
      const auto& [agg, agg_attr] = agg_candidates[i];
      AggregateSpec spec;
      spec.func = agg;
      spec.input_col = agg_attr;
      spec.output_name = "agg" + std::to_string(i);
      specs.push_back(std::move(spec));
      agg_cols.push_back(AggColumnRef{agg, agg_attr, gs + static_cast<int>(i)});
    }
    TablePtr data;
    {
      ScopedTimer timer(&profile->query_ns);
      profile->num_queries += 1;
      CAPE_FAILPOINT("mining.group");
      CAPE_ASSIGN_OR_RETURN(data, GroupByAggregate(table, g_attrs, specs, stop));
    }

    for (uint32_t mask = 1; mask + 1 < (1u << gs); ++mask) {
      AttrSet f_attrs;
      AttrSet v_attrs;
      std::vector<int> f_cols;
      std::vector<int> v_cols;
      for (int i = 0; i < gs; ++i) {
        if (mask & (1u << i)) {
          f_attrs.Add(g_attrs[static_cast<size_t>(i)]);
          f_cols.push_back(i);
        } else {
          v_attrs.Add(g_attrs[static_cast<size_t>(i)]);
          v_cols.push_back(i);
        }
      }
      if (!mining_internal::SplitAllowed(table, v_attrs, config)) continue;
      TablePtr sorted;
      {
        ScopedTimer timer(&profile->query_ns);
        profile->num_sorts += 1;
        CAPE_FAILPOINT("mining.sort");
        std::vector<SortKey> keys;
        for (int c : f_cols) keys.push_back(SortKey{c, true});
        for (int c : v_cols) keys.push_back(SortKey{c, true});
        CAPE_ASSIGN_OR_RETURN(sorted, SortTable(*data, keys, stop));
      }
      const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
      CAPE_RETURN_IF_ERROR(mining_internal::EvaluateSplit(*sorted, f_cols, v_cols,
                                                          v_numeric, f_attrs, v_attrs,
                                                          agg_cols, config, profile,
                                                          candidates, stop));
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<PatternMiner> MakeShareGrpMiner() {
  return std::make_unique<ShareGrpMiner>();
}

}  // namespace cape
