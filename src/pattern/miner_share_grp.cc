#include <atomic>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"

namespace cape {

namespace {

using mining_internal::AggColumnRef;
using mining_internal::CandidateMap;

/// SHARE-GRP (Section 4.1, "One query per F ∪ V"): one aggregation query per
/// attribute set G computing every agg(A) combination at once, then one sort
/// query per (F, V) split of G. Attribute sets are independent, so with
/// MiningConfig::num_threads > 1 they are processed by a worker pool; the
/// per-G candidate patterns are disjoint and the merged result is identical
/// to the sequential one.
class ShareGrpMiner final : public PatternMiner {
 public:
  std::string name() const override { return "SHARE-GRP"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    MiningResult result;
    result.fds = config.initial_fds;
    MiningProfile& profile = result.profile;
    Stopwatch total;

    CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                          mining_internal::EnumerateGroupSets(*table.schema(), config));

    CandidateMap candidates;
    if (config.num_threads <= 1) {
      StopToken stop = config.MakeStopToken();
      for (AttrSet g : group_sets) {
        Status st = ProcessGroupSet(table, g, config, &profile, &candidates, &stop);
        if (st.IsStop()) {
          result.truncated = true;
          result.stop_reason = stop.reason();
          break;
        }
        CAPE_RETURN_IF_ERROR(st);
      }
    } else {
      const int num_threads =
          std::min<int>(config.num_threads, static_cast<int>(group_sets.size()) + 1);
      std::atomic<size_t> next{0};
      std::atomic<bool> any_stopped{false};
      std::atomic<int> stop_reason{static_cast<int>(StopReason::kNone)};
      std::vector<CandidateMap> thread_candidates(static_cast<size_t>(num_threads));
      std::vector<MiningProfile> thread_profiles(static_cast<size_t>(num_threads));
      std::vector<Status> thread_status(static_cast<size_t>(num_threads));
      std::vector<std::thread> workers;
      for (int t = 0; t < num_threads; ++t) {
        workers.emplace_back([&, t] {
          // Each worker carries its own StopToken copy (the strided clock
          // countdown is per-holder state; the cancel flag is shared).
          StopToken stop = config.MakeStopToken();
          while (true) {
            if (any_stopped.load(std::memory_order_relaxed) || stop.ShouldStopNow()) {
              break;
            }
            const size_t i = next.fetch_add(1);
            if (i >= group_sets.size()) return;
            Status st =
                ProcessGroupSet(table, group_sets[i], config,
                                &thread_profiles[static_cast<size_t>(t)],
                                &thread_candidates[static_cast<size_t>(t)], &stop);
            if (st.IsStop()) break;
            if (!st.ok()) {
              thread_status[static_cast<size_t>(t)] = std::move(st);
              return;
            }
          }
          any_stopped.store(true, std::memory_order_relaxed);
          if (stop.reason() != StopReason::kNone) {
            stop_reason.store(static_cast<int>(stop.reason()), std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      for (const Status& st : thread_status) CAPE_RETURN_IF_ERROR(st);
      if (any_stopped.load()) {
        result.truncated = true;
        result.stop_reason = static_cast<StopReason>(stop_reason.load());
      }
      for (size_t t = 0; t < thread_candidates.size(); ++t) {
        // Candidate keys are disjoint across G sets, hence across threads.
        // Each thread map holds only fully-evaluated splits, so a truncated
        // merge is still an exact subset of the untimed result.
        for (auto& [pattern, stats] : thread_candidates[t]) {
          candidates.emplace(pattern, std::move(stats));
        }
        profile.regression_ns += thread_profiles[t].regression_ns;
        profile.query_ns += thread_profiles[t].query_ns;
        profile.num_candidates += thread_profiles[t].num_candidates;
        profile.num_local_fits += thread_profiles[t].num_local_fits;
        profile.num_queries += thread_profiles[t].num_queries;
        profile.num_sorts += thread_profiles[t].num_sorts;
        profile.num_rows_scanned += thread_profiles[t].num_rows_scanned;
      }
    }

    result.patterns = mining_internal::FinalizePatterns(std::move(candidates), config);
    profile.total_ns = total.ElapsedNanos();
    return result;
  }

 private:
  /// All mining work for one attribute set G: one shared aggregation query,
  /// then one sort + one fit-scan per (F, V) split. A stop Status may leave
  /// already-completed splits of G in `candidates` (they are final); the
  /// in-flight split is discarded by EvaluateSplit's staging.
  static Status ProcessGroupSet(const Table& table, AttrSet g, const MiningConfig& config,
                                MiningProfile* profile, CandidateMap* candidates,
                                StopToken* stop) {
    const std::vector<int> g_attrs = g.ToIndices();
    const int gs = static_cast<int>(g_attrs.size());

    const auto agg_candidates = mining_internal::EnumerateAggCandidates(table, g, config);
    if (agg_candidates.empty()) return Status::OK();
    std::vector<AggregateSpec> specs;
    std::vector<AggColumnRef> agg_cols;
    specs.reserve(agg_candidates.size());
    for (size_t i = 0; i < agg_candidates.size(); ++i) {
      const auto& [agg, agg_attr] = agg_candidates[i];
      AggregateSpec spec;
      spec.func = agg;
      spec.input_col = agg_attr;
      spec.output_name = "agg" + std::to_string(i);
      specs.push_back(std::move(spec));
      agg_cols.push_back(AggColumnRef{agg, agg_attr, gs + static_cast<int>(i)});
    }
    TablePtr data;
    {
      ScopedTimer timer(&profile->query_ns);
      profile->num_queries += 1;
      CAPE_FAILPOINT("mining.group");
      CAPE_ASSIGN_OR_RETURN(data, GroupByAggregate(table, g_attrs, specs, stop));
    }

    for (uint32_t mask = 1; mask + 1 < (1u << gs); ++mask) {
      AttrSet f_attrs;
      AttrSet v_attrs;
      std::vector<int> f_cols;
      std::vector<int> v_cols;
      for (int i = 0; i < gs; ++i) {
        if (mask & (1u << i)) {
          f_attrs.Add(g_attrs[static_cast<size_t>(i)]);
          f_cols.push_back(i);
        } else {
          v_attrs.Add(g_attrs[static_cast<size_t>(i)]);
          v_cols.push_back(i);
        }
      }
      if (!mining_internal::SplitAllowed(table, v_attrs, config)) continue;
      TablePtr sorted;
      {
        ScopedTimer timer(&profile->query_ns);
        profile->num_sorts += 1;
        CAPE_FAILPOINT("mining.sort");
        std::vector<SortKey> keys;
        for (int c : f_cols) keys.push_back(SortKey{c, true});
        for (int c : v_cols) keys.push_back(SortKey{c, true});
        CAPE_ASSIGN_OR_RETURN(sorted, SortTable(*data, keys, stop));
      }
      const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
      CAPE_RETURN_IF_ERROR(mining_internal::EvaluateSplit(*sorted, f_cols, v_cols,
                                                          v_numeric, f_attrs, v_attrs,
                                                          agg_cols, config, profile,
                                                          candidates, stop));
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<PatternMiner> MakeShareGrpMiner() {
  return std::make_unique<ShareGrpMiner>();
}

}  // namespace cape
