#ifndef CAPE_PATTERN_PATTERN_SET_H_
#define CAPE_PATTERN_PATTERN_SET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "pattern/pattern.h"
#include "relational/table.h"
#include "stats/regression.h"

namespace cape {

/// Encodes a tuple of Values as a byte key such that two rows encode equal
/// iff they are component-wise equal (Value::operator==, numerics widened).
std::string EncodeRowKey(const Row& row);

/// Appends to `key` the same bytes EncodeRowKey would produce for row `row`
/// of `t` projected to `cols`, reading column storage directly — no Value
/// boxing, no per-call allocation when the caller reuses the buffer.
void AppendTableRowKey(const Table& t, int64_t row, const std::vector<int>& cols,
                       std::string* key);

/// A pattern together with the fragment it holds locally on: the fitted
/// model g_{P,f} plus the statistics explanation generation needs.
struct LocalPattern {
  /// Values of the partition attributes F, in ascending attribute order.
  Row fragment;
  /// The regression model based on which the pattern holds locally.
  std::shared_ptr<RegressionModel> model;
  /// Local support |Q_{P,f}(R)|.
  int64_t support = 0;
  /// Extremal deviations dev_P(t) across the fragment's tuples — the
  /// per-local refinement of the Section 3.5 bound.
  double max_positive_dev = 0.0;
  double min_negative_dev = 0.0;
};

/// A pattern that holds globally (Definition 4) with its evidence.
struct GlobalPattern {
  Pattern pattern;
  /// |frag(R, P)|.
  int64_t num_fragments = 0;
  /// |frag_supp|: fragments with local support >= delta.
  int64_t num_supported = 0;
  /// |frag_good| = global support: fragments where the pattern holds.
  int64_t num_holding = 0;
  /// num_holding / num_supported.
  double global_confidence = 0.0;
  /// Extremal deviations across all locally-holding fragments — dev↑ of
  /// Section 3.5, recorded during mining at no extra cost.
  double max_positive_dev = 0.0;
  double min_negative_dev = 0.0;

  std::vector<LocalPattern> locals;

  /// Local pattern for fragment `f` (F-values in ascending attribute
  /// order), or nullptr when the pattern does not hold locally on f.
  const LocalPattern* FindLocal(const Row& fragment) const;

  /// FindLocal for a key already encoded with EncodeRowKey/AppendTableRowKey;
  /// the per-row hot loops use this to skip fragment boxing entirely.
  const LocalPattern* FindLocalByKey(const std::string& key) const;

  /// Builds the fragment-key index; called by PatternSet after locals are
  /// final.
  void BuildIndex();

 private:
  std::unordered_map<std::string, size_t> fragment_index_;
};

/// The output of ARP mining: all globally-holding patterns with their local
/// models, indexed for the explanation phase.
class PatternSet {
 public:
  PatternSet() = default;

  void Add(GlobalPattern pattern);

  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }
  const std::vector<GlobalPattern>& patterns() const { return patterns_; }
  const GlobalPattern& at(size_t i) const { return patterns_[i]; }

  /// Lookup by exact pattern identity; nullptr when absent.
  const GlobalPattern* Find(const Pattern& pattern) const;

  /// Total number of local patterns across all global patterns (the N_P
  /// knob of Figures 6a/6b).
  int64_t NumLocalPatterns() const;

  /// A copy restricted to (at most) the first `max_locals` local patterns
  /// in pattern order — used by the benchmarks to vary N_P.
  PatternSet Truncated(int64_t max_locals) const;

  /// Sorted multi-line rendering for docs/examples.
  std::string ToString(const Schema& schema, size_t max_patterns = 50) const;

 private:
  std::vector<GlobalPattern> patterns_;
  std::unordered_map<Pattern, size_t, PatternHasher> index_;
};

}  // namespace cape

#endif  // CAPE_PATTERN_PATTERN_SET_H_
