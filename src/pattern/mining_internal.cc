#include "pattern/mining_internal.h"

#include <algorithm>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "stats/regression.h"

namespace cape::mining_internal {

AttrSet AllowedAttrs(const Schema& schema, const MiningConfig& config) {
  AttrSet allowed;
  for (int i = 0; i < schema.num_fields(); ++i) allowed.Add(i);
  for (const std::string& name : config.excluded_attrs) {
    int idx = schema.GetFieldIndex(name);
    if (idx >= 0) allowed.Remove(idx);
  }
  return allowed;
}

Result<std::vector<AttrSet>> EnumerateGroupSets(const Schema& schema,
                                                const MiningConfig& config) {
  const AttrSet allowed = AllowedAttrs(schema, config);
  const std::vector<int> attrs = allowed.ToIndices();
  const int n = static_cast<int>(attrs.size());
  std::vector<AttrSet> out;
  if (n > 30) {
    return Status::InvalidArgument(
        "cannot mine over " + std::to_string(n) +
        " eligible attributes (subset enumeration limit is 30); use "
        "MiningConfig::excluded_attrs to narrow the candidate space");
  }
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int size = __builtin_popcount(mask);
    if (size < 2 || size > config.max_pattern_size) continue;
    AttrSet g;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) g.Add(attrs[static_cast<size_t>(i)]);
    }
    out.push_back(g);
  }
  std::sort(out.begin(), out.end(), [](AttrSet a, AttrSet b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.bits() < b.bits();
  });
  return out;
}

std::vector<std::pair<AggFunc, int>> EnumerateAggCandidates(const Table& table, AttrSet g,
                                                            const MiningConfig& config) {
  std::vector<std::pair<AggFunc, int>> out;
  const AttrSet allowed = AllowedAttrs(*table.schema(), config);
  for (AggFunc agg : config.agg_functions) {
    if (agg == AggFunc::kCount) {
      out.emplace_back(AggFunc::kCount, Pattern::kCountStar);
      continue;
    }
    if (agg == AggFunc::kAvg) continue;  // not part of Definition 2
    for (int a : allowed.ToIndices()) {
      if (g.Contains(a)) continue;
      if (!IsNumericType(table.schema()->field(a).type)) continue;
      out.emplace_back(agg, a);
    }
  }
  return out;
}

SharedAggSpecs BuildSharedAggSpecs(const Table& table, AttrSet candidate_attrs,
                                   const MiningConfig& config) {
  SharedAggSpecs out;
  for (AggFunc agg : config.agg_functions) {
    if (agg == AggFunc::kCount) {
      out.specs.push_back(AggregateSpec::CountStar("count_star"));
      out.meaning.emplace_back(AggFunc::kCount, Pattern::kCountStar);
      continue;
    }
    if (agg == AggFunc::kAvg) continue;
    for (int a : candidate_attrs.ToIndices()) {
      if (!IsNumericType(table.schema()->field(a).type)) continue;
      AggregateSpec spec;
      spec.func = agg;
      spec.input_col = a;
      spec.output_name = std::string(AggFuncToString(agg)) + "_" +
                         table.schema()->field(a).name;
      out.specs.push_back(std::move(spec));
      out.meaning.emplace_back(agg, a);
    }
  }
  return out;
}

bool AllNumeric(const Table& table, AttrSet attrs) {
  for (int a : attrs.ToIndices()) {
    if (!IsNumericType(table.schema()->field(a).type)) return false;
  }
  return true;
}

void FitFragmentCandidate(const Row& fragment, const std::vector<std::vector<double>>& X,
                          const std::vector<double>& y, int64_t support, ModelType model,
                          const Pattern& pattern, const MiningConfig& config,
                          MiningProfile* profile, CandidateMap* candidates) {
  auto [it, inserted] = candidates->try_emplace(pattern);
  CandidateStats& stats = it->second;
  if (inserted) stats.pattern = pattern;
  stats.num_fragments += 1;
  if (support < config.local_support_threshold) return;
  stats.num_supported += 1;
  if (y.empty()) return;  // aggregate was NULL everywhere; nothing to fit

  profile->num_local_fits += 1;
  std::unique_ptr<RegressionModel> fitted;
  {
    ScopedTimer timer(&profile->regression_ns);
    auto fit_result = FitRegression(model, X, y);
    if (!fit_result.ok()) return;
    fitted = std::move(fit_result).ValueOrDie();
  }
  if (fitted->goodness_of_fit() < config.local_gof_threshold) return;

  stats.num_holding += 1;
  LocalPattern local;
  local.fragment = fragment;
  local.support = support;
  for (size_t i = 0; i < y.size(); ++i) {
    const double dev = y[i] - fitted->Predict(X[i]);
    if (dev > local.max_positive_dev) local.max_positive_dev = dev;
    if (dev < local.min_negative_dev) local.min_negative_dev = dev;
  }
  if (local.max_positive_dev > stats.max_positive_dev) {
    stats.max_positive_dev = local.max_positive_dev;
  }
  if (local.min_negative_dev < stats.min_negative_dev) {
    stats.min_negative_dev = local.min_negative_dev;
  }
  local.model = std::move(fitted);
  stats.locals.push_back(std::move(local));
}

Status EvaluateSplit(const Table& data, const std::vector<int>& f_cols,
                     const std::vector<int>& v_cols, bool v_all_numeric, AttrSet f_attrs,
                     AttrSet v_attrs, const std::vector<AggColumnRef>& agg_cols,
                     const MiningConfig& config, MiningProfile* profile,
                     CandidateMap* candidates, StopToken* stop) {
  CAPE_RETURN_IF_STOPPED(stop);  // small splits never reach the stride below
  const int64_t n = data.num_rows();

  // Staging area: a stop mid-split must not leave half-evaluated candidate
  // stats behind, so the split accumulates locally and merges on success.
  // Candidate keys are unique per (F, V) split, so the merge never collides.
  CandidateMap staged;

  // Reused per-block buffers: predictor matrix and one response vector per
  // aggregate column (rows with NULL aggregates are excluded per column).
  std::vector<std::vector<double>> X;
  std::vector<std::vector<double>> ys(agg_cols.size());
  std::vector<std::vector<std::vector<double>>> x_per_agg(agg_cols.size());

  // String predictors contribute a 0.0 placeholder to X (only the constant
  // model — which ignores X — is fitted when V is not all-numeric).
  std::vector<bool> v_is_numeric;
  v_is_numeric.reserve(v_cols.size());
  for (int c : v_cols) v_is_numeric.push_back(IsNumericType(data.column(c).type()));

  auto process_block = [&](int64_t begin, int64_t end) {
    const int64_t support = end - begin;
    Row fragment;
    fragment.reserve(f_cols.size());
    for (int c : f_cols) fragment.push_back(data.GetValue(begin, c));

    X.clear();
    for (auto& y : ys) y.clear();
    for (auto& xs : x_per_agg) xs.clear();
    for (int64_t row = begin; row < end; ++row) {
      std::vector<double> x;
      x.reserve(v_cols.size());
      for (size_t v = 0; v < v_cols.size(); ++v) {
        x.push_back(v_is_numeric[v] ? data.column(v_cols[v]).GetNumeric(row) : 0.0);
      }
      for (size_t a = 0; a < agg_cols.size(); ++a) {
        const Column& col = data.column(agg_cols[a].col_in_data);
        if (col.IsNull(row)) continue;
        ys[a].push_back(col.GetNumeric(row));
        x_per_agg[a].push_back(x);
      }
      X.push_back(std::move(x));
    }

    for (size_t a = 0; a < agg_cols.size(); ++a) {
      for (ModelType model : config.model_types) {
        if (model == ModelType::kLinear && !v_all_numeric) continue;
        Pattern pattern;
        pattern.partition_attrs = f_attrs;
        pattern.predictor_attrs = v_attrs;
        pattern.agg = agg_cols[a].agg;
        pattern.agg_attr = agg_cols[a].agg_attr;
        pattern.model = model;
        FitFragmentCandidate(fragment, x_per_agg[a], ys[a], support, model, pattern,
                             config, profile, &staged);
      }
    }
  };

  // Count each (agg, model) combination once per split as a candidate.
  for (size_t a = 0; a < agg_cols.size(); ++a) {
    for (ModelType model : config.model_types) {
      if (model == ModelType::kLinear && !v_all_numeric) continue;
      profile->num_candidates += 1;
    }
  }

  // Stop checks run every kStopCheckStride scanned rows rather than at every
  // fragment boundary: the staged CandidateMap is discarded wholesale on
  // stop, so any check granularity is safe, and high-cardinality F sets have
  // a boundary nearly every row.
  int64_t block_start = 0;
  int64_t rows_since_check = 0;
  for (int64_t row = 1; row <= n; ++row) {
    bool boundary = (row == n);
    if (!boundary) {
      for (int c : f_cols) {
        if (data.GetValue(row, c) != data.GetValue(row - 1, c)) {
          boundary = true;
          break;
        }
      }
    }
    if (boundary) {
      rows_since_check += row - block_start;
      if (rows_since_check >= kStopCheckStride) {
        CAPE_RETURN_IF_STOPPED_BLOCK(stop);
        rows_since_check = 0;
      }
      process_block(block_start, row);
      block_start = row;
    }
  }
  profile->num_rows_scanned += n;

  for (auto& [pattern, stats] : staged) {
    candidates->insert_or_assign(pattern, std::move(stats));
  }
  return Status::OK();
}

PatternSet FinalizePatterns(CandidateMap candidates, const MiningConfig& config) {
  std::vector<CandidateStats> held;
  // Finalization of already-mined candidates; miners stop upstream.
  // analyzer:allow-next-line(cancellation) no stop token at this boundary
  for (auto& [pattern, stats] : candidates) {
    if (stats.num_supported == 0) continue;
    const double confidence = static_cast<double>(stats.num_holding) /
                              static_cast<double>(stats.num_supported);
    if (stats.num_holding >= config.global_support_threshold &&
        confidence >= config.global_confidence_threshold) {
      held.push_back(std::move(stats));
    }
  }
  std::sort(held.begin(), held.end(), [](const CandidateStats& a, const CandidateStats& b) {
    const Pattern& p = a.pattern;
    const Pattern& q = b.pattern;
    if (p.partition_attrs != q.partition_attrs) return p.partition_attrs < q.partition_attrs;
    if (p.predictor_attrs != q.predictor_attrs) return p.predictor_attrs < q.predictor_attrs;
    if (p.agg != q.agg) return static_cast<int>(p.agg) < static_cast<int>(q.agg);
    if (p.agg_attr != q.agg_attr) return p.agg_attr < q.agg_attr;
    return static_cast<int>(p.model) < static_cast<int>(q.model);
  });

  PatternSet out;
  for (CandidateStats& stats : held) {
    GlobalPattern global;
    global.pattern = stats.pattern;
    global.num_fragments = stats.num_fragments;
    global.num_supported = stats.num_supported;
    global.num_holding = stats.num_holding;
    global.global_confidence = static_cast<double>(stats.num_holding) /
                               static_cast<double>(stats.num_supported);
    global.max_positive_dev = stats.max_positive_dev;
    global.min_negative_dev = stats.min_negative_dev;
    // Deterministic local order: sort by fragment key.
    std::sort(stats.locals.begin(), stats.locals.end(),
              [](const LocalPattern& a, const LocalPattern& b) {
                return EncodeRowKey(a.fragment) < EncodeRowKey(b.fragment);
              });
    global.locals = std::move(stats.locals);
    out.Add(std::move(global));
  }
  return out;
}

}  // namespace cape::mining_internal

namespace cape {

uint64_t MiningConfigDigest(const MiningConfig& config) {
  Fnv64 h;
  h.UpdateU32(static_cast<uint32_t>(config.max_pattern_size));
  h.UpdateDouble(config.local_gof_threshold);
  h.UpdateI64(config.local_support_threshold);
  h.UpdateDouble(config.global_confidence_threshold);
  h.UpdateI64(config.global_support_threshold);
  h.UpdateU64(config.agg_functions.size());
  for (AggFunc f : config.agg_functions) h.UpdateU8(static_cast<uint8_t>(f));
  h.UpdateU64(config.model_types.size());
  for (ModelType m : config.model_types) h.UpdateU8(static_cast<uint8_t>(m));
  h.UpdateU8(config.require_numeric_predictors ? 1 : 0);
  h.UpdateU64(config.excluded_attrs.size());
  for (const std::string& name : config.excluded_attrs) h.UpdateString(name);
  h.UpdateU8(config.use_fd_optimizations ? 1 : 0);
  // Approximate-mode knobs change which rows are mined, hence the result;
  // the digest separates sampled pattern sets from exact ones in the cache.
  if (config.approx_sample_rows > 0) {
    h.UpdateI64(config.approx_sample_rows);
    h.UpdateU64(config.approx_seed);
    h.UpdateDouble(config.approx_failure_prob);
  }
  h.UpdateU64(config.initial_fds.size());
  for (const FunctionalDependency& fd : config.initial_fds.fds()) {
    h.UpdateU64(fd.lhs.bits());
    h.UpdateU32(static_cast<uint32_t>(fd.rhs));
  }
  return h.digest();
}

}  // namespace cape
