#ifndef CAPE_PATTERN_INCREMENTAL_H_
#define CAPE_PATTERN_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "pattern/mining.h"
#include "pattern/pattern_set.h"
#include "relational/table.h"
#include "stats/descriptive.h"

namespace cape {

/// Counters describing the work an incremental maintenance pass avoided and
/// performed (DESIGN.md §16). All counters are cumulative over the
/// maintainer's lifetime; Engine::AppendAndRemine diffs them per call.
struct MaintenanceStats {
  /// Successful Absorb passes that folded at least one row.
  int64_t batches_absorbed = 0;
  /// Delta rows folded across those passes.
  int64_t rows_absorbed = 0;
  /// Group states (summed over all maintained G sets) whose aggregates a
  /// delta changed or created.
  int64_t groups_touched = 0;
  /// Subset of groups_touched that were first seen in a delta.
  int64_t groups_created = 0;
  /// Fragments whose candidate models were re-fitted because a delta touched
  /// at least one of their groups. Untouched fragments keep their local
  /// patterns verbatim — that gap versus the total fragment count is the
  /// incremental win.
  int64_t fragments_refit = 0;
  /// (fragment, candidate) combinations re-validated via the exact same
  /// FitFragmentCandidate path the from-scratch miners use.
  int64_t candidates_revalidated = 0;
  /// Local patterns that appeared / disappeared / were re-fitted in place
  /// under re-validation. Locals in Finalize() beyond added+replaced were
  /// retained verbatim from the previous fold point.
  int64_t locals_added = 0;
  int64_t locals_dropped = 0;
  int64_t locals_replaced = 0;
  /// Per base column, mergeable Welford moments of all non-null values folded
  /// so far (numeric columns only; string slots stay empty). Each Absorb
  /// accumulates the delta into a fresh batch accumulator and folds it in
  /// with RunningStats::Merge — the mergeable-accumulator machinery
  /// stats_incremental_test pins, exercised on the production path.
  std::vector<RunningStats> column_stats;
};

/// Incrementally maintained ARP mining state (DESIGN.md §16): holds, per
/// candidate attribute set G, an IncrementalGroupBy over the base table plus
/// per-(F, V)-split fragment buckets and the surviving local patterns, so an
/// append of d rows re-validates only the fragments whose group keys
/// intersect the delta instead of re-mining all n rows.
///
/// Invariant: after any successful Absorb, Finalize() is byte-identical to
/// running any of the from-scratch miners on the current table with the same
/// config (random_equivalence_test proves this across seeds, append
/// schedules, storage toggles, and thread counts). The equivalence holds
/// because every ingredient reuses the exact batch code path: group states
/// extend the committed AggState fold sequentially (never merging partial
/// sums), fragment cells sort by the same Value ordering SortTable uses, and
/// re-validation calls mining_internal::FitFragmentCandidate on identically
/// constructed vectors.
///
/// Absorb is transactional: on stop, error, or an injected
/// "incremental.merge" fault, all staged work is discarded and the
/// maintainer remains valid at its previous fold point — callers may retry,
/// catch up later, or fall back to a from-scratch mine (Engine does the
/// latter and counts it as a full re-mine).
///
/// Unsupported configurations are rejected at Build with Unimplemented:
/// paged (non-resident) tables, use_fd_optimizations (FD skips change the
/// candidate space), and approximate sampling (a sample is not maintainable
/// row-by-row). Tables containing NaN in an eligible double attribute are
/// rejected the same way — NaN compares equal to every number under Value
/// ordering, so fragment identity would not be byte-stable.
///
/// Not thread-safe; the table must outlive the maintainer and must only grow
/// via appends between calls.
class PatternMaintainer {
 public:
  /// Builds maintenance state for `table` under `config` and folds all
  /// current rows (equivalent to an initial mine). `stop` bounds the initial
  /// fold; on stop the partially built maintainer is discarded.
  static Result<std::unique_ptr<PatternMaintainer>> Build(TablePtr table,
                                                          const MiningConfig& config,
                                                          StopToken* stop = nullptr);

  ~PatternMaintainer();
  PatternMaintainer(const PatternMaintainer&) = delete;
  PatternMaintainer& operator=(const PatternMaintainer&) = delete;

  /// Folds rows [rows_folded(), table->num_rows()) into the maintained
  /// state: extends every group table by the delta, re-validates exactly the
  /// fragments whose group keys the delta touched, and re-runs candidate
  /// generation only for newly-seen group values. No-op when the table has
  /// not grown. All-or-nothing (see class comment).
  Status Absorb(StopToken* stop = nullptr);

  /// The pattern set for the first rows_folded() rows — byte-identical to a
  /// from-scratch mine of those rows. Cheap relative to mining: it re-ranks
  /// surviving candidates, it does not touch the data.
  PatternSet Finalize() const;

  /// Rows [0, rows_folded()) are reflected in Finalize().
  int64_t rows_folded() const;

  /// MiningConfigDigest of the config the maintainer was built with; callers
  /// must rebuild when their config digest diverges.
  uint64_t config_digest() const;

  const MaintenanceStats& stats() const;

 private:
  struct Rep;
  explicit PatternMaintainer(std::unique_ptr<Rep> rep);
  std::unique_ptr<Rep> rep_;
};

}  // namespace cape

#endif  // CAPE_PATTERN_INCREMENTAL_H_
