#include "pattern/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <iterator>
#include <optional>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "pattern/mining_internal.h"
#include "relational/operators.h"

namespace cape {

namespace {

using mining_internal::CandidateMap;
using mining_internal::CandidateStats;

/// Appends an exact-byte encoding of base-table cell (row, col) such that
/// two cells of the same column encode equal iff their Values compare equal
/// (the equality SortTable's fragment boundaries use). Within a column all
/// non-null values share one type, so: int64 payloads are exact bytes,
/// doubles canonicalize -0.0 to +0.0 (NaN is excluded upstream), and strings
/// are length-prefixed content. A leading flag byte separates NULL from
/// everything else.
void AppendCellKey(const Table& table, int64_t row, int col, std::string* key) {
  const Column& c = table.column(col);
  if (c.IsNull(row)) {
    key->push_back('\0');
    return;
  }
  key->push_back('\1');
  auto append_u64 = [key](uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      key->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
    }
  };
  switch (c.type()) {
    case DataType::kInt64:
      append_u64(static_cast<uint64_t>(c.GetInt64(row)));
      break;
    case DataType::kDouble: {
      double v = c.GetDouble(row);
      if (v == 0.0) v = 0.0;  // -0.0 and +0.0 compare equal; one key
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      append_u64(bits);
      break;
    }
    case DataType::kString: {
      const std::string& s = c.GetString(row);
      const uint32_t len = static_cast<uint32_t>(s.size());
      for (int i = 0; i < 4; ++i) {
        key->push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
      }
      key->append(s);
      break;
    }
  }
}

/// One (agg, model) candidate of a split, with its surviving local patterns
/// keyed by the split's fragment byte-key.
struct CandidateSlot {
  size_t agg_idx = 0;  // into GroupSetState::agg_candidates
  Pattern pattern;
  std::map<std::string, LocalPattern> locals;
};

/// One (F, V) split of an attribute set G. `buckets` partitions the G-group
/// ids by fragment key, each bucket stored in the split's cell order — V
/// values ascending under Value ordering, group id (= discovery order) as
/// the stable tie-break — which is exactly the fragment row order
/// EvaluateSplit sees after SortTable.
struct SplitState {
  std::vector<int> f_base;  // base attr indices, ascending
  std::vector<int> v_base;
  AttrSet f_attrs;
  AttrSet v_attrs;
  bool v_all_numeric = false;
  std::vector<bool> v_is_numeric;  // parallel to v_base
  std::unordered_map<std::string, std::vector<int64_t>> buckets;
  int64_t num_supported = 0;  // buckets at/above the local support threshold
  std::vector<CandidateSlot> candidates;
};

/// Everything maintained for one attribute set G: the incrementally folded
/// group table plus every allowed split of G.
struct GroupSetState {
  std::vector<int> g_attrs;
  std::vector<std::pair<AggFunc, int>> agg_candidates;
  std::unique_ptr<IncrementalGroupBy> groups;
  std::vector<SplitState> splits;
};

/// Result of re-validating one dirty fragment, staged until the commit
/// barrier. `locals` is parallel to the split's candidates; nullopt means
/// the candidate no longer (or still does not) hold on this fragment.
struct FragmentDelta {
  SplitState* split = nullptr;
  std::string key;
  std::vector<int64_t> new_ids;  // ascending, all >= pre-fold group count
  std::vector<int64_t> merged;   // full bucket in cell order; empty = unchanged
  std::vector<std::optional<LocalPattern>> locals;
};

}  // namespace

struct PatternMaintainer::Rep {
  TablePtr table;
  MiningConfig config;
  uint64_t config_digest = 0;
  std::vector<int> nan_guard_cols;  // eligible double columns
  std::vector<int> numeric_cols;    // for MaintenanceStats::column_stats
  std::vector<GroupSetState> group_sets;
  int64_t rows_folded = 0;
  MaintenanceStats stats;

  void DiscardAllFolds() {
    for (GroupSetState& gs : group_sets) gs.groups->DiscardFold();
  }

  /// Buffers reused across every RefitFragment call of one staged delta.
  struct RefitScratch {
    CandidateMap fits;
    std::vector<double> y;        // per-cell aggregate values (one agg pass)
    std::vector<uint8_t> valid;   // parallel non-NULL flags
  };

  Status RefitFragment(const GroupSetState& gs, const SplitState& split,
                       const std::vector<int64_t>& new_ids, const std::string& key,
                       std::vector<std::optional<LocalPattern>>* out,
                       std::vector<int64_t>* merged_out, MiningProfile* scratch_profile,
                       RefitScratch* scratch) const;
  Status StageDelta(int64_t end_row, StopToken* stop, std::vector<FragmentDelta>* pending);
};

/// Rebuilds one fragment's regression inputs exactly as EvaluateSplit would
/// see them in the sorted aggregated table, and re-runs FitFragmentCandidate
/// per candidate. Cells order by (V values under Value ordering, then group
/// id): SortTable is stable and aggregated rows appear in group discovery
/// order, so the id tie-break reproduces its row order byte-for-byte.
/// Committed buckets already store that order, so only the staged-new
/// groups sort and merge in; a fragment dirtied by existing groups alone
/// reuses the stored order untouched. `merged_out` receives the full
/// post-fold bucket when new ids exist (the commit barrier moves it into
/// the bucket) and stays empty otherwise.
Status PatternMaintainer::Rep::RefitFragment(
    const GroupSetState& gs, const SplitState& split, const std::vector<int64_t>& new_ids,
    const std::string& key, std::vector<std::optional<LocalPattern>>* out,
    std::vector<int64_t>* merged_out, MiningProfile* scratch_profile,
    RefitScratch* scratch) const {
  const Table& base = *table;
  const IncrementalGroupBy& groups = *gs.groups;
  const size_t nv = split.v_base.size();

  // Cell comparator reading base-table cells directly: within a column all
  // non-null values share one type, so these typed compares agree exactly
  // with Value::Compare (NaN is excluded by the Absorb guard).
  auto cell_less = [&](int64_t ga, int64_t gb) {
    const int64_t ra = groups.RepresentativeRow(ga);
    const int64_t rb = groups.RepresentativeRow(gb);
    for (size_t v = 0; v < nv; ++v) {
      const Column& c = base.column(split.v_base[v]);
      const bool null_a = c.IsNull(ra);
      const bool null_b = c.IsNull(rb);
      if (null_a || null_b) {
        if (null_a != null_b) return null_a;  // NULL < non-NULL
        continue;                             // NULL == NULL
      }
      switch (c.type()) {
        case DataType::kInt64: {
          const int64_t a = c.GetInt64(ra);
          const int64_t b = c.GetInt64(rb);
          if (a != b) return a < b;
          break;
        }
        case DataType::kDouble: {
          const double a = c.GetDouble(ra);
          const double b = c.GetDouble(rb);
          if (a < b) return true;
          if (b < a) return false;
          break;
        }
        case DataType::kString: {
          const int cmp = c.GetString(ra).compare(c.GetString(rb));
          if (cmp != 0) return cmp < 0;
          break;
        }
      }
    }
    return ga < gb;
  };

  auto bucket_it = split.buckets.find(key);
  const std::vector<int64_t>* cells =
      bucket_it != split.buckets.end() ? &bucket_it->second : nullptr;
  if (!new_ids.empty()) {
    std::vector<int64_t> sorted_new = new_ids;
    std::sort(sorted_new.begin(), sorted_new.end(), cell_less);
    if (cells == nullptr) {
      *merged_out = std::move(sorted_new);
    } else {
      merged_out->reserve(cells->size() + sorted_new.size());
      std::merge(cells->begin(), cells->end(), sorted_new.begin(), sorted_new.end(),
                 std::back_inserter(*merged_out), cell_less);
    }
    cells = merged_out;
  }

  // Below the local support threshold no candidate can hold (and support
  // only grows, so none held before either): FitFragmentCandidate would
  // early-return before fitting, and Finalize() recomputes the fragment and
  // support counters from bucket sizes. Skip the whole per-cell rebuild and
  // report "no local" for every candidate — tiny fragments dominate the
  // fragment count on high-cardinality splits, so this skip carries most of
  // the incremental-vs-scratch speedup.
  if (static_cast<int64_t>(cells->size()) < config.local_support_threshold) {
    out->assign(split.candidates.size(), std::nullopt);
    return Status::OK();
  }

  // The fragment row reads the first sorted cell's representative base row —
  // the same cell EvaluateSplit's `data.GetValue(begin, c)` resolves to.
  Row fragment;
  fragment.reserve(split.f_base.size());
  const int64_t first_rep = groups.RepresentativeRow(cells->front());
  for (int fc : split.f_base) fragment.push_back(base.GetValue(first_rep, fc));

  // Constant models never read their predictor row (Predict ignores it), so
  // the X matrix is only materialized when a non-const candidate will
  // consume it; const-only splits carry empty placeholder rows instead.
  bool need_x = false;
  // analyzer:allow-next-line(cancellation) slots are schema-bounded (agg x model)
  for (const CandidateSlot& slot : split.candidates) {
    if (slot.pattern.model != ModelType::kConst) need_x = true;
  }

  const size_t naggs = gs.agg_candidates.size();
  std::vector<std::vector<double>> ys(naggs);
  std::vector<std::vector<std::vector<double>>> x_per_agg(naggs);
  for (size_t a = 0; a < naggs; ++a) {
    ys[a].reserve(cells->size());
    x_per_agg[a].reserve(cells->size());
  }
  const size_t ncells = cells->size();
  std::vector<double> x(nv, 0.0);
  const std::vector<double> no_x;
  scratch->y.resize(ncells);
  scratch->valid.resize(ncells);
  for (size_t a = 0; a < naggs; ++a) {
    groups.AggregateNumericBatch(cells->data(), ncells, a, scratch->y.data(),
                                 scratch->valid.data());
    for (size_t i = 0; i < ncells; ++i) {
      if (!scratch->valid[i]) continue;  // NULL aggregate
      if (need_x) {
        const int64_t rep_row = groups.RepresentativeRow((*cells)[i]);
        for (size_t v = 0; v < nv; ++v) {
          x[v] = split.v_is_numeric[v]
                     ? base.column(split.v_base[v]).GetNumeric(rep_row)
                     : 0.0;
        }
      }
      ys[a].push_back(scratch->y[i]);
      x_per_agg[a].push_back(need_x ? x : no_x);
    }
  }

  const int64_t support = static_cast<int64_t>(cells->size());
  out->reserve(split.candidates.size());
  // analyzer:allow-next-line(cancellation) slots are schema-bounded (agg x model)
  for (const CandidateSlot& slot : split.candidates) {
    CandidateMap& fits = scratch->fits;
    fits.clear();  // keeps its bucket array across slots and deltas
    mining_internal::FitFragmentCandidate(fragment, x_per_agg[slot.agg_idx],
                                          ys[slot.agg_idx], support, slot.pattern.model,
                                          slot.pattern, config, scratch_profile, &fits);
    std::optional<LocalPattern> local;
    auto it = fits.find(slot.pattern);
    if (it != fits.end() && !it->second.locals.empty()) {
      local.emplace(std::move(it->second.locals.front()));
    }
    out->push_back(std::move(local));
  }
  return Status::OK();
}

/// Phases A and B of Absorb: stage the group-table folds, then re-validate
/// every fragment whose key a touched group maps to. Leaves all folds staged
/// for the caller to commit or discard; touches no committed state.
Status PatternMaintainer::Rep::StageDelta(int64_t end_row, StopToken* stop,
                                          std::vector<FragmentDelta>* pending) {
  for (GroupSetState& gs : group_sets) {
    CAPE_RETURN_IF_ERROR(gs.groups->PrepareFold(end_row, stop));
  }

  MiningProfile scratch_profile;  // FitFragmentCandidate's timers; discarded
  RefitScratch refit_scratch;     // reused across every re-fit this delta
  // Cell-key segments of the touched groups' representative rows, rebuilt
  // per group-set: every split's fragment key concatenates a subset of the
  // group-set's cell keys, so the base-table cells are encoded once per
  // touched group instead of once per (group, split) pair.
  std::string seg_pool;
  std::vector<size_t> seg_off;  // (ncols + 1) boundaries per touched id
  std::vector<size_t> f_pos;    // split's f_base positions within g_attrs
  std::unordered_map<std::string, std::vector<int64_t>> dirty;  // reused per split
  for (GroupSetState& gs : group_sets) {
    const int64_t committed = gs.groups->num_groups();
    const std::vector<int64_t>& touched = gs.groups->staged_touched();
    if (touched.empty()) continue;
    const size_t ncols = gs.g_attrs.size();
    seg_pool.clear();
    seg_off.clear();
    seg_off.reserve(touched.size() * (ncols + 1));
    for (int64_t id : touched) {
      const int64_t rep_row = gs.groups->RepresentativeRow(id);
      for (size_t c = 0; c < ncols; ++c) {
        seg_off.push_back(seg_pool.size());
        AppendCellKey(*table, rep_row, gs.g_attrs[c], &seg_pool);
      }
      seg_off.push_back(seg_pool.size());
    }
    for (SplitState& split : gs.splits) {
      f_pos.clear();
      for (int fc : split.f_base) {
        f_pos.push_back(static_cast<size_t>(
            std::find(gs.g_attrs.begin(), gs.g_attrs.end(), fc) - gs.g_attrs.begin()));
      }
      // Touched groups, partitioned by this split's fragment key. New ids
      // arrive in first-touch order (ascending), committed dirty groups mark
      // their fragment with an (empty) entry. Map order is irrelevant: every
      // delta is independent and commits by fragment key.
      dirty.clear();  // bucket array survives, sized by earlier splits
      dirty.reserve(touched.size());
      std::string key;
      for (size_t i = 0; i < touched.size(); ++i) {
        key.clear();
        const size_t base = i * (ncols + 1);
        for (size_t p : f_pos) {
          key.append(seg_pool.data() + seg_off[base + p],
                     seg_off[base + p + 1] - seg_off[base + p]);
        }
        auto [it, inserted] = dirty.try_emplace(key);
        (void)inserted;
        if (touched[i] >= committed) it->second.push_back(touched[i]);
      }
      // analyzer:allow-next-line(unordered-iteration) deltas commit by key
      for (auto& [fkey, new_ids] : dirty) {
        CAPE_RETURN_IF_STOPPED_BLOCK(stop);
        FragmentDelta delta;
        delta.split = &split;
        delta.key = fkey;
        delta.new_ids = std::move(new_ids);
        CAPE_RETURN_IF_ERROR(RefitFragment(gs, split, delta.new_ids, delta.key,
                                           &delta.locals, &delta.merged,
                                           &scratch_profile, &refit_scratch));
        pending->push_back(std::move(delta));
      }
    }
  }
  return Status::OK();
}

PatternMaintainer::PatternMaintainer(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
PatternMaintainer::~PatternMaintainer() = default;

int64_t PatternMaintainer::rows_folded() const { return rep_->rows_folded; }
uint64_t PatternMaintainer::config_digest() const { return rep_->config_digest; }
const MaintenanceStats& PatternMaintainer::stats() const { return rep_->stats; }

Result<std::unique_ptr<PatternMaintainer>> PatternMaintainer::Build(
    TablePtr table, const MiningConfig& config, StopToken* stop) {
  if (table == nullptr) {
    return Status::InvalidArgument("PatternMaintainer requires a table");
  }
  if (!table->rows_resident()) {
    return Status::NotImplemented(
        "incremental maintenance requires resident rows; paged tables re-mine from "
        "scratch");
  }
  if (config.use_fd_optimizations) {
    return Status::NotImplemented(
        "incremental maintenance with FD optimizations is not supported: FD-based "
        "skips change the candidate space as data grows");
  }
  if (config.approx_sample_rows > 0) {
    return Status::NotImplemented(
        "approximate (sampled) mining is not incrementally maintainable; re-mine "
        "from scratch");
  }

  auto rep = std::make_unique<Rep>();
  rep->table = table;
  rep->config = config;
  rep->config_digest = MiningConfigDigest(config);
  const Schema& schema = *table->schema();
  const AttrSet allowed = mining_internal::AllowedAttrs(schema, config);
  for (int a : allowed.ToIndices()) {
    if (schema.field(a).type == DataType::kDouble) rep->nan_guard_cols.push_back(a);
  }
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (IsNumericType(schema.field(c).type)) rep->numeric_cols.push_back(c);
  }
  rep->stats.column_stats.resize(static_cast<size_t>(schema.num_fields()));

  CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                        mining_internal::EnumerateGroupSets(schema, config));
  for (AttrSet g : group_sets) {
    GroupSetState gs;
    gs.agg_candidates = mining_internal::EnumerateAggCandidates(*table, g, config);
    if (gs.agg_candidates.empty()) continue;
    gs.g_attrs = g.ToIndices();
    const int num_g = static_cast<int>(gs.g_attrs.size());

    std::vector<AggregateSpec> specs;
    specs.reserve(gs.agg_candidates.size());
    for (size_t i = 0; i < gs.agg_candidates.size(); ++i) {
      AggregateSpec spec;
      spec.func = gs.agg_candidates[i].first;
      spec.input_col = gs.agg_candidates[i].second;
      spec.output_name = "agg" + std::to_string(i);
      specs.push_back(std::move(spec));
    }
    CAPE_ASSIGN_OR_RETURN(gs.groups,
                          IncrementalGroupBy::Make(table, gs.g_attrs, std::move(specs)));

    for (uint32_t mask = 1; mask + 1 < (1u << num_g); ++mask) {
      SplitState split;
      for (int i = 0; i < num_g; ++i) {
        const int attr = gs.g_attrs[static_cast<size_t>(i)];
        if (mask & (1u << i)) {
          split.f_attrs.Add(attr);
          split.f_base.push_back(attr);
        } else {
          split.v_attrs.Add(attr);
          split.v_base.push_back(attr);
        }
      }
      if (!mining_internal::SplitAllowed(*table, split.v_attrs, config)) continue;
      split.v_all_numeric = mining_internal::AllNumeric(*table, split.v_attrs);
      split.v_is_numeric.reserve(split.v_base.size());
      for (int vc : split.v_base) {
        split.v_is_numeric.push_back(IsNumericType(schema.field(vc).type));
      }
      for (size_t a = 0; a < gs.agg_candidates.size(); ++a) {
        for (ModelType model : config.model_types) {
          if (model == ModelType::kLinear && !split.v_all_numeric) continue;
          CandidateSlot slot;
          slot.agg_idx = a;
          slot.pattern.partition_attrs = split.f_attrs;
          slot.pattern.predictor_attrs = split.v_attrs;
          slot.pattern.agg = gs.agg_candidates[a].first;
          slot.pattern.agg_attr = gs.agg_candidates[a].second;
          slot.pattern.model = model;
          split.candidates.push_back(std::move(slot));
        }
      }
      gs.splits.push_back(std::move(split));
    }
    rep->group_sets.push_back(std::move(gs));
  }

  std::unique_ptr<PatternMaintainer> maintainer(new PatternMaintainer(std::move(rep)));
  CAPE_RETURN_IF_ERROR(maintainer->Absorb(stop));
  return maintainer;
}

Status PatternMaintainer::Absorb(StopToken* stop) {
  Rep& rep = *rep_;
  const int64_t end_row = rep.table->num_rows();
  if (end_row < rep.rows_folded) {
    return Status::InvalidArgument(
        "maintained table shrank from " + std::to_string(rep.rows_folded) + " to " +
        std::to_string(end_row) + " rows; rebuild the maintainer");
  }
  if (end_row == rep.rows_folded) return Status::OK();

  // NaN in an eligible double attribute breaks byte-stable fragment identity
  // (NaN compares equal to every number under Value ordering); hand the
  // whole table back to the from-scratch path.
  for (int col : rep.nan_guard_cols) {
    const Column& c = rep.table->column(col);
    for (int64_t row = rep.rows_folded; row < end_row; ++row) {
      if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      if (!c.IsNull(row) && std::isnan(c.GetDouble(row))) {
        return Status::NotImplemented(
            "NaN in attribute '" + rep.table->schema()->field(col).name +
            "' row " + std::to_string(row) +
            ": incremental maintenance cannot order NaN fragments; re-mine from "
            "scratch");
      }
    }
  }

  std::vector<FragmentDelta> pending;
  Status staged = rep.StageDelta(end_row, stop, &pending);
  if (!staged.ok()) {
    rep.DiscardAllFolds();
    return staged;
  }

#ifndef CAPE_DISABLE_FAILPOINTS
  // Commit barrier: a fault injected here proves the all-or-nothing
  // contract — every staged fold is discarded, the maintainer stays at its
  // previous fold point, and the caller degrades to a full re-mine instead
  // of ever publishing a half-merged state.
  if (CAPE_PREDICT_FALSE(failpoint::AnyActive())) {
    Status injected = failpoint::Trigger("incremental.merge");
    if (!injected.ok()) {
      rep.DiscardAllFolds();
      return injected;
    }
  }
#endif

  // Commit. Nothing below allocates in a way that can fail halfway into a
  // observable state: group folds publish by move, bucket/local updates are
  // per-fragment and idempotent re Finalize().
  for (GroupSetState& gs : rep.group_sets) {
    const int64_t committed = gs.groups->num_groups();
    for (int64_t id : gs.groups->staged_touched()) {
      rep.stats.groups_touched += 1;
      if (id >= committed) rep.stats.groups_created += 1;
    }
    gs.groups->CommitFold();
  }
  for (FragmentDelta& delta : pending) {
    if (!delta.new_ids.empty()) {
      // Maintain the split's supported-fragment count as the bucket grows
      // past the threshold (support never shrinks), sparing Finalize() a
      // full scan over every bucket of every split.
      std::vector<int64_t>& bucket = delta.split->buckets[delta.key];
      const int64_t threshold = rep.config.local_support_threshold;
      if (static_cast<int64_t>(bucket.size()) < threshold &&
          static_cast<int64_t>(delta.merged.size()) >= threshold) {
        delta.split->num_supported += 1;
      }
      bucket = std::move(delta.merged);
    }
    rep.stats.fragments_refit += 1;
    for (size_t c = 0; c < delta.split->candidates.size(); ++c) {
      rep.stats.candidates_revalidated += 1;
      std::map<std::string, LocalPattern>& locals = delta.split->candidates[c].locals;
      if (delta.locals[c].has_value()) {
        auto [it, inserted] =
            locals.insert_or_assign(delta.key, std::move(*delta.locals[c]));
        (void)it;
        if (inserted) {
          rep.stats.locals_added += 1;
        } else {
          rep.stats.locals_replaced += 1;
        }
      } else if (locals.erase(delta.key) > 0) {
        rep.stats.locals_dropped += 1;
      }
    }
  }

  // Column moments: per-batch Welford accumulators folded into the lifetime
  // ones via Merge (order-independent up to rounding; descriptive.h).
  for (int col : rep.numeric_cols) {
    const Column& c = rep.table->column(col);
    RunningStats batch;
    // Past the commit barrier: a stop return here would leave buckets folded
    // but rows_folded stale, double-folding the batch on retry.
    // analyzer:allow-next-line(cancellation) all-or-nothing contract wins
    for (int64_t row = rep.rows_folded; row < end_row; ++row) {
      if (!c.IsNull(row)) batch.Add(c.GetNumeric(row));
    }
    rep.stats.column_stats[static_cast<size_t>(col)].Merge(batch);
  }
  rep.stats.batches_absorbed += 1;
  rep.stats.rows_absorbed += end_row - rep.rows_folded;
  rep.rows_folded = end_row;
  return Status::OK();
}

PatternSet PatternMaintainer::Finalize() const {
  const Rep& rep = *rep_;
  CandidateMap candidates;
  for (const GroupSetState& gs : rep.group_sets) {
    for (const SplitState& split : gs.splits) {
      if (split.buckets.empty()) continue;
      const int64_t num_fragments = static_cast<int64_t>(split.buckets.size());
      const int64_t num_supported = split.num_supported;
      // analyzer:allow-next-line(cancellation) slots are schema-bounded (agg x model)
      for (const CandidateSlot& slot : split.candidates) {
        CandidateStats stats;
        stats.pattern = slot.pattern;
        stats.num_fragments = num_fragments;
        stats.num_supported = num_supported;
        stats.num_holding = static_cast<int64_t>(slot.locals.size());
        for (const auto& [key, local] : slot.locals) {
          if (local.max_positive_dev > stats.max_positive_dev) {
            stats.max_positive_dev = local.max_positive_dev;
          }
          if (local.min_negative_dev < stats.min_negative_dev) {
            stats.min_negative_dev = local.min_negative_dev;
          }
          stats.locals.push_back(local);
        }
        candidates.emplace(slot.pattern, std::move(stats));
      }
    }
  }
  return mining_internal::FinalizePatterns(std::move(candidates), rep.config);
}

}  // namespace cape
