#ifndef CAPE_PATTERN_PATTERN_H_
#define CAPE_PATTERN_PATTERN_H_

#include <string>

#include "common/hash.h"
#include "fd/attr_set.h"
#include "relational/operators.h"
#include "relational/schema.h"
#include "stats/regression.h"

namespace cape {

/// An aggregate regression pattern (ARP), Definition 2:
///
///   P = [F] : V ~M~> agg(A)
///
/// F (partition attributes) and V (predictor attributes) are disjoint,
/// non-empty sets of column indices of the mined relation; agg is one of
/// count/sum/min/max; A is the aggregated column (kCountStar for count(*));
/// M is the regression model type.
struct Pattern {
  static constexpr int kCountStar = AggregateSpec::kCountStar;

  AttrSet partition_attrs;  // F
  AttrSet predictor_attrs;  // V
  AggFunc agg = AggFunc::kCount;
  int agg_attr = kCountStar;  // A
  ModelType model = ModelType::kConst;

  /// G_P = F ∪ V.
  AttrSet GroupAttrs() const { return partition_attrs.Union(predictor_attrs); }

  /// Structural validity per Definition 2 (non-empty disjoint F/V, A outside
  /// F ∪ V, count iff A = *).
  bool IsWellFormed() const {
    if (partition_attrs.empty() || predictor_attrs.empty()) return false;
    if (partition_attrs.Intersects(predictor_attrs)) return false;
    if (agg == AggFunc::kCount) return agg_attr == kCountStar;
    return agg_attr != kCountStar && !GroupAttrs().Contains(agg_attr);
  }

  /// Definition 6: P' refines P (w.r.t. any question) iff F' ⊇ F with the
  /// same predictors and the same aggregate. M' may differ.
  bool IsRefinementOf(const Pattern& other) const {
    return partition_attrs.ContainsAll(other.partition_attrs) &&
           predictor_attrs == other.predictor_attrs && agg == other.agg &&
           agg_attr == other.agg_attr;
  }

  /// "[author] : year ~Const~> count(*)" using `schema` for names.
  std::string ToString(const Schema& schema) const;

  /// Identity ignores nothing: two patterns are equal iff all five
  /// components match.
  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.partition_attrs == b.partition_attrs && a.predictor_attrs == b.predictor_attrs &&
           a.agg == b.agg && a.agg_attr == b.agg_attr && a.model == b.model;
  }

  size_t Hash() const {
    size_t h = HashValue(partition_attrs.bits());
    h = HashCombine(h, HashValue(predictor_attrs.bits()));
    h = HashCombine(h, static_cast<size_t>(agg));
    h = HashCombine(h, static_cast<size_t>(agg_attr + 1));
    h = HashCombine(h, static_cast<size_t>(model));
    return h;
  }
};

struct PatternHasher {
  size_t operator()(const Pattern& p) const { return p.Hash(); }
};

}  // namespace cape

#endif  // CAPE_PATTERN_PATTERN_H_
