#include "pattern/pattern.h"

namespace cape {

std::string Pattern::ToString(const Schema& schema) const {
  auto names = [&](AttrSet attrs) {
    std::string out;
    bool first = true;
    for (int i : attrs.ToIndices()) {
      if (!first) out += ", ";
      out += schema.field(i).name;
      first = false;
    }
    return out;
  };
  std::string agg_str = AggFuncToString(agg);
  agg_str += "(";
  agg_str += (agg_attr == kCountStar) ? "*" : schema.field(agg_attr).name;
  agg_str += ")";
  return "[" + names(partition_attrs) + "] : " + names(predictor_attrs) + " ~" +
         ModelTypeToString(model) + "~> " + agg_str;
}

}  // namespace cape
