#include <algorithm>
#include <set>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "fd/fd_detector.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"

namespace cape {

namespace {

using mining_internal::AggColumnRef;
using mining_internal::CandidateMap;

/// ARP-MINE (Algorithm 2 + Algorithm 5): shares one aggregation query per
/// attribute set G, reuses each sort order for every (F, V) split whose F is
/// a prefix of the order, detects FDs from group cardinalities as a side
/// effect, and (when enabled) skips candidates that are redundant under the
/// discovered FDs (Appendix D).
///
/// Parallelism (DESIGN.md §9): attribute sets are processed level by level
/// (all G of one size), each level in three phases behind a barrier —
/// (A) group-by queries for every G of the level in parallel, (B) FD
/// recording/detection sequentially in set order, (C) sort-order exploration
/// for every G in parallel against the now-frozen FdSet. FD detection only
/// consumes cardinalities of this and previous levels, so phasing makes the
/// FDs visible to every skip decision a pure function of the level — the
/// mined pattern set is identical at any thread count (num_threads == 1
/// takes the same path).
class ArpMiner final : public PatternMiner {
 public:
  std::string name() const override { return "ARP-MINE"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    MiningResult result;
    result.fds = config.initial_fds;
    MiningProfile& profile = result.profile;
    Stopwatch total;
    CandidateMap candidates;
    FdDetector detector(&result.fds);

    if (config.use_fd_optimizations) {
      // Seed singleton cardinalities (the system-catalog statistics a DBMS
      // would provide) so size-2 iterations can already test A -> B.
      ScopedTimer timer(&profile.query_ns);
      const AttrSet allowed = mining_internal::AllowedAttrs(*table.schema(), config);
      for (int a : allowed.ToIndices()) {
        profile.num_queries += 1;
        detector.RecordGroupSize(AttrSet::Single(a), table.column(a).CountDistinct());
      }
    }

    // EnumerateGroupSets yields sets in increasing size, the order the FD
    // detection correctness argument relies on (Appendix D). Contiguous runs
    // of equal size form the levels.
    CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                          mining_internal::EnumerateGroupSets(*table.schema(), config));

    ThreadPool& pool = ThreadPool::Global();
    ThreadPool::ParallelForOptions opts;
    opts.max_workers = std::max(config.num_threads, 1);
    opts.grain = 1;  // one attribute set per claim
    opts.stop = config.MakeStopToken();

    size_t level_begin = 0;
    while (level_begin < group_sets.size() && !result.truncated) {
      size_t level_end = level_begin;
      const int level_size = group_sets[level_begin].size();
      while (level_end < group_sets.size() &&
             group_sets[level_end].size() == level_size) {
        ++level_end;
      }
      const int64_t n = static_cast<int64_t>(level_end - level_begin);
      const int workers = pool.PlannedWorkers(n, opts);

      // Phase A: one shared aggregation query per G, in parallel. A stop
      // abandons the whole level: no cardinality of a partially-queried
      // level is recorded and no candidate of it is emitted, so the result
      // stays an exact subset of the untimed run.
      std::vector<GroupData> level(static_cast<size_t>(n));
      std::vector<MiningProfile> profs(static_cast<size_t>(workers));
      Status st = pool.ParallelFor(
          n, opts, [&](int worker, int64_t begin, int64_t end, StopToken* stop) -> Status {
            MiningProfile& prof = profs[static_cast<size_t>(worker)];
            ScopedTimer cpu(&prof.cpu_ns);
            for (int64_t i = begin; i < end; ++i) {
              CAPE_RETURN_IF_ERROR(RunGroupQuery(
                  table, group_sets[level_begin + static_cast<size_t>(i)], config, &prof,
                  &level[static_cast<size_t>(i)], stop));
            }
            return Status::OK();
          });
      MergeProfiles(profs, &profile);
      if (!st.ok()) {
        if (!st.IsStop()) return st;
        result.truncated = true;
        result.stop_reason = StopReasonFromStatus(st);
        break;
      }

      // Phase B: record cardinalities and detect FDs sequentially in set
      // order — identical to the sequential algorithm's visibility within a
      // level, and deterministic by construction.
      if (config.use_fd_optimizations) {
        for (size_t i = 0; i < level.size(); ++i) {
          if (level[i].data == nullptr) continue;
          const AttrSet g = group_sets[level_begin + i];
          detector.RecordGroupSize(g, level[i].data->num_rows());
          detector.DetectFdsFor(g);
        }
      }

      // Phase C: explore sort orders per G in parallel against the frozen
      // FdSet. Candidate keys embed F ∪ V = G, so the per-worker maps are
      // disjoint and each holds only fully-evaluated splits — on a stop the
      // merge below still yields a subset of the untimed result.
      const FdSet& fds = result.fds;
      std::vector<CandidateMap> worker_candidates(static_cast<size_t>(workers));
      std::fill(profs.begin(), profs.end(), MiningProfile{});
      st = pool.ParallelFor(
          n, opts, [&](int worker, int64_t begin, int64_t end, StopToken* stop) -> Status {
            MiningProfile& prof = profs[static_cast<size_t>(worker)];
            ScopedTimer cpu(&prof.cpu_ns);
            for (int64_t i = begin; i < end; ++i) {
              const GroupData& gd = level[static_cast<size_t>(i)];
              if (gd.data == nullptr) continue;
              const AttrSet g = group_sets[level_begin + static_cast<size_t>(i)];
              CAPE_RETURN_IF_ERROR(ExploreSortOrders(
                  table, g, g.ToIndices(), *gd.data, gd.agg_cols, config, fds, &prof,
                  &worker_candidates[static_cast<size_t>(worker)], stop));
            }
            return Status::OK();
          });
      MergeProfiles(profs, &profile);
      // Post-phase merge: a stop here is honored at the next level boundary;
      // erroring out instead would drop the truncated-result contract the
      // stop-checked ParallelFor just upheld.
      // analyzer:allow-next-line(cancellation) truncated-result contract
      for (CandidateMap& wc : worker_candidates) {
        for (auto& [pattern, stats] : wc) candidates.emplace(pattern, std::move(stats));
      }
      if (!st.ok()) {
        if (!st.IsStop()) return st;
        result.truncated = true;
        result.stop_reason = StopReasonFromStatus(st);
        break;
      }

      level_begin = level_end;
    }

    result.patterns = mining_internal::FinalizePatterns(std::move(candidates), config);
    profile.total_ns = total.ElapsedNanos();
    return result;
  }

 private:
  /// The shared aggregated data of one attribute set G; `data` stays null
  /// when G admits no aggregate candidates.
  struct GroupData {
    TablePtr data;
    std::vector<AggColumnRef> agg_cols;
  };

  static void MergeProfiles(const std::vector<MiningProfile>& parts, MiningProfile* out) {
    for (const MiningProfile& p : parts) {
      out->regression_ns += p.regression_ns;
      out->query_ns += p.query_ns;
      out->cpu_ns += p.cpu_ns;
      out->num_candidates += p.num_candidates;
      out->num_candidates_skipped_fd += p.num_candidates_skipped_fd;
      out->num_local_fits += p.num_local_fits;
      out->num_queries += p.num_queries;
      out->num_sorts += p.num_sorts;
      out->num_rows_scanned += p.num_rows_scanned;
    }
  }

  /// Phase A for one G: enumerate agg(A) candidates and run the shared
  /// group-by query.
  static Status RunGroupQuery(const Table& table, AttrSet g, const MiningConfig& config,
                              MiningProfile* profile, GroupData* out, StopToken* stop) {
    const std::vector<int> g_attrs = g.ToIndices();
    const int gs = static_cast<int>(g_attrs.size());
    const auto agg_candidates = mining_internal::EnumerateAggCandidates(table, g, config);
    if (agg_candidates.empty()) return Status::OK();
    std::vector<AggregateSpec> specs;
    for (size_t i = 0; i < agg_candidates.size(); ++i) {
      const auto& [agg, agg_attr] = agg_candidates[i];
      AggregateSpec spec;
      spec.func = agg;
      spec.input_col = agg_attr;
      spec.output_name = "agg" + std::to_string(i);
      specs.push_back(std::move(spec));
      out->agg_cols.push_back(AggColumnRef{agg, agg_attr, gs + static_cast<int>(i)});
    }
    ScopedTimer timer(&profile->query_ns);
    profile->num_queries += 1;
    CAPE_FAILPOINT("mining.group");
    CAPE_ASSIGN_OR_RETURN(out->data, GroupByAggregate(table, g_attrs, specs, stop));
    return Status::OK();
  }

  /// Algorithm 5: iterate permutations S of G; for each S that can test at
  /// least one unexplored (F, V), sort once and evaluate every unexplored
  /// split whose F is a prefix of S. The explored set C is local to G —
  /// its keys (F, V) satisfy F ∪ V = G, so no other attribute set can ever
  /// collide with them.
  static Status ExploreSortOrders(const Table& table, AttrSet g,
                                  const std::vector<int>& g_attrs, const Table& data,
                                  const std::vector<AggColumnRef>& agg_cols,
                                  const MiningConfig& config, const FdSet& fds,
                                  MiningProfile* profile, CandidateMap* candidates,
                                  StopToken* stop) {
    const int gs = static_cast<int>(g_attrs.size());
    std::set<std::pair<uint64_t, uint64_t>> explored;
    std::vector<int> perm = g_attrs;  // ascending = first permutation
    std::sort(perm.begin(), perm.end());
    do {
      // Which prefix lengths of this order would test something new?
      // FD-redundant splits (Appendix D) are resolved here, *before* the
      // sort decision, so a sort order whose only new splits are FD-skipped
      // never triggers a sort query.
      std::vector<int> new_prefix_lengths;
      {
        AttrSet f_attrs;
        for (int len = 1; len < gs; ++len) {
          f_attrs.Add(perm[static_cast<size_t>(len - 1)]);
          AttrSet v_attrs = g.Difference(f_attrs);
          if (!mining_internal::SplitAllowed(table, v_attrs, config)) continue;
          if (explored.count({f_attrs.bits(), v_attrs.bits()}) > 0) continue;
          if (config.use_fd_optimizations &&
              (!fds.IsMinimal(f_attrs) || fds.ImpliesAll(f_attrs, v_attrs))) {
            explored.insert({f_attrs.bits(), v_attrs.bits()});
            const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
            for (size_t a = 0; a < agg_cols.size(); ++a) {
              (void)a;
              for (ModelType model : config.model_types) {
                if (model == ModelType::kLinear && !v_numeric) continue;
                profile->num_candidates_skipped_fd += 1;
              }
            }
            continue;
          }
          new_prefix_lengths.push_back(len);
        }
      }
      if (new_prefix_lengths.empty()) continue;

      TablePtr sorted;
      {
        ScopedTimer timer(&profile->query_ns);
        profile->num_sorts += 1;
        CAPE_FAILPOINT("mining.sort");
        std::vector<SortKey> keys;
        for (int attr : perm) {
          // Column position of attr inside `data` = rank within g_attrs.
          const int pos = static_cast<int>(
              std::lower_bound(g_attrs.begin(), g_attrs.end(), attr) - g_attrs.begin());
          keys.push_back(SortKey{pos, true});
        }
        CAPE_ASSIGN_OR_RETURN(sorted, SortTable(data, keys, stop));
      }

      for (int len : new_prefix_lengths) {
        AttrSet f_attrs;
        for (int i = 0; i < len; ++i) f_attrs.Add(perm[static_cast<size_t>(i)]);
        AttrSet v_attrs = g.Difference(f_attrs);
        explored.insert({f_attrs.bits(), v_attrs.bits()});

        std::vector<int> f_cols;
        std::vector<int> v_cols;
        for (int i = 0; i < gs; ++i) {
          if (f_attrs.Contains(g_attrs[static_cast<size_t>(i)])) {
            f_cols.push_back(i);
          } else {
            v_cols.push_back(i);
          }
        }
        const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
        CAPE_RETURN_IF_ERROR(mining_internal::EvaluateSplit(*sorted, f_cols, v_cols,
                                                            v_numeric, f_attrs, v_attrs,
                                                            agg_cols, config, profile,
                                                            candidates, stop));
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<PatternMiner> MakeArpMiner() { return std::make_unique<ArpMiner>(); }

Result<std::unique_ptr<PatternMiner>> MakeMinerByName(const std::string& name) {
  if (name == "NAIVE") return MakeNaiveMiner();
  if (name == "CUBE") return MakeCubeMiner();
  if (name == "SHARE-GRP") return MakeShareGrpMiner();
  if (name == "ARP-MINE") return MakeArpMiner();
  return Status::NotFound("unknown miner '" + name +
                          "'; expected NAIVE, CUBE, SHARE-GRP, or ARP-MINE");
}

}  // namespace cape
