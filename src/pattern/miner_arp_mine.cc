#include <algorithm>
#include <set>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "fd/fd_detector.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"

namespace cape {

namespace {

using mining_internal::AggColumnRef;
using mining_internal::CandidateMap;

/// ARP-MINE (Algorithm 2 + Algorithm 5): shares one aggregation query per
/// attribute set G, reuses each sort order for every (F, V) split whose F is
/// a prefix of the order, detects FDs from group cardinalities as a side
/// effect, and (when enabled) skips candidates that are redundant under the
/// discovered FDs (Appendix D).
class ArpMiner final : public PatternMiner {
 public:
  std::string name() const override { return "ARP-MINE"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    MiningResult result;
    result.fds = config.initial_fds;
    MiningProfile& profile = result.profile;
    Stopwatch total;
    StopToken stop = config.MakeStopToken();
    CandidateMap candidates;
    FdDetector detector(&result.fds);

    if (config.use_fd_optimizations) {
      // Seed singleton cardinalities (the system-catalog statistics a DBMS
      // would provide) so size-2 iterations can already test A -> B.
      ScopedTimer timer(&profile.query_ns);
      const AttrSet allowed = mining_internal::AllowedAttrs(*table.schema(), config);
      for (int a : allowed.ToIndices()) {
        profile.num_queries += 1;
        detector.RecordGroupSize(AttrSet::Single(a), table.column(a).CountDistinct());
      }
    }

    // (F, V) pairs already evaluated — the set C of Algorithm 2.
    std::set<std::pair<uint64_t, uint64_t>> explored;

    // EnumerateGroupSets yields sets in increasing size, the order the FD
    // detection correctness argument relies on (Appendix D).
    CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                          mining_internal::EnumerateGroupSets(*table.schema(), config));
    for (AttrSet g : group_sets) {
      const std::vector<int> g_attrs = g.ToIndices();
      const int gs = static_cast<int>(g_attrs.size());

      const auto agg_candidates = mining_internal::EnumerateAggCandidates(table, g, config);
      if (agg_candidates.empty()) continue;
      std::vector<AggregateSpec> specs;
      std::vector<AggColumnRef> agg_cols;
      for (size_t i = 0; i < agg_candidates.size(); ++i) {
        const auto& [agg, agg_attr] = agg_candidates[i];
        AggregateSpec spec;
        spec.func = agg;
        spec.input_col = agg_attr;
        spec.output_name = "agg" + std::to_string(i);
        specs.push_back(std::move(spec));
        agg_cols.push_back(AggColumnRef{agg, agg_attr, gs + static_cast<int>(i)});
      }
      TablePtr data;
      {
        ScopedTimer timer(&profile.query_ns);
        profile.num_queries += 1;
        CAPE_FAILPOINT("mining.group");
        auto grouped = GroupByAggregate(table, g_attrs, specs, &stop);
        if (!grouped.ok()) {
          if (grouped.status().IsStop()) {
            result.truncated = true;
            result.stop_reason = stop.reason();
            break;
          }
          return grouped.status();
        }
        data = std::move(grouped).ValueOrDie();
      }
      if (config.use_fd_optimizations) {
        detector.RecordGroupSize(g, data->num_rows());
        detector.DetectFdsFor(g);
      }
      Status st = ExploreSortOrders(table, g, g_attrs, *data, agg_cols, config,
                                    result.fds, &explored, &profile, &candidates, &stop);
      if (st.IsStop()) {
        result.truncated = true;
        result.stop_reason = stop.reason();
        break;
      }
      CAPE_RETURN_IF_ERROR(st);
    }

    result.patterns = mining_internal::FinalizePatterns(std::move(candidates), config);
    profile.total_ns = total.ElapsedNanos();
    return result;
  }

 private:
  /// Algorithm 5: iterate permutations S of G; for each S that can test at
  /// least one unexplored (F, V), sort once and evaluate every unexplored
  /// split whose F is a prefix of S.
  Status ExploreSortOrders(const Table& table, AttrSet g, const std::vector<int>& g_attrs,
                           const Table& data, const std::vector<AggColumnRef>& agg_cols,
                           const MiningConfig& config, const FdSet& fds,
                           std::set<std::pair<uint64_t, uint64_t>>* explored,
                           MiningProfile* profile, CandidateMap* candidates,
                           StopToken* stop) {
    const int gs = static_cast<int>(g_attrs.size());
    std::vector<int> perm = g_attrs;  // ascending = first permutation
    std::sort(perm.begin(), perm.end());
    do {
      // Which prefix lengths of this order would test something new?
      // FD-redundant splits (Appendix D) are resolved here, *before* the
      // sort decision, so a sort order whose only new splits are FD-skipped
      // never triggers a sort query.
      std::vector<int> new_prefix_lengths;
      {
        AttrSet f_attrs;
        for (int len = 1; len < gs; ++len) {
          f_attrs.Add(perm[static_cast<size_t>(len - 1)]);
          AttrSet v_attrs = g.Difference(f_attrs);
          if (!mining_internal::SplitAllowed(table, v_attrs, config)) continue;
          if (explored->count({f_attrs.bits(), v_attrs.bits()}) > 0) continue;
          if (config.use_fd_optimizations &&
              (!fds.IsMinimal(f_attrs) || fds.ImpliesAll(f_attrs, v_attrs))) {
            explored->insert({f_attrs.bits(), v_attrs.bits()});
            const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
            for (size_t a = 0; a < agg_cols.size(); ++a) {
              (void)a;
              for (ModelType model : config.model_types) {
                if (model == ModelType::kLinear && !v_numeric) continue;
                profile->num_candidates_skipped_fd += 1;
              }
            }
            continue;
          }
          new_prefix_lengths.push_back(len);
        }
      }
      if (new_prefix_lengths.empty()) continue;

      TablePtr sorted;
      {
        ScopedTimer timer(&profile->query_ns);
        profile->num_sorts += 1;
        CAPE_FAILPOINT("mining.sort");
        std::vector<SortKey> keys;
        for (int attr : perm) {
          // Column position of attr inside `data` = rank within g_attrs.
          const int pos = static_cast<int>(
              std::lower_bound(g_attrs.begin(), g_attrs.end(), attr) - g_attrs.begin());
          keys.push_back(SortKey{pos, true});
        }
        CAPE_ASSIGN_OR_RETURN(sorted, SortTable(data, keys, stop));
      }

      for (int len : new_prefix_lengths) {
        AttrSet f_attrs;
        for (int i = 0; i < len; ++i) f_attrs.Add(perm[static_cast<size_t>(i)]);
        AttrSet v_attrs = g.Difference(f_attrs);
        explored->insert({f_attrs.bits(), v_attrs.bits()});

        std::vector<int> f_cols;
        std::vector<int> v_cols;
        for (int i = 0; i < gs; ++i) {
          if (f_attrs.Contains(g_attrs[static_cast<size_t>(i)])) {
            f_cols.push_back(i);
          } else {
            v_cols.push_back(i);
          }
        }
        const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
        CAPE_RETURN_IF_ERROR(mining_internal::EvaluateSplit(*sorted, f_cols, v_cols,
                                                            v_numeric, f_attrs, v_attrs,
                                                            agg_cols, config, profile,
                                                            candidates, stop));
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<PatternMiner> MakeArpMiner() { return std::make_unique<ArpMiner>(); }

Result<std::unique_ptr<PatternMiner>> MakeMinerByName(const std::string& name) {
  if (name == "NAIVE") return MakeNaiveMiner();
  if (name == "CUBE") return MakeCubeMiner();
  if (name == "SHARE-GRP") return MakeShareGrpMiner();
  if (name == "ARP-MINE") return MakeArpMiner();
  return Status::NotFound("unknown miner '" + name +
                          "'; expected NAIVE, CUBE, SHARE-GRP, or ARP-MINE");
}

}  // namespace cape
