#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"
#include "stats/descriptive.h"
#include "stats/regression.h"

namespace cape {

namespace {

/// SplitMix64: tiny, deterministic, and seedable — the reservoir must pick
/// the same rows for the same (table size, seed) on every platform, since
/// the approximate result is cached under a digest that includes the seed.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Approximate first-pass mining (DESIGN.md §16): mine a uniform reservoir
/// sample instead of the full table. The local support threshold scales by
/// the sampling rate so a fragment's expected sampled support crosses the
/// scaled bar iff its true support rate is near the exact bar; the reported
/// Hoeffding epsilon bounds how far "near" can be. Everything downstream
/// (splits, fits, global thresholds) runs unchanged on the sample.
class SampledMiner final : public PatternMiner {
 public:
  explicit SampledMiner(std::unique_ptr<PatternMiner> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name() + "+SAMPLE"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    const int64_t n = table.num_rows();
    const int64_t k = config.approx_sample_rows;
    if (k <= 0 || n <= k || !table.rows_resident()) {
      return inner_->Mine(table, config);  // exact in, exact out
    }

    // Vitter's Algorithm R over row indices, then re-sorted: preserving row
    // order keeps group discovery order (and therefore the mined pattern
    // set) a deterministic function of (content, seed) alone.
    std::vector<int64_t> picked(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) picked[static_cast<size_t>(i)] = i;
    uint64_t rng = config.approx_seed;
    for (int64_t i = k; i < n; ++i) {
      const int64_t j =
          static_cast<int64_t>(SplitMix64(&rng) % static_cast<uint64_t>(i + 1));
      if (j < k) picked[static_cast<size_t>(j)] = i;
    }
    std::sort(picked.begin(), picked.end());

    auto sample = std::make_shared<Table>(table.schema());
    sample->Reserve(k);
    CAPE_RETURN_IF_ERROR(sample->AppendRowsFrom(table, picked));

    MiningConfig scaled = config;
    scaled.approx_sample_rows = 0;  // the inner run is exact on the sample
    const double rate = static_cast<double>(k) / static_cast<double>(n);
    scaled.local_support_threshold = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               static_cast<double>(config.local_support_threshold) * rate)));

    CAPE_ASSIGN_OR_RETURN(MiningResult result, inner_->Mine(*sample, scaled));
    result.profile.approximate = true;
    result.profile.approx_rows_sampled = k;
    result.profile.approx_rows_total = n;
    const double delta = std::clamp(config.approx_failure_prob, 1e-12, 0.5);
    // Hoeffding: a fragment's membership indicator is Bernoulli, so with
    // probability >= 1-delta the sampled support rate is within epsilon of
    // the true rate after k draws.
    result.profile.approx_support_epsilon =
        std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(k)));
    result.profile.approx_quality_epsilon = QualityEpsilon(table, picked, config, delta);
    return result;
  }

 private:
  /// Empirical-Bernstein bound on the sample mean of each allowed numeric
  /// attribute (the values the fitted models regress on), normalized by the
  /// observed range and maximized over attributes. Accumulated per block
  /// and folded with RunningStats::Merge / RegressionMoments::Merge — the
  /// same mergeable machinery PatternMaintainer uses, exercised here over a
  /// second consumer.
  static double QualityEpsilon(const Table& table, const std::vector<int64_t>& rows,
                               const MiningConfig& config, double delta) {
    const AttrSet allowed = mining_internal::AllowedAttrs(*table.schema(), config);
    const double log_term = std::log(3.0 / delta);
    double worst = 0.0;
    for (int attr : allowed.ToIndices()) {
      const Column& col = table.column(attr);
      if (!IsNumericType(col.type())) continue;
      constexpr size_t kBlock = 4096;
      RunningStats stats;
      RegressionMoments moments;
      // analyzer:allow-next-line(cancellation) `rows` is the config-bounded sample
      for (size_t begin = 0; begin < rows.size(); begin += kBlock) {
        const size_t end = std::min(rows.size(), begin + kBlock);
        RunningStats block;
        RegressionMoments block_moments;
        for (size_t i = begin; i < end; ++i) {
          if (col.IsNull(rows[i])) continue;
          const double v = col.GetNumeric(rows[i]);
          block.Add(v);
          block_moments.Add(v, v);
        }
        stats.Merge(block);
        moments.Merge(block_moments);
      }
      if (stats.count() < 2) continue;
      const double range = stats.max() - stats.min();
      if (range <= 0.0) continue;
      const double kd = static_cast<double>(stats.count());
      // Variance from the merged raw moments (Var = Σy²/n - mean²); the
      // Welford accumulator supplies the exact range.
      const double mean = moments.ConstBeta();
      const double variance =
          std::max(0.0, moments.syy / static_cast<double>(moments.n) - mean * mean);
      const double eps = std::sqrt(2.0 * variance * log_term / kd) +
                         3.0 * range * log_term / kd;
      worst = std::max(worst, eps / range);  // scale-free: epsilon per unit range
    }
    return worst;
  }

  std::unique_ptr<PatternMiner> inner_;
};

}  // namespace

std::unique_ptr<PatternMiner> MakeSampledMiner(std::unique_ptr<PatternMiner> inner) {
  return std::make_unique<SampledMiner>(std::move(inner));
}

}  // namespace cape
