#ifndef CAPE_PATTERN_MINING_H_
#define CAPE_PATTERN_MINING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "fd/fd_set.h"
#include "pattern/pattern_set.h"
#include "relational/table.h"

namespace cape {

/// Thresholds and knobs of the ARP mining problem (Sections 2.3 and 4.1).
struct MiningConfig {
  /// psi: maximal |F ∪ V| considered (Section 4.1, "Restricting pattern
  /// size").
  int max_pattern_size = 4;
  /// theta: local model quality threshold (GoF >= theta).
  double local_gof_threshold = 0.5;
  /// delta: local support threshold (|Q_{P,f}(R)| >= delta).
  int64_t local_support_threshold = 15;
  /// lambda: global confidence threshold.
  double global_confidence_threshold = 0.5;
  /// Delta: global support threshold (|frag_good| >= Delta).
  int64_t global_support_threshold = 15;

  /// Aggregate functions to enumerate. count uses A = *; sum/min/max are
  /// enumerated over every numeric attribute outside G_P.
  std::vector<AggFunc> agg_functions = {AggFunc::kCount, AggFunc::kSum};
  /// Regression model types to enumerate. Linear candidates are skipped
  /// when any predictor attribute is non-numeric.
  std::vector<ModelType> model_types = {ModelType::kConst, ModelType::kLinear};

  /// When set (default), only splits whose predictor attributes V are all
  /// numeric/ordinal are considered, matching the reference CAPE system
  /// (regression needs an ordered predictor axis; every example pattern in
  /// the paper predicts over `year`). Disable to enumerate the full
  /// Definition 2 candidate space (constant models over categorical V).
  bool require_numeric_predictors = true;

  /// Attribute names never used in F, V, or A (e.g. near-unique ids, the
  /// preprocessing the paper applies to the Crime dataset).
  std::vector<std::string> excluded_attrs;

  /// Appendix D optimizations: skip candidates whose F is non-minimal
  /// w.r.t. discovered FDs or where F -> V; detect FDs from group counts
  /// during mining. Only honored by miners that process attribute sets in
  /// increasing size (ARP-MINE); others ignore it.
  bool use_fd_optimizations = false;
  /// FDs known up front (from keys/uniqueness constraints); the miner may
  /// add detected FDs to its own working copy.
  FdSet initial_fds;

  /// Worker threads for miners that support intra-mining parallelism,
  /// scheduled on the shared ThreadPool (DESIGN.md §9). SHARE-GRP
  /// partitions attribute sets G across workers (independent work units
  /// with disjoint candidate patterns). ARP-MINE parallelizes within each
  /// attribute-set level behind a level barrier: group queries and sort
  /// explorations fan out, while FD detection stays sequential in set
  /// order so the FDs available to any skip decision are independent of
  /// thread count. Both miners produce bit-identical pattern sets at any
  /// thread count. When parallel, the profile's per-subtask times
  /// (regression_ns/query_ns/cpu_ns) are summed across workers and may
  /// exceed total_ns (which stays wall time).
  int num_threads = 1;

  /// Approximate first-pass mining (sampled miner, DESIGN.md §16): when
  /// approx_sample_rows > 0 and the table has more rows than that, the
  /// sampled miner mines a deterministic reservoir sample of that many rows
  /// instead of the full table, scaling the local support threshold by the
  /// sampling rate and reporting Hoeffding/empirical-Bernstein error bounds
  /// in the profile. 0 (default) disables sampling — exact mining. The
  /// result is marked MiningProfile::approximate and must never be cached
  /// or compared against exact runs.
  int64_t approx_sample_rows = 0;
  /// Seed of the deterministic reservoir; part of the config digest (two
  /// seeds sample different rows and mine different pattern sets).
  uint64_t approx_seed = 1;
  /// Failure probability of the reported support bound (Hoeffding's
  /// delta): with probability >= 1 - approx_failure_prob, a fragment's true
  /// support rate is within approx_support_epsilon of its sampled rate.
  double approx_failure_prob = 0.05;

  /// Request lifecycle: when deadline_ms > 0 the miner stops cooperatively
  /// after that many milliseconds of wall time and returns the patterns
  /// fully evaluated so far with MiningResult::truncated set; cancel_token
  /// allows another thread to stop the run the same way. 0 = no deadline.
  int64_t deadline_ms = 0;
  CancellationToken cancel_token;

  /// StopToken for this request (infinite when deadline_ms <= 0 and no
  /// cancellable token was provided).
  StopToken MakeStopToken() const {
    return StopToken(deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms)
                                     : Deadline::Infinite(),
                     cancel_token);
  }
};

/// Digest of every MiningConfig knob that affects *which* patterns are
/// mined: thresholds, candidate-space restrictions, aggregate/model lists,
/// excluded attributes, FD optimizations, and initial FDs. Performance and
/// lifecycle knobs (num_threads, deadline_ms, cancel_token) are explicitly
/// excluded — they never change an untruncated result (DESIGN.md §9), so
/// cached pattern sets stay valid across them. Forms the second half of the
/// PatternCache key next to Table::Fingerprint.
uint64_t MiningConfigDigest(const MiningConfig& config);

/// Time attribution for Figure 4 plus counters used in tests/benches.
///
/// `total_ns` is always wall time. `cpu_ns` (and the regression_ns/query_ns
/// breakdown) is work summed across workers: with num_threads > 1 it can
/// exceed total_ns, and cpu_ns / total_ns is the effective parallelism.
struct MiningProfile {
  int64_t regression_ns = 0;  // model fitting + GoF (summed over workers)
  int64_t query_ns = 0;       // aggregation/cube/filter/sort (summed over workers)
  int64_t total_ns = 0;       // wall time (other = total - regression - query)
  int64_t cpu_ns = 0;         // all mining work summed over workers

  int64_t num_candidates = 0;          // (F,V,agg,A,M) combinations examined
  int64_t num_candidates_skipped_fd = 0;
  int64_t num_local_fits = 0;          // regression fits performed
  int64_t num_queries = 0;             // aggregation/filter queries executed
  int64_t num_sorts = 0;               // sort queries executed
  int64_t num_rows_scanned = 0;        // aggregated-data rows consumed by fit scans

  /// Approximate-mode marker (sampled miner): set when the run mined a
  /// sample instead of the full table. Approximate pattern sets carry error
  /// bounds, not guarantees — callers must not cache them under the exact
  /// config digest or diff them against exact runs.
  bool approximate = false;
  int64_t approx_rows_sampled = 0;   // reservoir size actually mined
  int64_t approx_rows_total = 0;     // table rows the sample represents
  /// Hoeffding bound on fragment support rates: with probability
  /// >= 1 - approx_failure_prob, |sampled_rate - true_rate| <= this.
  double approx_support_epsilon = 0.0;
  /// Empirical-Bernstein bound on the mean aggregate value (uses the
  /// sample's observed variance and range via RegressionMoments).
  double approx_quality_epsilon = 0.0;

  int64_t other_ns() const {
    int64_t o = total_ns - regression_ns - query_ns;
    return o < 0 ? 0 : o;
  }
};

/// Result of one mining run.
struct MiningResult {
  PatternSet patterns;
  MiningProfile profile;
  /// FDs known at the end of the run (initial + detected).
  FdSet fds;
  /// Set when the run stopped early (deadline/cancellation). `patterns` then
  /// holds only candidates whose evaluation completed before the stop — a
  /// subset of the untimed run's result, never partially-evaluated ones.
  bool truncated = false;
  StopReason stop_reason = StopReason::kNone;
};

/// Interface shared by the four mining algorithm variants of Section 5.1:
/// NAIVE, CUBE, SHARE-GRP, and ARP-MINE.
class PatternMiner {
 public:
  virtual ~PatternMiner() = default;

  /// Algorithm name as used in the paper's figures.
  virtual std::string name() const = 0;

  /// Mines all ARPs holding globally on `table` under `config`.
  virtual Result<MiningResult> Mine(const Table& table, const MiningConfig& config) = 0;
};

/// Brute-force baseline (Algorithms 3 and 4): one retrieval query per
/// fragment per candidate pattern.
std::unique_ptr<PatternMiner> MakeNaiveMiner();

/// Single CUBE query materialized once, then per-candidate select+sort
/// (Section 4.1, "Using the CUBE BY operator").
std::unique_ptr<PatternMiner> MakeCubeMiner();

/// One aggregation query per G_P shared by all candidates with that
/// attribute set; one sort per (F, V) (Section 4.1, "One query per F ∪ V").
std::unique_ptr<PatternMiner> MakeShareGrpMiner();

/// Algorithm 2: shares group-by queries and sort orders, detects FDs on the
/// fly, and honors MiningConfig::use_fd_optimizations.
std::unique_ptr<PatternMiner> MakeArpMiner();

/// All four miners keyed by paper name ("NAIVE", "CUBE", "SHARE-GRP",
/// "ARP-MINE"); NotFound for anything else.
Result<std::unique_ptr<PatternMiner>> MakeMinerByName(const std::string& name);

/// Sampling-based first-pass wrapper: when MiningConfig::approx_sample_rows
/// is positive and smaller than the table, mines `inner` over a
/// deterministic reservoir sample (Algorithm R, SplitMix64-driven, row
/// order preserved) with the local support threshold scaled by the sample
/// rate, and marks the profile approximate with Hoeffding support and
/// empirical-Bernstein quality bounds. Otherwise delegates to `inner`
/// unchanged — exact in, exact out.
std::unique_ptr<PatternMiner> MakeSampledMiner(std::unique_ptr<PatternMiner> inner);

}  // namespace cape

#endif  // CAPE_PATTERN_MINING_H_
