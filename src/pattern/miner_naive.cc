#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "pattern/mining.h"
#include "pattern/mining_internal.h"
#include "relational/kernels.h"

namespace cape {

namespace {

using mining_internal::CandidateMap;

/// Brute-force pattern discovery (Appendix C, Algorithms 3 and 4): for every
/// candidate (F, V, agg, A, M), enumerate frag(R, P) and run one retrieval
/// query Q_{P,f} = gamma_{V,agg(A)}(sigma_{F=f}(R)) per fragment.
class NaiveMiner final : public PatternMiner {
 public:
  std::string name() const override { return "NAIVE"; }

  Result<MiningResult> Mine(const Table& table, const MiningConfig& config) override {
    MiningResult result;
    result.fds = config.initial_fds;
    MiningProfile& profile = result.profile;
    Stopwatch total;
    StopToken stop = config.MakeStopToken();
    CandidateMap candidates;

    CAPE_ASSIGN_OR_RETURN(const std::vector<AttrSet> group_sets,
                          mining_internal::EnumerateGroupSets(*table.schema(), config));
    for (AttrSet g : group_sets) {
      if (result.truncated) break;
      const auto agg_candidates = mining_internal::EnumerateAggCandidates(table, g, config);
      const std::vector<int> g_attrs = g.ToIndices();
      const int gs = static_cast<int>(g_attrs.size());
      // All (F, V) splits with F, V non-empty.
      for (uint32_t mask = 1; mask + 1 < (1u << gs); ++mask) {
        if (result.truncated) break;
        AttrSet f_attrs;
        AttrSet v_attrs;
        for (int i = 0; i < gs; ++i) {
          if (mask & (1u << i)) {
            f_attrs.Add(g_attrs[static_cast<size_t>(i)]);
          } else {
            v_attrs.Add(g_attrs[static_cast<size_t>(i)]);
          }
        }
        if (!mining_internal::SplitAllowed(table, v_attrs, config)) continue;
        const bool v_numeric = mining_internal::AllNumeric(table, v_attrs);
        for (const auto& [agg, agg_attr] : agg_candidates) {
          for (ModelType model : config.model_types) {
            if (model == ModelType::kLinear && !v_numeric) continue;
            Pattern pattern{f_attrs, v_attrs, agg, agg_attr, model};
            profile.num_candidates += 1;
            Status st =
                EvaluateCandidate(table, pattern, config, &profile, &candidates, &stop);
            if (st.IsStop()) {
              // The partially-evaluated candidate was discarded; keep the
              // fully-evaluated ones and report truncation.
              result.truncated = true;
              result.stop_reason = stop.reason();
              break;
            }
            CAPE_RETURN_IF_ERROR(st);
          }
          if (result.truncated) break;
        }
      }
    }

    result.patterns = mining_internal::FinalizePatterns(std::move(candidates), config);
    profile.total_ns = total.ElapsedNanos();
    return result;
  }

 private:
  /// Algorithm 4 for a single candidate pattern. The candidate's stats are
  /// staged locally and merged only when every fragment was evaluated, so a
  /// stop mid-candidate leaves `candidates` untouched.
  static Status EvaluateCandidate(const Table& table, const Pattern& pattern,
                                  const MiningConfig& config, MiningProfile* profile,
                                  CandidateMap* candidates, StopToken* stop) {
    const std::vector<int> f_attrs = pattern.partition_attrs.ToIndices();
    const std::vector<int> v_attrs = pattern.predictor_attrs.ToIndices();

    TablePtr fragments;
    {
      ScopedTimer timer(&profile->query_ns);
      profile->num_queries += 1;
      CAPE_FAILPOINT("mining.group");
      CAPE_ASSIGN_OR_RETURN(fragments, ProjectDistinct(table, f_attrs, stop));
    }

    AggregateSpec spec;
    spec.func = pattern.agg;
    spec.input_col = pattern.agg_attr;
    spec.output_name = "agg";

    CandidateMap staged;
    for (int64_t fr = 0; fr < fragments->num_rows(); ++fr) {
      CAPE_RETURN_IF_STOPPED(stop);
      Row fragment = fragments->GetRow(fr);
      std::vector<std::pair<int, Value>> conditions;
      conditions.reserve(f_attrs.size());
      for (size_t i = 0; i < f_attrs.size(); ++i) {
        conditions.emplace_back(f_attrs[i], fragment[i]);
      }
      TablePtr fragment_data;
      {
        ScopedTimer timer(&profile->query_ns);
        profile->num_queries += 1;
        // Fused σ→γ: with vectorized kernels on, the fragment's filtered
        // table is never materialized.
        CAPE_ASSIGN_OR_RETURN(fragment_data,
                              FilterGroupAggregate(table, conditions, v_attrs, {spec}, stop));
      }
      const int64_t support = fragment_data->num_rows();
      const int agg_col = static_cast<int>(v_attrs.size());
      std::vector<std::vector<double>> X;
      std::vector<double> y;
      X.reserve(static_cast<size_t>(support));
      y.reserve(static_cast<size_t>(support));
      // String predictors contribute a 0.0 placeholder (only the constant
      // model is fitted when V is not all-numeric).
      std::vector<bool> v_is_numeric;
      v_is_numeric.reserve(v_attrs.size());
      for (size_t vc = 0; vc < v_attrs.size(); ++vc) {
        v_is_numeric.push_back(
            IsNumericType(fragment_data->column(static_cast<int>(vc)).type()));
      }
      for (int64_t row = 0; row < support; ++row) {
        if (fragment_data->column(agg_col).IsNull(row)) continue;
        std::vector<double> x;
        x.reserve(v_attrs.size());
        for (size_t vc = 0; vc < v_attrs.size(); ++vc) {
          x.push_back(v_is_numeric[vc]
                          ? fragment_data->column(static_cast<int>(vc)).GetNumeric(row)
                          : 0.0);
        }
        X.push_back(std::move(x));
        y.push_back(fragment_data->column(agg_col).GetNumeric(row));
      }
      profile->num_rows_scanned += support;
      mining_internal::FitFragmentCandidate(fragment, X, y, support, pattern.model,
                                            pattern, config, profile, &staged);
    }
    for (auto& [p, stats] : staged) {
      candidates->insert_or_assign(p, std::move(stats));
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<PatternMiner> MakeNaiveMiner() { return std::make_unique<NaiveMiner>(); }

}  // namespace cape
