#ifndef CAPE_PATTERN_PATTERN_IO_H_
#define CAPE_PATTERN_PATTERN_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "pattern/pattern_set.h"
#include "relational/schema.h"

namespace cape {

/// Serializes a mined PatternSet (including every local model) to a
/// versioned, line-oriented text format. The schema is embedded so loads
/// against a different relation fail loudly instead of mis-binding
/// attribute indices.
///
/// CAPE's workflow mines patterns offline and answers questions online
/// (Section 5: "Mine ARP offline, and find the top-k explanations for a
/// user question"); persistence is what separates the two phases in a real
/// deployment.
std::string SerializePatternSet(const PatternSet& patterns, const Schema& schema);

/// Parses a serialized pattern set, validating that `schema` matches the
/// one the patterns were mined against (field names and types).
Result<PatternSet> DeserializePatternSet(const std::string& text, const Schema& schema);

/// ---- Binary pattern store metadata -------------------------------------
struct PatternStoreMeta {
  uint32_t format_version = 0;
  uint64_t schema_digest = 0;
  uint64_t mining_config_digest = 0;
};

/// File variants. LoadPatternSet sniffs the format: both the line-oriented
/// text files above and the binary store below load transparently. `meta`
/// (optional) receives the binary header fields; for a text file it is left
/// with format_version == 0 (the text form predates versioned headers).
Status SavePatternSet(const PatternSet& patterns, const Schema& schema,
                      const std::string& path);
Result<PatternSet> LoadPatternSet(const std::string& path, const Schema& schema,
                                  PatternStoreMeta* meta = nullptr);

/// ---- Binary pattern store (the serving-layer codec) -------------------
///
/// Layout (little-endian):
///
///   magic "CAPEARPB" | u32 format version | u64 schema digest |
///   u64 mining-config digest | embedded schema | patterns ... |
///   u64 FNV-1a checksum of every preceding byte
///
/// The schema digest and embedded fields reject loads against the wrong
/// relation; the mining-config digest records which MiningConfig produced
/// the set (0 when unknown) so the PatternCache can key disk entries; the
/// trailing checksum turns any byte-level corruption or truncation into a
/// clean InvalidArgument instead of a misparse. The codec is value-exact:
/// binary -> text -> binary and text -> binary -> text are both byte
/// fixpoints (doubles are stored as raw IEEE bytes here and via the
/// round-trip-exact FormatDouble in the text form).
///
/// Current binary format version.
inline constexpr uint32_t kPatternStoreFormatVersion = 1;

std::string SerializePatternSetBinary(const PatternSet& patterns, const Schema& schema,
                                      uint64_t mining_config_digest = 0);

/// Parses a binary store, validating checksum, version, and schema. `meta`
/// (optional) receives the header fields on success.
Result<PatternSet> DeserializePatternSetBinary(std::string_view bytes, const Schema& schema,
                                               PatternStoreMeta* meta = nullptr);

/// True when `bytes` starts with the binary store magic (used by the
/// format-sniffing loader; says nothing about overall validity).
bool LooksLikeBinaryPatternStore(std::string_view bytes);

Status SavePatternSetBinary(const PatternSet& patterns, const Schema& schema,
                            const std::string& path, uint64_t mining_config_digest = 0);
Result<PatternSet> LoadPatternSetBinary(const std::string& path, const Schema& schema,
                                        PatternStoreMeta* meta = nullptr);

}  // namespace cape

#endif  // CAPE_PATTERN_PATTERN_IO_H_
