#ifndef CAPE_PATTERN_PATTERN_IO_H_
#define CAPE_PATTERN_PATTERN_IO_H_

#include <string>

#include "common/result.h"
#include "pattern/pattern_set.h"
#include "relational/schema.h"

namespace cape {

/// Serializes a mined PatternSet (including every local model) to a
/// versioned, line-oriented text format. The schema is embedded so loads
/// against a different relation fail loudly instead of mis-binding
/// attribute indices.
///
/// CAPE's workflow mines patterns offline and answers questions online
/// (Section 5: "Mine ARP offline, and find the top-k explanations for a
/// user question"); persistence is what separates the two phases in a real
/// deployment.
std::string SerializePatternSet(const PatternSet& patterns, const Schema& schema);

/// Parses a serialized pattern set, validating that `schema` matches the
/// one the patterns were mined against (field names and types).
Result<PatternSet> DeserializePatternSet(const std::string& text, const Schema& schema);

/// File variants.
Status SavePatternSet(const PatternSet& patterns, const Schema& schema,
                      const std::string& path);
Result<PatternSet> LoadPatternSet(const std::string& path, const Schema& schema);

}  // namespace cape

#endif  // CAPE_PATTERN_PATTERN_IO_H_
