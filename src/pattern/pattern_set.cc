#include "pattern/pattern_set.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace cape {

std::string EncodeRowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    if (v.is_null()) {
      key.push_back('\0');
      continue;
    }
    if (v.is_numeric()) {
      // Widen to double so Int64(2) and Double(2.0) agree, matching
      // Value::operator==.
      key.push_back('n');
      double d = v.AsDouble();
      if (d == 0.0) d = 0.0;
      key.append(reinterpret_cast<const char*>(&d), sizeof(d));
    } else {
      key.push_back('s');
      const std::string& s = v.string_value();
      uint32_t len = static_cast<uint32_t>(s.size());
      key.append(reinterpret_cast<const char*>(&len), sizeof(len));
      key.append(s);
    }
  }
  return key;
}

void AppendTableRowKey(const Table& t, int64_t row, const std::vector<int>& cols,
                       std::string* key) {
  for (int c : cols) {
    const Column& col = t.column(c);
    if (col.IsNull(row)) {
      key->push_back('\0');
      continue;
    }
    if (col.type() == DataType::kString) {
      key->push_back('s');
      const std::string& s = col.GetString(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s);
    } else {
      key->push_back('n');
      double d = col.GetNumeric(row);
      if (d == 0.0) d = 0.0;  // canonicalize -0.0, as EncodeRowKey does
      key->append(reinterpret_cast<const char*>(&d), sizeof(d));
    }
  }
}

const LocalPattern* GlobalPattern::FindLocal(const Row& fragment) const {
  return FindLocalByKey(EncodeRowKey(fragment));
}

const LocalPattern* GlobalPattern::FindLocalByKey(const std::string& key) const {
  auto it = fragment_index_.find(key);
  if (it == fragment_index_.end()) return nullptr;
  return &locals[it->second];
}

void GlobalPattern::BuildIndex() {
  fragment_index_.clear();
  fragment_index_.reserve(locals.size());
  for (size_t i = 0; i < locals.size(); ++i) {
    fragment_index_.emplace(EncodeRowKey(locals[i].fragment), i);
  }
}

void PatternSet::Add(GlobalPattern pattern) {
  pattern.BuildIndex();
  index_.emplace(pattern.pattern, patterns_.size());
  patterns_.push_back(std::move(pattern));
}

const GlobalPattern* PatternSet::Find(const Pattern& pattern) const {
  auto it = index_.find(pattern);
  if (it == index_.end()) return nullptr;
  return &patterns_[it->second];
}

int64_t PatternSet::NumLocalPatterns() const {
  int64_t total = 0;
  // analyzer:allow-next-line(cancellation) O(|patterns|) accessor, no scans
  for (const GlobalPattern& p : patterns_) total += static_cast<int64_t>(p.locals.size());
  return total;
}

PatternSet PatternSet::Truncated(int64_t max_locals) const {
  PatternSet out;
  int64_t taken = 0;
  // analyzer:allow-next-line(cancellation) copies at most max_locals locals
  for (const GlobalPattern& p : patterns_) {
    if (taken >= max_locals) break;
    GlobalPattern copy = p;
    const int64_t room = max_locals - taken;
    if (static_cast<int64_t>(copy.locals.size()) > room) {
      copy.locals.resize(static_cast<size_t>(room));
    }
    taken += static_cast<int64_t>(copy.locals.size());
    out.Add(std::move(copy));
  }
  return out;
}

std::string PatternSet::ToString(const Schema& schema, size_t max_patterns) const {
  std::string out;
  const size_t shown = std::min(max_patterns, patterns_.size());
  for (size_t i = 0; i < shown; ++i) {
    const GlobalPattern& p = patterns_[i];
    out += StringFormat("%-60s locals=%zu conf=%.2f supp=%lld\n",
                        p.pattern.ToString(schema).c_str(), p.locals.size(),
                        p.global_confidence, static_cast<long long>(p.num_holding));
  }
  if (shown < patterns_.size()) {
    out += "... (" + std::to_string(patterns_.size() - shown) + " more patterns)\n";
  }
  return out;
}

}  // namespace cape
