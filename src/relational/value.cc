#include "relational/value.h"

#include <cstring>

#include "common/string_util.h"

namespace cape {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble:
      return FormatDouble(double_value());
    case DataType::kString:
      return string_value();
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    // NULL == NULL, NULL < non-NULL.
    return static_cast<int>(!a_null) - static_cast<int>(!b_null);
  }
  const bool a_num = is_numeric();
  const bool b_num = other.is_numeric();
  if (a_num && b_num) {
    // Compare exactly when both are int64 to avoid double rounding.
    if (type() == DataType::kInt64 && other.type() == DataType::kInt64) {
      const int64_t a = int64_value();
      const int64_t b = other.int64_value();
      return (a < b) ? -1 : (a > b) ? 1 : 0;
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return (a < b) ? -1 : (a > b) ? 1 : 0;
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numeric < string
  return string_value().compare(other.string_value()) < 0
             ? -1
             : (string_value() == other.string_value() ? 0 : 1);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9ae16a3b2f90404fULL;
  if (is_numeric()) {
    double d = AsDouble();
    if (d == 0.0) d = 0.0;  // normalize -0.0 to +0.0
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return HashCombine(0x51afd7ed558ccd4dULL, static_cast<size_t>(bits));
  }
  const std::string& s = string_value();
  return HashCombine(0xc2b2ae3d27d4eb4fULL, HashBytes(s.data(), s.size()));
}

}  // namespace cape
