#include "relational/operators.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <iterator>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/macros.h"
#include "relational/kernels.h"
#include "relational/operators_internal.h"

namespace cape {

namespace {

std::atomic<bool> g_dictionary_kernels{true};

}  // namespace

void SetDictionaryKernelsEnabled(bool enabled) {
  g_dictionary_kernels.store(enabled, std::memory_order_relaxed);
}

bool DictionaryKernelsEnabled() {
  return g_dictionary_kernels.load(std::memory_order_relaxed);
}

namespace relational_internal {

Status ValidateColumnIndex(const Table& table, int col) {
  if (col < 0 || col >= table.num_columns()) {
    return Status::InvalidArgument("column index " + std::to_string(col) +
                                   " out of range for table with " +
                                   std::to_string(table.num_columns()) + " columns");
  }
  return Status::OK();
}

Status ValidateAggSpec(const Table& table, const AggregateSpec& spec) {
  if (spec.output_name.empty()) {
    return Status::InvalidArgument("aggregate output name must not be empty");
  }
  if (spec.input_col == AggregateSpec::kCountStar) {
    if (spec.func != AggFunc::kCount) {
      return Status::InvalidArgument(std::string(AggFuncToString(spec.func)) +
                                     "(*) is not a valid aggregate");
    }
    return Status::OK();
  }
  CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, spec.input_col));
  if ((spec.func == AggFunc::kSum || spec.func == AggFunc::kAvg) &&
      !IsNumericType(table.column(spec.input_col).type())) {
    return Status::TypeError(std::string(AggFuncToString(spec.func)) +
                             " requires a numeric column, got " +
                             DataTypeToString(table.column(spec.input_col).type()));
  }
  return Status::OK();
}

DataType AggOutputType(const Table& table, const AggregateSpec& spec) {
  switch (spec.func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
      return table.column(spec.input_col).type() == DataType::kInt64 ? DataType::kInt64
                                                                     : DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return table.column(spec.input_col).type();
  }
  return DataType::kDouble;
}

void UpdateAggState(const Table& table, const AggregateSpec& spec, int64_t row,
                    AggState* state) {
  if (spec.input_col == AggregateSpec::kCountStar) {
    ++state->count;
    return;
  }
  const Column& col = table.column(spec.input_col);
  if (col.IsNull(row)) return;
  ++state->count;
  switch (spec.func) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (col.type() == DataType::kInt64) {
        state->isum += col.GetInt64(row);
      }
      state->dsum += col.GetNumeric(row);
      break;
    case AggFunc::kMin: {
      Value v = col.GetValue(row);
      if (state->min_value.is_null() || v < state->min_value) state->min_value = std::move(v);
      break;
    }
    case AggFunc::kMax: {
      Value v = col.GetValue(row);
      if (state->max_value.is_null() || state->max_value < v) state->max_value = std::move(v);
      break;
    }
  }
}

Value FinalizeAggState(const Table& table, const AggregateSpec& spec, const AggState& state) {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value::Int64(state.count);
    case AggFunc::kSum:
      if (state.count == 0) return Value::Null();
      if (spec.input_col != AggregateSpec::kCountStar &&
          table.column(spec.input_col).type() == DataType::kInt64) {
        return Value::Int64(state.isum);
      }
      return Value::Double(state.dsum);
    case AggFunc::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.dsum / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.min_value;
    case AggFunc::kMax:
      return state.max_value;
  }
  return Value::Null();
}

}  // namespace relational_internal

namespace {

using relational_internal::AggOutputType;
using relational_internal::AggState;
using relational_internal::FinalizeAggState;
using relational_internal::UpdateAggState;
using relational_internal::ValidateAggSpec;
using relational_internal::ValidateColumnIndex;

}  // namespace

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

GroupKeyEncoder::GroupKeyEncoder(const Table& table, std::vector<int> cols)
    : table_(table), cols_(std::move(cols)), use_codes_(DictionaryKernelsEnabled()) {}

void GroupKeyEncoder::EncodeRow(int64_t row, std::string* buf) const {
  if (use_codes_) {
    // Compact format: 0x00 for NULL, else 0x01 followed by a fixed-width
    // payload (8-byte int64/double, 4-byte dictionary code). The schema fixes
    // each column's payload width and per-column encodings are prefix-free,
    // so keys decode unambiguously: equal keys <=> equal projections. No type
    // tag is needed — all rows of one column share a type.
    for (int c : cols_) {
      const Column& col = table_.column(c);
      if (col.IsNull(row)) {
        buf->push_back('\0');
        continue;
      }
      buf->push_back('\1');
      switch (col.type()) {
        case DataType::kInt64: {
          const int64_t v = col.GetInt64(row);
          buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
          break;
        }
        case DataType::kDouble: {
          double v = col.GetDouble(row);
          if (v == 0.0) v = 0.0;  // canonicalize -0.0
          buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
          break;
        }
        case DataType::kString: {
          const int32_t code = col.GetCode(row);
          buf->append(reinterpret_cast<const char*>(&code), sizeof(code));
          break;
        }
      }
    }
    return;
  }
  for (int c : cols_) {
    const Column& col = table_.column(c);
    if (col.IsNull(row)) {
      buf->push_back('\0');
      continue;
    }
    switch (col.type()) {
      case DataType::kInt64: {
        buf->push_back('i');
        int64_t v = col.GetInt64(row);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        buf->push_back('d');
        double v = col.GetDouble(row);
        if (v == 0.0) v = 0.0;  // canonicalize -0.0
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        buf->push_back('s');
        const std::string& s = col.GetString(row);
        uint32_t len = static_cast<uint32_t>(s.size());
        buf->append(reinterpret_cast<const char*>(&len), sizeof(len));
        buf->append(s);
        break;
      }
    }
  }
}

RowEqualityMatcher::RowEqualityMatcher(const Table& table,
                                       const std::vector<std::pair<int, Value>>& conditions) {
  const bool use_codes = DictionaryKernelsEnabled();
  conds_.reserve(conditions.size());
  for (const auto& [col_idx, value] : conditions) {
    Cond cond;
    cond.col = &table.column(col_idx);
    if (!use_codes) {
      cond.kind = Kind::kBoxed;
      cond.boxed = value;
      conds_.push_back(std::move(cond));
      continue;
    }
    if (value.is_null()) {
      cond.kind = Kind::kIsNull;
    } else if (cond.col->type() == DataType::kString) {
      if (value.type() != DataType::kString) {
        // A non-string value never equals a string cell (Value::Compare
        // orders numerics before strings, never equal).
        never_matches_ = true;
        return;
      }
      cond.code = cond.col->FindCode(value.string_value());
      if (cond.code == Column::kNullCode) {
        never_matches_ = true;  // value absent from dictionary: no row matches
        return;
      }
      cond.kind = Kind::kCode;
    } else if (value.type() == DataType::kString) {
      never_matches_ = true;  // string value vs numeric column: never equal
      return;
    } else if (cond.col->type() == DataType::kInt64 && value.type() == DataType::kInt64) {
      cond.kind = Kind::kInt64;
      cond.i64 = value.int64_value();
    } else {
      // Mixed numeric comparison goes through double, with Value::Compare's
      // exact rule (see kDoubleEq in Matches).
      cond.kind = Kind::kDoubleEq;
      cond.f64 = value.AsDouble();
    }
    conds_.push_back(std::move(cond));
  }
}

bool RowEqualityMatcher::Matches(int64_t row) const {
  for (const Cond& cond : conds_) {
    switch (cond.kind) {
      case Kind::kIsNull:
        if (!cond.col->IsNull(row)) return false;
        break;
      case Kind::kCode:
        // kNullCode (-1) never equals a real code, so no separate null check.
        if (cond.col->GetCode(row) != cond.code) return false;
        break;
      case Kind::kInt64:
        if (cond.col->IsNull(row) || cond.col->GetInt64(row) != cond.i64) return false;
        break;
      case Kind::kDoubleEq: {
        if (cond.col->IsNull(row)) return false;
        const double x = cond.col->GetNumeric(row);
        // Replicates Value::Compare exactly: (x<v)?-1:((x>v)?1:0) == 0, which
        // treats NaN as equal to everything and -0.0 as equal to 0.0. A plain
        // x == v would diverge on NaN.
        if (x < cond.f64 || x > cond.f64) return false;
        break;
      }
      case Kind::kBoxed:
        if (cond.col->GetValue(row) != cond.boxed) return false;
        break;
    }
  }
  return true;
}

Result<TablePtr> GroupByAggregate(const Table& table, const std::vector<int>& group_cols,
                                  const std::vector<AggregateSpec>& aggs,
                                  StopToken* stop) {
  if (table.UsesPagedScan() || VectorizedKernelsEnabled()) {
    // The fused kernel with an empty condition list is exactly this operator
    // (its vectorized branch never calls back into GroupByAggregate). A
    // page-backed table must route there unconditionally: it self-dispatches
    // to the paged scan, and the legacy row loop below cannot read rows that
    // live only in the heap file.
    return FilterGroupAggregate(table, {}, group_cols, aggs, stop);
  }
  for (int c : group_cols) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
  for (const AggregateSpec& spec : aggs) CAPE_RETURN_IF_ERROR(ValidateAggSpec(table, spec));

  // Output schema: group columns then aggregates.
  std::vector<Field> out_fields;
  out_fields.reserve(group_cols.size() + aggs.size());
  for (int c : group_cols) out_fields.push_back(table.schema()->field(c));
  for (const AggregateSpec& spec : aggs) {
    out_fields.push_back(Field{spec.output_name, AggOutputType(table, spec), true});
  }

  std::vector<int64_t> representative_row;    // first row of each group
  std::vector<std::vector<AggState>> states;  // [group][agg]

  // Dense-key fast path (DESIGN.md §10): every group column that is a
  // string maps rows onto its dictionary codes, and an int64 column with a
  // narrow value range maps onto value - min; both are small dense integer
  // domains, so the whole group key packs into one uint64 mixed-radix code.
  // Rows are equal under the packed code exactly when they are equal under
  // the byte encoder (per-column value-or-both-null equality), and groups
  // are still numbered in discovery order, so the output is byte-identical
  // to the generic path. Double columns, wide int ranges, and overflowing
  // domain products fall back to the encoder below.
  struct DenseKeyCol {
    const Column* col;
    uint64_t stride;
    int64_t base;  // minimum value for int64 columns
    bool is_string;
  };
  std::vector<DenseKeyCol> dense;
  uint64_t domain_product = 1;
  bool dense_ok = DictionaryKernelsEnabled() && !group_cols.empty() &&
                  table.num_rows() < (int64_t{1} << 31);
  if (dense_ok) {
    for (int c : group_cols) {
      const Column& col = table.column(c);
      DenseKeyCol d{&col, domain_product, 0, false};
      uint64_t domain;  // cardinality + 1 slot for NULL
      if (col.type() == DataType::kString) {
        d.is_string = true;
        domain = static_cast<uint64_t>(col.dict_size()) + 1;
      } else if (col.type() == DataType::kInt64) {
        int64_t lo = 0, hi = 0;
        bool any = false;
        for (int64_t row = 0; row < table.num_rows(); ++row) {
          if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
          if (col.IsNull(row)) continue;
          const int64_t v = col.GetInt64(row);
          lo = any ? std::min(lo, v) : v;
          hi = any ? std::max(hi, v) : v;
          any = true;
        }
        const uint64_t width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
        if (width >= (uint64_t{1} << 22)) {
          dense_ok = false;  // wide range: dense codes would be too sparse
          break;
        }
        domain = width + 2;
        d.base = lo;
      } else {
        dense_ok = false;  // double group keys keep the generic encoder
        break;
      }
      if (domain_product > std::numeric_limits<uint64_t>::max() / domain) {
        dense_ok = false;  // mixed-radix product overflows uint64
        break;
      }
      domain_product *= domain;
      dense.push_back(d);
    }
  }

  const size_t expected_groups =
      group_cols.empty() ? 1 : static_cast<size_t>(table.num_rows() / 4 + 1);

  if (dense_ok) {
    auto pack_key = [&dense](int64_t row) {
      uint64_t key = 0;
      for (const DenseKeyCol& d : dense) {
        const uint64_t code =
            d.is_string
                ? static_cast<uint64_t>(d.col->GetCode(row) + 1)  // NULL -> 0
                : (d.col->IsNull(row)
                       ? 0
                       : static_cast<uint64_t>(d.col->GetInt64(row) - d.base) + 1);
        key += code * d.stride;
      }
      return key;
    };
    // Small key spaces use a direct-address table (one array access per
    // row); larger ones fall back to an exact uint64-keyed hash map. Both
    // avoid the byte encoding, string hashing, and per-group heap chains of
    // the generic path.
    const uint64_t direct_cap =
        static_cast<uint64_t>(std::max<int64_t>(table.num_rows(), 1024)) * 4;
    auto update_row = [&](int64_t row, size_t group, bool is_new) {
      if (is_new) {
        representative_row.push_back(row);
        states.emplace_back(aggs.size());
      }
      std::vector<AggState>& group_states = states[group];
      for (size_t a = 0; a < aggs.size(); ++a) {
        UpdateAggState(table, aggs[a], row, &group_states[a]);
      }
    };
    if (domain_product <= direct_cap) {
      std::vector<int32_t> group_of_key(domain_product, -1);
      for (int64_t row = 0; row < table.num_rows(); ++row) {
        CAPE_RETURN_IF_STOPPED(stop);
        int32_t& slot = group_of_key[pack_key(row)];
        const bool is_new = slot < 0;
        if (is_new) slot = static_cast<int32_t>(states.size());
        update_row(row, static_cast<size_t>(slot), is_new);
      }
    } else {
      std::unordered_map<uint64_t, size_t> group_of_key;
      group_of_key.reserve(expected_groups);
      for (int64_t row = 0; row < table.num_rows(); ++row) {
        CAPE_RETURN_IF_STOPPED(stop);
        auto [it, is_new] = group_of_key.try_emplace(pack_key(row), states.size());
        update_row(row, it->second, is_new);
      }
    }
  } else {
    GroupKeyEncoder encoder(table, group_cols);
    // The table is keyed by the key's FNV-1a hash, computed once per row
    // (std::unordered_map<std::string, ...> would re-hash the bytes on every
    // probe and again on every rehash). Hash collisions are resolved by
    // comparing the encoded key against the bucket's groups; groups keep
    // their discovery order, which downstream output depends on.
    std::unordered_map<uint64_t, std::vector<size_t>> group_buckets;
    std::vector<std::string> group_keys;  // encoded key of each group

    // Sizing heuristic: grouping keeps at most num_rows distinct keys, and
    // the mining workloads typically see group counts within a small factor
    // of the row count, so reserving a quarter up front eliminates almost
    // all rehash cycles without over-allocating for low-cardinality keys.
    group_buckets.reserve(expected_groups);
    group_keys.reserve(expected_groups);

    std::string key;
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      CAPE_RETURN_IF_STOPPED(stop);
      key.clear();
      encoder.EncodeRow(row, &key);
      const uint64_t hash = HashBytes(key.data(), key.size());
      std::vector<size_t>& bucket = group_buckets[hash];
      size_t group = states.size();
      for (size_t candidate : bucket) {
        if (group_keys[candidate] == key) {
          group = candidate;
          break;
        }
      }
      if (group == states.size()) {
        bucket.push_back(group);
        group_keys.push_back(key);
        representative_row.push_back(row);
        states.emplace_back(aggs.size());
      }
      std::vector<AggState>& group_states = states[group];
      for (size_t a = 0; a < aggs.size(); ++a) {
        UpdateAggState(table, aggs[a], row, &group_states[a]);
      }
    }
  }

  // Aggregation without grouping yields exactly one row even on empty input.
  if (group_cols.empty() && states.empty()) {
    representative_row.push_back(-1);
    states.emplace_back(aggs.size());
  }

  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
  out->Reserve(static_cast<int64_t>(states.size()));
  Row out_row;
  for (size_t g = 0; g < states.size(); ++g) {
    out_row.clear();
    for (int c : group_cols) out_row.push_back(table.GetValue(representative_row[g], c));
    for (size_t a = 0; a < aggs.size(); ++a) {
      out_row.push_back(FinalizeAggState(table, aggs[a], states[g][a]));
    }
    CAPE_RETURN_IF_ERROR(out->AppendRow(out_row));
  }
  return out;
}

Result<TablePtr> GroupByAggregate(const Table& table,
                                  const std::vector<std::string>& group_cols,
                                  const std::vector<AggregateSpec>& aggs,
                                  StopToken* stop) {
  std::vector<int> indices;
  indices.reserve(group_cols.size());
  for (const std::string& name : group_cols) {
    CAPE_ASSIGN_OR_RETURN(int idx, table.schema()->GetFieldIndexChecked(name));
    indices.push_back(idx);
  }
  return GroupByAggregate(table, indices, aggs, stop);
}

Result<TablePtr> Filter(const Table& table, const std::function<bool(int64_t)>& pred,
                        StopToken* stop) {
  if (!table.rows_resident()) {
    // The arbitrary-predicate filter is row-at-a-time by construction; the
    // paged operators cover every engine query shape (σ= via FilterEquals,
    // counting, fused group-aggregate), so out-of-core tables don't need it.
    return Status::NotImplemented("Filter requires resident rows; use FilterEquals");
  }
  std::vector<int64_t> matches;
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    if (pred(row)) matches.push_back(row);
  }
  auto out = std::make_shared<Table>(table.schema());
  out->Reserve(static_cast<int64_t>(matches.size()));
  CAPE_RETURN_IF_ERROR(out->AppendRowsFrom(table, matches));
  return out;
}

Result<TablePtr> FilterEquals(const Table& table,
                              const std::vector<std::pair<int, Value>>& conditions,
                              StopToken* stop) {
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  if (table.UsesPagedScan()) {
    return relational_internal::PagedFilterEquals(table, conditions, stop);
  }
  if (VectorizedKernelsEnabled()) {
    std::vector<int64_t> sel;
    CAPE_RETURN_IF_ERROR(FilterEqualsSel(table, conditions, stop, &sel));
    auto out = std::make_shared<Table>(table.schema());
    out->Reserve(static_cast<int64_t>(sel.size()));
    CAPE_RETURN_IF_ERROR(out->AppendRowsFrom(table, sel));
    return out;
  }
  RowEqualityMatcher matcher(table, conditions);
  if (matcher.never_matches()) {
    // A condition value that cannot occur in its column (e.g. a string absent
    // from the dictionary) proves the selection is empty without a scan.
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return std::make_shared<Table>(table.schema());
  }
  return Filter(table, [&](int64_t row) { return matcher.Matches(row); }, stop);
}

Result<TablePtr> Project(const Table& table, const std::vector<int>& cols,
                         StopToken* stop) {
  std::vector<Field> out_fields;
  out_fields.reserve(cols.size());
  for (int c : cols) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
    out_fields.push_back(table.schema()->field(c));
  }
  if (!table.rows_resident()) {
    // Full projection would materialize every heap-file row in memory —
    // exactly what out-of-core tables exist to avoid. The engine projects
    // distinct values (paged) or filtered subsets instead.
    return Status::NotImplemented("Project requires resident rows");
  }
  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
  out->Reserve(table.num_rows());
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    CAPE_RETURN_IF_ERROR(out->AppendRow(table.GetRowProjection(row, cols)));
  }
  return out;
}

Result<TablePtr> ProjectDistinct(const Table& table, const std::vector<int>& cols,
                                 StopToken* stop) {
  std::vector<Field> out_fields;
  out_fields.reserve(cols.size());
  for (int c : cols) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
    out_fields.push_back(table.schema()->field(c));
  }
  if (table.UsesPagedScan()) {
    if (cols.empty()) {
      // Distinct over zero columns: one empty row iff the table is
      // non-empty. (The fused kernel's no-group shape always emits a row,
      // so this edge is handled here.)
      auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
      if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
      if (table.num_rows() > 0) CAPE_RETURN_IF_ERROR(out->AppendRow(Row{}));
      return out;
    }
    // Grouping with no aggregates emits exactly the distinct combinations,
    // in the same first-seen order as the row loop below.
    return FilterGroupAggregate(table, {}, cols, {}, stop);
  }
  GroupKeyEncoder encoder(table, cols);
  std::unordered_map<std::string, bool> seen;
  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
  std::string key;
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    key.clear();
    encoder.EncodeRow(row, &key);
    if (seen.emplace(key, true).second) {
      CAPE_RETURN_IF_ERROR(out->AppendRow(table.GetRowProjection(row, cols)));
    }
  }
  return out;
}

namespace {

/// Typed row comparison on one column, NULL-first, no Value boxing.
int CompareCells(const Column& col, int64_t a, int64_t b) {
  const bool a_null = col.IsNull(a);
  const bool b_null = col.IsNull(b);
  if (a_null || b_null) return static_cast<int>(!a_null) - static_cast<int>(!b_null);
  switch (col.type()) {
    case DataType::kInt64: {
      const int64_t x = col.GetInt64(a);
      const int64_t y = col.GetInt64(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDouble: {
      const double x = col.GetDouble(a);
      const double y = col.GetDouble(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      const int cmp = col.GetString(a).compare(col.GetString(b));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace

Result<TablePtr> SortTable(const Table& table, const std::vector<SortKey>& keys,
                           StopToken* stop) {
  for (const SortKey& k : keys) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, k.col));
  if (!table.rows_resident()) {
    // The engine sorts (small) aggregated results, never base relations.
    return Status::NotImplemented("SortTable requires resident rows");
  }
  if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
  // With dictionary kernels on, each string sort key gets a sorted-code rank
  // remap (ranks order exactly as the strings do), turning the O(n log n)
  // comparison phase into pure integer compares for an O(d log d) setup cost.
  std::vector<std::vector<int32_t>> string_ranks(keys.size());
  if (DictionaryKernelsEnabled()) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const Column& col = table.column(keys[i].col);
      if (col.type() == DataType::kString) string_ranks[i] = col.SortedCodeRanks();
    }
  }
  std::vector<int64_t> order(static_cast<size_t>(table.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const SortKey& k = keys[i];
      const Column& col = table.column(k.col);
      int cmp;
      if (!string_ranks[i].empty()) {
        // NULL-first, then by rank; rank equality <=> code equality <=>
        // string equality, so ties break identically to the legacy compare.
        const int32_t ca = col.GetCode(a);
        const int32_t cb = col.GetCode(b);
        if (ca < 0 || cb < 0) {
          cmp = static_cast<int>(ca >= 0) - static_cast<int>(cb >= 0);
        } else {
          const int32_t ra = string_ranks[i][static_cast<size_t>(ca)];
          const int32_t rb = string_ranks[i][static_cast<size_t>(cb)];
          cmp = ra < rb ? -1 : (ra > rb ? 1 : 0);
        }
      } else {
        cmp = CompareCells(col, a, b);
      }
      if (cmp != 0) return k.ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  CAPE_RETURN_IF_STOPPED(stop);
  auto out = std::make_shared<Table>(table.schema());
  out->Reserve(table.num_rows());
  CAPE_RETURN_IF_ERROR(out->AppendRowsFrom(table, order));
  return out;
}

Result<TablePtr> Cube(const Table& table, const std::vector<int>& cube_cols,
                      const std::vector<AggregateSpec>& aggs, const CubeOptions& options,
                      StopToken* stop) {
  const int n = static_cast<int>(cube_cols.size());
  if (n > 20) {
    return Status::InvalidArgument("cube over " + std::to_string(n) +
                                   " columns would create 2^" + std::to_string(n) +
                                   " groupings");
  }
  for (int c : cube_cols) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
  for (const AggregateSpec& spec : aggs) {
    CAPE_RETURN_IF_ERROR(ValidateAggSpec(table, spec));
    if (spec.func == AggFunc::kAvg) {
      return Status::NotImplemented("avg cannot be re-aggregated by CUBE");
    }
  }

  // Phase 1: finest grouping over all cube columns, computing each aggregate
  // as a partial (count stays count, sum stays sum, ...).
  std::vector<AggregateSpec> partial_specs;
  partial_specs.reserve(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    AggregateSpec p = aggs[a];
    p.output_name = "__partial" + std::to_string(a);
    partial_specs.push_back(std::move(p));
  }
  CAPE_ASSIGN_OR_RETURN(TablePtr finest,
                        GroupByAggregate(table, cube_cols, partial_specs, stop));

  // Output schema: cube columns (nullable), aggregates, optional grouping_id.
  std::vector<Field> out_fields;
  for (int c : cube_cols) {
    Field f = table.schema()->field(c);
    f.nullable = true;
    out_fields.push_back(std::move(f));
  }
  for (const AggregateSpec& spec : aggs) {
    out_fields.push_back(Field{spec.output_name, AggOutputType(table, spec), true});
  }
  if (options.add_grouping_id) {
    out_fields.push_back(Field{"grouping_id", DataType::kInt64, false});
  }
  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));

  // Phase 2: for each admissible subset, re-aggregate the finest grouping.
  // In `finest`, cube column i lives at position i and partial aggregate a at
  // position n + a.
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int subset_size = __builtin_popcount(mask);
    if (subset_size < options.min_group_size || subset_size > options.max_group_size) {
      continue;
    }
    std::vector<int> subset_cols;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset_cols.push_back(i);
    }
    // Re-aggregation: count -> sum of partial counts; sum -> sum; min -> min;
    // max -> max.
    std::vector<AggregateSpec> rollup_specs;
    rollup_specs.reserve(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggregateSpec spec = aggs[a];
      spec.input_col = n + static_cast<int>(a);
      if (spec.func == AggFunc::kCount) spec.func = AggFunc::kSum;
      rollup_specs.push_back(std::move(spec));
    }
    CAPE_ASSIGN_OR_RETURN(TablePtr grouped,
                          GroupByAggregate(*finest, subset_cols, rollup_specs, stop));
    const int64_t grouping_id =
        static_cast<int64_t>(~mask & ((1u << n) - 1));  // set bit = aggregated away
    Row out_row;
    for (int64_t row = 0; row < grouped->num_rows(); ++row) {
      if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      out_row.assign(static_cast<size_t>(n), Value::Null());
      for (size_t s = 0; s < subset_cols.size(); ++s) {
        out_row[static_cast<size_t>(subset_cols[s])] =
            grouped->GetValue(row, static_cast<int>(s));
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        Value v = grouped->GetValue(row, static_cast<int>(subset_cols.size() + a));
        // count over zero rows is 0, not NULL (the sum-of-partials rollup
        // would otherwise produce NULL on an empty input).
        if (aggs[a].func == AggFunc::kCount && v.is_null()) v = Value::Int64(0);
        out_row.push_back(std::move(v));
      }
      if (options.add_grouping_id) out_row.push_back(Value::Int64(grouping_id));
      CAPE_RETURN_IF_ERROR(out->AppendRow(out_row));
    }
  }
  return out;
}

/// Open-addressing group lookup: flat (hash, group) slots with linear
/// probing, so a probe costs one cache-miss chain instead of the node walk a
/// std::unordered_map<hash, bucket-vector> pays — this lookup runs once per
/// row per group-set in every fold, and profiles as the fold's hottest site.
/// Distinct keys colliding on the full 64-bit hash simply occupy separate
/// slots on the same probe chain (the caller confirms a hit against the
/// encoded key). Erase leaves a tombstone: deletions only happen when a
/// staged fold is discarded (stop/failure paths), so buildup is negligible
/// and any growth rehash drops them.
class GroupSlotIndex {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  /// Returns the group whose slot matches `hash` and satisfies `eq`, or
  /// kNotFound. `eq(group)` must compare the encoded key for equality.
  template <typename KeyEq>
  size_t Find(uint64_t hash, const KeyEq& eq) const {
    if (slots_.empty()) return kNotFound;
    size_t idx = static_cast<size_t>(hash) & mask_;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.group == kEmpty) return kNotFound;
      if (s.group != kTombstone && s.hash == hash && eq(s.group)) return s.group;
      idx = (idx + 1) & mask_;
    }
  }

  /// Hints the probe start for an upcoming Find(hash, ...).
  void Prefetch(uint64_t hash) const {
    if (!slots_.empty()) __builtin_prefetch(&slots_[static_cast<size_t>(hash) & mask_]);
  }

  void Insert(uint64_t hash, size_t group) {
    if ((used_ + 1) * 2 > slots_.size()) Grow();
    size_t idx = static_cast<size_t>(hash) & mask_;
    while (slots_[idx].group != kEmpty && slots_[idx].group != kTombstone) {
      idx = (idx + 1) & mask_;
    }
    if (slots_[idx].group == kEmpty) used_ += 1;  // tombstone reuse keeps used_
    slots_[idx] = Slot{hash, group};
  }

  /// Removes the slot holding `group` (which must be present under `hash`).
  void Erase(uint64_t hash, size_t group) {
    size_t idx = static_cast<size_t>(hash) & mask_;
    while (slots_[idx].group != group) idx = (idx + 1) & mask_;
    slots_[idx].group = kTombstone;
  }

  /// Pre-sizes for ~n live groups to amortize growth rehashes across a fold.
  void Reserve(size_t n) {
    size_t cap = 64;
    while (cap < n * 2) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

 private:
  static constexpr size_t kEmpty = static_cast<size_t>(-1);
  static constexpr size_t kTombstone = static_cast<size_t>(-2);
  struct Slot {
    uint64_t hash;
    size_t group;
  };

  void Grow() { Rehash(slots_.empty() ? 64 : slots_.size() * 2); }

  void Rehash(size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{0, kEmpty});
    mask_ = cap - 1;
    used_ = 0;
    for (const Slot& s : old) {
      if (s.group == kEmpty || s.group == kTombstone) continue;
      size_t idx = static_cast<size_t>(s.hash) & mask_;
      while (slots_[idx].group != kEmpty) idx = (idx + 1) & mask_;
      slots_[idx] = s;
      used_ += 1;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t used_ = 0;  // slots consumed (live + tombstones)
};

struct IncrementalGroupBy::Impl {
  Impl(TablePtr t, std::vector<int> cols, std::vector<AggregateSpec> specs)
      : table(std::move(t)),
        group_cols(std::move(cols)),
        aggs(std::move(specs)),
        encoder(*table, group_cols) {}

  TablePtr table;
  std::vector<int> group_cols;
  std::vector<AggregateSpec> aggs;
  GroupKeyEncoder encoder;

  // Committed state, mirroring GroupByAggregate's generic path: groups in
  // discovery order, collisions resolved by key comparison against
  // group_keys. group_keys/representative_row also cover staged-new groups
  // (ids >= num_groups) while a fold is staged, so a later delta row folding
  // into a group created earlier in the same fold finds it by lookup.
  // Aggregate states are flat ([group * aggs.size() + agg]) so a group's
  // state row is one contiguous read at a computable address — the
  // maintainer's re-fit reads these in random order, and the flat layout
  // makes that prefetchable.
  GroupSlotIndex group_index;
  std::vector<std::string> group_keys;
  std::vector<int64_t> representative_row;
  std::vector<AggState> states;  // [group * naggs + agg], committed only
  int64_t num_committed = 0;
  int64_t rows_folded = 0;

  // Staged fold. Overlays for committed groups live in a dense epoch-stamped
  // index instead of a hash map: StateOf runs per aggregated cell in the
  // maintainer's re-fit loop, so the overlay probe must be an array read, not
  // a hash probe. overlay_epoch[g] == fold_epoch marks group g as overlaid
  // this fold, with its staged state at overlay_states[overlay_slot[g]];
  // bumping fold_epoch invalidates every stamp in O(1), so neither commit nor
  // discard ever clears the stamp vectors.
  bool staging = false;
  int64_t staged_end = 0;
  int64_t committed_groups = 0;  // states.size() at PrepareFold time
  std::vector<int64_t> touched;  // first-touch order
  uint32_t fold_epoch = 0;
  std::vector<uint32_t> overlay_epoch;   // [committed group]
  std::vector<uint32_t> overlay_slot;    // [committed group]
  std::vector<AggState> overlay_states;  // [slot * naggs + agg], reused across folds
  std::vector<size_t> overlay_groups;    // slot -> committed group id
  size_t overlay_count = 0;
  std::vector<AggState> staged_new;  // [(group - committed_groups) * naggs + agg]

  const AggState* StateOf(int64_t group) const {
    const size_t na = aggs.size();
    if (staging) {
      if (group >= committed_groups) {
        return &staged_new[static_cast<size_t>(group - committed_groups) * na];
      }
      const size_t g = static_cast<size_t>(group);
      if (overlay_epoch[g] == fold_epoch) return &overlay_states[overlay_slot[g] * na];
    }
    return &states[static_cast<size_t>(group) * na];
  }

  void ClearStaging() {
    staging = false;
    touched.clear();
    overlay_count = 0;  // slot objects stay allocated for the next fold
    staged_new.clear();
  }
};

IncrementalGroupBy::IncrementalGroupBy(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

IncrementalGroupBy::~IncrementalGroupBy() = default;

Result<std::unique_ptr<IncrementalGroupBy>> IncrementalGroupBy::Make(
    TablePtr table, std::vector<int> group_cols, std::vector<AggregateSpec> aggs) {
  if (table == nullptr) {
    return Status::InvalidArgument("IncrementalGroupBy requires a table");
  }
  if (!table->rows_resident()) {
    return Status::InvalidArgument("IncrementalGroupBy requires resident rows");
  }
  if (group_cols.empty()) {
    return Status::InvalidArgument("IncrementalGroupBy requires group columns");
  }
  for (int c : group_cols) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(*table, c));
  for (const AggregateSpec& spec : aggs) {
    CAPE_RETURN_IF_ERROR(ValidateAggSpec(*table, spec));
  }
  auto impl =
      std::make_unique<Impl>(std::move(table), std::move(group_cols), std::move(aggs));
  return std::unique_ptr<IncrementalGroupBy>(new IncrementalGroupBy(std::move(impl)));
}

int64_t IncrementalGroupBy::rows_folded() const { return impl_->rows_folded; }

int64_t IncrementalGroupBy::num_groups() const { return impl_->num_committed; }

Status IncrementalGroupBy::PrepareFold(int64_t end_row, StopToken* stop) {
  Impl& im = *impl_;
  if (im.staging) {
    return Status::InvalidArgument("PrepareFold with a fold already staged");
  }
  if (end_row < im.rows_folded || end_row > im.table->num_rows()) {
    return Status::OutOfRange("fold end " + std::to_string(end_row) +
                              " outside [" + std::to_string(im.rows_folded) + ", " +
                              std::to_string(im.table->num_rows()) + "]");
  }
  im.staging = true;
  im.staged_end = end_row;
  im.committed_groups = im.num_committed;
  im.fold_epoch += 1;  // invalidates every stale overlay stamp at once
  // Grown entries zero-initialize; epoch starts at 1, so they read as stale.
  im.overlay_epoch.resize(static_cast<size_t>(im.num_committed));
  im.overlay_slot.resize(static_cast<size_t>(im.num_committed));
  // Same sizing heuristic as the generic grouping path: group counts land
  // within a small factor of the row count, so a quarter of the fold's rows
  // on top of the live groups avoids nearly all growth rehashes.
  im.group_index.Reserve(static_cast<size_t>(im.num_committed) +
                         static_cast<size_t>(end_row - im.rows_folded) / 4);
  const Table& table = *im.table;
  const size_t na = im.aggs.size();
  // Rows fold in blocks: the first pass encodes the block's keys and
  // prefetches their index slots, the second probes and updates — the
  // per-row random miss on the slot array overlaps across the block instead
  // of serializing on every row.
  constexpr int64_t kBlock = 32;
  std::array<uint64_t, kBlock> hashes;
  std::array<std::string, kBlock> keys;  // reused encode buffers
  for (int64_t base = im.rows_folded; base < end_row; base += kBlock) {
    if (stop != nullptr && stop->ShouldStopNow()) {
      DiscardFold();
      return stop->ToStatus();
    }
    const int64_t count = std::min<int64_t>(kBlock, end_row - base);
    for (int64_t i = 0; i < count; ++i) {
      std::string& key = keys[static_cast<size_t>(i)];
      key.clear();
      im.encoder.EncodeRow(base + i, &key);
      hashes[static_cast<size_t>(i)] = HashBytes(key.data(), key.size());
      im.group_index.Prefetch(hashes[static_cast<size_t>(i)]);
    }
    for (int64_t i = 0; i < count; ++i) {
      const int64_t row = base + i;
      const std::string& key = keys[static_cast<size_t>(i)];
      const uint64_t hash = hashes[static_cast<size_t>(i)];
      size_t group = im.group_index.Find(
          hash, [&im, &key](size_t g) { return im.group_keys[g] == key; });
      AggState* group_states;
      if (group == GroupSlotIndex::kNotFound) {
        group = im.group_keys.size();
        im.group_index.Insert(hash, group);
        im.group_keys.push_back(key);
        im.representative_row.push_back(row);
        im.staged_new.resize(im.staged_new.size() + na);
        im.touched.push_back(static_cast<int64_t>(group));
        group_states = im.staged_new.data() + (im.staged_new.size() - na);
      } else if (static_cast<int64_t>(group) >= im.committed_groups) {
        group_states =
            im.staged_new.data() +
            (group - static_cast<size_t>(im.committed_groups)) * na;
      } else {
        if (im.overlay_epoch[group] != im.fold_epoch) {  // first touch this fold
          im.overlay_epoch[group] = im.fold_epoch;
          im.overlay_slot[group] = static_cast<uint32_t>(im.overlay_count);
          if (im.overlay_count * na == im.overlay_states.size()) {
            im.overlay_states.resize(im.overlay_states.size() + na);
            im.overlay_groups.emplace_back();
          }
          // Copy the committed state row into the slot; the fold extends the
          // copy below while the committed row stays untouched.
          std::copy(im.states.begin() + static_cast<int64_t>(group * na),
                    im.states.begin() + static_cast<int64_t>((group + 1) * na),
                    im.overlay_states.begin() +
                        static_cast<int64_t>(im.overlay_count * na));
          im.overlay_groups[im.overlay_count] = group;
          im.overlay_count += 1;
          im.touched.push_back(static_cast<int64_t>(group));
        }
        group_states = im.overlay_states.data() + im.overlay_slot[group] * na;
      }
      for (size_t a = 0; a < na; ++a) {
        UpdateAggState(table, im.aggs[a], row, &group_states[a]);
      }
    }
  }
  return Status::OK();
}

const std::vector<int64_t>& IncrementalGroupBy::staged_touched() const {
  return impl_->touched;
}

int64_t IncrementalGroupBy::staged_num_groups() const {
  return static_cast<int64_t>(impl_->group_keys.size());
}

int64_t IncrementalGroupBy::RepresentativeRow(int64_t group) const {
  return impl_->representative_row[static_cast<size_t>(group)];
}

Value IncrementalGroupBy::AggregateValue(int64_t group, size_t agg_idx) const {
  const Impl& im = *impl_;
  return FinalizeAggState(*im.table, im.aggs[agg_idx], im.StateOf(group)[agg_idx]);
}

bool IncrementalGroupBy::AggregateNumeric(int64_t group, size_t agg_idx,
                                          double* out) const {
  const Impl& im = *impl_;
  const AggState& state = im.StateOf(group)[agg_idx];
  const AggregateSpec& spec = im.aggs[agg_idx];
  // Mirrors FinalizeAggState(...).AsDouble() case by case: NULL -> false,
  // int64 results cast, non-numeric min/max coerce to 0.0 like AsDouble.
  switch (spec.func) {
    case AggFunc::kCount:
      *out = static_cast<double>(state.count);
      return true;
    case AggFunc::kSum:
      if (state.count == 0) return false;
      if (spec.input_col != AggregateSpec::kCountStar &&
          im.table->column(spec.input_col).type() == DataType::kInt64) {
        *out = static_cast<double>(state.isum);
      } else {
        *out = state.dsum;
      }
      return true;
    case AggFunc::kAvg:
      if (state.count == 0) return false;
      *out = state.dsum / static_cast<double>(state.count);
      return true;
    case AggFunc::kMin:
      if (state.min_value.is_null()) return false;
      *out = state.min_value.AsDouble();
      return true;
    case AggFunc::kMax:
      if (state.max_value.is_null()) return false;
      *out = state.max_value.AsDouble();
      return true;
  }
  return false;
}

void IncrementalGroupBy::AggregateNumericBatch(const int64_t* groups, size_t n,
                                               size_t agg_idx, double* out,
                                               uint8_t* valid) const {
  const Impl& im = *impl_;
  const AggregateSpec& spec = im.aggs[agg_idx];
  // Finalize mode resolved once for the whole span (the per-cell branch is
  // then perfectly predicted); kSum splits by result column type up front.
  enum class Mode { kCount, kSumInt, kSumDouble, kAvg, kMinMax };
  Mode mode = Mode::kCount;
  switch (spec.func) {
    case AggFunc::kCount:
      mode = Mode::kCount;
      break;
    case AggFunc::kSum:
      mode = (spec.input_col != AggregateSpec::kCountStar &&
              im.table->column(spec.input_col).type() == DataType::kInt64)
                 ? Mode::kSumInt
                 : Mode::kSumDouble;
      break;
    case AggFunc::kAvg:
      mode = Mode::kAvg;
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      mode = Mode::kMinMax;
      break;
  }
  constexpr size_t kLookahead = 8;
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) PrefetchGroup(groups[i + kLookahead]);
    const AggState& state = im.StateOf(groups[i])[agg_idx];
    switch (mode) {
      case Mode::kCount:
        out[i] = static_cast<double>(state.count);
        valid[i] = 1;
        break;
      case Mode::kSumInt:
        out[i] = static_cast<double>(state.isum);
        valid[i] = state.count != 0;
        break;
      case Mode::kSumDouble:
        out[i] = state.dsum;
        valid[i] = state.count != 0;
        break;
      case Mode::kAvg:
        out[i] = state.dsum / static_cast<double>(state.count);
        valid[i] = state.count != 0;
        break;
      case Mode::kMinMax: {
        const Value& v =
            spec.func == AggFunc::kMin ? state.min_value : state.max_value;
        out[i] = v.AsDouble();
        valid[i] = !v.is_null();
        break;
      }
    }
  }
}

void IncrementalGroupBy::PrefetchGroup(int64_t group) const {
  const Impl& im = *impl_;
  // Committed states are the bulk; staged-new and overlaid rows are few and
  // recently written, so only the flat committed array is worth hinting.
  if (!im.staging || group < im.committed_groups) {
    __builtin_prefetch(im.states.data() + static_cast<size_t>(group) * im.aggs.size());
  }
}

void IncrementalGroupBy::CommitFold() {
  Impl& im = *impl_;
  if (!im.staging) return;
  const size_t na = im.aggs.size();
  for (size_t slot = 0; slot < im.overlay_count; ++slot) {
    std::move(im.overlay_states.begin() + static_cast<int64_t>(slot * na),
              im.overlay_states.begin() + static_cast<int64_t>((slot + 1) * na),
              im.states.begin() + static_cast<int64_t>(im.overlay_groups[slot] * na));
  }
  im.states.insert(im.states.end(), std::make_move_iterator(im.staged_new.begin()),
                   std::make_move_iterator(im.staged_new.end()));
  im.num_committed = static_cast<int64_t>(im.group_keys.size());
  im.rows_folded = im.staged_end;
  im.ClearStaging();
}

void IncrementalGroupBy::DiscardFold() {
  Impl& im = *impl_;
  if (!im.staging) return;
  // Remove provisional bucket entries and truncate the parallel vectors back
  // to the committed group count.
  const size_t committed = static_cast<size_t>(im.committed_groups);
  for (size_t group = committed; group < im.group_keys.size(); ++group) {
    const std::string& key = im.group_keys[group];
    im.group_index.Erase(HashBytes(key.data(), key.size()), group);
  }
  im.group_keys.resize(committed);
  im.representative_row.resize(committed);
  im.ClearStaging();
}

}  // namespace cape
