#include "relational/schema.h"

#include "common/hash.h"

namespace cape {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  name_to_index_.reserve(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) {
    // First declaration wins on duplicate names; Table::Validate rejects
    // duplicates at construction time.
    name_to_index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::GetFieldIndex(const std::string& name) const {
  auto it = name_to_index_.find(name);
  return it == name_to_index_.end() ? -1 : it->second;
}

Result<int> Schema::GetFieldIndexChecked(const std::string& name) const {
  int idx = GetFieldIndex(name);
  if (idx < 0) return Status::NotFound("no field named '" + name + "' in schema " + ToString());
  return idx;
}

std::vector<std::string> Schema::field_names() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const Field& f : fields_) names.push_back(f.name);
  return names;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

uint64_t Schema::Digest() const {
  Fnv64 h;
  h.UpdateU64(fields_.size());
  for (const Field& f : fields_) {
    h.UpdateString(f.name);
    h.UpdateU8(static_cast<uint8_t>(f.type));
    h.UpdateU8(f.nullable ? 1 : 0);
  }
  return h.digest();
}

}  // namespace cape
