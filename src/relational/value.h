#ifndef CAPE_RELATIONAL_VALUE_H_
#define CAPE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"

namespace cape {

/// Physical type of a column (and of a non-null Value).
enum class DataType : int {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* DataTypeToString(DataType type);

/// Returns true for types usable as regression predictors / aggregation
/// inputs without coercion.
inline bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

/// A dynamically-typed cell value: NULL, int64, double, or string.
///
/// Value is the boundary type of the engine: operators use typed column
/// storage internally, but rows, group keys, pattern fragments, and user
/// questions are expressed with Values. Values order NULL-first and compare
/// int64/double numerically across types (Int64(2) == Double(2.0)); Hash()
/// is consistent with that equality by hashing numerics through their double
/// representation (int64 values beyond 2^53 may collide with near doubles,
/// which only costs a hash-bucket probe, never a wrong equality).
class Value {
 public:
  /// Constructs a NULL value.
  Value() = default;

  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Type of a non-null value. Calling on NULL is a programming error;
  /// returns kInt64 as a harmless default in release builds.
  DataType type() const {
    if (std::holds_alternative<int64_t>(data_)) return DataType::kInt64;
    if (std::holds_alternative<double>(data_)) return DataType::kDouble;
    return DataType::kString;
  }

  bool is_numeric() const {
    return std::holds_alternative<int64_t>(data_) || std::holds_alternative<double>(data_);
  }

  /// Typed access; undefined when the alternative does not match.
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric coercion for regression/aggregation; 0.0 for NULL/strings.
  double AsDouble() const {
    if (std::holds_alternative<int64_t>(data_)) {
      return static_cast<double>(std::get<int64_t>(data_));
    }
    if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
    return 0.0;
  }

  /// Renders the value for display ("NULL", "42", "3.5", "SIGKDD").
  std::string ToString() const;

  /// Total order: NULL < everything; numerics compare by value across
  /// int64/double; strings lexicographic; numeric < string.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) { return a.Compare(b) == 0; }
  friend bool operator!=(const Value& a, const Value& b) { return a.Compare(b) != 0; }
  friend bool operator<(const Value& a, const Value& b) { return a.Compare(b) < 0; }

  /// Hash consistent with operator== within a single DataType.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cape

#endif  // CAPE_RELATIONAL_VALUE_H_
