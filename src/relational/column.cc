#include "relational/column.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/macros.h"

namespace cape {

Column::Column(DataType type) : type_(type) {}

void Column::Reserve(int64_t capacity) {
  const auto cap = static_cast<size_t>(capacity);
  validity_.reserve(cap);
  switch (type_) {
    case DataType::kInt64:
      int64_data_.reserve(cap);
      break;
    case DataType::kDouble:
      double_data_.reserve(cap);
      break;
    case DataType::kString:
      string_data_.reserve(cap);
      break;
  }
}

Status Column::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (value.type() == DataType::kInt64) {
        AppendInt64(value.int64_value());
        return Status::OK();
      }
      break;
    case DataType::kDouble:
      // Accept int64 into double columns (lossless for our domains).
      if (value.is_numeric()) {
        AppendDouble(value.AsDouble());
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (value.type() == DataType::kString) {
        AppendString(value.string_value());
        return Status::OK();
      }
      break;
  }
  return Status::TypeError(std::string("cannot append ") + DataTypeToString(value.type()) +
                           " value '" + value.ToString() + "' to " +
                           DataTypeToString(type_) + " column");
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      double_data_.push_back(0.0);
      break;
    case DataType::kString:
      string_data_.emplace_back();
      break;
  }
  validity_.push_back(0);
}

void Column::AppendInt64(int64_t v) {
  CAPE_DCHECK(type_ == DataType::kInt64);
  int64_data_.push_back(v);
  validity_.push_back(1);
}

void Column::AppendDouble(double v) {
  CAPE_DCHECK(type_ == DataType::kDouble);
  double_data_.push_back(v);
  validity_.push_back(1);
}

void Column::AppendString(std::string v) {
  CAPE_DCHECK(type_ == DataType::kString);
  string_data_.push_back(std::move(v));
  validity_.push_back(1);
}

Value Column::GetValue(int64_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(GetInt64(row));
    case DataType::kDouble:
      return Value::Double(GetDouble(row));
    case DataType::kString:
      return Value::String(GetString(row));
  }
  return Value::Null();
}

double Column::GetNumeric(int64_t row) const {
  if (IsNull(row)) return 0.0;
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(GetInt64(row));
    case DataType::kDouble:
      return GetDouble(row);
    case DataType::kString:
      return 0.0;
  }
  return 0.0;
}

void Column::AppendFrom(const Column& src, int64_t row) {
  CAPE_DCHECK(src.type_ == type_);
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(src.int64_data_[static_cast<size_t>(row)]);
      break;
    case DataType::kDouble:
      double_data_.push_back(src.double_data_[static_cast<size_t>(row)]);
      break;
    case DataType::kString:
      string_data_.push_back(src.string_data_[static_cast<size_t>(row)]);
      break;
  }
  validity_.push_back(1);
}

int64_t Column::CountDistinct() const {
  switch (type_) {
    case DataType::kInt64: {
      std::unordered_set<int64_t> seen;
      for (int64_t i = 0; i < size(); ++i) {
        if (!IsNull(i)) seen.insert(GetInt64(i));
      }
      return static_cast<int64_t>(seen.size());
    }
    case DataType::kDouble: {
      std::unordered_set<double> seen;
      for (int64_t i = 0; i < size(); ++i) {
        if (!IsNull(i)) seen.insert(GetDouble(i));
      }
      return static_cast<int64_t>(seen.size());
    }
    case DataType::kString: {
      std::unordered_set<std::string> seen;
      for (int64_t i = 0; i < size(); ++i) {
        if (!IsNull(i)) seen.insert(GetString(i));
      }
      return static_cast<int64_t>(seen.size());
    }
  }
  return 0;
}

Value Column::Min() const {
  Value best = Value::Null();
  for (int64_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (best.is_null() || v < best) best = std::move(v);
  }
  return best;
}

Value Column::Max() const {
  Value best = Value::Null();
  for (int64_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (best.is_null() || best < v) best = std::move(v);
  }
  return best;
}

}  // namespace cape
