#include "relational/column.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/macros.h"

namespace cape {

Column::Column(DataType type) : type_(type) {}

const std::string& Column::EmptyString() {
  static const std::string empty;
  return empty;
}

void Column::Reserve(int64_t capacity) {
  const auto cap = static_cast<size_t>(capacity);
  validity_.reserve(cap);
  switch (type_) {
    case DataType::kInt64:
      int64_data_.reserve(cap);
      break;
    case DataType::kDouble:
      double_data_.reserve(cap);
      break;
    case DataType::kString:
      codes_.reserve(cap);
      break;
  }
}

void Column::ReserveDict(int64_t capacity) {
  if (type_ != DataType::kString) return;
  const auto cap = static_cast<size_t>(capacity);
  dict_.reserve(cap);
  dict_index_.reserve(cap);
}

Status Column::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (value.type() == DataType::kInt64) {
        AppendInt64(value.int64_value());
        return Status::OK();
      }
      break;
    case DataType::kDouble:
      // Accept int64 into double columns (lossless for our domains).
      if (value.is_numeric()) {
        AppendDouble(value.AsDouble());
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (value.type() == DataType::kString) {
        AppendString(value.string_value());
        return Status::OK();
      }
      break;
  }
  return Status::TypeError(std::string("cannot append ") + DataTypeToString(value.type()) +
                           " value '" + value.ToString() + "' to " +
                           DataTypeToString(type_) + " column");
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      double_data_.push_back(0.0);
      break;
    case DataType::kString:
      codes_.push_back(kNullCode);
      break;
  }
  validity_.push_back(0);
  ++null_count_;
}

void Column::AppendInt64(int64_t v) {
  CAPE_DCHECK(type_ == DataType::kInt64);
  int64_data_.push_back(v);
  validity_.push_back(1);
}

void Column::AppendDouble(double v) {
  CAPE_DCHECK(type_ == DataType::kDouble);
  double_data_.push_back(v);
  validity_.push_back(1);
}

int32_t Column::InternString(std::string v) {
  auto it = dict_index_.find(v);
  if (it != dict_index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(dict_.size());
  dict_.push_back(v);
  dict_index_.emplace(std::move(v), code);
  return code;
}

void Column::AppendString(std::string v) {
  CAPE_DCHECK(type_ == DataType::kString);
  codes_.push_back(InternString(std::move(v)));
  validity_.push_back(1);
}

int32_t Column::FindCode(const std::string& s) const {
  auto it = dict_index_.find(s);
  return it == dict_index_.end() ? kNullCode : it->second;
}

std::vector<int32_t> Column::SortedCodeRanks() const {
  std::vector<int32_t> order(dict_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
    return dict_[static_cast<size_t>(a)] < dict_[static_cast<size_t>(b)];
  });
  std::vector<int32_t> ranks(dict_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(order[i])] = static_cast<int32_t>(i);
  }
  return ranks;
}

Value Column::GetValue(int64_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(GetInt64(row));
    case DataType::kDouble:
      return Value::Double(GetDouble(row));
    case DataType::kString:
      return Value::String(GetString(row));
  }
  return Value::Null();
}

double Column::GetNumeric(int64_t row) const {
  CAPE_DCHECK(type_ != DataType::kString)
      << "GetNumeric on a string column (callers must check IsNumericType)";
  if (IsNull(row)) return 0.0;
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(GetInt64(row));
    case DataType::kDouble:
      return GetDouble(row);
    case DataType::kString:
      break;
  }
  return 0.0;
}

void Column::AppendFrom(const Column& src, int64_t row) {
  CAPE_DCHECK(src.type_ == type_);
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(src.int64_data_[static_cast<size_t>(row)]);
      break;
    case DataType::kDouble:
      double_data_.push_back(src.double_data_[static_cast<size_t>(row)]);
      break;
    case DataType::kString:
      codes_.push_back(
          InternString(src.dict_[static_cast<size_t>(src.codes_[static_cast<size_t>(row)])]));
      break;
  }
  validity_.push_back(1);
}

void Column::AppendManyFrom(const Column& src, const std::vector<int64_t>& rows) {
  CAPE_DCHECK(src.type_ == type_);
  switch (type_) {
    case DataType::kInt64:
      // analyzer:allow-next-line(cancellation) ingestion primitive; callers batch
      for (int64_t row : rows) {
        const uint8_t valid = src.validity_[static_cast<size_t>(row)];
        int64_data_.push_back(src.int64_data_[static_cast<size_t>(row)]);
        validity_.push_back(valid);
        null_count_ += 1 - valid;
      }
      return;
    case DataType::kDouble:
      // analyzer:allow-next-line(cancellation) ingestion primitive; callers batch
      for (int64_t row : rows) {
        const uint8_t valid = src.validity_[static_cast<size_t>(row)];
        double_data_.push_back(src.double_data_[static_cast<size_t>(row)]);
        validity_.push_back(valid);
        null_count_ += 1 - valid;
      }
      return;
    case DataType::kString: {
      // Memoized src->dst code translation: each distinct source code pays
      // one hash lookup, every further occurrence is a vector read.
      std::vector<int32_t> code_map(src.dict_.size(), kNullCode);
      // analyzer:allow-next-line(cancellation) ingestion primitive; callers batch
      for (int64_t row : rows) {
        const int32_t src_code = src.codes_[static_cast<size_t>(row)];
        if (src_code < 0) {
          codes_.push_back(kNullCode);
          validity_.push_back(0);
          ++null_count_;
          continue;
        }
        int32_t& dst_code = code_map[static_cast<size_t>(src_code)];
        if (dst_code < 0) dst_code = InternString(src.dict_[static_cast<size_t>(src_code)]);
        codes_.push_back(dst_code);
        validity_.push_back(1);
      }
      return;
    }
  }
}

int64_t Column::CountDistinct() const {
  switch (type_) {
    case DataType::kInt64: {
      std::unordered_set<int64_t> seen;
      for (int64_t i = 0; i < size(); ++i) {
        if (!IsNull(i)) seen.insert(GetInt64(i));
      }
      return static_cast<int64_t>(seen.size());
    }
    case DataType::kDouble: {
      std::unordered_set<double> seen;
      for (int64_t i = 0; i < size(); ++i) {
        if (!IsNull(i)) seen.insert(GetDouble(i));
      }
      return static_cast<int64_t>(seen.size());
    }
    case DataType::kString:
      // The dictionary is append-only and every entry was interned by a
      // non-null row append, so it *is* the distinct set.
      return dict_size();
  }
  return 0;
}

Status Column::LoadDictionary(std::vector<std::string> entries) {
  if (type_ != DataType::kString) {
    return Status::TypeError("LoadDictionary on a non-string column");
  }
  if (!dict_.empty() || !codes_.empty()) {
    return Status::InvalidArgument("LoadDictionary on a non-empty column");
  }
  dict_ = std::move(entries);
  dict_index_.reserve(dict_.size());
  for (size_t i = 0; i < dict_.size(); ++i) {
    const auto [it, inserted] = dict_index_.emplace(dict_[i], static_cast<int32_t>(i));
    (void)it;
    if (!inserted) {
      dict_.clear();
      dict_index_.clear();
      return Status::InvalidArgument("duplicate dictionary entry in heap file");
    }
  }
  return Status::OK();
}

void Column::SetPagedStats(int64_t null_count, Value min, Value max) {
  has_paged_stats_ = true;
  null_count_ = null_count;
  paged_min_ = std::move(min);
  paged_max_ = std::move(max);
}

void Column::ClearRowsKeepDict() {
  int64_data_.clear();
  double_data_.clear();
  codes_.clear();
  validity_.clear();
  null_count_ = 0;
}

Value Column::Min() const {
  if (has_paged_stats_) return paged_min_;
  if (type_ == DataType::kString) {
    const std::string* best = nullptr;
    for (const std::string& s : dict_) {
      if (best == nullptr || s < *best) best = &s;
    }
    return best == nullptr ? Value::Null() : Value::String(*best);
  }
  Value best = Value::Null();
  for (int64_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (best.is_null() || v < best) best = std::move(v);
  }
  return best;
}

Value Column::Max() const {
  if (has_paged_stats_) return paged_max_;
  if (type_ == DataType::kString) {
    const std::string* best = nullptr;
    for (const std::string& s : dict_) {
      if (best == nullptr || *best < s) best = &s;
    }
    return best == nullptr ? Value::Null() : Value::String(*best);
  }
  Value best = Value::Null();
  for (int64_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (best.is_null() || best < v) best = std::move(v);
  }
  return best;
}

void Column::HashContent(Fnv64* h) const {
  h->UpdateU8(static_cast<uint8_t>(type_));
  h->UpdateU64(validity_.size());
  if (!validity_.empty()) h->Update(validity_.data(), validity_.size());
  switch (type_) {
    case DataType::kInt64:
      if (!int64_data_.empty()) {
        h->Update(int64_data_.data(), int64_data_.size() * sizeof(int64_t));
      }
      break;
    case DataType::kDouble:
      if (!double_data_.empty()) {
        h->Update(double_data_.data(), double_data_.size() * sizeof(double));
      }
      break;
    case DataType::kString:
      // Codes are first-appearance ordered, so (dictionary, codes) is a
      // canonical function of the appended string sequence.
      h->UpdateU64(dict_.size());
      for (const std::string& s : dict_) h->UpdateString(s);
      if (!codes_.empty()) h->Update(codes_.data(), codes_.size() * sizeof(int32_t));
      break;
  }
}

void Column::HashRows(Fnv64* h, int64_t begin, int64_t end) const {
  for (int64_t row = begin; row < end; ++row) {
    const size_t i = static_cast<size_t>(row);
    h->UpdateU8(validity_[i]);
    switch (type_) {
      case DataType::kInt64:
        h->UpdateI64(int64_data_[i]);
        break;
      case DataType::kDouble:
        h->UpdateDouble(double_data_[i]);
        break;
      case DataType::kString:
        h->UpdateString(GetString(row));
        break;
    }
  }
}

}  // namespace cape
