#ifndef CAPE_RELATIONAL_CATALOG_H_
#define CAPE_RELATIONAL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace cape {

/// A named registry of tables — the engine-level stand-in for a database
/// schema. Deterministic iteration order (sorted by name).
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; AlreadyExists when the name is taken.
  Status RegisterTable(const std::string& name, TablePtr table);

  /// Registers or replaces.
  void RegisterOrReplaceTable(const std::string& name, TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace cape

#endif  // CAPE_RELATIONAL_CATALOG_H_
