#include "relational/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/macros.h"

namespace cape {

Table::Table(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)),
      fingerprint_cell_(std::make_unique<FingerprintCell>()) {
  columns_.reserve(static_cast<size_t>(schema_->num_fields()));
  for (int i = 0; i < schema_->num_fields(); ++i) {
    columns_.emplace_back(schema_->field(i).type);
  }
}

Result<std::shared_ptr<Table>> Table::FromRows(std::shared_ptr<Schema> schema,
                                               const std::vector<Row>& rows) {
  auto table = std::make_shared<Table>(std::move(schema));
  table->Reserve(static_cast<int64_t>(rows.size()));
  // analyzer:allow-next-line(cancellation) ingestion primitive; callers batch
  for (const Row& row : rows) {
    CAPE_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return table;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  CAPE_ASSIGN_OR_RETURN(int idx, schema_->GetFieldIndexChecked(name));
  return &columns_[static_cast<size_t>(idx)];
}

Status Table::ValidateRow(const Row& row) const {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match schema arity " +
                                   std::to_string(num_columns()));
  }
  for (int i = 0; i < num_columns(); ++i) {
    const Value& v = row[static_cast<size_t>(i)];
    if (v.is_null()) continue;
    const DataType col_type = columns_[static_cast<size_t>(i)].type();
    const bool ok = (v.type() == col_type) ||
                    (col_type == DataType::kDouble && v.is_numeric());
    if (!ok) {
      return Status::TypeError("cell " + std::to_string(i) + " ('" + v.ToString() +
                               "') has type " + DataTypeToString(v.type()) +
                               ", column expects " + DataTypeToString(col_type));
    }
  }
  return Status::OK();
}

Status Table::AppendRow(const Row& row) {
  if (page_source_ != nullptr) {
    // A page source's content digest covers a fixed row set; growing the
    // resident columns underneath it would desynchronize the paged and
    // in-memory views of the "same" table.
    return Status::InvalidArgument("cannot append to a paged table");
  }
  // Validate all cells before mutating any column so a failed append leaves
  // the table unchanged.
  CAPE_RETURN_IF_ERROR(ValidateRow(row));
  for (int i = 0; i < num_columns(); ++i) {
    Status st = columns_[static_cast<size_t>(i)].AppendValue(row[static_cast<size_t>(i)]);
    // The loop above already validated every cell, so a failure here is a
    // CAPE bug; returning it would leave the row half-appended across
    // columns, which is worse than aborting.
    CAPE_DCHECK(st.ok());  // lint:allow(check-in-status-fn) pre-validated; see above
  }
  ++num_rows_;
  return Status::OK();
}

void Table::Reserve(int64_t capacity) {
  for (Column& col : columns_) col.Reserve(capacity);
}

Status Table::AppendRowsFrom(const Table& src, const std::vector<int64_t>& rows) {
  if (page_source_ != nullptr) {
    return Status::InvalidArgument("cannot append to a paged table");
  }
  if (!src.rows_resident()) {
    return Status::InvalidArgument(
        "AppendRowsFrom from a non-resident paged table (use the paged operators)");
  }
  if (src.schema() != schema_ && !(*src.schema() == *schema_)) {
    return Status::InvalidArgument("AppendRowsFrom requires matching schemas: " +
                                   src.schema()->ToString() + " vs " + schema_->ToString());
  }
  // analyzer:allow-next-line(cancellation) bounds pre-check; ingestion callers batch
  for (int64_t row : rows) {
    if (row < 0 || row >= src.num_rows()) {
      return Status::OutOfRange("row index " + std::to_string(row) + " out of range");
    }
  }
  for (int c = 0; c < num_columns(); ++c) {
    columns_[static_cast<size_t>(c)].AppendManyFrom(src.column(c), rows);
  }
  num_rows_ += static_cast<int64_t>(rows.size());
  return Status::OK();
}

Row Table::GetRow(int64_t row) const {
  Row out;
  out.reserve(static_cast<size_t>(num_columns()));
  for (int i = 0; i < num_columns(); ++i) out.push_back(GetValue(row, i));
  return out;
}

Row Table::GetRowProjection(int64_t row, const std::vector<int>& cols) const {
  Row out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(GetValue(row, c));
  return out;
}

std::string Table::ToString(int64_t max_rows) const {
  const int64_t shown = std::min(max_rows, num_rows());
  std::vector<size_t> widths;
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (int c = 0; c < num_columns(); ++c) {
    header.push_back(schema_->field(c).name);
    widths.push_back(header.back().size());
  }
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (int c = 0; c < num_columns(); ++c) {
      row_cells.push_back(GetValue(r, c).ToString());
      widths[static_cast<size_t>(c)] =
          std::max(widths[static_cast<size_t>(c)], row_cells.back().size());
    }
    cells.push_back(std::move(row_cells));
  }
  auto render_row = [&](const std::vector<std::string>& row_cells) {
    std::string line = "|";
    for (size_t c = 0; c < row_cells.size(); ++c) {
      line += " " + row_cells[c];
      line.append(widths[c] - row_cells[c].size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };
  std::string out = render_row(header);
  std::string sep = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "|";
  }
  out += sep + "\n";
  for (const auto& row_cells : cells) out += render_row(row_cells);
  if (shown < num_rows()) {
    out += "... (" + std::to_string(num_rows() - shown) + " more rows)\n";
  }
  return out;
}

Status Table::Validate() const {
  std::unordered_set<std::string> names;
  for (int i = 0; i < schema_->num_fields(); ++i) {
    if (!names.insert(schema_->field(i).name).second) {
      return Status::InvalidArgument("duplicate field name '" + schema_->field(i).name + "'");
    }
  }
  for (int i = 0; i < num_columns(); ++i) {
    // Non-resident paged tables keep columns row-free: num_rows_ counts
    // heap-file rows, the columns hold only dictionaries and paged stats.
    const int64_t want = rows_resident_ ? num_rows_ : 0;
    if (columns_[static_cast<size_t>(i)].size() != want) {
      return Status::Internal("column " + std::to_string(i) + " has " +
                              std::to_string(columns_[static_cast<size_t>(i)].size()) +
                              " rows, expected " + std::to_string(want));
    }
    if (columns_[static_cast<size_t>(i)].type() != schema_->field(i).type) {
      return Status::Internal("column " + std::to_string(i) + " type mismatch with schema");
    }
  }
  return Status::OK();
}

Status Table::AttachPageSource(std::shared_ptr<PageSource> source, bool rows_resident) {
  if (source == nullptr) {
    return Status::InvalidArgument("AttachPageSource requires a source");
  }
  if (page_source_ != nullptr) {
    return Status::InvalidArgument("table already has a page source");
  }
  if (rows_resident) {
    if (source->num_rows() != num_rows_) {
      return Status::InvalidArgument(
          "resident page source covers " + std::to_string(source->num_rows()) +
          " rows, table has " + std::to_string(num_rows_));
    }
  } else {
    if (num_rows_ != 0) {
      return Status::InvalidArgument(
          "non-resident page source requires an empty table");
    }
    num_rows_ = source->num_rows();
  }
  page_source_ = std::move(source);
  rows_resident_ = rows_resident;
  return Status::OK();
}

uint64_t Table::Fingerprint() const {
  Fnv64 h;
  h.UpdateU64(schema_->Digest());
  h.UpdateI64(num_rows_);
  if (!rows_resident_) {
    // Rows live in the heap file; the writer's digest covers them (plus
    // validity and dictionaries), so it is the content under this schema.
    h.UpdateU64(page_source_->content_digest());
    return h.digest();
  }
  FingerprintCell& cell = *fingerprint_cell_;
  MutexLock lock(cell.mu);
  if (!cell.valid || cell.rows_hashed > num_rows_) {
    cell.col_states.assign(columns_.size(), Fnv64());
    cell.rows_hashed = 0;
    cell.valid = true;
  }
  if (cell.rows_hashed < num_rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].HashRows(&cell.col_states[c], cell.rows_hashed, num_rows_);
    }
    cell.rows_hashed = num_rows_;
  }
  for (const Fnv64& state : cell.col_states) h.UpdateU64(state.digest());
  return h.digest();
}

void Table::InvalidateFingerprint() {
  FingerprintCell& cell = *fingerprint_cell_;
  MutexLock lock(cell.mu);
  cell.valid = false;
}

TablePtr MakeEmptyTable(std::vector<Field> fields) {
  return std::make_shared<Table>(Schema::Make(std::move(fields)));
}

}  // namespace cape
