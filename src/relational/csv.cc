#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace cape {

namespace {

/// Splits one CSV record honoring double-quote escaping ("" inside quotes).
Result<std::vector<std::string>> ParseCsvRecord(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV record: " + line);
  fields.push_back(std::move(current));
  return fields;
}

DataType InferColumnType(const std::vector<std::vector<std::string>>& records, size_t col) {
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;
  for (const auto& record : records) {
    if (col >= record.size()) continue;
    const std::string& field = record[col];
    if (field.empty()) continue;
    any_value = true;
    if (all_int && !ParseInt64(field).ok()) all_int = false;
    if (!all_int && all_double && !ParseDouble(field).ok()) all_double = false;
    if (!all_int && !all_double) break;
  }
  if (!any_value) return DataType::kString;
  if (all_int) return DataType::kInt64;
  if (all_double) return DataType::kDouble;
  return DataType::kString;
}

Result<Value> ParseField(const std::string& field, DataType type, bool empty_as_null) {
  if (field.empty() && empty_as_null) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      CAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      CAPE_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(field);
  }
  return Status::Internal("unreachable");
}

std::string EscapeCsvField(const std::string& field, char delim) {
  bool needs_quotes = field.find(delim) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<TablePtr> ReadCsvString(const std::string& text, const CsvReadOptions& options,
                               CsvParseReport* report) {
  CsvParseReport local_report;
  if (report == nullptr) report = &local_report;
  *report = CsvParseReport();

  // Quarantines one malformed row (when enabled) or produces the strict
  // failure Status; `column` is -1 for whole-record problems.
  auto reject = [&](int64_t line_no, int column, std::string message) -> Status {
    if (!options.quarantine_malformed) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no) + ": " +
                                     std::move(message));
    }
    report->num_rows_quarantined += 1;
    if (static_cast<int64_t>(report->diagnostics.size()) <
        options.max_quarantine_diagnostics) {
      report->diagnostics.push_back(CsvQuarantinedRow{line_no, column, std::move(message)});
    }
    return Status::OK();
  };

  // 1-based source line numbers survive blank-line skipping so diagnostics
  // point at the real file location.
  std::vector<std::string> lines;
  std::vector<int64_t> line_numbers;
  {
    std::istringstream stream(text);
    std::string line;
    int64_t line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) {
        lines.push_back(std::move(line));
        line_numbers.push_back(line_no);
      }
    }
  }
  if (lines.empty()) return Status::InvalidArgument("CSV input is empty");

  size_t first_data_line = 0;
  std::vector<std::string> header;
  if (options.has_header) {
    // A malformed header is always fatal: without it no schema exists to
    // quarantine rows against.
    CAPE_ASSIGN_OR_RETURN(header, ParseCsvRecord(lines[0], options.delimiter));
    first_data_line = 1;
  }

  std::vector<std::vector<std::string>> records;
  std::vector<int64_t> record_lines;
  records.reserve(lines.size() - first_data_line);
  for (size_t i = first_data_line; i < lines.size(); ++i) {
    auto record = ParseCsvRecord(lines[i], options.delimiter);
    if (!record.ok()) {
      CAPE_RETURN_IF_ERROR(
          reject(line_numbers[i], -1, record.status().message()));
      continue;
    }
    records.push_back(std::move(record).ValueOrDie());
    record_lines.push_back(line_numbers[i]);
  }

  size_t num_cols = header.size();
  if (!options.has_header) {
    for (const auto& record : records) num_cols = std::max(num_cols, record.size());
    header.resize(num_cols);
    for (size_t i = 0; i < num_cols; ++i) header[i] = "c" + std::to_string(i);
  }
  if (num_cols == 0) return Status::InvalidArgument("CSV has no columns");

  std::shared_ptr<Schema> schema = options.schema;
  if (schema == nullptr) {
    std::vector<Field> fields;
    fields.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      fields.push_back(Field{header[c], InferColumnType(records, c), true});
    }
    schema = Schema::Make(std::move(fields));
  } else if (static_cast<size_t>(schema->num_fields()) != num_cols) {
    return Status::InvalidArgument("provided schema has " +
                                   std::to_string(schema->num_fields()) + " fields, CSV has " +
                                   std::to_string(num_cols) + " columns");
  }

  auto table = std::make_shared<Table>(schema);
  table->Reserve(static_cast<int64_t>(records.size()));
  // Pre-size string dictionaries too. The mining attributes are
  // low-cardinality, so a capped heuristic covers the common case without
  // over-allocating hash buckets per column on large loads.
  const int64_t dict_capacity =
      std::min<int64_t>(static_cast<int64_t>(records.size()), 1024);
  for (int c = 0; c < table->num_columns(); ++c) {
    table->mutable_column(c).ReserveDict(dict_capacity);
  }
  Row row;
  for (size_t r = 0; r < records.size(); ++r) {
    CAPE_FAILPOINT("csv.read_row");
    const auto& record = records[r];
    const int64_t line_no = record_lines[r];
    if (record.size() != num_cols) {
      CAPE_RETURN_IF_ERROR(reject(line_no, -1,
                                  "has " + std::to_string(record.size()) +
                                      " fields, expected " + std::to_string(num_cols)));
      continue;
    }
    row.clear();
    bool bad_field = false;
    for (size_t c = 0; c < num_cols; ++c) {
      auto v = ParseField(record[c], schema->field(static_cast<int>(c)).type,
                          options.empty_as_null);
      if (!v.ok()) {
        CAPE_RETURN_IF_ERROR(reject(line_no, static_cast<int>(c), v.status().message()));
        bad_field = true;
        break;
      }
      row.push_back(std::move(v).ValueOrDie());
    }
    if (bad_field) continue;
    CAPE_RETURN_IF_ERROR(table->AppendRow(row));
    report->num_rows_loaded += 1;
  }
  if (report->num_rows_loaded == 0 && report->num_rows_quarantined > 0) {
    return Status::InvalidArgument(
        "all " + std::to_string(report->num_rows_quarantined) +
        " CSV data rows are malformed (first: line " +
        std::to_string(report->diagnostics.empty() ? 0 : report->diagnostics[0].line) + ")");
  }
  return table;
}

Result<TablePtr> ReadCsvFile(const std::string& path, const CsvReadOptions& options,
                             CsvParseReport* report) {
  CAPE_FAILPOINT("csv.open");
  std::ifstream file(path);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvString(buffer.str(), options, report);
}

std::string WriteCsvString(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  if (options.write_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += EscapeCsvField(table.schema()->field(c).name, options.delimiter);
    }
    out.push_back('\n');
  }
  // analyzer:allow-next-line(cancellation) offline export utility, not request path
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      Value v = table.GetValue(r, c);
      if (!v.is_null()) out += EscapeCsvField(v.ToString(), options.delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options) {
  std::ofstream file(path);
  if (!file.is_open()) return Status::IOError("cannot open '" + path + "' for writing");
  file << WriteCsvString(table, options);
  if (!file.good()) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace cape
