#include "relational/catalog.h"

namespace cape {

Status Catalog::RegisterTable(const std::string& name, TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("cannot register null table");
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) return Status::AlreadyExists("table '" + name + "' already registered");
  return Status::OK();
}

void Catalog::RegisterOrReplaceTable(const std::string& name, TablePtr table) {
  tables_[name] = std::move(table);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no table named '" + name + "'");
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace cape
