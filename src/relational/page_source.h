#ifndef CAPE_RELATIONAL_PAGE_SOURCE_H_
#define CAPE_RELATIONAL_PAGE_SOURCE_H_

#include <cstdint>
#include <utility>

#include "common/result.h"

namespace cape {

/// Counters a PageSource maintains about its cache behavior. Snapshots are
/// plain values; Engine::run_stats() overlays them into RunStats and the
/// server STATS verb forwards them to operators.
struct PageSourceStats {
  int64_t hits = 0;        ///< Pin() satisfied without IO.
  int64_t misses = 0;      ///< Pin() that had to read the page ("page fault").
  int64_t evictions = 0;   ///< Frames recycled to stay inside the byte budget.
  int64_t bytes_read = 0;  ///< Total page payload bytes read from the file.
  int64_t bytes_pinned = 0;       ///< Bytes held by currently pinned pages.
  int64_t peak_bytes_pinned = 0;  ///< High-water mark of bytes_pinned.
};

/// One column's slice of a pinned page, laid out exactly like the
/// corresponding Column arrays (column.h): the block kernels index these
/// pointers with page-local row offsets, so a pinned page is handed to the
/// 2048-row block loops zero-copy. Pointers for the non-matching types are
/// null; `validity` is always populated (pages store it unconditionally),
/// and `null_count` lets kernels keep their no-null fast paths.
struct ColumnChunk {
  const uint8_t* validity = nullptr;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const int32_t* codes = nullptr;
  int64_t null_count = 0;  ///< NULL slots within this chunk only.
};

/// A pinned page: the global row range it covers plus one ColumnChunk per
/// table column. Valid only while the owning PageRef is alive.
struct PageView {
  int64_t row_begin = 0;
  int row_count = 0;
  const ColumnChunk* cols = nullptr;
};

class PageSource;

/// RAII pin on one page. While a PageRef is alive the buffer manager must
/// keep the page resident, so every pointer in view() stays valid; the
/// destructor unpins. Move-only, like a lock guard.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageSource* source, uint64_t cookie, PageView view)
      : source_(source), cookie_(cookie), view_(view) {}

  PageRef(PageRef&& other) noexcept
      : source_(other.source_), cookie_(other.cookie_), view_(other.view_) {
    other.source_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      source_ = other.source_;
      cookie_ = other.cookie_;
      view_ = other.view_;
      other.source_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  ~PageRef() { Release(); }

  bool valid() const { return source_ != nullptr; }
  const PageView& view() const { return view_; }

  /// Explicit early unpin (destructor equivalent; idempotent).
  void Release();

 private:
  PageSource* source_ = nullptr;
  uint64_t cookie_ = 0;
  PageView view_;
};

/// Read-only paged access to a table's rows. Implemented by the storage
/// layer (storage/paged_table.h: heap file + buffer manager); declared here
/// so Table and the kernels can scan page-at-a-time without the relational
/// library depending on storage. Implementations must be thread-safe: the
/// parallel miners pin pages from several worker threads at once.
class PageSource {
 public:
  virtual ~PageSource() = default;

  virtual int64_t num_rows() const = 0;
  /// Rows per full page; a multiple of the kernel block size so block loops
  /// never straddle a page boundary. The last page may be short.
  virtual int rows_per_page() const = 0;
  virtual int64_t num_pages() const = 0;

  /// Content digest of the backing data, covering schema, row payloads,
  /// validity, and dictionaries. Feeds Table::Fingerprint for non-resident
  /// tables, where hashing the (absent) in-memory columns is meaningless.
  virtual uint64_t content_digest() const = 0;

  /// Pins `page` (reading it if not cached) and returns a guard whose view
  /// stays valid until the guard is released. Fails cleanly on IO or
  /// checksum errors.
  virtual Result<PageRef> Pin(int64_t page) = 0;

  /// Hint that `page` will be pinned soon (sequential scans call this for
  /// page p+1 while processing p). Best-effort; never fails.
  virtual void Prefetch(int64_t page) = 0;

  virtual PageSourceStats stats() const = 0;

 protected:
  friend class PageRef;
  /// Drops the pin identified by `cookie` (issued by Pin).
  virtual void Unpin(uint64_t cookie) = 0;
};

/// Process-wide toggle routing scans of page-backed *resident* tables
/// through the paged path, for A/B benchmarking and the paged-vs-in-memory
/// equivalence fixtures (mirrors SetDictionaryKernelsEnabled /
/// SetVectorizedKernelsEnabled). Tables whose rows exist only in a heap
/// file always scan paged regardless of this toggle. Default: enabled.
void SetPagedStorageEnabled(bool enabled);
bool PagedStorageEnabled();

}  // namespace cape

#endif  // CAPE_RELATIONAL_PAGE_SOURCE_H_
