#ifndef CAPE_RELATIONAL_TABLE_H_
#define CAPE_RELATIONAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "relational/column.h"
#include "relational/page_source.h"
#include "relational/schema.h"

namespace cape {

/// A materialized row: one Value per schema field.
using Row = std::vector<Value>;

/// An immutable-by-convention, in-memory columnar relation.
///
/// Tables are built by appending rows (or via operators in operators.h)
/// and then treated as read-only; they are shared via shared_ptr.
class Table {
 public:
  explicit Table(std::shared_ptr<Schema> schema);

  /// Builds a table from rows, validating arity and types.
  static Result<std::shared_ptr<Table>> FromRows(std::shared_ptr<Schema> schema,
                                                 const std::vector<Row>& rows);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }

  /// Mutable column access. Hands out storage the fingerprint cache cannot
  /// see through, so it drops the cached digest: the next Fingerprint()
  /// rehashes from row 0.
  Column& mutable_column(int i) {
    InvalidateFingerprint();
    return columns_[static_cast<size_t>(i)];
  }

  /// Column lookup by name; NotFound for unknown names.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends one row; the row must have one Value per column of compatible
  /// type (NULLs allowed anywhere).
  Status AppendRow(const Row& row);

  /// Checks that `row` could be appended (arity and per-cell types) without
  /// mutating anything. Batch appenders validate every row up front so a
  /// bad row rejects the whole batch instead of leaving a prefix appended.
  Status ValidateRow(const Row& row) const;

  /// Pre-sizes all columns.
  void Reserve(int64_t capacity);

  /// Bulk-appends the given rows of `src`, which must share this table's
  /// schema (by pointer or by equality). Column-at-a-time, no Value boxing
  /// — the fast path for selection, sorting and limits.
  Status AppendRowsFrom(const Table& src, const std::vector<int64_t>& rows);

  Value GetValue(int64_t row, int col) const { return column(col).GetValue(row); }

  /// Materializes row `row` as a vector of Values.
  Row GetRow(int64_t row) const;

  /// Projection of row `row` onto the given column indices.
  Row GetRowProjection(int64_t row, const std::vector<int>& cols) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table for debugging
  /// and example output.
  std::string ToString(int64_t max_rows = 20) const;

  /// Verifies internal consistency (column sizes match, no duplicate field
  /// names). Intended for tests and after bulk construction.
  Status Validate() const;

  /// Content fingerprint over the schema digest, row count, and every
  /// column's per-row content stream (validity, typed payloads, string
  /// contents). Equal-content tables fingerprint equal; any appended row,
  /// changed cell, or schema difference changes it. This is the cache key
  /// half that invalidates persisted pattern sets when the underlying
  /// relation changes (PatternCache).
  ///
  /// The digest is cached and chain-extended: each column keeps a running
  /// Fnv64 state over rows [0, rows_hashed), so a fingerprint after an
  /// append only hashes the delta rows — O(delta), not O(table). The cached
  /// states are a pure function of row content (Column::HashRows), so
  /// append-then-fingerprint equals a fresh-load fingerprint of the same
  /// rows. mutable_column() invalidates the cache (next call rehashes from
  /// row 0). Thread-safe. Non-resident paged tables hash the page source's
  /// content digest instead of the (absent) columns.
  uint64_t Fingerprint() const;

  /// Attaches a paged row source (storage/paged_table.h).
  ///
  /// With rows_resident=false the table must be empty: its row count comes
  /// from the source, its columns stay row-free (dictionaries and paged
  /// stats only), and every scan goes page-at-a-time. With
  /// rows_resident=true the source must cover exactly this table's rows —
  /// the A/B shape where SetPagedStorageEnabled chooses in-memory vs paged
  /// scans over the same logical data.
  Status AttachPageSource(std::shared_ptr<PageSource> source, bool rows_resident);

  /// The attached page source, or null. Shared so engine stats can snapshot
  /// cache counters while scans hold pins.
  const std::shared_ptr<PageSource>& page_source() const { return page_source_; }

  /// True when this table's rows are materialized in its columns (always
  /// true without a page source).
  bool rows_resident() const { return rows_resident_; }

  /// True when scans of this table must take the paged path: rows exist
  /// only in the heap file, or a resident A/B table with the process-wide
  /// paged toggle on.
  bool UsesPagedScan() const {
    return page_source_ != nullptr && (!rows_resident_ || PagedStorageEnabled());
  }

 private:
  /// Cached incremental fingerprint state: one running per-column Fnv64 over
  /// rows [0, rows_hashed). Behind a unique_ptr so Table stays movable-only
  /// in a controlled way (the Mutex is neither copyable nor movable) and the
  /// cell can be mutated from the const Fingerprint() path.
  struct FingerprintCell {
    Mutex mu;
    bool valid CAPE_GUARDED_BY(mu) = false;
    int64_t rows_hashed CAPE_GUARDED_BY(mu) = 0;
    std::vector<Fnv64> col_states CAPE_GUARDED_BY(mu);
  };

  void InvalidateFingerprint();

  std::shared_ptr<Schema> schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
  std::shared_ptr<PageSource> page_source_;
  bool rows_resident_ = true;
  std::unique_ptr<FingerprintCell> fingerprint_cell_;
};

using TablePtr = std::shared_ptr<Table>;

/// Convenience: builds a schema and empty table in one call.
TablePtr MakeEmptyTable(std::vector<Field> fields);

}  // namespace cape

#endif  // CAPE_RELATIONAL_TABLE_H_
