#ifndef CAPE_RELATIONAL_SCHEMA_H_
#define CAPE_RELATIONAL_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace cape {

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type && a.nullable == b.nullable;
  }
};

/// An ordered list of fields with O(1) name lookup. Immutable once built;
/// shared between tables via shared_ptr.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 when absent.
  int GetFieldIndex(const std::string& name) const;

  /// Like GetFieldIndex but returns a NotFound status for missing names.
  Result<int> GetFieldIndexChecked(const std::string& name) const;

  bool HasField(const std::string& name) const { return GetFieldIndex(name) >= 0; }

  /// Names of all fields in order.
  std::vector<std::string> field_names() const;

  /// "(author: string, year: int64, ...)"
  std::string ToString() const;

  /// Content digest over field order, names, types, and nullability. Two
  /// schemas digest equal iff they compare equal; the binary pattern store
  /// embeds this so a load against the wrong relation fails before any
  /// attribute index is mis-bound.
  uint64_t Digest() const;

  friend bool operator==(const Schema& a, const Schema& b) { return a.fields_ == b.fields_; }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> name_to_index_;
};

}  // namespace cape

#endif  // CAPE_RELATIONAL_SCHEMA_H_
