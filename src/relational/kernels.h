#ifndef CAPE_RELATIONAL_KERNELS_H_
#define CAPE_RELATIONAL_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "relational/operators.h"
#include "relational/page_source.h"
#include "relational/table.h"

namespace cape {

/// Block/morsel width of the vectorized kernels (DESIGN.md §14): scans
/// proceed in fixed-size runs of this many rows, with byte masks and
/// selection vectors sized to one block. 2048 rows keeps a block's mask
/// (2 KB), selection vector (16 KB), and packed keys (16 KB) inside L1/L2
/// while amortizing the per-block stop check to noise.
inline constexpr int64_t kKernelBlockSize = 2048;
static_assert(kKernelBlockSize == kStopCheckStride,
              "block kernels check the stop token once per block; the shared "
              "stride constant must match the block size so every scan in the "
              "engine has the same stop latency");

/// Process-wide switch for the block/morsel vectorized kernels, mirroring
/// SetDictionaryKernelsEnabled (DESIGN.md §10). When enabled (the default),
/// FilterEquals builds a selection vector via branch-free byte-mask loops,
/// GroupByAggregate packs dense group keys block-at-a-time, and
/// FilterGroupAggregate fuses filter→group→aggregate without materializing
/// the filtered table. When disabled every call falls back to the row-at-a-
/// time legacy path. Outputs are byte-identical either way (pinned by
/// determinism_test and random_equivalence_test); the switch exists for A/B
/// benchmarking and those equivalence fixtures. Not intended to be flipped
/// mid-query. Independent of the dictionary toggle: codes are always stored,
/// so the vectorized kernels run on codes regardless of that switch.
void SetVectorizedKernelsEnabled(bool enabled);
bool VectorizedKernelsEnabled();

/// Conjunctive equality predicate compiled once and evaluated a block at a
/// time into a 0/1 byte mask — the vectorized counterpart of
/// RowEqualityMatcher, with the same semantics (NULL matches NULL,
/// cross-type numeric equality via Value::Compare's !(x<v) && !(x>v) rule,
/// string values resolved to dictionary codes, absent/mismatched values
/// short-circuiting via never_matches()).
///
/// Holds pointers into `table`'s columns; must not outlive it. Column
/// indices must be validated by the caller.
class BlockPredicate {
 public:
  BlockPredicate(const Table& table,
                 const std::vector<std::pair<int, Value>>& conditions);

  /// True when no row can possibly satisfy the conditions.
  bool never_matches() const { return never_matches_; }

  /// True when there are no conditions (every row matches).
  bool always_matches() const { return conds_.empty() && !never_matches_; }

  /// Sets mask[i] to 1 where row `begin + i` satisfies every condition and 0
  /// elsewhere, for i in [0, n). n must be <= kKernelBlockSize and
  /// [begin, begin + n) must be valid rows.
  void EvalBlock(int64_t begin, int n, uint8_t* mask) const;

  /// EvalBlock twin for a pinned page: `chunks` holds one ColumnChunk per
  /// table column (same layout as the Column arrays) and `begin` is a
  /// page-local row offset. The compiled conditions are page-independent —
  /// dictionary codes and never_matches() proofs hold for the whole file —
  /// so one BlockPredicate serves every page of a scan.
  void EvalChunk(const ColumnChunk* chunks, int begin, int n, uint8_t* mask) const;

 private:
  enum class Kind : uint8_t {
    kCode,           // string column: dictionary code equality
    kNullCode,       // IS NULL on a string column (code < 0)
    kNullValidity,   // IS NULL on a numeric column (validity == 0)
    kInt64,          // exact int64 equality
    kDoubleEq,       // double column: Value::Compare numeric equality
    kInt64AsDouble,  // int64 column vs double value (rare; scalar loop)
  };
  struct Cond {
    const Column* col = nullptr;
    int col_idx = 0;  // chunk index for paged evaluation
    Kind kind = Kind::kCode;
    int32_t code = 0;
    int64_t i64 = 0;
    double f64 = 0.0;
  };

  /// Shared per-condition kernel: EvalBlock feeds it the Column arrays,
  /// EvalChunk the page chunk — identical loops either way, so the paged
  /// path reuses the proven (and CI-vectorization-checked) mask code.
  static void EvalCond(const Cond& cond, const ColumnChunk& arrays, int64_t begin,
                       int n, uint8_t* mask);

  std::vector<Cond> conds_;
  bool never_matches_ = false;
};

/// σ_{c1=v1 ∧ ...} as a selection vector: appends the ascending row indices
/// of `table` satisfying `conditions` to *sel (cleared first) without
/// materializing any table. Stop checks run at block granularity.
Status FilterEqualsSel(const Table& table,
                       const std::vector<std::pair<int, Value>>& conditions,
                       StopToken* stop, std::vector<int64_t>* sel);

/// Number of rows satisfying `conditions` — the existence/cardinality probe
/// shape (user_question.cc) that previously materialized a full filtered
/// table just to read num_rows(). Vectorized mode counts straight off the
/// block masks; legacy mode scans with RowEqualityMatcher.
Result<int64_t> CountFilterMatches(const Table& table,
                                   const std::vector<std::pair<int, Value>>& conditions,
                                   StopToken* stop = nullptr);

/// Fused σ → γ: exactly GroupByAggregate(*FilterEquals(table, conditions),
/// group_cols, aggs) — byte-identical output, same Status surface — but in
/// vectorized mode the filtered table is never materialized: block masks
/// feed a selection vector, group keys are packed from the base table's
/// columns, and aggregates consume the selection directly. This is the
/// retrieval-query shape Q_{P,f} = γ_{V,agg(A)}(σ_{F=f}(R)) that the miners
/// and explainers issue thousands of times per request. With vectorized
/// kernels disabled it runs the legacy two-operator composition (A/B).
Result<TablePtr> FilterGroupAggregate(const Table& table,
                                      const std::vector<std::pair<int, Value>>& conditions,
                                      const std::vector<int>& group_cols,
                                      const std::vector<AggregateSpec>& aggs,
                                      StopToken* stop = nullptr);

/// Sufficient statistics for mean and variance over the non-null rows of
/// `col` named by a selection vector. Sums accumulate in selection order
/// (floating-point addition is order-sensitive), so two equal selections
/// always produce bit-equal sums. mean = sum / count; the biased variance is
/// sum_sq / count - mean^2.
struct SufficientStats {
  int64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Computes SufficientStats for `col` over the `k` rows of `sel`. `col` must
/// be numeric (int64 values are widened to double exactly as GetNumeric).
SufficientStats MomentsSel(const Column& col, const int64_t* sel, int64_t k);

namespace relational_internal {

/// Paged σ_{c1=v1 ∧ ...}: materializes the matching rows of a paged-scan
/// table (Table::UsesPagedScan()) into a fresh in-memory table, pinning one
/// page at a time. Byte-identical to the in-memory FilterEquals — matched
/// rows append in ascending order, so dictionary interning order (and hence
/// codes, fingerprints, CSV bytes) agrees with AppendRowsFrom. Called by
/// FilterEquals (operators.cc); not intended as public API.
Result<TablePtr> PagedFilterEquals(const Table& table,
                                   const std::vector<std::pair<int, Value>>& conditions,
                                   StopToken* stop);

}  // namespace relational_internal

}  // namespace cape

#endif  // CAPE_RELATIONAL_KERNELS_H_
