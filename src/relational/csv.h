#ifndef CAPE_RELATIONAL_CSV_H_
#define CAPE_RELATIONAL_CSV_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace cape {

struct CsvReadOptions {
  char delimiter = ',';
  /// First line holds column names; otherwise columns are named c0, c1, ...
  bool has_header = true;
  /// Empty fields become NULL (otherwise empty strings).
  bool empty_as_null = true;
  /// When set, parse into this schema; otherwise infer types (int64 if every
  /// non-empty field parses as int64, else double, else string).
  std::shared_ptr<Schema> schema;
};

/// Parses CSV text into a table.
Result<TablePtr> ReadCsvString(const std::string& text, const CsvReadOptions& options = {});

/// Reads a CSV file from disk.
Result<TablePtr> ReadCsvFile(const std::string& path, const CsvReadOptions& options = {});

struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
};

/// Serializes a table as CSV text (NULL renders as empty field; fields
/// containing the delimiter, quotes, or newlines are quoted).
std::string WriteCsvString(const Table& table, const CsvWriteOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options = {});

}  // namespace cape

#endif  // CAPE_RELATIONAL_CSV_H_
