#ifndef CAPE_RELATIONAL_CSV_H_
#define CAPE_RELATIONAL_CSV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace cape {

struct CsvReadOptions {
  char delimiter = ',';
  /// First line holds column names; otherwise columns are named c0, c1, ...
  bool has_header = true;
  /// Empty fields become NULL (otherwise empty strings).
  bool empty_as_null = true;
  /// When set, parse into this schema; otherwise infer types (int64 if every
  /// non-empty field parses as int64, else double, else string).
  std::shared_ptr<Schema> schema;

  /// When set, malformed data rows (unterminated quote, wrong field count,
  /// unparseable field under an explicit schema) are quarantined instead of
  /// failing the whole load; the load fails only when *every* data row is
  /// malformed. When unset (default), the first malformed row aborts the
  /// load with InvalidArgument, matching strict ingestion.
  bool quarantine_malformed = false;
  /// Cap on per-row diagnostics retained in CsvParseReport::diagnostics;
  /// rows beyond the cap are still counted and skipped, just not described.
  int64_t max_quarantine_diagnostics = 64;
};

/// One quarantined CSV row: 1-based source line, the offending column index
/// (-1 when the whole record is malformed), and what went wrong.
struct CsvQuarantinedRow {
  int64_t line = 0;
  int column = -1;
  std::string message;
};

/// Outcome of a (possibly lossy) CSV load.
struct CsvParseReport {
  int64_t num_rows_loaded = 0;
  int64_t num_rows_quarantined = 0;
  /// First max_quarantine_diagnostics quarantined rows. Record-level
  /// failures (unterminated quote) are detected in an earlier pass than
  /// field-level ones, so diagnostics are grouped by failure kind, each
  /// group in input order; `line` always points at the real source line.
  std::vector<CsvQuarantinedRow> diagnostics;
};

/// Parses CSV text into a table. `report`, when non-null, receives row
/// counts and quarantine diagnostics (only populated with quarantined rows
/// when options.quarantine_malformed is set).
Result<TablePtr> ReadCsvString(const std::string& text, const CsvReadOptions& options = {},
                               CsvParseReport* report = nullptr);

/// Reads a CSV file from disk.
Result<TablePtr> ReadCsvFile(const std::string& path, const CsvReadOptions& options = {},
                             CsvParseReport* report = nullptr);

struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
};

/// Serializes a table as CSV text (NULL renders as empty field; fields
/// containing the delimiter, quotes, or newlines are quoted).
std::string WriteCsvString(const Table& table, const CsvWriteOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options = {});

}  // namespace cape

#endif  // CAPE_RELATIONAL_CSV_H_
