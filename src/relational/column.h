#ifndef CAPE_RELATIONAL_COLUMN_H_
#define CAPE_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace cape {

/// Columnar storage for one attribute: a typed value vector plus a validity
/// vector. Appending a Value of the wrong type is a TypeError; NULL appends
/// store a default-constructed slot with validity=false.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  int64_t size() const { return static_cast<int64_t>(validity_.size()); }

  void Reserve(int64_t capacity);

  /// Appends a value; Status::TypeError when the value's type mismatches.
  Status AppendValue(const Value& value);
  void AppendNull();

  /// Typed fast-path appenders (no per-call type dispatch). Calling the
  /// wrong one for this column's type is a programming error (CHECKed).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  bool IsNull(int64_t row) const { return !validity_[static_cast<size_t>(row)]; }

  /// Boxed access; returns Value::Null() for null slots.
  Value GetValue(int64_t row) const;

  /// Typed access; undefined for nulls or mismatched type.
  int64_t GetInt64(int64_t row) const { return int64_data_[static_cast<size_t>(row)]; }
  double GetDouble(int64_t row) const { return double_data_[static_cast<size_t>(row)]; }
  const std::string& GetString(int64_t row) const {
    return string_data_[static_cast<size_t>(row)];
  }

  /// Numeric view of row (int64 widened to double); 0.0 for null/strings.
  double GetNumeric(int64_t row) const;

  /// Appends `src`'s value at `row` without boxing through Value. Both
  /// columns must have the same type (CHECKed).
  void AppendFrom(const Column& src, int64_t row);

  /// Number of distinct non-null values (hash-based; O(n)).
  int64_t CountDistinct() const;

  /// Minimum / maximum as Values; Null when the column is all-null/empty.
  Value Min() const;
  Value Max() const;

 private:
  DataType type_;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<std::string> string_data_;
  std::vector<uint8_t> validity_;  // 1 = valid; vector<uint8_t> beats vector<bool> here
};

}  // namespace cape

#endif  // CAPE_RELATIONAL_COLUMN_H_
