#ifndef CAPE_RELATIONAL_COLUMN_H_
#define CAPE_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace cape {

/// Columnar storage for one attribute: a typed value vector plus a validity
/// vector. Appending a Value of the wrong type is a TypeError; NULL appends
/// store a default-constructed slot with validity=false.
///
/// String columns are dictionary-encoded (DESIGN.md §10): each row stores a
/// 4-byte code into an interned dictionary, with codes assigned in
/// first-appearance order. The dictionary is append-only and every entry is
/// referenced by at least one non-null row, so distinct-count and min/max
/// reduce to dictionary operations, and the hot group/filter/sort kernels in
/// operators.cc compare codes instead of heap-resident strings.
class Column {
 public:
  /// Code stored for NULL rows of a string column. Valid rows always carry a
  /// code in [0, dict_size()).
  static constexpr int32_t kNullCode = -1;

  explicit Column(DataType type);

  DataType type() const { return type_; }
  int64_t size() const { return static_cast<int64_t>(validity_.size()); }

  void Reserve(int64_t capacity);

  /// Pre-sizes the string dictionary (entries and hash buckets). No-op for
  /// numeric columns.
  void ReserveDict(int64_t capacity);

  /// Appends a value; Status::TypeError when the value's type mismatches.
  Status AppendValue(const Value& value);
  void AppendNull();

  /// Typed fast-path appenders (no per-call type dispatch). Calling the
  /// wrong one for this column's type is a programming error (CHECKed).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  bool IsNull(int64_t row) const { return !validity_[static_cast<size_t>(row)]; }

  /// Boxed access; returns Value::Null() for null slots.
  Value GetValue(int64_t row) const;

  /// Typed access; undefined for nulls or mismatched type (GetString returns
  /// the empty string for null rows, matching the pre-dictionary storage).
  int64_t GetInt64(int64_t row) const { return int64_data_[static_cast<size_t>(row)]; }
  double GetDouble(int64_t row) const { return double_data_[static_cast<size_t>(row)]; }
  const std::string& GetString(int64_t row) const {
    const int32_t code = codes_[static_cast<size_t>(row)];
    return code < 0 ? EmptyString() : dict_[static_cast<size_t>(code)];
  }

  /// Dictionary code of `row` (string columns only); kNullCode for nulls.
  /// Two rows carry the same code iff they hold the same string, which is
  /// what lets equality-heavy kernels run on integers.
  int32_t GetCode(int64_t row) const { return codes_[static_cast<size_t>(row)]; }

  /// Number of NULL slots, maintained on every append. Kernels branch to a
  /// no-null fast path (skip the validity tests entirely) when it is 0.
  int64_t null_count() const { return null_count_; }

  /// Raw array views for the block kernels (kernels.cc). Valid for
  /// [0, size()); the int64/double/codes arrays are only meaningful for the
  /// matching column type. NULL slots hold 0 / 0.0 / kNullCode respectively.
  const uint8_t* validity_data() const { return validity_.data(); }
  const int64_t* int64_data() const { return int64_data_.data(); }
  const double* double_data() const { return double_data_.data(); }
  const int32_t* codes_data() const { return codes_.data(); }

  /// Number of interned dictionary entries (string columns only).
  int64_t dict_size() const { return static_cast<int64_t>(dict_.size()); }

  /// The string interned under `code`; code must be in [0, dict_size()).
  const std::string& DictString(int32_t code) const {
    return dict_[static_cast<size_t>(code)];
  }

  /// Code of `s`, or kNullCode when `s` was never appended. A miss proves no
  /// row of this column equals `s` — equality selections short-circuit on it.
  int32_t FindCode(const std::string& s) const;

  /// Sorted-code remap: ranks[code_a] < ranks[code_b] iff
  /// DictString(code_a) < DictString(code_b). Codes are first-appearance
  /// ordered, so sort kernels build this O(d log d) remap once per sort and
  /// then compare pure integers. Computed on demand (stateless, and the
  /// mining kernels sort freshly materialized tables that would never hit a
  /// cache anyway).
  std::vector<int32_t> SortedCodeRanks() const;

  /// Numeric view of row (int64 widened to double). NULL rows read as 0.0 —
  /// callers for which 0 is meaningful must pre-filter with IsNull. Calling
  /// this on a string column is a programming error (CHECKed); callers that
  /// feed mixed predictor columns into constant-model fits must substitute
  /// their own placeholder for non-numeric columns.
  double GetNumeric(int64_t row) const;

  /// Appends `src`'s value at `row` without boxing through Value. Both
  /// columns must have the same type (CHECKed).
  void AppendFrom(const Column& src, int64_t row);

  /// Bulk AppendFrom for all of `rows`. For string columns the src->dst code
  /// translation is memoized per distinct code, so materializing a large
  /// selection or sort permutation interns each distinct string once instead
  /// of hashing it per row.
  void AppendManyFrom(const Column& src, const std::vector<int64_t>& rows);

  /// Number of distinct non-null values. O(1) for string columns (the
  /// dictionary is exactly the distinct set); hash-based O(n) otherwise.
  int64_t CountDistinct() const;

  /// Minimum / maximum as Values; Null when the column is all-null/empty.
  /// String columns scan the dictionary (O(d)) instead of the rows.
  Value Min() const;
  Value Max() const;

  /// Folds this column's full content — type, validity bitmap, typed data,
  /// and (for string columns) the dictionary plus per-row codes — into `h`.
  /// Two columns with equal logical content built by the same append
  /// sequence hash equal; any row/dictionary mutation changes the digest.
  /// Feeds Table::Fingerprint for pattern-cache invalidation.
  void HashContent(Fnv64* h) const;

  /// Folds rows [begin, end) into `h` as a per-row canonical stream: the
  /// validity flag, then the raw int64/double payload (null slots hold 0 /
  /// 0.0) or the row's string content (null rows hash as the empty string —
  /// the flag disambiguates). Unlike HashContent, the stream for row i does
  /// not depend on rows > i (string rows hash their content, not a
  /// dictionary code), so a running Fnv64 can be extended row-by-row as the
  /// column grows: HashRows(h, 0, k) then HashRows(h, k, n) produces the
  /// same digest as HashRows(h, 0, n). This is what makes
  /// Table::Fingerprint O(delta) on append.
  void HashRows(Fnv64* h, int64_t begin, int64_t end) const;

  /// Installs a heap-file dictionary into an empty string column (paged
  /// tables keep dictionaries resident while rows live on disk). Entries
  /// must be distinct and in file code order, so GetCode/FindCode/DictString
  /// agree with the codes stored in the pages. TypeError on numeric columns;
  /// InvalidArgument on non-empty columns or duplicate entries.
  Status LoadDictionary(std::vector<std::string> entries);

  /// Installs file-global statistics for a column whose rows are not
  /// resident: null_count()/Min()/Max() answer from these instead of
  /// scanning (there are no rows to scan). The stats come from the heap-file
  /// trailer, which the writer computed over the exact row stream.
  void SetPagedStats(int64_t null_count, Value min, Value max);

  /// Drops all row storage (data, validity, null count) but keeps the
  /// dictionary and its index. The heap-file writer reuses one Column as a
  /// per-page accumulator: codes stay stable across pages because the
  /// dictionary persists while rows are flushed.
  void ClearRowsKeepDict();

 private:
  static const std::string& EmptyString();

  /// Interns `v`, returning its code (existing or freshly assigned).
  int32_t InternString(std::string v);

  DataType type_;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<uint8_t> validity_;  // 1 = valid; vector<uint8_t> beats vector<bool> here
  int64_t null_count_ = 0;         // count of 0-entries in validity_
  // Dictionary encoding (string columns only): per-row codes plus the
  // interned dictionary in first-appearance order and its lookup index.
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
  // File-global stats for paged (non-resident) columns; see SetPagedStats.
  bool has_paged_stats_ = false;
  Value paged_min_ = Value::Null();
  Value paged_max_ = Value::Null();
};

}  // namespace cape

#endif  // CAPE_RELATIONAL_COLUMN_H_
