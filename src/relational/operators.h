#ifndef CAPE_RELATIONAL_OPERATORS_H_
#define CAPE_RELATIONAL_OPERATORS_H_

#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "relational/table.h"

namespace cape {

/// Aggregate functions supported by the engine. ARPs (Definition 2) use
/// count/sum/min/max; avg is provided for general queries but cannot be
/// re-aggregated by the CUBE operator.
enum class AggFunc : int { kCount = 0, kSum = 1, kAvg = 2, kMin = 3, kMax = 4 };

const char* AggFuncToString(AggFunc func);

/// One aggregate to compute: `func(input_col)` named `output_name`.
/// `input_col == kCountStar` (only valid with kCount) means count(*).
struct AggregateSpec {
  static constexpr int kCountStar = -1;

  AggFunc func = AggFunc::kCount;
  int input_col = kCountStar;
  std::string output_name;

  static AggregateSpec CountStar(std::string name = "count") {
    return {AggFunc::kCount, kCountStar, std::move(name)};
  }
  static AggregateSpec Sum(int col, std::string name) {
    return {AggFunc::kSum, col, std::move(name)};
  }
  static AggregateSpec Avg(int col, std::string name) {
    return {AggFunc::kAvg, col, std::move(name)};
  }
  static AggregateSpec Min(int col, std::string name) {
    return {AggFunc::kMin, col, std::move(name)};
  }
  static AggregateSpec Max(int col, std::string name) {
    return {AggFunc::kMax, col, std::move(name)};
  }
};

/// SELECT group_cols, aggs FROM table GROUP BY group_cols.
///
/// Hash aggregation; output rows appear in first-seen group order (stable,
/// deterministic). NULL group keys form their own group (SQL semantics).
/// Aggregates ignore NULL inputs; count(*) counts rows, count(col) counts
/// non-null values. Empty `group_cols` produces one global row.
///
/// All operators accept an optional StopToken; when it reports a stop the
/// operator abandons its scan and returns the stop Status
/// (kDeadlineExceeded/kCancelled), which callers may treat as graceful
/// truncation rather than an error.
Result<TablePtr> GroupByAggregate(const Table& table, const std::vector<int>& group_cols,
                                  const std::vector<AggregateSpec>& aggs,
                                  StopToken* stop = nullptr);

/// Name-based convenience overload.
Result<TablePtr> GroupByAggregate(const Table& table,
                                  const std::vector<std::string>& group_cols,
                                  const std::vector<AggregateSpec>& aggs,
                                  StopToken* stop = nullptr);

/// Rows satisfying `pred(row_index)`.
Result<TablePtr> Filter(const Table& table, const std::function<bool(int64_t)>& pred,
                        StopToken* stop = nullptr);

/// σ_{c1=v1 ∧ c2=v2 ∧ ...}: conjunctive equality selection, the shape used
/// by retrieval queries Q_{P,f} (Section 2.2). NULL matches NULL.
Result<TablePtr> FilterEquals(const Table& table,
                              const std::vector<std::pair<int, Value>>& conditions,
                              StopToken* stop = nullptr);

/// π over column indices (duplicates allowed, order preserved).
Result<TablePtr> Project(const Table& table, const std::vector<int>& cols,
                         StopToken* stop = nullptr);

/// Distinct projection π_cols(R) — used for frag(R, P) enumeration.
Result<TablePtr> ProjectDistinct(const Table& table, const std::vector<int>& cols,
                                 StopToken* stop = nullptr);

/// One sort criterion. NULLs sort first on ascending order.
struct SortKey {
  int col = 0;
  bool ascending = true;
};

/// Stable multi-key sort; returns a new materialized table. The comparison
/// phase is not interruptible (std::stable_sort); the stop token is checked
/// before and after it and during row materialization.
Result<TablePtr> SortTable(const Table& table, const std::vector<SortKey>& keys,
                           StopToken* stop = nullptr);

struct CubeOptions {
  /// Only emit groupings whose subset size is within [min, max] — mirrors
  /// the GROUPING()-based filter CAPE applies so only |G_P| <= psi pattern
  /// candidates are materialized (Section 4.1).
  int min_group_size = 0;
  int max_group_size = std::numeric_limits<int>::max();
  /// Appends an int64 `grouping_id` column: bit i set <=> cube_cols[i] was
  /// aggregated away in that output row (SQL GROUPING semantics).
  bool add_grouping_id = true;
};

/// CUBE BY: computes GROUP BY over every subset of `cube_cols` (within the
/// configured size band) in a single operator, like SQL's CUBE. Output
/// schema: all cube columns (NULL where aggregated away), the aggregates,
/// then `grouping_id`. Implementation computes the finest grouping once and
/// re-aggregates coarser groupings from it, which is the standard DBMS cube
/// optimization — and still exhibits the exponential-in-|cube_cols| group
/// blow-up the paper measures (Figure 3a). kAvg is rejected (not
/// re-aggregatable); ARPs never use it.
Result<TablePtr> Cube(const Table& table, const std::vector<int>& cube_cols,
                      const std::vector<AggregateSpec>& aggs,
                      const CubeOptions& options = {}, StopToken* stop = nullptr);

/// Process-wide switch for the dictionary-code kernels (DESIGN.md §10).
/// When enabled (the default), group keys encode 4-byte dictionary codes,
/// equality selections compare pre-translated codes, and sorts compare
/// sorted-code ranks; when disabled every kernel falls back to the legacy
/// per-row string/Value comparisons. Outputs are byte-identical either way
/// (pinned by determinism_test); the switch exists for A/B benchmarking and
/// that equivalence fixture. Not intended to be flipped mid-query.
void SetDictionaryKernelsEnabled(bool enabled);
bool DictionaryKernelsEnabled();

/// Internal helper shared by operators and the FD detector: encodes the
/// projection of row `row` onto `cols` into a byte string such that two rows
/// encode equal iff their projections are equal (value- and null-aware).
///
/// With dictionary kernels enabled, string cells encode as their fixed-width
/// 4-byte dictionary code instead of length-prefixed bytes. Codes are only
/// unique within one column, so encoded keys are comparable only among rows
/// of the *same table* — which is the only way every consumer uses them.
class GroupKeyEncoder {
 public:
  GroupKeyEncoder(const Table& table, std::vector<int> cols);

  /// Appends the encoding of row `row` to *buf (buf is not cleared).
  void EncodeRow(int64_t row, std::string* buf) const;

 private:
  const Table& table_;
  std::vector<int> cols_;
  bool use_codes_;
};

/// Incrementally maintained GROUP BY: the stateful twin of GroupByAggregate
/// for append-only tables. Holds per-group aggregate state keyed by the
/// byte-encoded group key (GroupKeyEncoder semantics — value- and null-aware,
/// -0.0 canonicalized; NaN keys compare by bit pattern) and folds newly
/// appended rows without rescanning the prefix.
///
/// Groups are numbered in first-seen row order, exactly as GroupByAggregate
/// discovers them, and each group's state is produced by the same sequential
/// UpdateAggState fold over its rows — so RepresentativeRow/AggregateValue
/// reproduce the corresponding GroupByAggregate output table byte-for-byte
/// at every fold point. PatternMaintainer builds its group tables on this.
///
/// Folds are transactional: PrepareFold stages the delta (copies of touched
/// group states, provisional ids for new groups) without modifying committed
/// state; CommitFold publishes it infallibly; DiscardFold drops it, leaving
/// the instance exactly as before PrepareFold. Accessors are staging-aware
/// so callers can evaluate the would-be post-append state before deciding to
/// commit. Not thread-safe; the table must outlive this object and must only
/// grow (appends) between folds.
class IncrementalGroupBy {
 public:
  static Result<std::unique_ptr<IncrementalGroupBy>> Make(
      TablePtr table, std::vector<int> group_cols, std::vector<AggregateSpec> aggs);
  ~IncrementalGroupBy();
  IncrementalGroupBy(const IncrementalGroupBy&) = delete;
  IncrementalGroupBy& operator=(const IncrementalGroupBy&) = delete;

  /// Rows [0, rows_folded()) are committed into the group states.
  int64_t rows_folded() const;

  /// Committed group count (excludes staged-new groups).
  int64_t num_groups() const;

  /// Stages the fold of rows [rows_folded(), end_row). Requires no staging
  /// in progress and rows_folded() <= end_row <= table->num_rows(). On stop
  /// (or any error) the partial staging is discarded and committed state is
  /// untouched.
  Status PrepareFold(int64_t end_row, StopToken* stop = nullptr);

  /// Group ids whose state the staged fold changes or creates, in
  /// first-touch order. Ids >= num_groups() are staged-new groups.
  const std::vector<int64_t>& staged_touched() const;

  /// Committed plus staged-new group count.
  int64_t staged_num_groups() const;

  /// First table row of `group` (staging-aware for staged-new groups).
  int64_t RepresentativeRow(int64_t group) const;

  /// Finalized aggregate `agg_idx` of `group`, reflecting staged state when
  /// a fold is in progress — byte-identical to the corresponding cell of
  /// GroupByAggregate over the first staged_num_groups()-discovering rows.
  Value AggregateValue(int64_t group, size_t agg_idx) const;

  /// Unboxed twin of AggregateValue: writes AggregateValue(...).AsDouble()
  /// to *out and returns false iff the aggregate finalizes to NULL. The
  /// maintainer's fragment re-fit reads one aggregate per cell, so this
  /// skips the Value round-trip.
  bool AggregateNumeric(int64_t group, size_t agg_idx, double* out) const;

  /// AggregateNumeric over a group-id span: out[i] and valid[i] receive the
  /// value and non-NULL flag for groups[i]. One call per fragment instead of
  /// one per cell — the finalize mode is resolved once and upcoming state
  /// rows are prefetched internally.
  void AggregateNumericBatch(const int64_t* groups, size_t n, size_t agg_idx,
                             double* out, uint8_t* valid) const;

  /// Hints that `group`'s aggregate state is about to be read. Group states
  /// live in one flat array, so a caller iterating a cell list can issue
  /// this a few iterations ahead to hide the random-access miss.
  void PrefetchGroup(int64_t group) const;

  /// Publishes the staged fold. Infallible: no allocation-dependent failure
  /// paths after this returns void (states move, vectors were pre-grown).
  void CommitFold();

  /// Drops the staged fold, restoring the pre-PrepareFold state.
  void DiscardFold();

 private:
  struct Impl;
  explicit IncrementalGroupBy(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Conjunctive equality predicate compiled once per condition set: string
/// condition values are translated to dictionary codes (one hash lookup per
/// condition, not per row) and numeric values to unboxed comparisons, so
/// Matches() is pure integer/double compares. Semantics are exactly those of
/// `table.GetValue(row, col) == value` per condition (NULL matches NULL,
/// cross-type numeric equality, NaN quirks included). With dictionary
/// kernels disabled it falls back to boxed Value comparison per row.
///
/// Holds a pointer into `table`; must not outlive it. Column indices must be
/// validated by the caller.
class RowEqualityMatcher {
 public:
  RowEqualityMatcher(const Table& table, const std::vector<std::pair<int, Value>>& conditions);

  /// True when no row can possibly satisfy the conditions (a string value
  /// absent from the column's dictionary, or a type-mismatched value).
  /// Callers short-circuit to an empty result without scanning.
  bool never_matches() const { return never_matches_; }

  bool Matches(int64_t row) const;

 private:
  enum class Kind : uint8_t {
    kIsNull,    // condition value is NULL: row must be NULL
    kInt64,     // exact int64 equality
    kDoubleEq,  // numeric equality via !(x<v) && !(x>v) (Value::Compare's rule)
    kCode,      // string column: dictionary code equality
    kBoxed,     // legacy fallback: boxed Value comparison
  };
  struct Cond {
    const Column* col = nullptr;
    Kind kind = Kind::kBoxed;
    int64_t i64 = 0;
    double f64 = 0.0;
    int32_t code = 0;
    Value boxed;
  };

  std::vector<Cond> conds_;
  bool never_matches_ = false;
};

}  // namespace cape

#endif  // CAPE_RELATIONAL_OPERATORS_H_
