#include "relational/page_source.h"

#include <atomic>

namespace cape {
namespace {

// Process-wide paged-scan toggle, same shape as g_dictionary_kernels
// (operators.cc) and g_vectorized_kernels (kernels.cc): relaxed atomic,
// flipped only at test/bench setup boundaries.
std::atomic<bool> g_paged_storage{true};

}  // namespace

void SetPagedStorageEnabled(bool enabled) {
  g_paged_storage.store(enabled, std::memory_order_relaxed);
}

bool PagedStorageEnabled() {
  return g_paged_storage.load(std::memory_order_relaxed);
}

void PageRef::Release() {
  if (source_ != nullptr) {
    // Unpin is protected; PageRef is a friend of PageSource.
    source_->Unpin(cookie_);
    source_ = nullptr;
  }
}

}  // namespace cape
