#ifndef CAPE_RELATIONAL_OPERATORS_INTERNAL_H_
#define CAPE_RELATIONAL_OPERATORS_INTERNAL_H_

// Aggregate-state machinery shared between the row-at-a-time operators
// (operators.cc) and the block/morsel kernels (kernels.cc). Both paths must
// produce byte-identical output, so they must share the exact update and
// finalize arithmetic — in particular the int64 sum's dual isum/dsum
// accumulation and the boxed min/max comparison rules.

#include <cstdint>
#include <vector>

#include "relational/operators.h"
#include "relational/table.h"

namespace cape::relational_internal {

Status ValidateColumnIndex(const Table& table, int col);
Status ValidateAggSpec(const Table& table, const AggregateSpec& spec);

/// Output field type of one aggregate over `table`.
DataType AggOutputType(const Table& table, const AggregateSpec& spec);

/// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;  // non-null inputs (rows for count(*))
  int64_t isum = 0;   // integer sum
  double dsum = 0.0;  // double sum
  Value min_value;    // NULL until first non-null input
  Value max_value;
};

void UpdateAggState(const Table& table, const AggregateSpec& spec, int64_t row,
                    AggState* state);

Value FinalizeAggState(const Table& table, const AggregateSpec& spec,
                       const AggState& state);

}  // namespace cape::relational_internal

#endif  // CAPE_RELATIONAL_OPERATORS_INTERNAL_H_
